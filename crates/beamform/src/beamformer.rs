//! The beamforming → GEMM mapping and the delay-and-sum reference.
//!
//! "When multiple samples are beamformed at once, Eq. 3 maps to a
//! matrix-matrix multiplication … `M` corresponds to the number of beams,
//! `N` is the number of samples beamformed at a time, and `K` is the number
//! of elements that is summed over."  The [`Beamformer`] takes a weight
//! matrix and a block of sensor samples, hands the multiplication to
//! ccglib at the requested precision, and reports the performance numbers
//! alongside the beamformed data.  A plain delay-and-sum implementation is
//! provided as the correctness reference and as the "previous GPU
//! beamformer" stand-in for speed-up comparisons.

use crate::weights::WeightMatrix;
use ccglib::matrix::HostComplexMatrix;
use ccglib::{
    Gemm, GemmInput, GemmPlan, MicroKernelConfig, Precision, PreparedOperand, RunReport,
    TuningParameters,
};
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use tcbf_types::{Complex32, GemmShape};

/// Configuration of a beamformer instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeamformerConfig {
    /// Input precision handed to ccglib.
    pub precision: Precision,
    /// Number of independent batches (e.g. frequency channels ×
    /// polarisations) that share the same weight matrix shape.
    pub batch: usize,
    /// Optional explicit kernel parameters; `None` uses the shipped
    /// per-GPU defaults.
    pub params: Option<TuningParameters>,
    /// Optional host micro-kernel blocking (an autotuned winner or a
    /// pinned choice); `None` runs the default blocking.
    pub micro: Option<MicroKernelConfig>,
}

impl BeamformerConfig {
    /// Default configuration: 16-bit precision, single batch, tuned
    /// defaults.
    pub fn float16() -> Self {
        BeamformerConfig {
            precision: Precision::Float16,
            batch: 1,
            params: None,
            micro: None,
        }
    }

    /// 1-bit configuration.
    pub fn int1() -> Self {
        BeamformerConfig {
            precision: Precision::Int1,
            batch: 1,
            params: None,
            micro: None,
        }
    }
}

/// Result of beamforming one block of samples.
#[derive(Clone, Debug)]
pub struct BeamformOutput {
    /// Beamformed data: `M` beams × `N` samples.
    pub beams: HostComplexMatrix,
    /// Performance/energy report of the underlying GEMM.
    pub report: RunReport,
}

/// Result of beamforming one batch of sample blocks (for configurations
/// with `batch > 1`, e.g. frequency channels × polarisations sharing the
/// same weights).
#[derive(Clone, Debug)]
pub struct BatchBeamformOutput {
    /// Beamformed data per batch element: `M` beams × `N` samples each.
    pub beams: Vec<HostComplexMatrix>,
    /// One performance/energy report covering the whole batch.
    pub report: RunReport,
}

/// A beamformer bound to a device, a weight matrix and a sample-block
/// length.
pub struct Beamformer {
    device: Device,
    config: BeamformerConfig,
    weights: WeightMatrix,
    /// The weights quantised to the operand precision *and* prepared for
    /// the kernel (binary16 weights are bulk-decoded to f32 planes) once —
    /// every block of a streaming session reuses both, so the hot path
    /// never converts the `A` operand again (rebuilt only on weight
    /// hot-swap).
    prepared_weights: PreparedOperand,
    gemm: Gemm,
    samples_per_block: usize,
}

impl Beamformer {
    /// Creates a beamformer for `samples_per_block` samples per call.
    pub fn new(
        device: &Device,
        weights: WeightMatrix,
        samples_per_block: usize,
        config: BeamformerConfig,
    ) -> ccglib::Result<Self> {
        let shape = GemmShape::batched(
            config.batch,
            weights.num_beams(),
            samples_per_block,
            weights.num_receivers(),
        );
        let mut plan = match config.params {
            Some(params) => GemmPlan::with_params(device, shape, config.precision, params)?,
            None => GemmPlan::new(device, shape, config.precision)?,
        };
        if let Some(micro) = config.micro {
            plan = plan.with_micro(micro)?;
        }
        let gemm = Gemm::from_plan(plan);
        let prepared_weights =
            PreparedOperand::new(Self::quantise_for(config.precision, weights.matrix()));
        Ok(Beamformer {
            device: device.clone(),
            config,
            weights,
            prepared_weights,
            gemm,
            samples_per_block,
        })
    }

    /// The GEMM shape this beamformer maps to.
    pub fn shape(&self) -> GemmShape {
        self.gemm.plan().shape()
    }

    /// The weight matrix in use.
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// The device this beamformer runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configuration this beamformer was created with.
    pub fn config(&self) -> &BeamformerConfig {
        &self.config
    }

    /// Number of time samples per block.
    pub fn samples_per_block(&self) -> usize {
        self.samples_per_block
    }

    /// The host micro-kernel blocking the underlying GEMM plan executes
    /// with — the default unless the configuration pinned one (or the
    /// builder's autotune lookup supplied a cached winner).
    pub fn micro(&self) -> MicroKernelConfig {
        self.gemm.plan().micro()
    }

    /// Replaces the beam weights without re-planning the GEMM (weight
    /// hot-swap, e.g. re-steering the beams mid-stream).  The new matrix
    /// must keep the `beams × receivers` shape the kernel was planned for.
    pub fn set_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        if weights.num_beams() != self.weights.num_beams()
            || weights.num_receivers() != self.weights.num_receivers()
        {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!(
                    "{} beams x {} receivers",
                    self.weights.num_beams(),
                    self.weights.num_receivers()
                ),
                actual: format!("{} x {}", weights.num_beams(), weights.num_receivers()),
            });
        }
        self.prepared_weights =
            PreparedOperand::new(Self::quantise_for(self.config.precision, weights.matrix()));
        self.weights = weights;
        Ok(())
    }

    /// Quantises one host matrix to an operand precision.
    fn quantise_for(precision: Precision, host: &HostComplexMatrix) -> GemmInput {
        match precision {
            Precision::Int1 => GemmInput::quantise_int1(host),
            _ => GemmInput::quantise_f16(host),
        }
    }

    /// Quantises one host matrix to the operand precision of this
    /// beamformer.
    fn quantise(&self, host: &HostComplexMatrix) -> GemmInput {
        Self::quantise_for(self.config.precision, host)
    }

    /// Checks one `K × N` sample block against the planned shape.
    fn validate_block(&self, samples: &HostComplexMatrix) -> ccglib::Result<()> {
        if samples.rows() != self.weights.num_receivers()
            || samples.cols() != self.samples_per_block
        {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!(
                    "{} receivers x {} samples",
                    self.weights.num_receivers(),
                    self.samples_per_block
                ),
                actual: format!("{} x {}", samples.rows(), samples.cols()),
            });
        }
        Ok(())
    }

    /// Predicted performance of one block without computing data (used for
    /// paper-scale configurations).
    pub fn predict(&self) -> RunReport {
        self.gemm.predict()
    }

    /// Starts a streaming session on this beamformer (consumes it; the
    /// session owns the beamformer so weights can be hot-swapped).
    pub fn into_session(self) -> crate::session::BeamformSession {
        crate::session::BeamformSession::new(self)
    }

    /// Wraps this beamformer as a single-device [`crate::Engine`] — the
    /// unified streaming interface shared with multi-device pools.  Fails
    /// for configurations with `batch != 1` (engines stream whole blocks,
    /// one per execution).
    pub fn into_engine(self) -> ccglib::Result<crate::engine::SingleEngine> {
        crate::engine::SingleEngine::new(self)
    }

    /// Beamforms one block of sensor samples (`K` receivers × `N` time
    /// samples).  Configurations with `batch > 1` beamform through
    /// [`Beamformer::beamform_batch`] instead.
    pub fn beamform(&self, samples: &HostComplexMatrix) -> ccglib::Result<BeamformOutput> {
        if self.config.batch != 1 {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!(
                    "one sample block per batch element: use beamform_batch (or a session's \
                     process_batch) with {} blocks",
                    self.config.batch
                ),
                actual: "a single block".to_string(),
            });
        }
        self.validate_block(samples)?;
        // ccglib consumes B transposed: N×K, one row per output sample; the
        // weights operand is the cached prepared (pre-decoded) one.
        let b = self.quantise(&samples.transposed());
        let (beams, report) = self.gemm.run_prepared(&self.prepared_weights, &b)?;
        Ok(BeamformOutput { beams, report })
    }

    /// Beamforms one batch of sample blocks — one `K × N` block per batch
    /// element, all sharing this beamformer's weights — functionally, with
    /// a single report covering the whole batch.  The number of blocks must
    /// equal the configured batch size.
    pub fn beamform_batch(
        &self,
        blocks: &[HostComplexMatrix],
    ) -> ccglib::Result<BatchBeamformOutput> {
        if blocks.len() != self.config.batch {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!("{} sample blocks (the configured batch)", self.config.batch),
                actual: format!("{} blocks", blocks.len()),
            });
        }
        for block in blocks {
            self.validate_block(block)?;
        }
        let b_ts: Vec<GemmInput> = blocks
            .iter()
            .map(|block| self.quantise(&block.transposed()))
            .collect();
        let (beams, report) = self
            .gemm
            .run_batch_shared_prepared(&self.prepared_weights, &b_ts)?;
        Ok(BatchBeamformOutput { beams, report })
    }

    /// Direct delay-and-sum (phase-and-sum in the narrowband model)
    /// reference beamformer in full precision: the ground truth the
    /// tensor-core outputs are validated against, and the stand-in for the
    /// float32 "previous implementation" baselines of Section V.
    pub fn delay_and_sum_reference(&self, samples: &HostComplexMatrix) -> HostComplexMatrix {
        let m = self.weights.num_beams();
        let n = samples.cols();
        let k = self.weights.num_receivers();
        let mut out = HostComplexMatrix::zeros(m, n);
        for beam in 0..m {
            for sample in 0..n {
                let mut acc = Complex32::ZERO;
                for receiver in 0..k {
                    acc +=
                        self.weights.matrix().get(beam, receiver) * samples.get(receiver, sample);
                }
                out.set(beam, sample, acc);
            }
        }
        out
    }

    /// Coherent SNR gain of beam `beam` estimated from beamformed data:
    /// the ratio of the peak beam power to the mean power across the other
    /// beams.  For a single point source and steering weights, this grows
    /// with the number of receivers.
    pub fn beam_power(output: &HostComplexMatrix, beam: usize) -> f64 {
        let n = output.cols();
        (0..n)
            .map(|s| f64::from(output.get(beam, s).norm_sqr()))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ArrayGeometry, SPEED_OF_LIGHT};
    use crate::signal::{PlaneWaveSource, SignalGenerator};
    use gpu_sim::Gpu;

    const FREQ: f64 = 150e6;

    fn array(n: usize) -> ArrayGeometry {
        ArrayGeometry::uniform_linear(n, SPEED_OF_LIGHT / FREQ / 2.0, SPEED_OF_LIGHT)
    }

    fn device() -> Device {
        Gpu::A100.device()
    }

    #[test]
    fn tensor_core_beams_match_delay_and_sum() {
        let geom = array(32);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 8, -0.4, 0.4);
        let beamformer =
            Beamformer::new(&device(), weights, 16, BeamformerConfig::float16()).unwrap();
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.05, 3);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.1,
                amplitude: 1.0,
                baseband_frequency: 0.0,
            }],
            16,
        );
        let output = beamformer.beamform(&samples).unwrap();
        let reference = beamformer.delay_and_sum_reference(&samples);
        assert!(output.beams.max_abs_diff(&reference) < 0.05);
        assert!(output.report.predicted.elapsed_s > 0.0);
    }

    #[test]
    fn beamformer_concentrates_power_in_the_right_beam() {
        let geom = array(64);
        let azimuths: Vec<f64> = (0..9).map(|i| -0.4 + 0.1 * i as f64).collect();
        let weights = WeightMatrix::steering(&geom, FREQ, &azimuths, true);
        let beamformer =
            Beamformer::new(&device(), weights, 32, BeamformerConfig::float16()).unwrap();
        // Source exactly at the 7th beam (azimuth 0.2).
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.01, 11);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.2,
                amplitude: 1.0,
                baseband_frequency: 0.0,
            }],
            32,
        );
        let output = beamformer.beamform(&samples).unwrap();
        let powers: Vec<f64> = (0..9)
            .map(|b| Beamformer::beam_power(&output.beams, b))
            .collect();
        let best = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(best, 6, "powers: {powers:?}");
        // On-source beam should carry at least 5x the power of the weakest.
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(powers[6] > 5.0 * min);
    }

    #[test]
    fn one_bit_beamforming_still_finds_the_source() {
        // 1-bit quantisation loses amplitude information but the beam with
        // the source must still win (the robustness argument of
        // Section III: "beamforming remains robust since many values are
        // accumulated").
        let geom = array(64);
        let azimuths = [-0.3, 0.0, 0.3];
        let weights = WeightMatrix::steering(&geom, FREQ, &azimuths, false);
        let beamformer =
            Beamformer::new(&Gpu::Gh200.device(), weights, 64, BeamformerConfig::int1()).unwrap();
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.3, 5);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.3,
                amplitude: 1.0,
                baseband_frequency: 3000.0,
            }],
            64,
        );
        let output = beamformer.beamform(&samples).unwrap();
        assert_eq!(output.report.bit_op, Some(gpu_sim::BitOp::And));
        let powers: Vec<f64> = (0..3)
            .map(|b| Beamformer::beam_power(&output.beams, b))
            .collect();
        assert!(
            powers[2] > powers[0] && powers[2] > powers[1],
            "powers: {powers:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let geom = array(16);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 4, -0.2, 0.2);
        let beamformer =
            Beamformer::new(&device(), weights, 8, BeamformerConfig::float16()).unwrap();
        let wrong = HostComplexMatrix::zeros(16, 9);
        assert!(beamformer.beamform(&wrong).is_err());
        let wrong_k = HostComplexMatrix::zeros(15, 8);
        assert!(beamformer.beamform(&wrong_k).is_err());
    }

    #[test]
    fn predict_supports_paper_scale_batched_shapes() {
        // LOFAR-like configuration: 1024 beams, 1024 samples, 512 stations,
        // batch 256 — far too big to materialise, but the prediction path
        // handles it.
        let geom = array(8);
        let weights = WeightMatrix::from_matrix(HostComplexMatrix::zeros(1024, 512));
        let config = BeamformerConfig {
            precision: Precision::Float16,
            batch: 256,
            params: None,
            micro: None,
        };
        let beamformer = Beamformer::new(&device(), weights, 1024, config).unwrap();
        assert_eq!(beamformer.shape(), GemmShape::batched(256, 1024, 1024, 512));
        let report = beamformer.predict();
        assert!(report.achieved_tops > 10.0);
        drop(geom);
    }

    #[test]
    fn batched_beamforming_matches_per_batch_references() {
        // A batch-4 configuration executes functionally and every batch
        // element matches the delay-and-sum reference within the
        // quantisation tolerance of the single-block path.
        let geom = array(32);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 8, -0.4, 0.4);
        let config = BeamformerConfig {
            batch: 4,
            ..BeamformerConfig::float16()
        };
        let beamformer = Beamformer::new(&device(), weights, 16, config).unwrap();
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.05, 7);
        let blocks: Vec<HostComplexMatrix> = (0..4)
            .map(|i| {
                generator.sensor_samples(
                    &[PlaneWaveSource {
                        azimuth: -0.2 + 0.1 * i as f64,
                        amplitude: 1.0,
                        baseband_frequency: 0.0,
                    }],
                    16,
                )
            })
            .collect();
        let output = beamformer.beamform_batch(&blocks).unwrap();
        assert_eq!(output.beams.len(), 4);
        for (beams, samples) in output.beams.iter().zip(&blocks) {
            let reference = beamformer.delay_and_sum_reference(samples);
            assert!(beams.max_abs_diff(&reference) < 0.05);
        }
        assert!(output.report.predicted.elapsed_s > 0.0);
        // Wrong block count is rejected.
        assert!(beamformer.beamform_batch(&blocks[..3]).is_err());
        // The single-pair path refuses batched plans.
        assert!(beamformer.beamform(&blocks[0]).is_err());
    }

    #[test]
    fn set_weights_keeps_the_plan_but_changes_the_beams() {
        let geom = array(16);
        let fan = WeightMatrix::uniform_fan(&geom, FREQ, 4, -0.2, 0.2);
        let mut beamformer =
            Beamformer::new(&device(), fan, 8, BeamformerConfig::float16()).unwrap();
        let samples = HostComplexMatrix::from_fn(16, 8, |r, s| {
            Complex32::new((r + s) as f32 * 0.05, r as f32 * 0.02)
        });
        let before = beamformer.beamform(&samples).unwrap();
        let steered = WeightMatrix::steering(&array(16), FREQ, &[-0.3, -0.1, 0.1, 0.3], true);
        beamformer.set_weights(steered).unwrap();
        let after = beamformer.beamform(&samples).unwrap();
        assert_eq!(beamformer.shape(), GemmShape::new(4, 8, 16));
        assert!(before.beams.max_abs_diff(&after.beams) > 1e-3);
        // Shape-changing swaps are rejected.
        let wrong = WeightMatrix::from_matrix(HostComplexMatrix::zeros(4, 17));
        assert!(beamformer.set_weights(wrong).is_err());
    }

    #[test]
    fn snr_gain_grows_with_receivers() {
        // Beamforming gain: more receivers → higher on-source beam power
        // relative to the off-source beams.
        let mut gains = Vec::new();
        for k in [8usize, 64] {
            let geom = array(k);
            let weights = WeightMatrix::steering(&geom, FREQ, &[0.0, 0.35], true);
            let beamformer =
                Beamformer::new(&device(), weights, 64, BeamformerConfig::float16()).unwrap();
            let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 1.0, 13);
            let samples = generator.sensor_samples(
                &[PlaneWaveSource {
                    azimuth: 0.0,
                    amplitude: 1.0,
                    baseband_frequency: 0.0,
                }],
                64,
            );
            let output = beamformer.beamform(&samples).unwrap();
            let on = Beamformer::beam_power(&output.beams, 0);
            let off = Beamformer::beam_power(&output.beams, 1);
            gains.push(on / off);
        }
        assert!(gains[1] > gains[0], "gains: {gains:?}");
    }
}
