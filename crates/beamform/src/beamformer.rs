//! The beamforming → GEMM mapping and the delay-and-sum reference.
//!
//! "When multiple samples are beamformed at once, Eq. 3 maps to a
//! matrix-matrix multiplication … `M` corresponds to the number of beams,
//! `N` is the number of samples beamformed at a time, and `K` is the number
//! of elements that is summed over."  The [`Beamformer`] takes a weight
//! matrix and a block of sensor samples, hands the multiplication to
//! ccglib at the requested precision, and reports the performance numbers
//! alongside the beamformed data.  A plain delay-and-sum implementation is
//! provided as the correctness reference and as the "previous GPU
//! beamformer" stand-in for speed-up comparisons.

use crate::weights::WeightMatrix;
use ccglib::matrix::HostComplexMatrix;
use ccglib::{Gemm, GemmInput, Precision, RunReport, TuningParameters};
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use tcbf_types::{Complex32, GemmShape};

/// Configuration of a beamformer instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeamformerConfig {
    /// Input precision handed to ccglib.
    pub precision: Precision,
    /// Number of independent batches (e.g. frequency channels ×
    /// polarisations) that share the same weight matrix shape.
    pub batch: usize,
    /// Optional explicit kernel parameters; `None` uses the shipped
    /// per-GPU defaults.
    pub params: Option<TuningParameters>,
}

impl BeamformerConfig {
    /// Default configuration: 16-bit precision, single batch, tuned
    /// defaults.
    pub fn float16() -> Self {
        BeamformerConfig {
            precision: Precision::Float16,
            batch: 1,
            params: None,
        }
    }

    /// 1-bit configuration.
    pub fn int1() -> Self {
        BeamformerConfig {
            precision: Precision::Int1,
            batch: 1,
            params: None,
        }
    }
}

/// Result of beamforming one block of samples.
#[derive(Clone, Debug)]
pub struct BeamformOutput {
    /// Beamformed data: `M` beams × `N` samples.
    pub beams: HostComplexMatrix,
    /// Performance/energy report of the underlying GEMM.
    pub report: RunReport,
}

/// A beamformer bound to a device, a weight matrix and a sample-block
/// length.
pub struct Beamformer {
    device: Device,
    config: BeamformerConfig,
    weights: WeightMatrix,
    gemm: Gemm,
    samples_per_block: usize,
}

impl Beamformer {
    /// Creates a beamformer for `samples_per_block` samples per call.
    pub fn new(
        device: &Device,
        weights: WeightMatrix,
        samples_per_block: usize,
        config: BeamformerConfig,
    ) -> ccglib::Result<Self> {
        let shape = GemmShape::batched(
            config.batch,
            weights.num_beams(),
            samples_per_block,
            weights.num_receivers(),
        );
        let gemm = match config.params {
            Some(params) => Gemm::with_params(device, shape, config.precision, params)?,
            None => Gemm::new(device, shape, config.precision)?,
        };
        Ok(Beamformer {
            device: device.clone(),
            config,
            weights,
            gemm,
            samples_per_block,
        })
    }

    /// The GEMM shape this beamformer maps to.
    pub fn shape(&self) -> GemmShape {
        self.gemm.plan().shape()
    }

    /// The weight matrix in use.
    pub fn weights(&self) -> &WeightMatrix {
        &self.weights
    }

    /// The device this beamformer runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Predicted performance of one block without computing data (used for
    /// paper-scale configurations).
    pub fn predict(&self) -> RunReport {
        self.gemm.predict()
    }

    /// Beamforms one block of sensor samples (`K` receivers × `N` time
    /// samples).  The batch dimension of the configuration must be 1 for
    /// functional execution; batched shapes are supported through
    /// [`Beamformer::predict`].
    pub fn beamform(&self, samples: &HostComplexMatrix) -> ccglib::Result<BeamformOutput> {
        if samples.rows() != self.weights.num_receivers()
            || samples.cols() != self.samples_per_block
        {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!(
                    "{} receivers x {} samples",
                    self.weights.num_receivers(),
                    self.samples_per_block
                ),
                actual: format!("{} x {}", samples.rows(), samples.cols()),
            });
        }
        // ccglib consumes B transposed: N×K, one row per output sample.
        let samples_t = samples.transposed();
        let (a, b) = match self.config.precision {
            Precision::Int1 => (
                GemmInput::quantise_int1(self.weights.matrix()),
                GemmInput::quantise_int1(&samples_t),
            ),
            _ => (
                GemmInput::quantise_f16(self.weights.matrix()),
                GemmInput::quantise_f16(&samples_t),
            ),
        };
        let (beams, report) = self.gemm.run(&a, &b)?;
        Ok(BeamformOutput { beams, report })
    }

    /// Direct delay-and-sum (phase-and-sum in the narrowband model)
    /// reference beamformer in full precision: the ground truth the
    /// tensor-core outputs are validated against, and the stand-in for the
    /// float32 "previous implementation" baselines of Section V.
    pub fn delay_and_sum_reference(&self, samples: &HostComplexMatrix) -> HostComplexMatrix {
        let m = self.weights.num_beams();
        let n = samples.cols();
        let k = self.weights.num_receivers();
        let mut out = HostComplexMatrix::zeros(m, n);
        for beam in 0..m {
            for sample in 0..n {
                let mut acc = Complex32::ZERO;
                for receiver in 0..k {
                    acc +=
                        self.weights.matrix().get(beam, receiver) * samples.get(receiver, sample);
                }
                out.set(beam, sample, acc);
            }
        }
        out
    }

    /// Coherent SNR gain of beam `beam` estimated from beamformed data:
    /// the ratio of the peak beam power to the mean power across the other
    /// beams.  For a single point source and steering weights, this grows
    /// with the number of receivers.
    pub fn beam_power(output: &HostComplexMatrix, beam: usize) -> f64 {
        let n = output.cols();
        (0..n)
            .map(|s| f64::from(output.get(beam, s).norm_sqr()))
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ArrayGeometry, SPEED_OF_LIGHT};
    use crate::signal::{PlaneWaveSource, SignalGenerator};
    use gpu_sim::Gpu;

    const FREQ: f64 = 150e6;

    fn array(n: usize) -> ArrayGeometry {
        ArrayGeometry::uniform_linear(n, SPEED_OF_LIGHT / FREQ / 2.0, SPEED_OF_LIGHT)
    }

    fn device() -> Device {
        Gpu::A100.device()
    }

    #[test]
    fn tensor_core_beams_match_delay_and_sum() {
        let geom = array(32);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 8, -0.4, 0.4);
        let beamformer =
            Beamformer::new(&device(), weights, 16, BeamformerConfig::float16()).unwrap();
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.05, 3);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.1,
                amplitude: 1.0,
                baseband_frequency: 0.0,
            }],
            16,
        );
        let output = beamformer.beamform(&samples).unwrap();
        let reference = beamformer.delay_and_sum_reference(&samples);
        assert!(output.beams.max_abs_diff(&reference) < 0.05);
        assert!(output.report.predicted.elapsed_s > 0.0);
    }

    #[test]
    fn beamformer_concentrates_power_in_the_right_beam() {
        let geom = array(64);
        let azimuths: Vec<f64> = (0..9).map(|i| -0.4 + 0.1 * i as f64).collect();
        let weights = WeightMatrix::steering(&geom, FREQ, &azimuths, true);
        let beamformer =
            Beamformer::new(&device(), weights, 32, BeamformerConfig::float16()).unwrap();
        // Source exactly at the 7th beam (azimuth 0.2).
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.01, 11);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.2,
                amplitude: 1.0,
                baseband_frequency: 0.0,
            }],
            32,
        );
        let output = beamformer.beamform(&samples).unwrap();
        let powers: Vec<f64> = (0..9)
            .map(|b| Beamformer::beam_power(&output.beams, b))
            .collect();
        let best = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(best, 6, "powers: {powers:?}");
        // On-source beam should carry at least 5x the power of the weakest.
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(powers[6] > 5.0 * min);
    }

    #[test]
    fn one_bit_beamforming_still_finds_the_source() {
        // 1-bit quantisation loses amplitude information but the beam with
        // the source must still win (the robustness argument of
        // Section III: "beamforming remains robust since many values are
        // accumulated").
        let geom = array(64);
        let azimuths = [-0.3, 0.0, 0.3];
        let weights = WeightMatrix::steering(&geom, FREQ, &azimuths, false);
        let beamformer =
            Beamformer::new(&Gpu::Gh200.device(), weights, 64, BeamformerConfig::int1()).unwrap();
        let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 0.3, 5);
        let samples = generator.sensor_samples(
            &[PlaneWaveSource {
                azimuth: 0.3,
                amplitude: 1.0,
                baseband_frequency: 3000.0,
            }],
            64,
        );
        let output = beamformer.beamform(&samples).unwrap();
        assert_eq!(output.report.bit_op, Some(gpu_sim::BitOp::And));
        let powers: Vec<f64> = (0..3)
            .map(|b| Beamformer::beam_power(&output.beams, b))
            .collect();
        assert!(
            powers[2] > powers[0] && powers[2] > powers[1],
            "powers: {powers:?}"
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let geom = array(16);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 4, -0.2, 0.2);
        let beamformer =
            Beamformer::new(&device(), weights, 8, BeamformerConfig::float16()).unwrap();
        let wrong = HostComplexMatrix::zeros(16, 9);
        assert!(beamformer.beamform(&wrong).is_err());
        let wrong_k = HostComplexMatrix::zeros(15, 8);
        assert!(beamformer.beamform(&wrong_k).is_err());
    }

    #[test]
    fn predict_supports_paper_scale_batched_shapes() {
        // LOFAR-like configuration: 1024 beams, 1024 samples, 512 stations,
        // batch 256 — far too big to materialise, but the prediction path
        // handles it.
        let geom = array(8);
        let weights = WeightMatrix::from_matrix(HostComplexMatrix::zeros(1024, 512));
        let config = BeamformerConfig {
            precision: Precision::Float16,
            batch: 256,
            params: None,
        };
        let beamformer = Beamformer::new(&device(), weights, 1024, config).unwrap();
        assert_eq!(beamformer.shape(), GemmShape::batched(256, 1024, 1024, 512));
        let report = beamformer.predict();
        assert!(report.achieved_tops > 10.0);
        drop(geom);
    }

    #[test]
    fn snr_gain_grows_with_receivers() {
        // Beamforming gain: more receivers → higher on-source beam power
        // relative to the off-source beams.
        let mut gains = Vec::new();
        for k in [8usize, 64] {
            let geom = array(k);
            let weights = WeightMatrix::steering(&geom, FREQ, &[0.0, 0.35], true);
            let beamformer =
                Beamformer::new(&device(), weights, 64, BeamformerConfig::float16()).unwrap();
            let mut generator = SignalGenerator::new(geom, FREQ, 1e5, 1.0, 13);
            let samples = generator.sensor_samples(
                &[PlaneWaveSource {
                    azimuth: 0.0,
                    amplitude: 1.0,
                    baseband_frequency: 0.0,
                }],
                64,
            );
            let output = beamformer.beamform(&samples).unwrap();
            let on = Beamformer::beam_power(&output.beams, 0);
            let off = Beamformer::beam_power(&output.beams, 1);
            gains.push(on / off);
        }
        assert!(gains[1] > gains[0], "gains: {gains:?}");
    }
}
