//! The unified execution engine: one API from a single GPU to a pool.
//!
//! The paper's layering — a beamforming pipeline that scales from one
//! accelerator to a heterogeneous pool without the application noticing —
//! is expressed here as a single object-safe [`Engine`] trait.  A
//! [`SingleEngine`] (one [`Beamformer`]) and a
//! [`crate::ShardedBeamformer`] (one beamformer per pool member) are the
//! two implementations; downstream code is written once against
//! `&mut impl Engine` or [`Box<dyn Engine>`] and works on any topology,
//! including ones added later (async, remote, heterogeneous tiers).
//!
//! Every engine accumulates one unified [`Report`]: a per-device breakdown
//! (with exactly one device in the single case) from which the pool-level
//! metrics — summed aggregate TeraOps/s, the straggler's wall clock, the
//! parallel speed-up — are derived uniformly.  The generic
//! [`Session<E>`] (and its [`DynSession`] alias for boxed engines)
//! replaces the former `BeamformSession`/`ShardedSession` pair.

use crate::beamformer::{BeamformOutput, Beamformer};
use crate::latency::LatencyHistogram;
use crate::session::SessionReport;
use crate::shard::{ShardPlan, ShardPolicy};
use crate::weights::WeightMatrix;
use ccglib::matrix::HostComplexMatrix;
use gpu_sim::Gpu;
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;

/// The shared throughput/energy metric surface of every report type.
///
/// [`SessionReport`] (one device, serial totals) and the unified
/// [`Report`] (per-device breakdown) expose the same five derived metrics
/// with identical zero-guard behaviour (an empty run reports finite zeros,
/// never NaN or infinity).  The logic lives once, here: the per-execution
/// statistics come from the serial-equivalent merge and the rate metrics
/// divide by [`ThroughputMetrics::time_base_s`] — total kernel time for a
/// serial report, the straggler's wall clock for a pool.
pub trait ThroughputMetrics {
    /// All executions folded into one serial-equivalent [`SessionReport`].
    fn merged_serial(&self) -> SessionReport;

    /// The time base the rate metrics divide by: total kernel time for a
    /// serial report, the straggler's wall clock for a pool.
    fn time_base_s(&self) -> f64;

    /// Worst-case per-execution achieved TeraOps/s (0.0 for an empty run).
    fn worst_tops(&self) -> f64 {
        self.merged_serial().worst_tops()
    }

    /// Mean of the per-execution achieved TeraOps/s (0.0 for an empty
    /// run).
    fn mean_tops(&self) -> f64 {
        self.merged_serial().mean_tops()
    }

    /// Best-case per-execution achieved TeraOps/s (0.0 for an empty run).
    fn best_tops(&self) -> f64 {
        self.merged_serial().best_tops()
    }

    /// Aggregate energy efficiency in TeraOps/J (0.0 for a zero-energy
    /// run).
    fn tops_per_joule(&self) -> f64 {
        self.merged_serial().tops_per_joule()
    }

    /// Effective block (frame) rate: blocks per second of
    /// [`ThroughputMetrics::time_base_s`] (0.0 for a zero-time run).
    fn effective_fps(&self) -> f64 {
        let time = self.time_base_s();
        if time > 0.0 {
            self.merged_serial().blocks as f64 / time
        } else {
            0.0
        }
    }
}

impl ThroughputMetrics for SessionReport {
    fn merged_serial(&self) -> SessionReport {
        *self
    }

    fn time_base_s(&self) -> f64 {
        self.total_elapsed_s
    }
}

/// One device's contribution to an engine run: the member's own streaming
/// [`SessionReport`], covering exactly the blocks that device executed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceShardReport {
    /// The catalog identifier of the member.
    pub gpu: Gpu,
    /// The member's own streaming report (its totals cover only the blocks
    /// this device executed).
    pub report: SessionReport,
}

/// The unified report of an engine run: a per-device breakdown plus the
/// pool-level metrics derived from it.
///
/// This one type covers every topology.  A single-device engine reports a
/// breakdown with exactly one entry, so its serial metrics embed naturally:
/// the wall clock equals that device's total kernel time, the aggregate
/// throughput equals its aggregate throughput and
/// [`Report::speedup_over_serial`] is 1.0.  For a pool, totals
/// (`total_blocks`, `total_joules`, `total_useful_ops`) are the sums of
/// the per-device reports, [`Report::aggregate_tops`] sums the members'
/// aggregate TeraOps/s (the members run concurrently), and the wall clock
/// of the run is the *straggler's* elapsed time — the slowest member
/// bounds the pool, exactly as in any data-parallel pipeline.
///
/// Weight swaps are counted once per engine-wide swap (not once per
/// member); [`Report::merged_serial`] carries them into the
/// serial-equivalent [`SessionReport`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    per_device: Vec<DeviceShardReport>,
    weight_swaps: usize,
}

impl Report {
    /// Builds a report from per-device reports and the number of
    /// engine-wide weight swaps.
    pub fn new(per_device: Vec<DeviceShardReport>, weight_swaps: usize) -> Self {
        Report {
            per_device,
            weight_swaps,
        }
    }

    /// The per-device breakdown, in pool order (exactly one entry for a
    /// single-device engine).
    pub fn per_device(&self) -> &[DeviceShardReport] {
        &self.per_device
    }

    /// Number of engine-wide weight swaps (each swap counts once, not once
    /// per member).
    pub fn weight_swaps(&self) -> usize {
        self.weight_swaps
    }

    /// All per-device reports folded into one serial-equivalent
    /// [`SessionReport`]: totals summed, per-execution extremes merged,
    /// engine-wide weight swaps carried over.
    pub fn merged_serial(&self) -> SessionReport {
        let mut merged = SessionReport::default();
        for shard in &self.per_device {
            merged.absorb(&shard.report);
        }
        merged.weight_swaps += self.weight_swaps;
        merged
    }

    /// Total blocks processed across all devices.
    pub fn total_blocks(&self) -> usize {
        self.per_device.iter().map(|s| s.report.blocks).sum()
    }

    /// Total energy across all devices in joules.
    pub fn total_joules(&self) -> f64 {
        self.per_device.iter().map(|s| s.report.total_joules).sum()
    }

    /// Total useful operations across all devices.
    pub fn total_useful_ops(&self) -> f64 {
        self.per_device
            .iter()
            .map(|s| s.report.total_useful_ops)
            .sum()
    }

    /// Aggregate throughput in TeraOps/s: the sum of the members'
    /// aggregate throughputs, since the members run concurrently.  For a
    /// single device this is simply its aggregate throughput.  Zero for an
    /// empty run.
    pub fn aggregate_tops(&self) -> f64 {
        self.per_device
            .iter()
            .map(|s| s.report.aggregate_tops())
            .sum()
    }

    /// Wall-clock time of the run in seconds: the straggler's total
    /// elapsed kernel time (members run concurrently, so the slowest one
    /// bounds the pool; for a single device this is its total kernel
    /// time).  Zero for an empty run.
    pub fn wall_clock_s(&self) -> f64 {
        self.per_device
            .iter()
            .map(|s| s.report.total_elapsed_s)
            .fold(0.0, f64::max)
    }

    /// Index of the straggler — the member with the largest elapsed time —
    /// or `None` for an empty report.
    pub fn straggler(&self) -> Option<usize> {
        self.per_device
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.report
                    .total_elapsed_s
                    .total_cmp(&b.1.report.total_elapsed_s)
            })
            .map(|(i, _)| i)
    }

    /// Effective block (frame) rate: blocks per second of wall-clock time.
    /// Zero for a zero-block or zero-elapsed run.
    pub fn effective_fps(&self) -> f64 {
        ThroughputMetrics::effective_fps(self)
    }

    /// Aggregate energy efficiency in TeraOps/J.  Zero for a zero-energy
    /// run.
    pub fn tops_per_joule(&self) -> f64 {
        ThroughputMetrics::tops_per_joule(self)
    }

    /// Worst per-execution throughput across all members, in TeraOps/s.
    pub fn worst_tops(&self) -> f64 {
        ThroughputMetrics::worst_tops(self)
    }

    /// Mean per-execution throughput across all members, in TeraOps/s.
    pub fn mean_tops(&self) -> f64 {
        ThroughputMetrics::mean_tops(self)
    }

    /// Best per-execution throughput across all members, in TeraOps/s.
    pub fn best_tops(&self) -> f64 {
        ThroughputMetrics::best_tops(self)
    }

    /// The fleet-wide log2 histogram of per-execution kernel latency: the
    /// exact bucket-wise merge of every member's histogram.
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.per_device {
            merged.merge(shard.report.latency());
        }
        merged
    }

    /// Median per-execution kernel latency across all members, in seconds
    /// (0.0 for an empty run).
    pub fn p50_latency_s(&self) -> f64 {
        self.latency().p50_s()
    }

    /// 95th-percentile per-execution kernel latency across all members, in
    /// seconds (0.0 for an empty run).
    pub fn p95_latency_s(&self) -> f64 {
        self.latency().p95_s()
    }

    /// 99th-percentile per-execution kernel latency across all members, in
    /// seconds (0.0 for an empty run).
    pub fn p99_latency_s(&self) -> f64 {
        self.latency().p99_s()
    }

    /// Parallel speed-up over running the same stream serially on the
    /// members: summed elapsed time divided by the straggler's wall clock.
    /// 1.0 for a single-member engine, 0.0 for an empty run.
    pub fn speedup_over_serial(&self) -> f64 {
        let wall = self.wall_clock_s();
        if wall > 0.0 {
            let serial: f64 = self
                .per_device
                .iter()
                .map(|s| s.report.total_elapsed_s)
                .sum();
            serial / wall
        } else {
            0.0
        }
    }
}

impl ThroughputMetrics for Report {
    fn merged_serial(&self) -> SessionReport {
        Report::merged_serial(self)
    }

    fn time_base_s(&self) -> f64 {
        self.wall_clock_s()
    }
}

/// The device layout of an engine, for introspection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One device.
    Single(Gpu),
    /// A pool of devices sharing a shard policy.
    Pool {
        /// The catalog identifiers of the members, in pool order.
        gpus: Vec<Gpu>,
        /// How block streams are partitioned across the members.
        policy: ShardPolicy,
    },
}

impl Topology {
    /// The devices the engine spans, in pool order (a single-device engine
    /// is a one-element slice).
    pub fn gpus(&self) -> &[Gpu] {
        match self {
            Topology::Single(gpu) => std::slice::from_ref(gpu),
            Topology::Pool { gpus, .. } => gpus,
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.gpus().len()
    }

    /// The shard policy, or `None` for a single device (no partitioning
    /// happens).
    pub fn policy(&self) -> Option<ShardPolicy> {
        match self {
            Topology::Single(_) => None,
            Topology::Pool { policy, .. } => Some(*policy),
        }
    }

    /// Whether the engine spans a multi-device pool.
    pub fn is_sharded(&self) -> bool {
        matches!(self, Topology::Pool { .. })
    }
}

/// A streaming beamforming engine, independent of device topology.
///
/// The trait is **object safe**: heterogeneous topologies can be driven
/// through `Box<dyn Engine>` (what
/// `tcbf::BeamformerBuilder::build_engine()` returns) or `&mut dyn
/// Engine`.  The two shipped implementations are [`SingleEngine`] (one
/// [`Beamformer`]) and [`crate::ShardedBeamformer`] (one beamformer per
/// pool member, parallel shard execution); both accumulate the same
/// unified [`Report`], so downstream pipelines read one metric surface
/// regardless of topology.
///
/// Engines stream *whole blocks* — one `K × N` sample block per GEMM
/// execution — so they are constructed from batch-1 configurations.
///
/// `Send` is a supertrait: serving layers hand engines between worker
/// threads (e.g. `tcbf-serve`'s engine pool), so every engine must be
/// movable across threads.
pub trait Engine: std::fmt::Debug + Send {
    /// The device layout of this engine.
    fn topology(&self) -> Topology;

    /// The [`ShardPlan`] a stream of `blocks` blocks would execute under.
    /// A single-device engine assigns every block to its only device.
    fn plan(&self, blocks: usize) -> ShardPlan;

    /// Processes one batch of `K × N` sample blocks, returning the
    /// per-block outputs in input order and folding the per-execution
    /// reports into the engine's accumulated [`Report`].  Whether work
    /// executed before a failure stays accounted is
    /// implementation-defined: [`SingleEngine`] records block by block,
    /// so blocks processed before the error remain in the report; a
    /// sharded fan-out without a fault injector discards the failed
    /// call's accounting entirely, while a fault-injected
    /// [`crate::ShardedBeamformer`] keeps the work its members completed
    /// before faulting (re-apportioning the rest onto the survivors — see
    /// `docs/FAULTS.md`).
    fn process_batch(
        &mut self,
        blocks: &[&HostComplexMatrix],
    ) -> ccglib::Result<Vec<BeamformOutput>>;

    /// Hot-swaps the beam weights on **every** device of the engine (same
    /// `beams × receivers` shape; kernel plans are reused unchanged).  A
    /// rejected swap leaves all devices on the old weights.  Successful
    /// swaps are counted in [`Report::weight_swaps`].
    fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()>;

    /// The report accumulated since construction or the last
    /// [`Engine::finish`].
    fn report(&self) -> Report;

    /// Ends the current run: returns its report and resets the
    /// accumulation, so the engine can immediately start a fresh run.
    fn finish(&mut self) -> Report;
}

impl<E: Engine + ?Sized> Engine for Box<E> {
    fn topology(&self) -> Topology {
        (**self).topology()
    }

    fn plan(&self, blocks: usize) -> ShardPlan {
        (**self).plan(blocks)
    }

    fn process_batch(
        &mut self,
        blocks: &[&HostComplexMatrix],
    ) -> ccglib::Result<Vec<BeamformOutput>> {
        (**self).process_batch(blocks)
    }

    fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        (**self).swap_weights(weights)
    }

    fn report(&self) -> Report {
        (**self).report()
    }

    fn finish(&mut self) -> Report {
        (**self).finish()
    }
}

/// The single-device [`Engine`]: one [`Beamformer`] processing every block
/// itself, reporting a per-device breakdown with exactly one entry.
///
/// ```
/// use beamform::{Beamformer, BeamformerConfig, Engine, SingleEngine, WeightMatrix};
/// use ccglib::matrix::HostComplexMatrix;
/// use gpu_sim::Gpu;
/// use tcbf_types::Complex;
///
/// let weights = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
///     Complex::from_polar(1.0 / 16.0, (b * r) as f32 * 0.1)
/// }));
/// let beamformer = Beamformer::new(
///     &Gpu::A100.device(), weights, 8, BeamformerConfig::float16(),
/// ).unwrap();
/// let mut engine = SingleEngine::new(beamformer).unwrap();
/// let block = HostComplexMatrix::from_fn(16, 8, |r, s| Complex::new(r as f32 * 0.1, s as f32));
/// engine.process_batch(&[&block, &block]).unwrap();
/// let report = engine.finish();
/// assert_eq!(report.total_blocks(), 2);
/// assert_eq!(report.per_device().len(), 1);
/// ```
pub struct SingleEngine {
    inner: Beamformer,
    gpu: Gpu,
    report: SessionReport,
    weight_swaps: usize,
}

impl SingleEngine {
    /// Wraps a beamformer as an engine.  The beamformer must be a batch-1
    /// configuration: engines stream whole blocks, one per execution.
    pub fn new(inner: Beamformer) -> ccglib::Result<Self> {
        if inner.config().batch != 1 {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: "batch 1 (streaming engines process one block per execution)".to_string(),
                actual: format!("batch {}", inner.config().batch),
            });
        }
        let gpu = inner.device().gpu();
        Ok(SingleEngine {
            inner,
            gpu,
            report: SessionReport::default(),
            weight_swaps: 0,
        })
    }

    /// The beamformer driving this engine.
    pub fn beamformer(&self) -> &Beamformer {
        &self.inner
    }
}

impl std::fmt::Debug for SingleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleEngine")
            .field("gpu", &self.gpu)
            .field("shape", &self.inner.shape())
            .finish_non_exhaustive()
    }
}

impl Engine for SingleEngine {
    fn topology(&self) -> Topology {
        Topology::Single(self.gpu)
    }

    fn plan(&self, blocks: usize) -> ShardPlan {
        ShardPlan::new(ShardPolicy::RoundRobin, &[1.0], blocks)
    }

    fn process_batch(
        &mut self,
        blocks: &[&HostComplexMatrix],
    ) -> ccglib::Result<Vec<BeamformOutput>> {
        let ops = self.inner.shape().complex_ops() as f64;
        let mut outputs = Vec::with_capacity(blocks.len());
        for block in blocks {
            let output = self.inner.beamform(block)?;
            self.report.record(&output.report, ops, 1);
            outputs.push(output);
        }
        Ok(outputs)
    }

    fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        self.inner.set_weights(weights)?;
        self.weight_swaps += 1;
        Ok(())
    }

    fn report(&self) -> Report {
        Report::new(
            vec![DeviceShardReport {
                gpu: self.gpu,
                report: self.report,
            }],
            self.weight_swaps,
        )
    }

    fn finish(&mut self) -> Report {
        let report = self.report();
        self.report = SessionReport::default();
        self.weight_swaps = 0;
        report
    }
}

/// A consistent cut of a [`Session`]'s stream position, sufficient to
/// resume the stream on a *different* engine after the original one fails.
///
/// The checkpoint pins three things: how many blocks of the stream have
/// completed (`completed_blocks`, the cursor), which version of the beam
/// weights was active (`weights_version`, incremented on every successful
/// hot-swap), and the global indices of the blocks that were in flight
/// when the last `process_batch` failed (`pending`).  Replaying exactly
/// the `pending` blocks on a healthy engine carrying the same weights
/// version completes the stream bit-identically — functional outputs are
/// device-independent, so *where* a block finally executes never changes
/// its numbers.  This is the unit `tcbf-serve` replays when it quarantines
/// a faulted engine.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Blocks of the stream completed before the cut.
    pub completed_blocks: u64,
    /// Number of successful weight hot-swaps before the cut; the resuming
    /// engine must carry weights of this version.
    pub weights_version: u64,
    /// Global stream indices in flight when the cut was taken (empty if
    /// the session was between batches).
    pub pending: Vec<u64>,
}

impl SessionCheckpoint {
    /// True when nothing was in flight at the cut: resuming means simply
    /// continuing the stream from [`SessionCheckpoint::completed_blocks`].
    pub fn is_clean(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A streaming session over any [`Engine`]: the one session type for every
/// topology, replacing the former `BeamformSession`/`ShardedSession` pair.
///
/// The session is a thin ergonomic layer — block-at-a-time processing,
/// borrow-friendly batch submission, weight hot-swap — over the engine,
/// which owns the [`Report`] accumulation.  It also tracks its stream
/// position (block cursor, weights version, in-flight blocks), so at any
/// point — in particular after a `process_batch` error — it can emit a
/// [`SessionCheckpoint`] from which [`Session::resume`] continues the
/// stream on a replacement engine.
///
/// ```
/// use beamform::{Beamformer, BeamformerConfig, Session, SingleEngine, WeightMatrix};
/// use ccglib::matrix::HostComplexMatrix;
/// use gpu_sim::Gpu;
/// use tcbf_types::Complex;
///
/// let weights = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
///     Complex::from_polar(1.0 / 16.0, (b * r) as f32 * 0.1)
/// }));
/// let beamformer = Beamformer::new(
///     &Gpu::A100.device(), weights, 8, BeamformerConfig::float16(),
/// ).unwrap();
/// let mut session = Session::new(SingleEngine::new(beamformer).unwrap());
/// let block = HostComplexMatrix::from_fn(16, 8, |r, s| Complex::new(r as f32 * 0.1, s as f32));
/// for _ in 0..3 {
///     session.process_block(&block).unwrap();
/// }
/// let report = session.finish();
/// assert_eq!(report.total_blocks(), 3);
/// assert!(report.aggregate_tops() > 0.0);
/// ```
pub struct Session<E: Engine> {
    engine: E,
    /// Global index of the next unprocessed block of the stream.
    cursor: u64,
    /// Successful weight hot-swaps so far.
    weights_version: u64,
    /// Global indices submitted to the engine by a `process_batch` call
    /// that has not (yet) succeeded; empty between batches.
    pending: Vec<u64>,
}

/// A session over a boxed engine of any topology — what
/// `tcbf::BeamformerBuilder::build_engine()` pairs with.
pub type DynSession = Session<Box<dyn Engine>>;

impl<E: Engine> Session<E> {
    /// Starts a session on an engine.  A session's report covers exactly
    /// the session: any accumulation left on the engine (e.g. blocks
    /// processed or weights re-steered before the session started) is
    /// discarded here.
    pub fn new(mut engine: E) -> Self {
        let _ = engine.finish();
        Session {
            engine,
            cursor: 0,
            weights_version: 0,
            pending: Vec::new(),
        }
    }

    /// Resumes a checkpointed stream on a (typically different) engine.
    ///
    /// The engine's stale accumulation is discarded, the stream position
    /// is restored from the checkpoint, and the caller replays exactly
    /// the checkpoint's `pending` blocks (if any) before continuing.  The
    /// engine must already carry weights matching the checkpoint's
    /// `weights_version` — the session cannot reconstruct weight
    /// matrices, only count swaps.
    pub fn resume(mut engine: E, checkpoint: &SessionCheckpoint) -> Self {
        let _ = engine.finish();
        Session {
            engine,
            cursor: checkpoint.completed_blocks,
            weights_version: checkpoint.weights_version,
            pending: checkpoint.pending.clone(),
        }
    }

    /// A consistent cut of the current stream position.  After a failed
    /// `process_batch` the checkpoint's `pending` lists the blocks of the
    /// failed batch, so replaying them on a healthy engine completes the
    /// stream without gaps or duplicates.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            completed_blocks: self.cursor,
            weights_version: self.weights_version,
            pending: self.pending.clone(),
        }
    }

    /// Blocks of the stream completed so far.
    pub fn completed_blocks(&self) -> u64 {
        self.cursor
    }

    /// Number of successful weight hot-swaps so far.
    pub fn weights_version(&self) -> u64 {
        self.weights_version
    }

    /// The engine driving this session.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine (e.g. for implementation-specific
    /// introspection).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Processes one `K × N` block of sensor samples.
    pub fn process_block(&mut self, block: &HostComplexMatrix) -> ccglib::Result<BeamformOutput> {
        let mut outputs = self.process_batch(&[block])?;
        outputs
            .pop()
            .ok_or_else(|| ccglib::CcglibError::InvalidParameters {
                reason: "engine returned no output for a one-block batch".into(),
            })
    }

    /// Processes one batch of sample blocks (owned matrices or references
    /// both work), returning the per-block outputs in input order.  Blocks
    /// already processed by earlier calls stay accounted in the report.
    pub fn process_batch<B>(&mut self, blocks: &[B]) -> ccglib::Result<Vec<BeamformOutput>>
    where
        B: Borrow<HostComplexMatrix>,
    {
        let refs: Vec<&HostComplexMatrix> = blocks.iter().map(Borrow::borrow).collect();
        self.pending = (self.cursor..self.cursor + blocks.len() as u64).collect();
        let outputs = self.engine.process_batch(&refs)?;
        self.cursor += blocks.len() as u64;
        self.pending.clear();
        Ok(outputs)
    }

    /// Hot-swaps the beam weights on every device of the engine; the next
    /// processed block anywhere uses the new weights.  Each successful
    /// swap advances [`Session::weights_version`].
    pub fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        self.engine.swap_weights(weights)?;
        self.weights_version += 1;
        Ok(())
    }

    /// The report accumulated so far.
    pub fn report(&self) -> Report {
        self.engine.report()
    }

    /// Ends the session, returning the final report.
    pub fn finish(mut self) -> Report {
        self.engine.finish()
    }

    /// Dissolves the session back into its engine (the accumulated report
    /// stays on the engine).
    pub fn into_engine(self) -> E {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beamformer::BeamformerConfig;
    use crate::shard::ShardedBeamformer;
    use gpu_sim::DevicePool;
    use tcbf_types::Complex;

    fn weights(beams: usize, receivers: usize) -> WeightMatrix {
        WeightMatrix::from_matrix(HostComplexMatrix::from_fn(beams, receivers, |b, r| {
            Complex::from_polar(1.0 / receivers as f32, (b * r) as f32 * 0.03)
        }))
    }

    fn block(receivers: usize, samples: usize, seed: usize) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(receivers, samples, |r, s| {
            Complex::new(
                ((r + s + seed) % 7) as f32 * 0.1 - 0.3,
                ((r * 3 + s + seed) % 5) as f32 * 0.1,
            )
        })
    }

    fn single_engine(gpu: Gpu) -> SingleEngine {
        SingleEngine::new(
            Beamformer::new(
                &gpu.device(),
                weights(4, 16),
                8,
                BeamformerConfig::float16(),
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn pool_engine(gpus: &[Gpu]) -> ShardedBeamformer {
        ShardedBeamformer::new(
            &DevicePool::from_gpus(gpus),
            weights(4, 16),
            8,
            BeamformerConfig::float16(),
            ShardPolicy::RoundRobin,
        )
        .unwrap()
    }

    #[test]
    fn single_engine_embeds_its_metrics_in_a_one_device_breakdown() {
        let mut engine = single_engine(Gpu::A100);
        let blocks: Vec<HostComplexMatrix> = (0..4).map(|i| block(16, 8, i)).collect();
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        let outputs = engine.process_batch(&refs).unwrap();
        assert_eq!(outputs.len(), 4);
        let report = engine.report();
        assert_eq!(report.per_device().len(), 1);
        assert_eq!(report.per_device()[0].gpu, Gpu::A100);
        assert_eq!(report.total_blocks(), 4);
        // One device: wall clock == its serial kernel time, speed-up 1.0,
        // aggregate == the device's aggregate.
        let serial = report.merged_serial();
        assert_eq!(report.wall_clock_s(), serial.total_elapsed_s);
        assert!((report.speedup_over_serial() - 1.0).abs() < 1e-12);
        assert!((report.aggregate_tops() - serial.aggregate_tops()).abs() < 1e-12);
        assert_eq!(report.straggler(), Some(0));
    }

    #[test]
    fn single_engine_rejects_batched_beamformers() {
        let config = BeamformerConfig {
            batch: 3,
            ..BeamformerConfig::float16()
        };
        let beamformer = Beamformer::new(&Gpu::A100.device(), weights(4, 16), 8, config).unwrap();
        let err = SingleEngine::new(beamformer).unwrap_err();
        assert!(err.to_string().contains("batch 1"));
    }

    #[test]
    fn engine_trait_is_object_safe_across_topologies() {
        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(single_engine(Gpu::A100)),
            Box::new(pool_engine(&[Gpu::A100, Gpu::Gh200])),
        ];
        let blocks: Vec<HostComplexMatrix> = (0..5).map(|i| block(16, 8, i)).collect();
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        let mut all = Vec::new();
        for engine in &mut engines {
            // Introspection through the trait object.
            let plan = engine.plan(blocks.len());
            assert_eq!(plan.num_devices(), engine.topology().num_devices());
            all.push(engine.process_batch(&refs).unwrap());
            assert_eq!(engine.report().total_blocks(), 5);
        }
        // Topology is a scheduling decision only: identical outputs.
        for (a, b) in all[0].iter().zip(&all[1]) {
            assert_eq!(a.beams, b.beams);
        }
        assert_eq!(engines[0].topology(), Topology::Single(Gpu::A100));
        assert!(engines[1].topology().is_sharded());
        assert_eq!(
            engines[1].topology().policy(),
            Some(ShardPolicy::RoundRobin)
        );
        assert_eq!(engines[0].topology().policy(), None);
    }

    #[test]
    fn session_is_generic_over_the_engine_and_counts_swaps() {
        let run = |mut session: DynSession| -> (Vec<BeamformOutput>, Report) {
            let blocks: Vec<HostComplexMatrix> = (0..4).map(|i| block(16, 8, i)).collect();
            let before = session.process_batch(&blocks).unwrap();
            session.swap_weights(weights(4, 16)).unwrap();
            let mut outputs = before;
            outputs.extend(session.process_batch(&blocks).unwrap());
            (outputs, session.finish())
        };
        let (single_out, single_report) = run(Session::new(Box::new(single_engine(Gpu::A100))));
        let (pool_out, pool_report) =
            run(Session::new(Box::new(pool_engine(&[Gpu::A100, Gpu::A100]))));
        for (s, p) in single_out.iter().zip(&pool_out) {
            assert_eq!(s.beams, p.beams);
        }
        for report in [&single_report, &pool_report] {
            assert_eq!(report.total_blocks(), 8);
            assert_eq!(report.weight_swaps(), 1);
            assert_eq!(report.merged_serial().weight_swaps, 1);
        }
        assert_eq!(single_report.per_device().len(), 1);
        assert_eq!(pool_report.per_device().len(), 2);
    }

    #[test]
    fn finish_resets_the_engine_for_a_fresh_run() {
        let mut engine = single_engine(Gpu::Gh200);
        let b = block(16, 8, 0);
        engine.process_batch(&[&b]).unwrap();
        engine.swap_weights(weights(4, 16)).unwrap();
        let first = engine.finish();
        assert_eq!(first.total_blocks(), 1);
        assert_eq!(first.weight_swaps(), 1);
        // The next run starts from zero.
        assert_eq!(engine.report().total_blocks(), 0);
        assert_eq!(engine.report().weight_swaps(), 0);
        engine.process_batch(&[&b, &b]).unwrap();
        let second = engine.finish();
        assert_eq!(second.total_blocks(), 2);
        assert_eq!(second.weight_swaps(), 0);
    }

    #[test]
    fn throughput_metrics_agree_between_report_flavours() {
        let mut engine = single_engine(Gpu::A100);
        let blocks: Vec<HostComplexMatrix> = (0..3).map(|i| block(16, 8, i)).collect();
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        engine.process_batch(&refs).unwrap();
        let report = engine.report();
        let serial = report.merged_serial();
        // The trait and the inherent accessors agree on both types.
        fn metrics<M: ThroughputMetrics>(m: &M) -> [f64; 5] {
            [
                m.worst_tops(),
                m.mean_tops(),
                m.best_tops(),
                m.tops_per_joule(),
                m.effective_fps(),
            ]
        }
        assert_eq!(metrics(&report), metrics(&serial));
        assert_eq!(report.worst_tops(), serial.worst_tops());
        assert_eq!(report.effective_fps(), serial.effective_fps());
    }

    #[test]
    fn report_latency_percentiles_merge_across_devices() {
        let mut engine = pool_engine(&[Gpu::A100, Gpu::Gh200]);
        let blocks: Vec<HostComplexMatrix> = (0..6).map(|i| block(16, 8, i)).collect();
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        engine.process_batch(&refs).unwrap();
        let report = engine.report();
        // One histogram sample per execution, across every member.
        let executions: usize = report
            .per_device()
            .iter()
            .map(|s| s.report.executions)
            .sum();
        assert_eq!(report.latency().count() as usize, executions);
        assert_eq!(
            report.latency().count(),
            report.merged_serial().latency().count()
        );
        assert!(report.p50_latency_s() > 0.0);
        assert!(report.p50_latency_s() <= report.p95_latency_s());
        assert!(report.p95_latency_s() <= report.p99_latency_s());
    }

    #[test]
    fn session_checkpoints_track_cursor_swaps_and_pending() {
        let mut session = Session::new(single_engine(Gpu::A100));
        assert_eq!(session.checkpoint(), SessionCheckpoint::default());
        let blocks: Vec<HostComplexMatrix> = (0..3).map(|i| block(16, 8, i)).collect();
        session.process_batch(&blocks).unwrap();
        session.swap_weights(weights(4, 16)).unwrap();
        session.process_block(&blocks[0]).unwrap();
        let cut = session.checkpoint();
        assert_eq!(cut.completed_blocks, 4);
        assert_eq!(cut.weights_version, 1);
        assert!(cut.is_clean());
        // A rejected swap does not advance the version.
        assert!(session.swap_weights(weights(5, 16)).is_err());
        assert_eq!(session.checkpoint().weights_version, 1);
    }

    #[test]
    fn failed_batches_leave_their_blocks_pending_for_resume() {
        let mut session = Session::new(single_engine(Gpu::A100));
        let good: Vec<HostComplexMatrix> = (0..2).map(|i| block(16, 8, i)).collect();
        session.process_batch(&good).unwrap();
        // Wrong receiver count: the batch fails, the cursor stays put and
        // the failed indices become pending.
        let bad = [block(7, 8, 0)];
        assert!(session.process_batch(&bad).is_err());
        let cut = session.checkpoint();
        assert_eq!(cut.completed_blocks, 2);
        assert_eq!(cut.pending, vec![2]);
        assert!(!cut.is_clean());
        // Resume on a fresh engine: position restored, replay completes
        // the stream, outputs match an uninterrupted run.
        let mut resumed = Session::resume(single_engine(Gpu::A100), &cut);
        assert_eq!(resumed.completed_blocks(), 2);
        assert_eq!(resumed.checkpoint().pending, vec![2]);
        let replay = [block(16, 8, 2)];
        let outputs = resumed.process_batch(&replay).unwrap();
        assert!(resumed.checkpoint().is_clean());
        assert_eq!(resumed.completed_blocks(), 3);
        let mut reference = Session::new(single_engine(Gpu::A100));
        let expected = reference.process_block(&replay[0]).unwrap();
        assert_eq!(outputs[0].beams, expected.beams);
    }

    #[test]
    fn report_merging_ignores_devices_with_zero_blocks() {
        // A pool where one member contributed nothing (e.g. it was lost
        // before the run, or the plan gave it no blocks) must not poison
        // the merged metrics with empty-report extremes.
        let mut engine = single_engine(Gpu::A100);
        let b = block(16, 8, 0);
        engine.process_batch(&[&b, &b]).unwrap();
        let active = engine.report().per_device()[0].clone();
        let idle = DeviceShardReport {
            gpu: Gpu::Gh200,
            report: SessionReport::default(),
        };
        let with_idle = Report::new(vec![active.clone(), idle], 0);
        let without = Report::new(vec![active], 0);
        assert_eq!(with_idle.total_blocks(), without.total_blocks());
        assert_eq!(with_idle.merged_serial(), without.merged_serial());
        assert_eq!(with_idle.aggregate_tops(), without.aggregate_tops());
        assert_eq!(with_idle.wall_clock_s(), without.wall_clock_s());
        assert_eq!(with_idle.worst_tops(), without.worst_tops());
        assert_eq!(with_idle.mean_tops(), without.mean_tops());
        assert_eq!(with_idle.p99_latency_s(), without.p99_latency_s());
        assert_eq!(with_idle.straggler(), Some(0));
    }

    #[test]
    fn empty_engine_reports_finite_zeros() {
        let engine = single_engine(Gpu::A100);
        let report = engine.report();
        assert_eq!(report.total_blocks(), 0);
        for metric in [
            report.aggregate_tops(),
            report.wall_clock_s(),
            report.effective_fps(),
            report.tops_per_joule(),
            report.speedup_over_serial(),
            report.worst_tops(),
            report.mean_tops(),
            report.best_tops(),
        ] {
            assert_eq!(metric, 0.0);
            assert!(metric.is_finite());
        }
    }
}
