//! Sensor-array geometries and geometric delays.
//!
//! The delay of sensor `k` for a far-field plane wave arriving from angle
//! `θ` is `τ_k = d_k sin θ / c` (Eq. 2 of the paper), with `d_k` the sensor
//! position along the array axis and `c` the propagation speed of the
//! medium (the speed of light for radio waves, the speed of sound for
//! acoustic waves).  Near-field (spherical-wavefront) delays are also
//! provided, as the ultrasound application images sources centimetres from
//! the probe.

use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;
/// Speed of sound in water, m/s (ultrasound coupling medium).
pub const SPEED_OF_SOUND_WATER: f64 = 1480.0;
/// Speed of sound in soft tissue, m/s (the usual ultrasound assumption).
pub const SPEED_OF_SOUND_TISSUE: f64 = 1540.0;

/// Positions of the sensors of an array, in metres.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Sensor positions as (x, y, z) triples.
    positions: Vec<[f64; 3]>,
    /// Propagation speed of the medium in m/s.
    wave_speed: f64,
}

impl ArrayGeometry {
    /// Creates a geometry from explicit positions.
    pub fn new(positions: Vec<[f64; 3]>, wave_speed: f64) -> Self {
        assert!(wave_speed > 0.0, "wave speed must be positive");
        assert!(!positions.is_empty(), "an array needs at least one sensor");
        ArrayGeometry {
            positions,
            wave_speed,
        }
    }

    /// A uniform linear array of `n` sensors spaced `spacing` metres apart
    /// along the x axis, centred on the origin.
    pub fn uniform_linear(n: usize, spacing: f64, wave_speed: f64) -> Self {
        assert!(n > 0);
        let centre = (n as f64 - 1.0) / 2.0;
        let positions = (0..n)
            .map(|k| [(k as f64 - centre) * spacing, 0.0, 0.0])
            .collect();
        ArrayGeometry::new(positions, wave_speed)
    }

    /// A uniform planar (rectangular) array of `nx × ny` sensors in the
    /// z = 0 plane.
    pub fn uniform_planar(nx: usize, ny: usize, spacing: f64, wave_speed: f64) -> Self {
        assert!(nx > 0 && ny > 0);
        let cx = (nx as f64 - 1.0) / 2.0;
        let cy = (ny as f64 - 1.0) / 2.0;
        let mut positions = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                positions.push([(ix as f64 - cx) * spacing, (iy as f64 - cy) * spacing, 0.0]);
            }
        }
        ArrayGeometry::new(positions, wave_speed)
    }

    /// Number of sensors (the `K` of the GEMM mapping).
    pub fn num_sensors(&self) -> usize {
        self.positions.len()
    }

    /// Sensor positions.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.positions
    }

    /// Propagation speed in the medium.
    pub fn wave_speed(&self) -> f64 {
        self.wave_speed
    }

    /// Far-field delay of every sensor for a plane wave arriving from
    /// `azimuth` (radians, measured from broadside in the x–z plane):
    /// `τ_k = x_k sin θ / c` (Eq. 2).
    pub fn far_field_delays(&self, azimuth: f64) -> Vec<f64> {
        self.positions
            .iter()
            .map(|p| p[0] * azimuth.sin() / self.wave_speed)
            .collect()
    }

    /// Near-field delays for a point source at `source` (metres): the
    /// propagation time from the source to each sensor, relative to the
    /// propagation time to the array origin.
    pub fn near_field_delays(&self, source: [f64; 3]) -> Vec<f64> {
        let origin_distance =
            (source[0] * source[0] + source[1] * source[1] + source[2] * source[2]).sqrt();
        self.positions
            .iter()
            .map(|p| {
                let dx = source[0] - p[0];
                let dy = source[1] - p[1];
                let dz = source[2] - p[2];
                let d = (dx * dx + dy * dy + dz * dz).sqrt();
                (d - origin_distance) / self.wave_speed
            })
            .collect()
    }

    /// Aperture of the array: largest pairwise sensor distance, in metres.
    pub fn aperture(&self) -> f64 {
        let mut max = 0.0f64;
        for (i, a) in self.positions.iter().enumerate() {
            for b in &self.positions[i + 1..] {
                let d =
                    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
                max = max.max(d);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_array_is_centred_and_spaced() {
        let array = ArrayGeometry::uniform_linear(5, 0.5, SPEED_OF_LIGHT);
        assert_eq!(array.num_sensors(), 5);
        assert_eq!(array.positions()[2], [0.0, 0.0, 0.0]);
        assert_eq!(array.positions()[0][0], -1.0);
        assert_eq!(array.positions()[4][0], 1.0);
        assert!((array.aperture() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn planar_array_size() {
        let array = ArrayGeometry::uniform_planar(8, 8, 0.001, SPEED_OF_SOUND_TISSUE);
        assert_eq!(array.num_sensors(), 64);
        // Centred: the mean position is the origin.
        let mean_x: f64 =
            array.positions().iter().map(|p| p[0]).sum::<f64>() / array.num_sensors() as f64;
        assert!(mean_x.abs() < 1e-12);
    }

    #[test]
    fn broadside_plane_wave_has_zero_delays() {
        let array = ArrayGeometry::uniform_linear(16, 1.0, SPEED_OF_LIGHT);
        let delays = array.far_field_delays(0.0);
        assert!(delays.iter().all(|&d| d.abs() < 1e-18));
    }

    #[test]
    fn endfire_delays_match_hand_computation() {
        // θ = 90°: τ_k = x_k / c.
        let array = ArrayGeometry::uniform_linear(3, 30.0, SPEED_OF_LIGHT);
        let delays = array.far_field_delays(std::f64::consts::FRAC_PI_2);
        assert!((delays[0] - (-30.0 / SPEED_OF_LIGHT)).abs() < 1e-15);
        assert!((delays[2] - (30.0 / SPEED_OF_LIGHT)).abs() < 1e-15);
    }

    #[test]
    fn near_field_delays_relative_to_origin() {
        let array = ArrayGeometry::uniform_linear(3, 0.01, SPEED_OF_SOUND_TISSUE);
        // A source on the z axis is equidistant from symmetric sensors.
        let delays = array.near_field_delays([0.0, 0.0, 0.05]);
        assert!((delays[0] - delays[2]).abs() < 1e-15);
        // The centre sensor is at the origin, so its relative delay is zero.
        assert!(delays[1].abs() < 1e-15);
        // Off-axis sensors are farther away, so their delays are positive.
        assert!(delays[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "wave speed must be positive")]
    fn invalid_wave_speed_panics() {
        ArrayGeometry::new(vec![[0.0; 3]], 0.0);
    }

    proptest! {
        #[test]
        fn delays_are_bounded_by_aperture(n in 2usize..32, spacing in 1e-3f64..1.0, angle in -1.5f64..1.5) {
            let array = ArrayGeometry::uniform_linear(n, spacing, SPEED_OF_LIGHT);
            let delays = array.far_field_delays(angle);
            let bound = array.aperture() / SPEED_OF_LIGHT;
            for d in delays {
                prop_assert!(d.abs() <= bound + 1e-18);
            }
        }

        #[test]
        fn far_field_delay_is_antisymmetric_in_angle(angle in -1.5f64..1.5) {
            let array = ArrayGeometry::uniform_linear(9, 0.1, SPEED_OF_SOUND_WATER);
            let pos = array.far_field_delays(angle);
            let neg = array.far_field_delays(-angle);
            for (a, b) in pos.iter().zip(&neg) {
                prop_assert!((a + b).abs() < 1e-15);
            }
        }
    }
}
