//! Fixed-bucket log2 latency histogram.
//!
//! Production reports need tail latency — p95/p99 block latency — not
//! just the mean, and a fleet of engines needs to *merge* per-worker
//! distributions without shipping raw samples around.  Both rule out
//! storing samples: a [`LatencyHistogram`] is a fixed array of 64
//! power-of-two buckets over nanoseconds, so recording is O(1), the
//! memory footprint is constant (and `Copy`), and merging two histograms
//! is a bucket-wise sum — exact, commutative and associative.
//!
//! Percentiles are read back conservatively as the *upper edge* of the
//! bucket containing the requested rank: the reported p99 is an upper
//! bound on the true p99 that is at most 2× off, which is the standard
//! trade-off of log2 bucketing (HdrHistogram-style, one significant
//! digit).

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket `i` covers `[2^i, 2^{i+1})` nanoseconds
/// (bucket 0 also absorbs sub-nanosecond samples), so 64 buckets span
/// everything a `u64` nanosecond count can express — from 1 ns to ~584
/// years.
pub const LATENCY_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of latencies in nanoseconds.
///
/// ```
/// use beamform::LatencyHistogram;
///
/// let mut hist = LatencyHistogram::new();
/// for us in [10.0, 12.0, 15.0, 900.0] {
///     hist.record_s(us * 1e-6);
/// }
/// assert_eq!(hist.count(), 4);
/// // Three of four samples land below 16.384 µs; the straggler drives
/// // the tail.
/// assert!(hist.p50_s() < 20e-6);
/// assert!(hist.p99_s() > 500e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    count: u64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a nanosecond latency falls into.
    #[inline]
    fn bucket_of(nanos: u64) -> usize {
        if nanos <= 1 {
            0
        } else {
            (nanos.ilog2() as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Records one latency given in nanoseconds.  Counts saturate at
    /// `u64::MAX` instead of wrapping, so a histogram that has absorbed
    /// absurd totals degrades to a pinned tail rather than corrupting.
    #[inline]
    pub fn record_ns(&mut self, nanos: u64) {
        let bucket = &mut self.buckets[Self::bucket_of(nanos)];
        *bucket = bucket.saturating_add(1);
        self.count = self.count.saturating_add(1);
    }

    /// Records one latency given in seconds.  Negative and non-finite
    /// values clamp to the bottom and top buckets respectively.
    pub fn record_s(&mut self, seconds: f64) {
        let nanos = if seconds.is_finite() {
            (seconds * 1e9).clamp(0.0, u64::MAX as f64) as u64
        } else if seconds > 0.0 {
            u64::MAX
        } else {
            0
        };
        self.record_ns(nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket counts (bucket `i` covers `[2^i, 2^{i+1})` ns).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Merges another histogram into this one (bucket-wise sum): the
    /// result is exactly the histogram of the union of both sample sets,
    /// so fleet-wide aggregation is commutative and associative.  Bucket
    /// counts and the total saturate at `u64::MAX` instead of wrapping.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.count = self.count.saturating_add(other.count);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// The upper edge of bucket `i` in seconds.
    fn bucket_upper_s(index: usize) -> f64 {
        // Bucket i covers [2^i, 2^{i+1}) ns; report the exclusive upper
        // edge so the estimate bounds the true percentile from above.
        2f64.powi(index as i32 + 1) * 1e-9
    }

    /// The latency (in seconds) below which `quantile` (in `[0, 1]`) of
    /// the recorded samples fall, as the conservative upper edge of the
    /// containing bucket.  Returns 0.0 for an empty histogram.
    pub fn percentile_s(&self, quantile: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let quantile = quantile.clamp(0.0, 1.0);
        // Rank of the sample that decides the percentile (1-based,
        // nearest-rank definition); at least the first sample.
        let target = ((quantile * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return Self::bucket_upper_s(index);
            }
        }
        Self::bucket_upper_s(LATENCY_BUCKETS - 1)
    }

    /// Median latency in seconds (bucket upper edge; 0.0 when empty).
    pub fn p50_s(&self) -> f64 {
        self.percentile_s(0.50)
    }

    /// 95th-percentile latency in seconds (bucket upper edge; 0.0 when
    /// empty).
    pub fn p95_s(&self) -> f64 {
        self.percentile_s(0.95)
    }

    /// 99th-percentile latency in seconds (bucket upper edge; 0.0 when
    /// empty).
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_finite_zeros() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert!(hist.is_empty());
        for quantile in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let p = hist.percentile_s(quantile);
            assert_eq!(p, 0.0);
            assert!(p.is_finite());
        }
    }

    #[test]
    fn single_sample_decides_every_percentile() {
        let mut hist = LatencyHistogram::new();
        hist.record_s(3e-6); // 3000 ns -> bucket 11 [2048, 4096) ns
        assert_eq!(hist.count(), 1);
        let upper = 4096e-9;
        for quantile in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert!((hist.percentile_s(quantile) - upper).abs() < 1e-15);
        }
        // The estimate bounds the true value from above, within 2x.
        assert!(hist.p99_s() >= 3e-6);
        assert!(hist.p99_s() <= 2.0 * 3e-6);
    }

    #[test]
    fn merge_is_commutative_and_counts_add() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [100u64, 2_000, 2_500, 1 << 20] {
            a.record_ns(ns);
        }
        for ns in [1u64, 50_000, 1 << 30] {
            b.record_ns(ns);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), a.count() + b.count());
        // Merging is exactly the histogram of the union.
        let mut union = LatencyHistogram::new();
        for ns in [100u64, 2_000, 2_500, 1 << 20, 1, 50_000, 1 << 30] {
            union.record_ns(ns);
        }
        assert_eq!(ab, union);
        // Merging an empty histogram is the identity.
        let mut with_empty = ab;
        with_empty.merge(&LatencyHistogram::new());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn percentiles_are_monotonic_in_the_quantile() {
        let mut hist = LatencyHistogram::new();
        for i in 0..1000u64 {
            hist.record_ns(i * i + 1);
        }
        let mut last = 0.0;
        for q in 0..=100 {
            let p = hist.percentile_s(q as f64 / 100.0);
            assert!(p >= last, "percentile must not decrease");
            last = p;
        }
        assert!(hist.p50_s() <= hist.p95_s());
        assert!(hist.p95_s() <= hist.p99_s());
    }

    #[test]
    fn extreme_samples_clamp_into_the_edge_buckets() {
        let mut hist = LatencyHistogram::new();
        hist.record_s(-1.0); // clamps to bucket 0
        hist.record_s(0.0);
        hist.record_s(f64::INFINITY); // clamps to the top bucket
        hist.record_s(f64::NAN); // non-finite, non-positive: bottom
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.buckets()[0], 3);
        assert_eq!(hist.buckets()[LATENCY_BUCKETS - 1], 1);
        assert!(hist.percentile_s(1.0).is_finite());
    }

    #[test]
    fn merging_an_empty_operand_in_either_direction_is_the_identity() {
        let mut samples = LatencyHistogram::new();
        for ns in [10u64, 3_000, 1 << 22] {
            samples.record_ns(ns);
        }
        // Non-empty <- empty.
        let mut lhs = samples;
        lhs.merge(&LatencyHistogram::new());
        assert_eq!(lhs, samples);
        // Empty <- non-empty.
        let mut rhs = LatencyHistogram::new();
        rhs.merge(&samples);
        assert_eq!(rhs, samples);
        // Empty <- empty.
        let mut both = LatencyHistogram::new();
        both.merge(&LatencyHistogram::new());
        assert!(both.is_empty());
        assert_eq!(both.percentile_s(0.99), 0.0);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        // A histogram whose bucket 0 and total are pinned at u64::MAX.
        let mut saturated = LatencyHistogram::new();
        saturated.record_ns(1);
        let mut pinned = saturated;
        pinned.merge(&saturated);
        // Force the extreme directly through repeated self-merges: each
        // merge doubles (with saturation), so 64 rounds pin the counts.
        for _ in 0..64 {
            let copy = pinned;
            pinned.merge(&copy);
        }
        assert_eq!(pinned.count(), u64::MAX);
        assert_eq!(pinned.buckets()[0], u64::MAX);
        // Merging more samples on top neither wraps nor panics.
        pinned.merge(&saturated);
        assert_eq!(pinned.count(), u64::MAX);
        assert_eq!(pinned.buckets()[0], u64::MAX);
        // Recording on a saturated histogram also saturates.
        pinned.record_ns(1);
        assert_eq!(pinned.count(), u64::MAX);
        // Percentiles stay finite and sane.
        assert!(pinned.percentile_s(0.99).is_finite());
        assert!((pinned.p50_s() - 2e-9).abs() < 1e-18);
        // The saturated operand can also be the right-hand side of a
        // merge into a small histogram.
        let mut small = LatencyHistogram::new();
        small.record_ns(1 << 40);
        small.merge(&pinned);
        assert_eq!(small.count(), u64::MAX);
        assert_eq!(small.buckets()[40], 1);
    }

    #[test]
    fn nearest_rank_picks_the_right_bucket() {
        let mut hist = LatencyHistogram::new();
        // 98 samples in [1024, 2048) ns, 2 in [1, 2) microseconds above.
        for _ in 0..98 {
            hist.record_ns(1500);
        }
        hist.record_ns(1_000_000);
        hist.record_ns(1_500_000);
        assert!((hist.p50_s() - 2048e-9).abs() < 1e-15);
        assert!((hist.p95_s() - 2048e-9).abs() < 1e-15);
        // Rank ceil(0.99 * 100) = 99: the first straggler.
        assert!(hist.p99_s() > 1e-3 * 0.9);
    }
}
