//! Domain-independent beamforming on top of ccglib.
//!
//! Section II of the paper: an array of `K` sensors receives a plane wave
//! from direction `θ`; each sensor sees the signal delayed by
//! `τ_k = d_k · sin θ / c`.  Beamforming multiplies the sensor samples by
//! complex weights that undo those delays and sums over sensors, which —
//! when many beams are formed from the same samples and the weights are
//! constant over a block of samples — is exactly a matrix-matrix
//! multiplication with `M` = beams, `N` = time samples, `K` = receivers.
//!
//! This crate supplies the domain-independent pieces both applications
//! (ultrasound and radio astronomy) share:
//!
//! * [`geometry`] — sensor array geometries and propagation delays;
//! * [`signal`] — synthetic plane-wave signal generation with noise;
//! * [`weights`] — steering-weight computation (Eq. 3) and weight
//!   matrices for many beams;
//! * [`beamformer`] — the mapping onto the ccglib GEMM, a direct
//!   delay-and-sum reference implementation, beam patterns and SNR gain;
//! * [`session`] — streaming sessions: a [`BeamformSession`] consumes a
//!   stream of sample blocks, supports weight hot-swap mid-stream and
//!   accumulates a [`SessionReport`] over the whole run;
//! * [`shard`] — multi-device scale-out: a [`ShardedBeamformer`] spans a
//!   `gpu_sim::DevicePool`, partitions block streams across the members
//!   under a [`ShardPlan`] (round-robin or capacity-weighted) and merges
//!   the per-device reports into a [`ShardedSessionReport`].

#![deny(missing_docs)]

pub mod beamformer;
pub mod geometry;
pub mod session;
pub mod shard;
pub mod signal;
pub mod weights;

pub use beamformer::{BatchBeamformOutput, BeamformOutput, Beamformer, BeamformerConfig};
pub use geometry::{ArrayGeometry, SPEED_OF_LIGHT, SPEED_OF_SOUND_TISSUE, SPEED_OF_SOUND_WATER};
pub use session::{BeamformSession, SessionReport};
pub use shard::{
    DeviceShardReport, ShardPlan, ShardPolicy, ShardedBeamformer, ShardedSession,
    ShardedSessionReport, ShardedStreamOutput,
};
pub use signal::{PlaneWaveSource, SignalGenerator};
pub use weights::{steering_vector, WeightMatrix};
