//! Domain-independent beamforming on top of ccglib.
//!
//! Section II of the paper: an array of `K` sensors receives a plane wave
//! from direction `θ`; each sensor sees the signal delayed by
//! `τ_k = d_k · sin θ / c`.  Beamforming multiplies the sensor samples by
//! complex weights that undo those delays and sums over sensors, which —
//! when many beams are formed from the same samples and the weights are
//! constant over a block of samples — is exactly a matrix-matrix
//! multiplication with `M` = beams, `N` = time samples, `K` = receivers.
//!
//! This crate supplies the domain-independent pieces both applications
//! (ultrasound and radio astronomy) share:
//!
//! * [`geometry`] — sensor array geometries and propagation delays;
//! * [`signal`] — synthetic plane-wave signal generation with noise;
//! * [`weights`] — steering-weight computation (Eq. 3) and weight
//!   matrices for many beams;
//! * [`beamformer`] — the mapping onto the ccglib GEMM, a direct
//!   delay-and-sum reference implementation, beam patterns and SNR gain;
//! * [`engine`] — the unified execution API: one object-safe [`Engine`]
//!   trait spanning every topology, with [`SingleEngine`] (one device) and
//!   [`ShardedBeamformer`] (a device pool) as the implementations, one
//!   generic [`Session<E>`] (alias [`DynSession`] for boxed engines), and
//!   one unified [`Report`] whose per-device breakdown holds exactly one
//!   entry in the single case;
//! * [`latency`] — a fixed-bucket log2 [`LatencyHistogram`] giving every
//!   report p50/p95/p99 per-execution latency with exact fleet-wide
//!   merging;
//! * [`session`] — the per-block accounting primitive [`SessionReport`]
//!   and the legacy [`BeamformSession`] (kept for one release; new code
//!   uses [`Session`]);
//! * [`shard`] — multi-device scale-out: a [`ShardedBeamformer`] spans a
//!   `gpu_sim::DevicePool` and partitions block streams across the
//!   members under a [`ShardPlan`] (round-robin or capacity-weighted).

#![deny(missing_docs)]

pub mod beamformer;
pub mod engine;
pub mod geometry;
pub mod latency;
pub mod session;
pub mod shard;
pub mod signal;
pub mod weights;

pub use beamformer::{BatchBeamformOutput, BeamformOutput, Beamformer, BeamformerConfig};
pub use engine::{
    DeviceShardReport, DynSession, Engine, Report, Session, SessionCheckpoint, SingleEngine,
    ThroughputMetrics, Topology,
};
pub use geometry::{ArrayGeometry, SPEED_OF_LIGHT, SPEED_OF_SOUND_TISSUE, SPEED_OF_SOUND_WATER};
pub use latency::{LatencyHistogram, LATENCY_BUCKETS};
pub use session::{BeamformSession, SessionReport};
pub use shard::{
    ShardPlan, ShardPolicy, ShardedBeamformer, ShardedSession, ShardedSessionReport,
    ShardedStreamOutput,
};
pub use signal::{PlaneWaveSource, SignalGenerator};
pub use weights::{steering_vector, WeightMatrix};
