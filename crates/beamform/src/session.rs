//! Streaming beamforming sessions.
//!
//! The paper evaluates the beamformer as a *pipeline*: continuous blocks
//! of receiver samples flow through the complex GEMM and throughput and
//! energy are reported over the whole run, not per block.  A
//! [`BeamformSession`] owns a [`Beamformer`], consumes sample blocks one
//! at a time (or from an iterator), allows the beam weights to be swapped
//! mid-stream (re-steering without re-planning the kernel), and
//! accumulates a [`SessionReport`] — aggregate, mean and worst-case
//! throughput, total energy and the effective block (frame) rate — on top
//! of the per-block [`RunReport`]s.

use crate::beamformer::{BatchBeamformOutput, BeamformOutput, Beamformer};
use crate::latency::LatencyHistogram;
use crate::weights::WeightMatrix;
use ccglib::matrix::HostComplexMatrix;
use ccglib::RunReport;
use serde::{Deserialize, Serialize};

/// Aggregate performance/energy report of a streaming session.
///
/// All totals are exact sums over the per-block [`RunReport`]s the session
/// observed; the derived metrics (aggregate/mean/worst-case TeraOps/s,
/// TeraOps/J, blocks per second) are computed from those sums.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SessionReport {
    /// Number of blocks processed (each batch element counts as one block).
    pub blocks: usize,
    /// Number of GEMM executions (a batched call is one execution).
    pub executions: usize,
    /// Number of mid-stream weight swaps.
    pub weight_swaps: usize,
    /// Total predicted kernel time in seconds.
    pub total_elapsed_s: f64,
    /// Total energy over all executions in joules.
    pub total_joules: f64,
    /// Total useful operations (the paper's `8·M·N·K` per batch element).
    pub total_useful_ops: f64,
    /// Sum of the per-execution achieved TeraOps/s (for the mean).
    sum_tops: f64,
    /// Worst per-execution achieved TeraOps/s seen so far.
    min_tops: f64,
    /// Best per-execution achieved TeraOps/s seen so far.
    max_tops: f64,
    /// Log2 histogram of per-execution kernel latency.
    latency: LatencyHistogram,
}

impl SessionReport {
    /// Folds one execution covering `blocks` sample blocks into the totals.
    ///
    /// [`BeamformSession`] calls this for every block it processes; it is
    /// public so prediction-driven pipelines (e.g. the ultrasound
    /// frame-rate model, which never materialises data) can accumulate the
    /// same aggregate report from predicted [`RunReport`]s.
    pub fn record(&mut self, report: &RunReport, useful_ops: f64, blocks: usize) {
        if self.executions == 0 {
            self.min_tops = f64::INFINITY;
        }
        self.blocks += blocks;
        self.executions += 1;
        self.total_elapsed_s += report.predicted.elapsed_s;
        self.total_joules += report.energy.joules;
        self.total_useful_ops += useful_ops;
        self.sum_tops += report.achieved_tops;
        self.min_tops = self.min_tops.min(report.achieved_tops);
        self.max_tops = self.max_tops.max(report.achieved_tops);
        self.latency.record_s(report.predicted.elapsed_s);
    }

    /// Folds another report into this one as if its executions had run on
    /// the same device back to back: all totals are summed and the
    /// per-execution extremes are merged.  Used by the sharding layer to
    /// aggregate per-device reports (where *elapsed* sums are the serial
    /// equivalent, not the parallel wall clock — see
    /// `ShardedSessionReport`).
    pub fn absorb(&mut self, other: &SessionReport) {
        self.weight_swaps += other.weight_swaps;
        if other.executions == 0 {
            return;
        }
        if self.executions == 0 {
            self.min_tops = f64::INFINITY;
        }
        self.blocks += other.blocks;
        self.executions += other.executions;
        self.total_elapsed_s += other.total_elapsed_s;
        self.total_joules += other.total_joules;
        self.total_useful_ops += other.total_useful_ops;
        self.sum_tops += other.sum_tops;
        self.min_tops = self.min_tops.min(other.min_tops);
        self.max_tops = self.max_tops.max(other.max_tops);
        self.latency.merge(&other.latency);
    }

    /// Aggregate throughput over the whole session in TeraOps/s: total
    /// useful operations divided by total kernel time.
    pub fn aggregate_tops(&self) -> f64 {
        if self.total_elapsed_s > 0.0 {
            self.total_useful_ops / self.total_elapsed_s / 1e12
        } else {
            0.0
        }
    }

    /// Mean of the per-execution achieved TeraOps/s.
    pub fn mean_tops(&self) -> f64 {
        if self.executions > 0 {
            self.sum_tops / self.executions as f64
        } else {
            0.0
        }
    }

    /// Worst-case per-execution achieved TeraOps/s.
    pub fn worst_tops(&self) -> f64 {
        if self.executions > 0 {
            self.min_tops
        } else {
            0.0
        }
    }

    /// Best-case per-execution achieved TeraOps/s.
    pub fn best_tops(&self) -> f64 {
        if self.executions > 0 {
            self.max_tops
        } else {
            0.0
        }
    }

    /// Aggregate energy efficiency in TeraOps/J.
    pub fn tops_per_joule(&self) -> f64 {
        if self.total_joules > 0.0 {
            self.total_useful_ops / self.total_joules / 1e12
        } else {
            0.0
        }
    }

    /// Effective block (frame) rate: blocks processed per second of kernel
    /// time.
    pub fn effective_fps(&self) -> f64 {
        if self.total_elapsed_s > 0.0 {
            self.blocks as f64 / self.total_elapsed_s
        } else {
            0.0
        }
    }

    /// The log2 histogram of per-execution kernel latency: one sample per
    /// GEMM execution, mergeable across devices and workers.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Median per-execution kernel latency in seconds (0.0 for an empty
    /// run).
    pub fn p50_latency_s(&self) -> f64 {
        self.latency.p50_s()
    }

    /// 95th-percentile per-execution kernel latency in seconds (0.0 for an
    /// empty run).
    pub fn p95_latency_s(&self) -> f64 {
        self.latency.p95_s()
    }

    /// 99th-percentile per-execution kernel latency in seconds (0.0 for an
    /// empty run).
    pub fn p99_latency_s(&self) -> f64 {
        self.latency.p99_s()
    }
}

/// A streaming beamforming session: owns a [`Beamformer`], processes a
/// stream of sample blocks and accumulates a [`SessionReport`].
///
/// Legacy single-device session, kept for one release: it is the only
/// session that drives *batched executions* (`process_batch` maps a whole
/// batch onto one GEMM).  Block-streaming pipelines use the
/// topology-agnostic [`crate::Session`] over any [`crate::Engine`]
/// instead.
///
/// ```
/// use beamform::{Beamformer, BeamformerConfig, BeamformSession, WeightMatrix};
/// use ccglib::matrix::HostComplexMatrix;
/// use gpu_sim::Gpu;
/// use tcbf_types::Complex;
///
/// let weights = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
///     Complex::from_polar(1.0 / 16.0, (b * r) as f32 * 0.1)
/// }));
/// let beamformer = Beamformer::new(
///     &Gpu::A100.device(), weights, 8, BeamformerConfig::float16(),
/// ).unwrap();
/// let mut session = BeamformSession::new(beamformer);
/// let block = HostComplexMatrix::from_fn(16, 8, |r, s| Complex::new(r as f32 * 0.1, s as f32));
/// for _ in 0..3 {
///     session.process_block(&block).unwrap();
/// }
/// let report = session.finish();
/// assert_eq!(report.blocks, 3);
/// assert!(report.aggregate_tops() > 0.0);
/// ```
pub struct BeamformSession {
    beamformer: Beamformer,
    report: SessionReport,
}

impl BeamformSession {
    /// Starts a session on a beamformer.
    pub fn new(beamformer: Beamformer) -> Self {
        BeamformSession {
            beamformer,
            report: SessionReport::default(),
        }
    }

    /// The beamformer driving this session.
    pub fn beamformer(&self) -> &Beamformer {
        &self.beamformer
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &SessionReport {
        &self.report
    }

    /// Useful operations of one GEMM execution under the current plan.
    fn useful_ops(&self) -> f64 {
        self.beamformer.shape().complex_ops() as f64
    }

    /// Processes one `K × N` block of sensor samples (batch-1
    /// configurations).
    pub fn process_block(&mut self, samples: &HostComplexMatrix) -> ccglib::Result<BeamformOutput> {
        let output = self.beamformer.beamform(samples)?;
        self.report.record(&output.report, self.useful_ops(), 1);
        Ok(output)
    }

    /// Processes one batch of sample blocks (one block per batch element)
    /// as a single execution.
    pub fn process_batch(
        &mut self,
        blocks: &[HostComplexMatrix],
    ) -> ccglib::Result<BatchBeamformOutput> {
        let output = self.beamformer.beamform_batch(blocks)?;
        self.report
            .record(&output.report, self.useful_ops(), blocks.len());
        Ok(output)
    }

    /// Drains an iterator (or slice) of sample blocks through the session,
    /// returning the per-block outputs.  Stops at the first error; blocks
    /// already processed remain accounted in the report.
    pub fn process_stream<'a, I>(&mut self, blocks: I) -> ccglib::Result<Vec<BeamformOutput>>
    where
        I: IntoIterator<Item = &'a HostComplexMatrix>,
    {
        blocks
            .into_iter()
            .map(|block| self.process_block(block))
            .collect()
    }

    /// Swaps the beam weights mid-stream (same `beams × receivers` shape;
    /// the GEMM plan is reused unchanged).
    pub fn set_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        self.beamformer.set_weights(weights)?;
        self.report.weight_swaps += 1;
        Ok(())
    }

    /// Ends the session, returning the final report.
    pub fn finish(self) -> SessionReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beamformer::BeamformerConfig;
    use gpu_sim::Gpu;
    use tcbf_types::Complex;

    fn beamformer(beams: usize, receivers: usize, samples: usize, batch: usize) -> Beamformer {
        let weights =
            WeightMatrix::from_matrix(HostComplexMatrix::from_fn(beams, receivers, |b, r| {
                Complex::from_polar(1.0 / receivers as f32, (b * r) as f32 * 0.03)
            }));
        let config = BeamformerConfig {
            batch,
            ..BeamformerConfig::float16()
        };
        Beamformer::new(&Gpu::A100.device(), weights, samples, config).unwrap()
    }

    fn block(receivers: usize, samples: usize, seed: usize) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(receivers, samples, |r, s| {
            Complex::new(
                ((r + s + seed) % 7) as f32 * 0.1 - 0.3,
                ((r * 3 + s + seed) % 5) as f32 * 0.1,
            )
        })
    }

    #[test]
    fn session_totals_equal_the_sum_of_per_block_reports() {
        let mut session = BeamformSession::new(beamformer(8, 32, 16, 1));
        let blocks: Vec<HostComplexMatrix> = (0..4).map(|i| block(32, 16, i)).collect();
        let outputs = session.process_stream(&blocks).unwrap();
        assert_eq!(outputs.len(), 4);

        let elapsed: f64 = outputs.iter().map(|o| o.report.predicted.elapsed_s).sum();
        let joules: f64 = outputs.iter().map(|o| o.report.energy.joules).sum();
        let mean: f64 =
            outputs.iter().map(|o| o.report.achieved_tops).sum::<f64>() / outputs.len() as f64;
        let worst = outputs
            .iter()
            .map(|o| o.report.achieved_tops)
            .fold(f64::INFINITY, f64::min);

        let report = session.finish();
        assert_eq!(report.blocks, 4);
        assert_eq!(report.executions, 4);
        assert!((report.total_elapsed_s - elapsed).abs() < 1e-15);
        assert!((report.total_joules - joules).abs() < 1e-12);
        assert!((report.mean_tops() - mean).abs() < 1e-9);
        assert!((report.worst_tops() - worst).abs() < 1e-9);
        let ops = 4.0 * (8 * 32 * 16 * 8) as f64;
        assert!((report.total_useful_ops - ops).abs() < 1e-6);
        assert!((report.effective_fps() - 4.0 / elapsed).abs() / (4.0 / elapsed) < 1e-9);
        assert!(report.aggregate_tops() > 0.0);
        assert!(report.tops_per_joule() > 0.0);
    }

    #[test]
    fn session_report_exposes_latency_percentiles() {
        let mut session = BeamformSession::new(beamformer(8, 32, 16, 1));
        let blocks: Vec<HostComplexMatrix> = (0..5).map(|i| block(32, 16, i)).collect();
        session.process_stream(&blocks).unwrap();
        let report = session.finish();
        assert_eq!(report.latency().count(), 5);
        // Percentiles are conservative upper bounds on the per-execution
        // kernel time: at least the worst observed latency / 2, at most 2x.
        let per_exec = report.total_elapsed_s / report.executions as f64;
        assert!(report.p50_latency_s() > 0.0);
        assert!(report.p50_latency_s() <= report.p95_latency_s());
        assert!(report.p95_latency_s() <= report.p99_latency_s());
        assert!(report.p99_latency_s() >= per_exec * 0.99);
        assert!(report.p99_latency_s() <= per_exec * 4.0);
        // Empty runs stay finite zeros.
        assert_eq!(SessionReport::default().p99_latency_s(), 0.0);
    }

    #[test]
    fn weight_swap_mid_stream_changes_the_output() {
        let mut session = BeamformSession::new(beamformer(4, 16, 8, 1));
        let samples = block(16, 8, 1);
        let before = session.process_block(&samples).unwrap();
        // Re-steer: conjugated weights produce a different beam pattern.
        let swapped = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
            Complex::from_polar(1.0 / 16.0, -((b * r) as f32 * 0.03))
        }));
        session.set_weights(swapped).unwrap();
        let after = session.process_block(&samples).unwrap();
        assert!(before.beams.max_abs_diff(&after.beams) > 1e-3);
        let report = session.report();
        assert_eq!(report.weight_swaps, 1);
        assert_eq!(report.blocks, 2);
    }

    #[test]
    fn weight_swap_rejects_shape_changes() {
        let mut session = BeamformSession::new(beamformer(4, 16, 8, 1));
        let wrong = WeightMatrix::from_matrix(HostComplexMatrix::zeros(5, 16));
        assert!(session.set_weights(wrong).is_err());
        assert_eq!(session.report().weight_swaps, 0);
    }

    #[test]
    fn batched_session_counts_every_block() {
        let mut session = BeamformSession::new(beamformer(4, 16, 8, 3));
        let blocks: Vec<HostComplexMatrix> = (0..3).map(|i| block(16, 8, i)).collect();
        let output = session.process_batch(&blocks).unwrap();
        assert_eq!(output.beams.len(), 3);
        let report = session.report();
        assert_eq!(report.blocks, 3);
        assert_eq!(report.executions, 1);
        // One batched execution accounts the batched shape's operations.
        let ops = (3 * 8 * 4 * 8 * 16) as f64;
        assert!((report.total_useful_ops - ops).abs() < 1e-6);
    }

    #[test]
    fn empty_session_reports_zeros() {
        // Regression guard: an empty stream must report finite zeros on
        // every derived metric, never NaN or infinity.
        let session = BeamformSession::new(beamformer(2, 16, 8, 1));
        let report = session.finish();
        assert_eq!(report.blocks, 0);
        assert_eq!(report.aggregate_tops(), 0.0);
        assert_eq!(report.mean_tops(), 0.0);
        assert_eq!(report.worst_tops(), 0.0);
        assert_eq!(report.best_tops(), 0.0);
        assert_eq!(report.effective_fps(), 0.0);
        assert_eq!(report.tops_per_joule(), 0.0);
        for metric in [
            report.aggregate_tops(),
            report.mean_tops(),
            report.worst_tops(),
            report.best_tops(),
            report.effective_fps(),
            report.tops_per_joule(),
        ] {
            assert!(metric.is_finite());
        }
    }

    #[test]
    fn absorb_merges_totals_and_extremes() {
        let run = |seeds: std::ops::Range<usize>| -> SessionReport {
            let mut session = BeamformSession::new(beamformer(8, 32, 16, 1));
            for i in seeds {
                session.process_block(&block(32, 16, i)).unwrap();
            }
            session.finish()
        };
        let first = run(0..3);
        let second = run(3..7);
        let mut merged = SessionReport::default();
        merged.absorb(&first);
        merged.absorb(&second);
        // Absorbing an empty report changes nothing.
        merged.absorb(&SessionReport::default());
        assert_eq!(merged.blocks, first.blocks + second.blocks);
        assert_eq!(merged.executions, 7);
        let elapsed = first.total_elapsed_s + second.total_elapsed_s;
        assert!((merged.total_elapsed_s - elapsed).abs() < 1e-15);
        assert_eq!(
            merged.worst_tops(),
            first.worst_tops().min(second.worst_tops())
        );
        assert_eq!(
            merged.best_tops(),
            first.best_tops().max(second.best_tops())
        );
        // worst <= mean <= best up to summation rounding (all executions
        // share one device and shape, so the three are within an ulp).
        assert!(merged.worst_tops() <= merged.mean_tops() * (1.0 + 1e-12));
        assert!(merged.mean_tops() <= merged.best_tops() * (1.0 + 1e-12));
    }
}
