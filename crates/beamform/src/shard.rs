//! Multi-device sharded beamforming.
//!
//! The paper's real-time targets (LOFAR's central processor, volumetric
//! ultrasound Doppler) exceed a single accelerator, so the streaming
//! pipeline scales out: a [`ShardedBeamformer`] owns one [`Beamformer`] per
//! member of a [`DevicePool`] (heterogeneous mixes allowed), a
//! [`ShardPlan`] partitions the block stream across the members — round
//! robin or weighted by each device's peak TeraOps/s — and the shards
//! execute in parallel, one worker per device.  Functional results are
//! device-independent, so the concatenated shard outputs are element-wise
//! identical to a single-device run of the same stream; only the
//! performance accounting changes, which is why the merged [`Report`]
//! keeps a per-device breakdown and derives the pool-level metrics
//! (aggregate TeraOps/s summed across members, wall clock set by the
//! straggler, joules summed) from it.
//!
//! [`ShardedBeamformer`] implements the unified [`Engine`] trait, so the
//! pool plugs into the same generic [`crate::Session`] and application
//! entry points as a single device.

use crate::beamformer::{BeamformOutput, Beamformer, BeamformerConfig};
use crate::engine::{DeviceShardReport, Engine, Report, Topology};
use crate::session::SessionReport;
use crate::weights::WeightMatrix;
use ccglib::matrix::HostComplexMatrix;
use ccglib::Precision;
use gpu_sim::{BlockVerdict, DeviceFault, DevicePool, FaultInjector, Gpu};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Legacy name of the unified [`Report`], kept as a delegating alias for
/// one release.
pub type ShardedSessionReport = Report;

/// Legacy name of the generic session over a [`ShardedBeamformer`].  The
/// type survives for one release but the session methods are the unified
/// ones: `process_stream` is now [`crate::Session::process_batch`] and
/// the report type is the unified [`Report`] (see the README migration
/// table).
pub type ShardedSession = crate::engine::Session<ShardedBeamformer>;

/// How a block stream is partitioned across the members of a pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// Block `i` goes to device `i mod pool_size`: even block counts
    /// regardless of member speed.  Ideal for homogeneous pools.
    RoundRobin,
    /// Contiguous block ranges sized proportionally to each member's peak
    /// TeraOps/s at the session precision (largest-remainder
    /// apportionment), so a GH200 next to an AD4000 receives
    /// correspondingly more work.  The default.
    #[default]
    CapacityWeighted,
}

/// The assignment of a stream of blocks to the members of a pool.
///
/// Every block index is assigned to exactly one device; assignments are
/// deterministic functions of `(policy, weights, block count)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// `assignments[d]` lists the block indices device `d` executes, in
    /// the order it executes them.
    assignments: Vec<Vec<usize>>,
    blocks: usize,
}

impl ShardPlan {
    /// Plans `blocks` block indices over `capacity_weights.len()` devices.
    ///
    /// `capacity_weights` holds one positive throughput weight per device;
    /// [`ShardPolicy::RoundRobin`] ignores the values, while
    /// [`ShardPolicy::CapacityWeighted`] sizes each device's contiguous
    /// range proportionally (falling back to round robin if the weights do
    /// not sum to a positive value).
    ///
    /// # Panics
    /// Panics if `capacity_weights` is empty.
    pub fn new(policy: ShardPolicy, capacity_weights: &[f64], blocks: usize) -> Self {
        let alive = vec![true; capacity_weights.len()];
        let ids: Vec<usize> = (0..blocks).collect();
        Self::reapportion(policy, capacity_weights, &alive, &ids)
    }

    /// Plans an arbitrary list of block indices over the *surviving*
    /// members of a pool: the devices for which `alive[d]` is true.
    ///
    /// This is the recovery primitive: after a device is lost mid-stream,
    /// its unfinished block indices are re-apportioned across the
    /// survivors with the same policy — round robin strides the indices
    /// over the survivors in order; capacity-weighted runs
    /// largest-remainder apportionment over the surviving weights and
    /// hands each survivor a contiguous run of `block_ids`.  The plan
    /// still spans every pool position (dead devices get empty
    /// assignments) and is a deterministic function of its inputs, which
    /// is what keeps recovered runs bit-identical to the no-fault
    /// reference.
    ///
    /// [`ShardPlan::new`] is the degenerate case: all devices alive,
    /// `block_ids = 0..blocks`.
    ///
    /// # Panics
    /// Panics if `capacity_weights` and `alive` differ in length, or if no
    /// device is alive.
    pub fn reapportion(
        policy: ShardPolicy,
        capacity_weights: &[f64],
        alive: &[bool],
        block_ids: &[usize],
    ) -> Self {
        assert_eq!(
            capacity_weights.len(),
            alive.len(),
            "one liveness flag per device"
        );
        let survivors: Vec<usize> = alive
            .iter()
            .enumerate()
            .filter(|&(_, &up)| up)
            .map(|(d, _)| d)
            .collect();
        assert!(
            !survivors.is_empty(),
            "a shard plan needs at least one live device"
        );
        let surviving_weights: Vec<f64> = survivors
            .iter()
            .filter_map(|&d| capacity_weights.get(d).copied())
            .collect();
        let total: f64 = surviving_weights.iter().sum();
        let local = match policy {
            ShardPolicy::CapacityWeighted if total > 0.0 => {
                Self::capacity_weighted(&surviving_weights, total, block_ids)
            }
            _ => Self::round_robin(survivors.len(), block_ids),
        };
        let mut assignments = vec![Vec::new(); alive.len()];
        for (&device, assigned) in survivors.iter().zip(local) {
            if let Some(slot) = assignments.get_mut(device) {
                *slot = assigned;
            }
        }
        ShardPlan {
            assignments,
            blocks: block_ids.len(),
        }
    }

    fn round_robin(devices: usize, block_ids: &[usize]) -> Vec<Vec<usize>> {
        let mut assignments = vec![Vec::new(); devices];
        for (position, &block) in block_ids.iter().enumerate() {
            if let Some(slot) = assignments.get_mut(position % devices) {
                slot.push(block);
            }
        }
        assignments
    }

    fn capacity_weighted(weights: &[f64], total: f64, block_ids: &[usize]) -> Vec<Vec<usize>> {
        // Largest-remainder apportionment: every device gets the floor of
        // its proportional quota, then the leftover blocks go to the
        // largest fractional remainders (ties broken by device index).
        let blocks = block_ids.len();
        let quotas: Vec<f64> = weights
            .iter()
            .map(|w| blocks as f64 * (w / total))
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        let remainder = |i: usize| quotas.get(i).map(|q| q - q.floor()).unwrap_or(0.0);
        let mut by_remainder: Vec<usize> = (0..weights.len()).collect();
        by_remainder.sort_by(|&a, &b| remainder(b).total_cmp(&remainder(a)).then(a.cmp(&b)));
        for &device in by_remainder.iter().cycle().take(blocks - assigned) {
            if let Some(count) = counts.get_mut(device) {
                *count += 1;
            }
        }
        let mut assignments = Vec::with_capacity(weights.len());
        let mut next = 0;
        for count in counts {
            // Largest-remainder accounting guarantees the runs tile
            // `block_ids` exactly; `get` keeps that invariant panic-free.
            let run = block_ids.get(next..next + count).unwrap_or(&[]);
            assignments.push(run.to_vec());
            next += count;
        }
        assignments
    }

    /// Per-device block assignments, indexed by pool position.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assignments
    }

    /// Number of devices the plan spans.
    pub fn num_devices(&self) -> usize {
        self.assignments.len()
    }

    /// Number of blocks the plan covers.
    pub fn num_blocks(&self) -> usize {
        self.blocks
    }

    /// The device a block index is assigned to, or `None` if the index is
    /// outside the planned stream.
    pub fn device_of(&self, block: usize) -> Option<usize> {
        self.assignments
            .iter()
            .position(|blocks| blocks.contains(&block))
    }
}

/// Output of sharding one block stream across a pool.
#[derive(Clone, Debug)]
pub struct ShardedStreamOutput {
    /// Per-block outputs, in the order of the input stream (not in shard
    /// order).
    pub outputs: Vec<BeamformOutput>,
    /// The merged report of this call.
    pub report: Report,
    /// The plan the stream was executed under.
    pub plan: ShardPlan,
}

/// A beamformer spanning every member of a [`DevicePool`]: one identical
/// [`Beamformer`] per device, a shard policy, and parallel per-shard
/// execution.  Every member caches its own prepared (pre-decoded) weight
/// operand, so the per-device shard workers run the decode-once hot path:
/// weights are converted when the pool is built (and on hot-swap), never
/// per block.
///
/// Implements the unified [`Engine`] trait — the pool is driven exactly
/// like a single device, through [`crate::Session`] or `Box<dyn Engine>`.
///
/// ```
/// use beamform::{BeamformerConfig, ShardPolicy, ShardedBeamformer, WeightMatrix};
/// use ccglib::matrix::HostComplexMatrix;
/// use gpu_sim::{DevicePool, Gpu};
/// use tcbf_types::Complex;
///
/// let weights = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
///     Complex::from_polar(1.0 / 16.0, (b * r) as f32 * 0.1)
/// }));
/// let pool = DevicePool::from_gpus(&[Gpu::A100, Gpu::Gh200]);
/// let sharded = ShardedBeamformer::new(
///     &pool, weights, 8, BeamformerConfig::float16(), ShardPolicy::CapacityWeighted,
/// ).unwrap();
/// let blocks: Vec<_> = (0..6)
///     .map(|i| HostComplexMatrix::from_fn(16, 8, |r, s| {
///         Complex::new((r + s + i) as f32 * 0.05, r as f32 * 0.02)
///     }))
///     .collect();
/// let run = sharded.beamform_stream(&blocks).unwrap();
/// assert_eq!(run.outputs.len(), 6);
/// assert!(run.report.aggregate_tops() > 0.0);
/// ```
pub struct ShardedBeamformer {
    members: Vec<Beamformer>,
    gpus: Vec<Gpu>,
    capacity_weights: Vec<f64>,
    policy: ShardPolicy,
    /// Per-member report accumulation of the [`Engine`] run in progress.
    accumulated: Vec<SessionReport>,
    weight_swaps: usize,
    /// Optional fault source; when armed, [`Engine::process_batch`] runs
    /// the recovery loop instead of the straight-line fan-out.
    injector: Option<Arc<FaultInjector>>,
    /// Liveness per pool member; a permanent fault clears the flag and the
    /// member is excluded from every later plan.
    alive: Vec<bool>,
    /// Blocks that had to be re-apportioned onto survivors so far.
    recovered_blocks: usize,
}

impl ShardedBeamformer {
    /// Builds one beamformer per pool member, all sharing the same
    /// weights, block length and configuration.
    ///
    /// The configuration's batch size must be 1: sharding distributes
    /// whole blocks across devices, so per-device batching would double
    /// count.  The calibration cache is warmed for all members in
    /// parallel before the per-device plans are constructed, so a
    /// heterogeneous pool pays one parallel enumeration instead of one
    /// serial enumeration per distinct device.
    pub fn new(
        pool: &DevicePool,
        weights: WeightMatrix,
        samples_per_block: usize,
        config: BeamformerConfig,
        policy: ShardPolicy,
    ) -> ccglib::Result<Self> {
        if config.batch != 1 {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: "batch 1 (sharding distributes whole blocks across devices)".to_string(),
                actual: format!("batch {}", config.batch),
            });
        }
        ccglib::warm_calibration(&pool.specs(), config.precision);
        let members = pool
            .iter()
            .map(|device| Beamformer::new(device, weights.clone(), samples_per_block, config))
            .collect::<ccglib::Result<Vec<_>>>()?;
        let capacity_weights = pool
            .iter()
            .map(|device| Self::capacity(device.spec(), config.precision))
            .collect();
        let accumulated = vec![SessionReport::default(); members.len()];
        let alive = vec![true; members.len()];
        Ok(ShardedBeamformer {
            members,
            gpus: pool.gpus(),
            capacity_weights,
            policy,
            accumulated,
            weight_swaps: 0,
            injector: None,
            alive,
            recovered_blocks: 0,
        })
    }

    /// Arms a [`FaultInjector`] over the pool.  The injector must span
    /// exactly one verdict stream per pool member.  With an injector
    /// armed, [`Engine::process_batch`] consults it before every block
    /// and recovers from refusals by re-apportioning the unfinished
    /// blocks across the surviving members (see `docs/FAULTS.md`).
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) -> ccglib::Result<()> {
        if injector.num_devices() != self.members.len() {
            return Err(ccglib::CcglibError::InvalidParameters {
                reason: format!(
                    "fault injector spans {} devices but the pool has {}",
                    injector.num_devices(),
                    self.members.len()
                ),
            });
        }
        // Honour losses the injector has already recorded.
        for (device, alive) in self.alive.iter_mut().enumerate() {
            *alive = injector.is_alive(device);
        }
        self.injector = Some(injector);
        Ok(())
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Liveness per pool member (all true until a permanent fault fires).
    pub fn alive_mask(&self) -> &[bool] {
        &self.alive
    }

    /// Number of members still accepting work.
    pub fn live_members(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Blocks re-apportioned onto survivors after faults, so far in the
    /// current [`Engine`] run.
    pub fn recovered_blocks(&self) -> usize {
        self.recovered_blocks
    }

    /// Peak useful TeraOps/s of one device at a precision — the capacity
    /// weight of the capacity-weighted policy.
    fn capacity(spec: &gpu_sim::DeviceSpec, precision: Precision) -> f64 {
        match precision {
            Precision::Float16 => spec.f16_peak_tops(),
            Precision::Int1 => spec.int1_best_useful_peak_tops().unwrap_or(0.0),
            Precision::Float32Reference => spec.fp32_peak_tops(),
        }
    }

    /// Number of pool members.
    pub fn num_devices(&self) -> usize {
        self.members.len()
    }

    /// The catalog identifiers of the members, in pool order.
    pub fn gpus(&self) -> &[Gpu] {
        &self.gpus
    }

    /// The per-member beamformers, in pool order.
    pub fn members(&self) -> &[Beamformer] {
        &self.members
    }

    /// The shard policy in effect.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The capacity weights (peak TeraOps/s at the session precision) the
    /// capacity-weighted policy apportions by, in pool order.
    pub fn capacity_weights(&self) -> &[f64] {
        &self.capacity_weights
    }

    /// The plan a stream of `blocks` blocks would be executed under.
    /// Members lost to permanent faults are excluded (their assignments
    /// are empty).
    ///
    /// # Panics
    /// Panics if every member has been lost.
    pub fn plan_shards(&self, blocks: usize) -> ShardPlan {
        let ids: Vec<usize> = (0..blocks).collect();
        ShardPlan::reapportion(self.policy, &self.capacity_weights, &self.alive, &ids)
    }

    /// Beamforms a stream of `K × N` sample blocks across the pool: the
    /// plan assigns each block to one member, the members execute their
    /// shards in parallel (one worker per device), and the outputs are
    /// returned in the input order together with the merged report.
    ///
    /// Accepts owned matrices or references (`&[HostComplexMatrix]` and
    /// `&[&HostComplexMatrix]` both work), so callers streaming borrowed
    /// blocks need not clone them.  This is the stateless one-shot entry
    /// point; the [`Engine`] implementation accumulates across calls.
    pub fn beamform_stream<B>(&self, blocks: &[B]) -> ccglib::Result<ShardedStreamOutput>
    where
        B: std::borrow::Borrow<HostComplexMatrix> + Sync,
    {
        let plan = self.plan_shards(blocks.len());
        let shards: Vec<(&Beamformer, &Vec<usize>)> =
            self.members.iter().zip(plan.assignments()).collect();
        type ShardResult = ccglib::Result<(Vec<(usize, BeamformOutput)>, SessionReport)>;
        let results: Vec<ShardResult> = shards
            .par_iter()
            .map(|(member, assigned)| {
                let ops = member.shape().complex_ops() as f64;
                let mut report = SessionReport::default();
                let mut outputs = Vec::with_capacity(assigned.len());
                for &block in assigned.iter() {
                    let samples = blocks.get(block).ok_or_else(|| {
                        ccglib::CcglibError::InvalidParameters {
                            reason: format!("shard plan references block {block} out of range"),
                        }
                    })?;
                    let output = member.beamform(samples.borrow())?;
                    report.record(&output.report, ops, 1);
                    outputs.push((block, output));
                }
                Ok((outputs, report))
            })
            .collect();

        let mut slots: Vec<Option<BeamformOutput>> = vec![None; blocks.len()];
        let mut per_device = Vec::with_capacity(self.members.len());
        for (gpu, result) in self.gpus.iter().zip(results) {
            let (outputs, report) = result?;
            for (block, output) in outputs {
                if let Some(slot) = slots.get_mut(block) {
                    *slot = Some(output);
                }
            }
            per_device.push(DeviceShardReport { gpu: *gpu, report });
        }
        let outputs = slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| ccglib::CcglibError::InvalidParameters {
                    reason: "shard plan left a block without an output".into(),
                })
            })
            .collect::<ccglib::Result<Vec<_>>>()?;
        Ok(ShardedStreamOutput {
            outputs,
            report: Report::new(per_device, 0),
            plan,
        })
    }

    /// Hot-swaps the beam weights on **every** pool member (same
    /// `beams × receivers` shape; the per-device GEMM plans are reused
    /// unchanged).  The shape is validated before any member is touched,
    /// so a rejected swap leaves the whole pool on the old weights.
    /// Successful swaps are counted pool-wide (once per swap, not once per
    /// member) in the accumulated [`Report`].
    pub fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        let current = self
            .members
            .first()
            .ok_or_else(|| ccglib::CcglibError::InvalidParameters {
                reason: "shard pool has no members".into(),
            })?
            .weights();
        if weights.num_beams() != current.num_beams()
            || weights.num_receivers() != current.num_receivers()
        {
            return Err(ccglib::CcglibError::ShapeMismatch {
                expected: format!(
                    "{} beams x {} receivers",
                    current.num_beams(),
                    current.num_receivers()
                ),
                actual: format!("{} x {}", weights.num_beams(), weights.num_receivers()),
            });
        }
        for member in &mut self.members {
            member.set_weights(weights.clone())?;
        }
        self.weight_swaps += 1;
        Ok(())
    }

    /// Starts a streaming session across the pool (consumes the sharded
    /// beamformer; the session owns it so weights can be hot-swapped).
    pub fn into_session(self) -> ShardedSession {
        crate::engine::Session::new(self)
    }

    /// Fault-aware batch execution: plan over the live members, run the
    /// shards in parallel consulting the injector before every block, and
    /// re-apportion whatever the faulted members left unfinished across
    /// the survivors until the batch completes (or no member survives).
    ///
    /// Outputs are written into input-order slots and every block executes
    /// exactly once under the current weights, so the recovered batch is
    /// bit-identical to a no-fault run.  Work a member completed *before*
    /// faulting stays in its accounting; transient refusals leave the
    /// member alive and eligible for the very next re-apportionment.
    fn process_batch_with_faults(
        &mut self,
        blocks: &[&HostComplexMatrix],
        injector: &Arc<FaultInjector>,
    ) -> ccglib::Result<Vec<BeamformOutput>> {
        type ShardResult = ccglib::Result<(
            Vec<(usize, BeamformOutput)>,
            SessionReport,
            Option<DeviceFault>,
            Vec<usize>,
        )>;
        let mut slots: Vec<Option<BeamformOutput>> = Vec::new();
        slots.resize_with(blocks.len(), || None);
        let mut pending: Vec<usize> = (0..blocks.len()).collect();
        let mut last_lost = 0usize;
        // Each pass either finishes the batch or consumes at least one
        // fault; permanent faults are finite (one per member) and
        // transient faults fire at most once each, so this terminates.
        while !pending.is_empty() {
            if !self.alive.iter().any(|&a| a) {
                return Err(ccglib::CcglibError::DeviceLost {
                    device: last_lost,
                    permanent: true,
                });
            }
            let plan =
                ShardPlan::reapportion(self.policy, &self.capacity_weights, &self.alive, &pending);
            let shards: Vec<(usize, &Beamformer, &[usize])> = self
                .members
                .iter()
                .enumerate()
                .map(|(d, member)| {
                    let assigned = plan.assignments().get(d).map(Vec::as_slice).unwrap_or(&[]);
                    (d, member, assigned)
                })
                .collect();
            let results: Vec<ShardResult> = shards
                .par_iter()
                .map(|&(device, member, assigned)| {
                    let ops = member.shape().complex_ops() as f64;
                    let mut report = SessionReport::default();
                    let mut outputs = Vec::with_capacity(assigned.len());
                    let mut fault = None;
                    let mut unfinished = Vec::new();
                    for (position, &block) in assigned.iter().enumerate() {
                        match injector.on_block(device) {
                            BlockVerdict::Fail(observed) => {
                                fault = Some(observed);
                                unfinished = assigned.get(position..).unwrap_or(&[]).to_vec();
                                break;
                            }
                            verdict => {
                                let samples = blocks.get(block).copied().ok_or_else(|| {
                                    ccglib::CcglibError::InvalidParameters {
                                        reason: format!(
                                            "fault replay references block {block} out of range"
                                        ),
                                    }
                                })?;
                                let mut output = member.beamform(samples)?;
                                if let BlockVerdict::Slow(factor) = verdict {
                                    // A throttled device produces the same
                                    // numbers, just later: stretch the
                                    // modelled time, derate the rates.
                                    output.report.predicted.elapsed_s *= factor;
                                    output.report.predicted.achieved_tops /= factor;
                                    output.report.achieved_tops /= factor;
                                }
                                report.record(&output.report, ops, 1);
                                outputs.push((block, output));
                            }
                        }
                    }
                    Ok((outputs, report, fault, unfinished))
                })
                .collect();

            let mut leftovers: Vec<usize> = Vec::new();
            for (device, result) in results.into_iter().enumerate() {
                let (outputs, report, fault, unfinished) = result?;
                for (block, output) in outputs {
                    if let Some(slot) = slots.get_mut(block) {
                        *slot = Some(output);
                    }
                }
                if let Some(accumulated) = self.accumulated.get_mut(device) {
                    accumulated.absorb(&report);
                }
                if let Some(observed) = fault {
                    leftovers.extend(unfinished);
                    if observed.permanent {
                        if let Some(up) = self.alive.get_mut(device) {
                            *up = false;
                        }
                        last_lost = device;
                    }
                }
            }
            // Deterministic replay order regardless of which worker
            // reported its fault first.
            leftovers.sort_unstable();
            self.recovered_blocks += leftovers.len();
            pending = leftovers;
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.ok_or_else(|| ccglib::CcglibError::InvalidParameters {
                    reason: "fault replay left a block without an output".into(),
                })
            })
            .collect()
    }
}

impl Engine for ShardedBeamformer {
    fn topology(&self) -> Topology {
        Topology::Pool {
            gpus: self.gpus.clone(),
            policy: self.policy,
        }
    }

    fn plan(&self, blocks: usize) -> ShardPlan {
        self.plan_shards(blocks)
    }

    fn process_batch(
        &mut self,
        blocks: &[&HostComplexMatrix],
    ) -> ccglib::Result<Vec<BeamformOutput>> {
        let Some(injector) = self.injector.clone() else {
            let run = self.beamform_stream(blocks)?;
            for (accumulated, shard) in self.accumulated.iter_mut().zip(run.report.per_device()) {
                accumulated.absorb(&shard.report);
            }
            return Ok(run.outputs);
        };
        self.process_batch_with_faults(blocks, &injector)
    }

    fn swap_weights(&mut self, weights: WeightMatrix) -> ccglib::Result<()> {
        ShardedBeamformer::swap_weights(self, weights)
    }

    fn report(&self) -> Report {
        let per_device = self
            .gpus
            .iter()
            .zip(&self.accumulated)
            .map(|(gpu, report)| DeviceShardReport {
                gpu: *gpu,
                report: *report,
            })
            .collect();
        Report::new(per_device, self.weight_swaps)
    }

    fn finish(&mut self) -> Report {
        let report = Engine::report(self);
        self.accumulated = vec![SessionReport::default(); self.members.len()];
        self.weight_swaps = 0;
        self.recovered_blocks = 0;
        report
    }
}

impl std::fmt::Debug for ShardedBeamformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBeamformer")
            .field("gpus", &self.gpus)
            .field("policy", &self.policy)
            .field("capacity_weights", &self.capacity_weights)
            .field("alive", &self.alive)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Gpu;
    use tcbf_types::Complex;

    fn weights(beams: usize, receivers: usize) -> WeightMatrix {
        WeightMatrix::from_matrix(HostComplexMatrix::from_fn(beams, receivers, |b, r| {
            Complex::from_polar(1.0 / receivers as f32, (b * r) as f32 * 0.03)
        }))
    }

    fn block(receivers: usize, samples: usize, seed: usize) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(receivers, samples, |r, s| {
            Complex::new(
                ((r + s + seed) % 7) as f32 * 0.1 - 0.3,
                ((r * 3 + s + seed) % 5) as f32 * 0.1,
            )
        })
    }

    fn sharded(gpus: &[Gpu], policy: ShardPolicy) -> ShardedBeamformer {
        ShardedBeamformer::new(
            &DevicePool::from_gpus(gpus),
            weights(4, 16),
            8,
            BeamformerConfig::float16(),
            policy,
        )
        .unwrap()
    }

    #[test]
    fn round_robin_strides_blocks_across_devices() {
        let plan = ShardPlan::new(ShardPolicy::RoundRobin, &[1.0, 1.0, 1.0], 7);
        assert_eq!(plan.assignments()[0], vec![0, 3, 6]);
        assert_eq!(plan.assignments()[1], vec![1, 4]);
        assert_eq!(plan.assignments()[2], vec![2, 5]);
        assert_eq!(plan.device_of(4), Some(1));
        assert_eq!(plan.device_of(7), None);
    }

    #[test]
    fn capacity_weighted_plan_is_proportional_and_complete() {
        // 3:1 weights over 8 blocks: 6 and 2.
        let plan = ShardPlan::new(ShardPolicy::CapacityWeighted, &[3.0, 1.0], 8);
        assert_eq!(plan.assignments()[0].len(), 6);
        assert_eq!(plan.assignments()[1].len(), 2);
        let mut seen: Vec<usize> = plan.assignments().iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_weights_fall_back_to_round_robin() {
        let plan = ShardPlan::new(ShardPolicy::CapacityWeighted, &[0.0, 0.0], 4);
        assert_eq!(plan.assignments()[0], vec![0, 2]);
        assert_eq!(plan.assignments()[1], vec![1, 3]);
    }

    #[test]
    fn sharded_stream_matches_single_device_blocks() {
        let blocks: Vec<HostComplexMatrix> = (0..10).map(|i| block(16, 8, i)).collect();
        let single = Beamformer::new(
            &Gpu::A100.device(),
            weights(4, 16),
            8,
            BeamformerConfig::float16(),
        )
        .unwrap();
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityWeighted] {
            let engine = sharded(&[Gpu::A100, Gpu::Gh200, Gpu::Mi300x], policy);
            let run = engine.beamform_stream(&blocks).unwrap();
            assert_eq!(run.outputs.len(), blocks.len());
            for (output, samples) in run.outputs.iter().zip(&blocks) {
                let reference = single.beamform(samples).unwrap();
                assert_eq!(output.beams, reference.beams, "policy {policy:?}");
            }
        }
    }

    #[test]
    fn capacity_weighted_pool_loads_the_fast_device_heavier() {
        let engine = sharded(&[Gpu::Gh200, Gpu::Ad4000], ShardPolicy::CapacityWeighted);
        let plan = engine.plan_shards(20);
        // GH200 measures 646 TOPs/s vs the AD4000's 117: roughly 17 vs 3.
        assert!(
            plan.assignments()[0].len() > 3 * plan.assignments()[1].len(),
            "assignments {:?}",
            plan.assignments()
        );
    }

    #[test]
    fn merged_report_sums_devices_and_takes_the_straggler() {
        let engine = sharded(&[Gpu::A100, Gpu::A100], ShardPolicy::RoundRobin);
        let blocks: Vec<HostComplexMatrix> = (0..6).map(|i| block(16, 8, i)).collect();
        let run = engine.beamform_stream(&blocks).unwrap();
        let report = &run.report;
        assert_eq!(report.total_blocks(), 6);
        let by_hand_joules: f64 = report
            .per_device()
            .iter()
            .map(|s| s.report.total_joules)
            .sum();
        assert!((report.total_joules() - by_hand_joules).abs() < 1e-12);
        let agg: f64 = report
            .per_device()
            .iter()
            .map(|s| s.report.aggregate_tops())
            .sum();
        assert!((report.aggregate_tops() - agg).abs() < 1e-9);
        let straggler = report.straggler().unwrap();
        assert_eq!(
            report.wall_clock_s(),
            report.per_device()[straggler].report.total_elapsed_s
        );
        // Identical devices with equal shares: near-2x parallel speed-up.
        assert!(report.speedup_over_serial() > 1.9);
        assert!(report.worst_tops() <= report.mean_tops() * (1.0 + 1e-12));
        assert!(report.mean_tops() <= report.best_tops() * (1.0 + 1e-12));
    }

    #[test]
    fn empty_sharded_report_is_all_zeros() {
        let engine = sharded(&[Gpu::A100, Gpu::Gh200], ShardPolicy::CapacityWeighted);
        let no_blocks: [HostComplexMatrix; 0] = [];
        let run = engine.beamform_stream(&no_blocks).unwrap();
        let report = run.report;
        assert_eq!(report.total_blocks(), 0);
        assert_eq!(report.aggregate_tops(), 0.0);
        assert_eq!(report.wall_clock_s(), 0.0);
        assert_eq!(report.effective_fps(), 0.0);
        assert_eq!(report.tops_per_joule(), 0.0);
        assert_eq!(report.speedup_over_serial(), 0.0);
        assert_eq!(report.worst_tops(), 0.0);
        assert_eq!(report.best_tops(), 0.0);
    }

    #[test]
    fn session_accumulates_across_calls_and_swaps_weights_everywhere() {
        let engine = sharded(&[Gpu::A100, Gpu::Gh200], ShardPolicy::RoundRobin);
        let mut session = engine.into_session();
        let blocks: Vec<HostComplexMatrix> = (0..4).map(|i| block(16, 8, i)).collect();
        let before = session.process_batch(&blocks).unwrap();
        let resteered = WeightMatrix::from_matrix(HostComplexMatrix::from_fn(4, 16, |b, r| {
            Complex::from_polar(1.0 / 16.0, -((b * r) as f32 * 0.03))
        }));
        session.swap_weights(resteered).unwrap();
        let after = session.process_batch(&blocks).unwrap();
        // Every block on every device sees the new weights.
        for (b, a) in before.iter().zip(&after) {
            assert!(b.beams.max_abs_diff(&a.beams) > 1e-3);
        }
        let report = session.finish();
        assert_eq!(report.total_blocks(), 8);
        assert_eq!(report.weight_swaps(), 1);
    }

    #[test]
    fn sessions_start_fresh_regardless_of_prior_engine_use() {
        // Re-steering (or streaming) on the bare engine before the session
        // starts must not leak into the session's report: a session covers
        // exactly the session, as the pre-unification ShardedSession did.
        let mut engine = sharded(&[Gpu::A100, Gpu::A100], ShardPolicy::RoundRobin);
        engine.swap_weights(weights(4, 16)).unwrap();
        let pre_blocks = [block(16, 8, 9)];
        let refs: Vec<&HostComplexMatrix> = pre_blocks.iter().collect();
        Engine::process_batch(&mut engine, &refs).unwrap();
        let mut session = engine.into_session();
        let blocks = [block(16, 8, 0), block(16, 8, 1)];
        session.process_batch(&blocks).unwrap();
        let report = session.finish();
        assert_eq!(report.total_blocks(), 2);
        assert_eq!(report.weight_swaps(), 0);
    }

    #[test]
    fn shape_changing_swaps_leave_the_pool_untouched() {
        let engine = sharded(&[Gpu::A100, Gpu::A100], ShardPolicy::RoundRobin);
        let mut session = engine.into_session();
        assert!(session.swap_weights(weights(5, 16)).is_err());
        assert_eq!(session.report().weight_swaps(), 0);
        // The pool still works on the old shape.
        let blocks = [block(16, 8, 0)];
        assert!(session.process_batch(&blocks).is_ok());
    }

    #[test]
    fn reapportion_with_all_alive_reduces_to_new() {
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityWeighted] {
            let weights = [3.0, 1.0, 2.0];
            let ids: Vec<usize> = (0..17).collect();
            let fresh = ShardPlan::new(policy, &weights, 17);
            let re = ShardPlan::reapportion(policy, &weights, &[true, true, true], &ids);
            assert_eq!(fresh, re, "policy {policy:?}");
        }
    }

    #[test]
    fn reapportion_excludes_dead_members_and_covers_every_id() {
        let ids = [3usize, 5, 8, 13, 21];
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityWeighted] {
            let plan = ShardPlan::reapportion(policy, &[3.0, 1.0, 2.0], &[true, false, true], &ids);
            assert!(plan.assignments()[1].is_empty(), "dead member got work");
            let mut seen: Vec<usize> = plan.assignments().iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, ids.to_vec(), "policy {policy:?}");
        }
        // Deterministic: the same inputs always give the same plan.
        let a = ShardPlan::reapportion(
            ShardPolicy::CapacityWeighted,
            &[3.0, 1.0, 2.0],
            &[true, false, true],
            &ids,
        );
        let b = ShardPlan::reapportion(
            ShardPolicy::CapacityWeighted,
            &[3.0, 1.0, 2.0],
            &[true, false, true],
            &ids,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "live device")]
    fn reapportion_with_no_survivors_panics() {
        let _ = ShardPlan::reapportion(ShardPolicy::RoundRobin, &[1.0, 1.0], &[false, false], &[0]);
    }

    fn injected(
        gpus: &[Gpu],
        policy: ShardPolicy,
        plan: gpu_sim::FaultPlan,
    ) -> (ShardedBeamformer, Arc<FaultInjector>) {
        let mut engine = sharded(gpus, policy);
        let injector = Arc::new(FaultInjector::new(plan, gpus.len()));
        engine.set_fault_injector(Arc::clone(&injector)).unwrap();
        (engine, injector)
    }

    fn reference_outputs(blocks: &[HostComplexMatrix]) -> Vec<BeamformOutput> {
        let single = Beamformer::new(
            &Gpu::A100.device(),
            weights(4, 16),
            8,
            BeamformerConfig::float16(),
        )
        .unwrap();
        blocks.iter().map(|b| single.beamform(b).unwrap()).collect()
    }

    #[test]
    fn permanent_fault_mid_batch_recovers_bit_identical() {
        let blocks: Vec<HostComplexMatrix> = (0..12).map(|i| block(16, 8, i)).collect();
        let expected = reference_outputs(&blocks);
        for policy in [ShardPolicy::RoundRobin, ShardPolicy::CapacityWeighted] {
            let (mut engine, injector) = injected(
                &[Gpu::A100, Gpu::A100, Gpu::A100],
                policy,
                gpu_sim::FaultPlan::new().kill_device(1, 2),
            );
            let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
            let outputs = Engine::process_batch(&mut engine, &refs).unwrap();
            assert!(!injector.is_alive(1));
            assert_eq!(engine.live_members(), 2);
            assert!(engine.recovered_blocks() > 0);
            for (output, reference) in outputs.iter().zip(&expected) {
                assert_eq!(output.beams, reference.beams, "policy {policy:?}");
            }
            // Later batches plan only over the survivors.
            let plan = engine.plan_shards(6);
            assert!(plan.assignments()[1].is_empty());
        }
    }

    #[test]
    fn transient_fault_is_replayed_without_losing_the_member() {
        let blocks: Vec<HostComplexMatrix> = (0..8).map(|i| block(16, 8, i)).collect();
        let expected = reference_outputs(&blocks);
        let (mut engine, injector) = injected(
            &[Gpu::A100, Gpu::A100],
            ShardPolicy::RoundRobin,
            gpu_sim::FaultPlan::new().drop_block(0, 1),
        );
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        let outputs = Engine::process_batch(&mut engine, &refs).unwrap();
        assert!(injector.is_alive(0));
        assert_eq!(engine.live_members(), 2);
        assert_eq!(engine.recovered_blocks(), 3);
        for (output, reference) in outputs.iter().zip(&expected) {
            assert_eq!(output.beams, reference.beams);
        }
    }

    #[test]
    fn latency_spike_inflates_accounting_but_not_outputs() {
        let blocks: Vec<HostComplexMatrix> = (0..8).map(|i| block(16, 8, i)).collect();
        let run_with = |plan: gpu_sim::FaultPlan| {
            let (mut engine, _) = injected(&[Gpu::A100, Gpu::A100], ShardPolicy::RoundRobin, plan);
            let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
            let outputs = Engine::process_batch(&mut engine, &refs).unwrap();
            (outputs, engine.finish())
        };
        let (clean_outputs, clean_report) = run_with(gpu_sim::FaultPlan::new());
        let (slow_outputs, slow_report) =
            run_with(gpu_sim::FaultPlan::new().slow_device(1, 0, 8.0));
        for (slow, clean) in slow_outputs.iter().zip(&clean_outputs) {
            assert_eq!(slow.beams, clean.beams);
        }
        let clean_elapsed = clean_report.per_device()[1].report.total_elapsed_s;
        let slow_elapsed = slow_report.per_device()[1].report.total_elapsed_s;
        assert!(
            slow_elapsed > clean_elapsed * 7.9,
            "spiked member should be ~8x slower: {slow_elapsed} vs {clean_elapsed}"
        );
        assert!(slow_report.wall_clock_s() > clean_report.wall_clock_s());
    }

    #[test]
    fn losing_every_member_reports_device_lost() {
        let blocks: Vec<HostComplexMatrix> = (0..6).map(|i| block(16, 8, i)).collect();
        let (mut engine, _) = injected(
            &[Gpu::A100, Gpu::A100],
            ShardPolicy::RoundRobin,
            gpu_sim::FaultPlan::new()
                .kill_device(0, 1)
                .kill_device(1, 1),
        );
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        let err = Engine::process_batch(&mut engine, &refs).unwrap_err();
        assert!(
            matches!(
                err,
                ccglib::CcglibError::DeviceLost {
                    permanent: true,
                    ..
                }
            ),
            "got {err:?}"
        );
        assert_eq!(engine.live_members(), 0);
    }

    #[test]
    fn injector_must_span_the_pool() {
        let mut engine = sharded(&[Gpu::A100, Gpu::A100], ShardPolicy::RoundRobin);
        let injector = Arc::new(FaultInjector::new(gpu_sim::FaultPlan::new(), 3));
        assert!(engine.set_fault_injector(injector).is_err());
    }

    #[test]
    fn batched_configs_are_rejected() {
        let config = BeamformerConfig {
            batch: 2,
            ..BeamformerConfig::float16()
        };
        let err = ShardedBeamformer::new(
            &DevicePool::homogeneous(Gpu::A100, 2),
            weights(4, 16),
            8,
            config,
            ShardPolicy::RoundRobin,
        )
        .unwrap_err();
        assert!(err.to_string().contains("batch 1"));
    }
}
