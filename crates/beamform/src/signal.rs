//! Synthetic narrowband signal generation.
//!
//! The evaluation data of the paper comes from real instruments (LOFAR
//! beamlets, an ultrasound probe).  Those are not available here, so the
//! applications are driven by synthetic sensor data with the same
//! structure: narrowband complex baseband samples of one or more plane-wave
//! sources plus complex Gaussian noise, sampled by every sensor of an
//! array (Eq. 1 of the paper: `x_k(t) = s(t − τ_k) + σ_k(t)`).

use crate::geometry::ArrayGeometry;
use ccglib::matrix::HostComplexMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tcbf_types::{Complex, Complex32};

/// A far-field plane-wave source.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlaneWaveSource {
    /// Arrival angle in radians from broadside.
    pub azimuth: f64,
    /// Amplitude of the source.
    pub amplitude: f64,
    /// Baseband frequency of the source signal in Hz (the slow modulation
    /// on top of the carrier).
    pub baseband_frequency: f64,
}

/// Generator of synthetic sensor samples.
#[derive(Clone, Debug)]
pub struct SignalGenerator {
    geometry: ArrayGeometry,
    carrier_frequency: f64,
    sample_rate: f64,
    noise_sigma: f64,
    rng: StdRng,
}

impl SignalGenerator {
    /// Creates a generator for an array observing at `carrier_frequency`
    /// (Hz) with complex sampling at `sample_rate` (Hz) and per-sensor
    /// noise standard deviation `noise_sigma`.
    pub fn new(
        geometry: ArrayGeometry,
        carrier_frequency: f64,
        sample_rate: f64,
        noise_sigma: f64,
        seed: u64,
    ) -> Self {
        assert!(carrier_frequency > 0.0 && sample_rate > 0.0);
        assert!(noise_sigma >= 0.0);
        SignalGenerator {
            geometry,
            carrier_frequency,
            sample_rate,
            noise_sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The array geometry driving the generator.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    /// Observing (carrier) frequency in Hz.
    pub fn carrier_frequency(&self) -> f64 {
        self.carrier_frequency
    }

    /// Approximately standard-normal complex noise sample (two uniform
    /// 12-term sums; good enough for SNR bookkeeping without pulling in a
    /// distributions crate).
    fn noise(&mut self) -> Complex32 {
        let n = |rng: &mut StdRng| -> f32 {
            let sum: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
            sum - 6.0
        };
        let re = n(&mut self.rng);
        let im = n(&mut self.rng);
        Complex::new(re, im).scale(self.noise_sigma as f32 / std::f32::consts::SQRT_2)
    }

    /// Generates the `K × N` sensor-sample matrix for `num_samples` time
    /// samples of the given sources: row `k` holds the complex baseband
    /// samples of sensor `k` (Eq. 1).
    ///
    /// Narrowband model: the geometric delay appears as a phase rotation of
    /// the carrier, `exp(−2πi f_c τ_k)`, while the baseband envelope is
    /// common to all sensors.
    pub fn sensor_samples(
        &mut self,
        sources: &[PlaneWaveSource],
        num_samples: usize,
    ) -> HostComplexMatrix {
        let k = self.geometry.num_sensors();
        let mut data = HostComplexMatrix::zeros(k, num_samples);
        // Per-source, per-sensor carrier phase from the geometric delay.
        let phases: Vec<Vec<Complex32>> = sources
            .iter()
            .map(|s| {
                self.geometry
                    .far_field_delays(s.azimuth)
                    .iter()
                    .map(|&tau| {
                        let phi = -2.0 * std::f64::consts::PI * self.carrier_frequency * tau;
                        Complex::from_polar(1.0, phi as f32)
                    })
                    .collect()
            })
            .collect();
        for n in 0..num_samples {
            let t = n as f64 / self.sample_rate;
            // Common baseband envelopes.
            let envelopes: Vec<Complex32> = sources
                .iter()
                .map(|s| {
                    let phi = 2.0 * std::f64::consts::PI * s.baseband_frequency * t;
                    Complex::from_polar(s.amplitude as f32, phi as f32)
                })
                .collect();
            for sensor in 0..k {
                let mut v = Complex32::ZERO;
                for (envelope, phase_row) in envelopes.iter().zip(&phases) {
                    v += *envelope * phase_row[sensor];
                }
                v += self.noise();
                data.set(sensor, n, v);
            }
        }
        data
    }

    /// Average per-sensor signal-to-noise ratio (power ratio, linear) of a
    /// set of sources under the generator's noise level.
    pub fn input_snr(&self, sources: &[PlaneWaveSource]) -> f64 {
        if self.noise_sigma == 0.0 {
            return f64::INFINITY;
        }
        let signal_power: f64 = sources.iter().map(|s| s.amplitude * s.amplitude).sum();
        signal_power / (self.noise_sigma * self.noise_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::SPEED_OF_LIGHT;

    fn test_array() -> ArrayGeometry {
        // Half-wavelength spacing at 150 MHz (LOFAR high band is near this).
        let wavelength = SPEED_OF_LIGHT / 150e6;
        ArrayGeometry::uniform_linear(16, wavelength / 2.0, SPEED_OF_LIGHT)
    }

    #[test]
    fn noiseless_broadside_source_is_in_phase_on_all_sensors() {
        let mut generator = SignalGenerator::new(test_array(), 150e6, 1e5, 0.0, 1);
        let source = PlaneWaveSource {
            azimuth: 0.0,
            amplitude: 1.0,
            baseband_frequency: 0.0,
        };
        let samples = generator.sensor_samples(&[source], 4);
        for n in 0..4 {
            for k in 0..16 {
                let v = samples.get(k, n);
                assert!((v.re - 1.0).abs() < 1e-5 && v.im.abs() < 1e-5);
            }
        }
    }

    #[test]
    fn off_axis_source_produces_phase_gradient() {
        let mut generator = SignalGenerator::new(test_array(), 150e6, 1e5, 0.0, 1);
        let source = PlaneWaveSource {
            azimuth: 0.3,
            amplitude: 1.0,
            baseband_frequency: 0.0,
        };
        let samples = generator.sensor_samples(&[source], 1);
        // Magnitude constant, phase varying across sensors.
        let mut distinct_phases = 0;
        for k in 0..16 {
            let v = samples.get(k, 0);
            assert!((v.abs() - 1.0).abs() < 1e-5);
            if (v.arg() - samples.get(0, 0).arg()).abs() > 1e-3 {
                distinct_phases += 1;
            }
        }
        assert!(distinct_phases > 10);
    }

    #[test]
    fn noise_level_matches_request() {
        let mut generator = SignalGenerator::new(test_array(), 150e6, 1e5, 2.0, 42);
        let samples = generator.sensor_samples(&[], 256);
        let mut power = 0.0f64;
        for k in 0..16 {
            for n in 0..256 {
                power += f64::from(samples.get(k, n).norm_sqr());
            }
        }
        let mean_power = power / (16.0 * 256.0);
        assert!(
            (mean_power - 4.0).abs() < 0.5,
            "mean noise power {mean_power}"
        );
    }

    #[test]
    fn generation_is_reproducible_for_equal_seeds() {
        let source = PlaneWaveSource {
            azimuth: 0.1,
            amplitude: 1.0,
            baseband_frequency: 100.0,
        };
        let mut a = SignalGenerator::new(test_array(), 150e6, 1e5, 1.0, 7);
        let mut b = SignalGenerator::new(test_array(), 150e6, 1e5, 1.0, 7);
        assert_eq!(
            a.sensor_samples(&[source], 8),
            b.sensor_samples(&[source], 8)
        );
        let mut c = SignalGenerator::new(test_array(), 150e6, 1e5, 1.0, 8);
        assert_ne!(
            a.sensor_samples(&[source], 8),
            c.sensor_samples(&[source], 8)
        );
    }

    #[test]
    fn input_snr_accounting() {
        let generator = SignalGenerator::new(test_array(), 150e6, 1e5, 0.5, 1);
        let source = PlaneWaveSource {
            azimuth: 0.0,
            amplitude: 1.0,
            baseband_frequency: 0.0,
        };
        assert!((generator.input_snr(&[source]) - 4.0).abs() < 1e-12);
        let silent = SignalGenerator::new(test_array(), 150e6, 1e5, 0.0, 1);
        assert!(silent.input_snr(&[source]).is_infinite());
    }
}
