//! Beamforming weight computation.
//!
//! The beamformed output is `y(t) = Σ_k w_k x_k(t)` (Eq. 3); the weights
//! `w_k` are unit-magnitude phasors that undo the geometric delay of each
//! sensor for the chosen look direction, so that signals from that
//! direction add coherently.  Forming `M` beams turns the weight vectors
//! into an `M × K` matrix — the `A` operand of the ccglib GEMM.

use crate::geometry::ArrayGeometry;
use ccglib::matrix::HostComplexMatrix;
use serde::{Deserialize, Serialize};
use tcbf_types::{Complex, Complex32};

/// The steering vector for one look direction: `w_k = exp(+2πi f τ_k) / K`
/// (the conjugate of the propagation phase, normalised so the beamformed
/// amplitude of a unit source is one).
pub fn steering_vector(
    geometry: &ArrayGeometry,
    frequency: f64,
    azimuth: f64,
    normalise: bool,
) -> Vec<Complex32> {
    let k = geometry.num_sensors();
    let scale = if normalise { 1.0 / k as f32 } else { 1.0 };
    geometry
        .far_field_delays(azimuth)
        .iter()
        .map(|&tau| {
            let phi = 2.0 * std::f64::consts::PI * frequency * tau;
            Complex::from_polar(scale, phi as f32)
        })
        .collect()
}

/// A weight matrix: `M` beams × `K` receivers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightMatrix {
    weights: HostComplexMatrix,
    azimuths: Vec<f64>,
}

impl WeightMatrix {
    /// Builds steering weights for a fan of beams at the given azimuths.
    pub fn steering(
        geometry: &ArrayGeometry,
        frequency: f64,
        azimuths: &[f64],
        normalise: bool,
    ) -> Self {
        let k = geometry.num_sensors();
        let mut weights = HostComplexMatrix::zeros(azimuths.len(), k);
        for (m, &az) in azimuths.iter().enumerate() {
            for (kk, w) in steering_vector(geometry, frequency, az, normalise)
                .into_iter()
                .enumerate()
            {
                weights.set(m, kk, w);
            }
        }
        WeightMatrix {
            weights,
            azimuths: azimuths.to_vec(),
        }
    }

    /// A uniform fan of `num_beams` beams between `min_azimuth` and
    /// `max_azimuth` (inclusive), in radians.
    pub fn uniform_fan(
        geometry: &ArrayGeometry,
        frequency: f64,
        num_beams: usize,
        min_azimuth: f64,
        max_azimuth: f64,
    ) -> Self {
        assert!(num_beams > 0);
        let azimuths: Vec<f64> = if num_beams == 1 {
            vec![(min_azimuth + max_azimuth) / 2.0]
        } else {
            (0..num_beams)
                .map(|i| {
                    min_azimuth + (max_azimuth - min_azimuth) * i as f64 / (num_beams as f64 - 1.0)
                })
                .collect()
        };
        WeightMatrix::steering(geometry, frequency, &azimuths, true)
    }

    /// Builds a weight matrix from raw weights (e.g. calibrated instrument
    /// weights) with unknown look directions.
    pub fn from_matrix(weights: HostComplexMatrix) -> Self {
        let beams = weights.rows();
        WeightMatrix {
            weights,
            azimuths: vec![f64::NAN; beams],
        }
    }

    /// Number of beams (`M`).
    pub fn num_beams(&self) -> usize {
        self.weights.rows()
    }

    /// Number of receivers (`K`).
    pub fn num_receivers(&self) -> usize {
        self.weights.cols()
    }

    /// Look directions, if known.
    pub fn azimuths(&self) -> &[f64] {
        &self.azimuths
    }

    /// The `M × K` weight matrix.
    pub fn matrix(&self) -> &HostComplexMatrix {
        &self.weights
    }

    /// The array (power) response of beam `beam` to a unit plane wave from
    /// `azimuth`: `|Σ_k w_k v_k(azimuth)|²` with `v` the propagation
    /// phasor.  Sampling this over azimuth gives the beam pattern.
    pub fn beam_response(
        &self,
        geometry: &ArrayGeometry,
        frequency: f64,
        beam: usize,
        azimuth: f64,
    ) -> f64 {
        let arrival = steering_vector(geometry, frequency, azimuth, false)
            .into_iter()
            .map(|v| v.conj())
            .collect::<Vec<_>>();
        let mut sum = Complex32::ZERO;
        for (k, &arrival_k) in arrival.iter().enumerate().take(self.num_receivers()) {
            sum += self.weights.get(beam, k) * arrival_k;
        }
        f64::from(sum.norm_sqr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ArrayGeometry, SPEED_OF_LIGHT};

    fn array(n: usize) -> ArrayGeometry {
        let wavelength = SPEED_OF_LIGHT / 150e6;
        ArrayGeometry::uniform_linear(n, wavelength / 2.0, SPEED_OF_LIGHT)
    }

    #[test]
    fn steering_vector_is_unit_magnitude() {
        let geom = array(32);
        let w = steering_vector(&geom, 150e6, 0.4, false);
        assert_eq!(w.len(), 32);
        for v in w {
            assert!((v.abs() - 1.0).abs() < 1e-5);
        }
        let wn = steering_vector(&geom, 150e6, 0.4, true);
        assert!((wn[0].abs() - 1.0 / 32.0).abs() < 1e-6);
    }

    #[test]
    fn beam_peaks_at_its_look_direction() {
        let geom = array(64);
        let weights = WeightMatrix::uniform_fan(&geom, 150e6, 5, -0.5, 0.5);
        assert_eq!(weights.num_beams(), 5);
        assert_eq!(weights.num_receivers(), 64);
        for beam in 0..5 {
            let look = weights.azimuths()[beam];
            let on_axis = weights.beam_response(&geom, 150e6, beam, look);
            // The normalised response at the look direction is 1.
            assert!((on_axis - 1.0).abs() < 1e-4, "beam {beam}: {on_axis}");
            // Looking 0.3 rad away the response must be much lower.
            let off_axis = weights.beam_response(&geom, 150e6, beam, look + 0.3);
            assert!(off_axis < 0.1 * on_axis, "beam {beam}: off-axis {off_axis}");
        }
    }

    #[test]
    fn single_beam_fan_points_at_centre() {
        let geom = array(8);
        let weights = WeightMatrix::uniform_fan(&geom, 150e6, 1, -0.2, 0.6);
        assert_eq!(weights.num_beams(), 1);
        assert!((weights.azimuths()[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_preserves_shape() {
        let raw = HostComplexMatrix::zeros(7, 12);
        let weights = WeightMatrix::from_matrix(raw);
        assert_eq!(weights.num_beams(), 7);
        assert_eq!(weights.num_receivers(), 12);
        assert!(weights.azimuths()[0].is_nan());
    }

    #[test]
    fn beam_width_shrinks_with_more_receivers() {
        // Larger apertures give narrower beams: the response 0.05 rad off
        // axis is lower for the bigger array.
        let freq = 150e6;
        let small = WeightMatrix::uniform_fan(&array(8), freq, 1, 0.0, 0.0);
        let large = WeightMatrix::uniform_fan(&array(128), freq, 1, 0.0, 0.0);
        let off = 0.05;
        let small_off = small.beam_response(&array(8), freq, 0, off);
        let large_off = large.beam_response(&array(128), freq, 0, off);
        assert!(large_off < small_off);
    }
}
