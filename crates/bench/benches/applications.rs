//! Criterion benchmarks of the two application pipelines at reduced sizes:
//! ultrasound model construction + reconstruction, and LOFAR beamlet
//! synthesis + central beamforming.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::Gpu;
use radioastro::{CentralBeamformer, CentralMode, SkySource, StationBeamlets};
use std::hint::black_box;
use ultrasound::{
    AcousticModel, DopplerMode, FlowPhantom, ImagingConfig, ReconstructionPrecision, Reconstructor,
};

fn bench_ultrasound(c: &mut Criterion) {
    let config = ImagingConfig::small(8, 8, 2);
    let dims = (8, 8, 6);
    let voxels = ImagingConfig::voxel_grid(dims.0, dims.1, dims.2, 0.008, 0.02);
    let model = AcousticModel::build(&config, &voxels);
    let phantom = FlowPhantom::two_vessels(0.008, 0.02);
    let measurements = phantom.measurements(&model, 8);

    let mut group = c.benchmark_group("ultrasound");
    group.bench_function("model_build", |bench| {
        bench.iter(|| AcousticModel::build(black_box(&config), black_box(&voxels)))
    });
    for (label, precision) in [
        ("reconstruct_int1", ReconstructionPrecision::Int1),
        ("reconstruct_f16", ReconstructionPrecision::Float16),
    ] {
        let reconstructor =
            Reconstructor::new(&Gpu::A100.device(), precision, DopplerMode::MeanRemoval);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                reconstructor
                    .reconstruct(black_box(&model), black_box(&measurements), dims)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lofar(c: &mut Criterion) {
    let sources = [SkySource {
        azimuth: 2e-4,
        amplitude: 1.0,
    }];
    let beamlets = StationBeamlets::synthesise(24, 16, 150e6, &sources, 0.0, 64, 0.05, 3);
    let beams: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 1e-4).collect();
    let bf = CentralBeamformer::new(&Gpu::Gh200.device(), beams);

    let mut group = c.benchmark_group("lofar");
    group.bench_function("beamlet_synthesis", |bench| {
        bench.iter(|| {
            StationBeamlets::synthesise(24, 16, 150e6, black_box(&sources), 0.0, 64, 0.05, 3)
        })
    });
    group.bench_function("central_coherent", |bench| {
        bench.iter(|| {
            bf.beamform(black_box(&beamlets), CentralMode::Coherent)
                .unwrap()
        })
    });
    group.bench_function("central_incoherent", |bench| {
        bench.iter(|| {
            bf.beamform(black_box(&beamlets), CentralMode::Incoherent)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_ultrasound, bench_lofar
}
criterion_main!(benches);
