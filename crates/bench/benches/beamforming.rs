//! Criterion benchmarks of the domain-independent beamforming layer:
//! steering-weight generation, the ccglib-backed beamformer and the
//! delay-and-sum reference.

use beamform::geometry::SPEED_OF_LIGHT;
use beamform::{
    ArrayGeometry, Beamformer, BeamformerConfig, PlaneWaveSource, SignalGenerator, WeightMatrix,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::Gpu;
use std::hint::black_box;

const FREQ: f64 = 150e6;

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("steering_weights");
    for &receivers in &[64usize, 256] {
        let geom =
            ArrayGeometry::uniform_linear(receivers, SPEED_OF_LIGHT / FREQ / 2.0, SPEED_OF_LIGHT);
        group.bench_with_input(
            BenchmarkId::new("uniform_fan_64_beams", receivers),
            &receivers,
            |bench, _| {
                bench.iter(|| WeightMatrix::uniform_fan(black_box(&geom), FREQ, 64, -0.5, 0.5))
            },
        );
    }
    group.finish();
}

fn bench_beamform(c: &mut Criterion) {
    let mut group = c.benchmark_group("beamform_block");
    for &receivers in &[32usize, 64] {
        let geom =
            ArrayGeometry::uniform_linear(receivers, SPEED_OF_LIGHT / FREQ / 2.0, SPEED_OF_LIGHT);
        let weights = WeightMatrix::uniform_fan(&geom, FREQ, 16, -0.4, 0.4);
        let samples = {
            let mut generator = SignalGenerator::new(geom.clone(), FREQ, 1e5, 0.1, 1);
            generator.sensor_samples(
                &[PlaneWaveSource {
                    azimuth: 0.1,
                    amplitude: 1.0,
                    baseband_frequency: 0.0,
                }],
                64,
            )
        };
        let tc = Beamformer::new(
            &Gpu::A100.device(),
            weights,
            64,
            BeamformerConfig::float16(),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("tensor_core_f16", receivers),
            &receivers,
            |bench, _| bench.iter(|| tc.beamform(black_box(&samples)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("delay_and_sum_reference", receivers),
            &receivers,
            |bench, _| bench.iter(|| tc.delay_and_sum_reference(black_box(&samples))),
        );
        // The streaming path: same kernel, but blocks flow through a
        // session that also aggregates the run report.
        let mut session = tc.into_session();
        group.bench_with_input(
            BenchmarkId::new("session_stream_f16", receivers),
            &receivers,
            |bench, _| bench.iter(|| session.process_block(black_box(&samples)).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_weights, bench_beamform
}
criterion_main!(benches);
