//! Criterion benchmarks of the functional complex GEMM kernels (CPU
//! substrate execution): float16 vs 1-bit (XOR and AND formulations) vs
//! the float32 reference, at sizes small enough to run quickly.

use ccglib::matrix::{F16Matrix, HostComplexMatrix, Int1Matrix};
use ccglib::{gemm, reference_gemm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::BitOp;
use std::hint::black_box;
use tcbf_types::Complex;

fn matrix(rows: usize, cols: usize, seed: u64) -> HostComplexMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 41) as f32 / 4194304.0) - 1.0
    };
    HostComplexMatrix::from_fn(rows, cols, |_, _| Complex::new(next(), next()))
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("complex_gemm");
    for &size in &[32usize, 64] {
        let a = matrix(size, 4 * size, 1);
        let b_t = matrix(size, 4 * size, 2);

        let a16 = F16Matrix::from_host(&a);
        let b16 = F16Matrix::from_host(&b_t);
        group.bench_with_input(BenchmarkId::new("float16", size), &size, |bench, _| {
            bench.iter(|| gemm::gemm_f16(black_box(&a16), black_box(&b16)).unwrap())
        });

        let a1 = Int1Matrix::from_host_padded(&a, 256);
        let b1 = Int1Matrix::from_host_padded(&b_t, 256);
        group.bench_with_input(BenchmarkId::new("int1_xor", size), &size, |bench, _| {
            bench.iter(|| gemm::gemm_int1(black_box(&a1), black_box(&b1), BitOp::Xor).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("int1_and", size), &size, |bench, _| {
            bench.iter(|| gemm::gemm_int1(black_box(&a1), black_box(&b1), BitOp::And).unwrap())
        });

        group.bench_with_input(
            BenchmarkId::new("float32_reference", size),
            &size,
            |bench, _| bench.iter(|| reference_gemm(black_box(&a), black_box(&b_t)).unwrap()),
        );
    }
    group.finish();
}

fn bench_plan_construction(c: &mut Criterion) {
    // Plan construction is on the session/builder hot path; the calibration
    // search is memoised per (device, precision), so repeated construction
    // must be cheap.  The first call below warms the cache; the measured
    // iterations all hit it.
    let mut group = c.benchmark_group("plan_construction");
    let device = gpu_sim::Gpu::A100.device();
    let shape = tcbf_types::GemmShape::new(1024, 1024, 512);
    ccglib::GemmPlan::new(&device, shape, ccglib::Precision::Float16).unwrap();
    let cold_enumerations = ccglib::calibration_enumerations();
    group.bench_function("memoised_repeat", |bench| {
        bench.iter(|| {
            ccglib::GemmPlan::new(black_box(&device), shape, ccglib::Precision::Float16).unwrap()
        })
    });
    assert_eq!(
        ccglib::calibration_enumerations(),
        cold_enumerations,
        "benchmark iterations must all hit the calibration cache"
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_gemm, bench_plan_construction
}
criterion_main!(benches);
