//! Criterion benchmarks of the data-movement kernels: 1-bit packing /
//! unpacking and the interleaved→planar transpose.

use ccglib::matrix::HostComplexMatrix;
use ccglib::{pack, transpose};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tcbf_types::Complex;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    for &k in &[4096usize, 65_536] {
        let host = HostComplexMatrix::from_fn(16, k, |r, col| {
            Complex::new(((r + col) % 7) as f32 - 3.0, (col % 5) as f32 - 2.0)
        });
        group.throughput(Throughput::Elements((16 * k) as u64));
        group.bench_with_input(BenchmarkId::new("pack_1bit", k), &k, |bench, _| {
            bench.iter(|| pack::pack(black_box(&host), 256))
        });
        let packed = pack::pack(&host, 256);
        group.bench_with_input(BenchmarkId::new("unpack_1bit", k), &k, |bench, _| {
            bench.iter(|| pack::unpack(black_box(&packed)))
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpose");
    for &n in &[128usize, 512] {
        let interleaved: Vec<f32> = (0..n * n * 2).map(|i| i as f32 * 1e-4).collect();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(
            BenchmarkId::new("interleaved_to_planar", n),
            &n,
            |bench, _| {
                bench.iter(|| transpose::interleaved_to_planar(n, n, black_box(&interleaved)))
            },
        );
        let host = HostComplexMatrix::from_fn(n, n, |r, c| Complex::new(r as f32, c as f32));
        group.bench_with_input(BenchmarkId::new("matrix_transpose", n), &n, |bench, _| {
            bench.iter(|| transpose::transpose(black_box(&host)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_pack, bench_transpose
}
criterion_main!(benches);
