//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * XOR vs AND 1-bit formulation per architecture (Section III-E);
//! * 8×8×128 vs 16×8×256 1-bit fragment layout (Section III-A);
//! * number of asynchronous-copy pipeline buffers (Section III-C);
//! * planar vs interleaved complex input (the transpose-kernel cost the
//!   paper lists as future work to eliminate);
//! * padding overhead for ragged problem sizes.

use ccglib::benchmark::{measure, measure_with_params};
use ccglib::{transpose, Precision, TuningParameters};
use gpu_sim::{BitFragmentShape, BitOp, ExecutionModel, Gpu};
use tcbf_bench::{header, print_table};
use tcbf_types::GemmShape;

fn main() {
    // --- 1-bit operand and fragment choice --------------------------------
    header("Ablation 1 — 1-bit tensor-core instruction throughput: fragment layout x operand");
    let mut rows = Vec::new();
    for gpu in Gpu::NVIDIA {
        let spec = gpu.spec();
        let mut row = vec![
            gpu.name().to_string(),
            BitOp::preferred_for(spec.arch).to_string(),
        ];
        for fragment in [BitFragmentShape::M8N8K128, BitFragmentShape::M16N8K256] {
            for op in [BitOp::Xor, BitOp::And] {
                let useful = spec.int1_useful_peak_tops(fragment, op).unwrap_or(0.0);
                row.push(format!("{useful:.0}"));
            }
        }
        rows.push(row);
    }
    print_table(
        &[
            "GPU",
            "auto op",
            "8x8x128 XOR",
            "8x8x128 AND",
            "16x8x256 XOR",
            "16x8x256 AND",
        ],
        &rows,
    );
    println!(
        "(useful TOPs/s after accounting for the AND formulation's doubled instruction count)"
    );

    // --- Pipeline buffer count --------------------------------------------
    header("Ablation 2 — asynchronous-copy pipeline depth (float16, 8192^3)");
    let shape = GemmShape::new(8192, 8192, 8192);
    let mut rows = Vec::new();
    for gpu in [Gpu::A100, Gpu::Gh200, Gpu::Mi300x] {
        let device = gpu.device();
        let mut row = vec![gpu.name().to_string()];
        for buffers in [1usize, 2, 4] {
            let mut params = TuningParameters::default_for(gpu, Precision::Float16);
            params.buffers = buffers;
            match measure_with_params(&device, shape, Precision::Float16, params) {
                Ok(r) => row.push(format!("{:.0}", r.tops)),
                Err(_) => row.push("invalid".to_string()),
            }
        }
        rows.push(row);
    }
    print_table(&["GPU", "1 buffer", "2 buffers", "4 buffers"], &rows);
    println!("(AMD devices are forced to a single buffer: no asynchronous copies)");

    // --- Planar vs interleaved input ---------------------------------------
    header("Ablation 3 — transpose (interleaved -> planar) overhead per GEMM");
    let mut rows = Vec::new();
    for gpu in [Gpu::A100, Gpu::Mi300x] {
        let spec = gpu.spec();
        let exec = ExecutionModel::new(spec.clone());
        for (label, shape) in [
            (
                "LOFAR 1024x1024x512 (batch 256)",
                GemmShape::batched(256, 1024, 1024, 512),
            ),
            ("square 8192^3", GemmShape::new(8192, 8192, 8192)),
        ] {
            let gemm_s = measure(&gpu.device(), shape, Precision::Float16)
                .unwrap()
                .elapsed_s;
            let transpose_s = exec
                .time(&transpose::transpose_profile(
                    &spec,
                    shape.k,
                    shape.n * shape.batch,
                    16,
                ))
                .elapsed_s;
            rows.push(vec![
                gpu.name().to_string(),
                label.to_string(),
                format!("{:.3}", gemm_s * 1e3),
                format!("{:.3}", transpose_s * 1e3),
                format!("{:.1}%", 100.0 * transpose_s / gemm_s),
            ]);
        }
    }
    print_table(
        &["GPU", "shape", "GEMM ms", "transpose ms", "overhead"],
        &rows,
    );
    println!(
        "(an interleaved-input kernel, listed as future work in the paper, would remove this cost)"
    );

    // --- Padding -----------------------------------------------------------
    header("Ablation 4 — padding overhead for ragged sizes (float16, A100)");
    let device = Gpu::A100.device();
    let mut rows = Vec::new();
    for (aligned, ragged) in [(4096usize, 4100usize), (8192, 8200)] {
        let a = measure(
            &device,
            GemmShape::new(aligned, aligned, aligned),
            Precision::Float16,
        )
        .unwrap();
        let r = measure(
            &device,
            GemmShape::new(ragged, ragged, ragged),
            Precision::Float16,
        )
        .unwrap();
        rows.push(vec![
            format!("{aligned} vs {ragged}"),
            format!("{:.0}", a.tops),
            format!("{:.0}", r.tops),
            format!("{:.1}%", 100.0 * (a.tops - r.tops) / a.tops),
        ]);
    }
    print_table(&["sizes", "aligned TOPs/s", "ragged TOPs/s", "loss"], &rows);
}
