//! Regenerates Fig. 2: the auto-tuning scatter — now measured against the
//! **real** host micro-kernels instead of the modelled GPU occupancy
//! surface.  For every (precision, shape band) pair the benchmark-driven
//! [`MicroTuner`] times the per-precision [`ccglib::MicroKernelConfig`] menu on
//! the band's representative shape, prints the scatter, and persists the
//! winners to the micro-tuning cache file.  The run then closes the loop
//! the tuner exists for: it rebuilds a beamformer through the public
//! builder with only the cache path and asserts the engine picked the
//! tuned blocking up automatically.
//!
//! Usage: `fig2_autotune [--smoke] [--out PATH] [--model-scatter]`
//!
//! * `--smoke` shrinks the budget for CI: one shape band, a random
//!   4-candidate search, a single timed repetition per candidate.
//! * `--out PATH` writes the cache somewhere other than
//!   [`tuner::default_cache_path`] (which itself honours
//!   `TCBF_MICROTUNE_CACHE`).
//! * `--model-scatter` appends the original modelled per-GPU
//!   tuning-parameter scatter (launch-geometry search on the device
//!   model), kept for comparison with the paper figure.

use ccglib::synth::pseudo_random_matrix;
use ccglib::Precision;
use gpu_sim::Gpu;
use std::path::PathBuf;
use tcbf::{Engine, TensorCoreBeamformer};
use tcbf_bench::{header, print_table};
use tuner::{MicroTuneCache, MicroTuner, Objective, ShapeClass, Strategy, Tuner};

/// Prints one tuning scatter: every measured candidate, fastest first.
fn print_scatter(outcome: &tuner::MicroTuneOutcome) {
    let mut sorted = outcome.evaluated.clone();
    sorted.sort_by(|a, b| b.gelems_per_s.total_cmp(&a.gelems_per_s));
    let rows: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| {
            vec![
                r.config.to_string(),
                format!("{:.3}", r.elapsed_s * 1e3),
                format!("{:.2}", r.gelems_per_s),
                if r.config == outcome.best.config {
                    "<- winner".to_string()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    print_table(&["configuration", "median ms", "GElem/s", ""], &rows);
}

/// The original modelled scatter (kernel launch geometry on the GPU
/// model), kept behind `--model-scatter` for comparison with the paper.
fn model_scatter() {
    header("Modelled GPU scatter (launch-geometry search, device model)");
    for gpu in Gpu::ALL {
        let mut precisions = vec![Precision::Float16];
        if gpu.spec().supports_int1() {
            precisions.push(Precision::Int1);
        }
        for precision in precisions {
            let tuner = Tuner::new(
                gpu.device(),
                Tuner::paper_tuning_shape(precision),
                precision,
            );
            let Some(outcome) = tuner.tune(Strategy::Exhaustive, Objective::Performance) else {
                continue;
            };
            println!();
            println!(
                "{gpu} {precision}: {} valid configurations, best {:.0} TOPs/s",
                outcome.evaluated.len(),
                outcome.best.tops
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cache_path: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(tuner::default_cache_path);

    let (classes, strategy, reps, mode): (&[ShapeClass], Strategy, usize, &str) = if smoke {
        (
            &[ShapeClass::Small],
            Strategy::Random {
                samples: 4,
                seed: 0x7CBF,
            },
            1,
            "smoke",
        )
    } else {
        (&ShapeClass::ALL, Strategy::Exhaustive, 3, "full")
    };

    header(&format!(
        "Fig. 2 — auto-tuning the host micro-kernels ({mode} budget)"
    ));
    let mut cache = MicroTuneCache::for_this_host();
    println!("host: {}", cache.fingerprint);

    for precision in [Precision::Float16, Precision::Int1] {
        for &class in classes {
            let micro_tuner = MicroTuner::new(precision, class, reps);
            let Some(outcome) = micro_tuner.tune(strategy, Objective::Performance) else {
                continue;
            };
            println!();
            println!(
                "{precision} / {class} band (measured on {}): {} candidates",
                micro_tuner.shape(),
                outcome.evaluated.len()
            );
            print_scatter(&outcome);
            cache.record(&outcome);
        }
    }

    cache.store(&cache_path).expect("write micro-tuning cache");
    println!();
    println!(
        "wrote {} ({} entries)",
        cache_path.display(),
        cache.entries.len()
    );

    // Close the loop: a beamformer built through the public builder with
    // only the cache path must pick the tuned blocking up automatically.
    let class = classes[0];
    let shape = class.representative_shape();
    let weights = pseudo_random_matrix(shape.m, shape.k, 0xF16, 1.0);
    let beamformer = TensorCoreBeamformer::builder(Gpu::A100)
        .weights(weights)
        .samples_per_block(shape.n)
        .precision(Precision::Float16)
        .micro_cache(&cache_path)
        .build()
        .expect("tuned build succeeds");
    let expected = cache
        .lookup(Precision::Float16, class)
        .expect("float16 entry was just recorded");
    assert_eq!(
        beamformer.micro(),
        expected.config,
        "build() must consume the cache winner"
    );
    // The topology-agnostic path consumes the same lookup.
    let engine = TensorCoreBeamformer::builder(Gpu::A100)
        .weights(pseudo_random_matrix(shape.m, shape.k, 0xF16, 1.0))
        .samples_per_block(shape.n)
        .precision(Precision::Float16)
        .micro_cache(&cache_path)
        .build_engine()
        .expect("tuned engine build succeeds");
    println!(
        "winning config {} ({} / {} band, {:.2} GElem/s) consumed by build_engine() \
         [{} topology]",
        expected.config,
        Precision::Float16,
        class,
        expected.gelems_per_s,
        if engine.topology().is_sharded() {
            "pool"
        } else {
            "single"
        },
    );

    if args.iter().any(|a| a == "--model-scatter") {
        println!();
        model_scatter();
    }
}
