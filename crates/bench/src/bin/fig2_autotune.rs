//! Regenerates Fig. 2: the auto-tuning scatter — performance versus energy
//! efficiency of every valid tuning-parameter combination, per GPU
//! (float16 everywhere, 1-bit on the NVIDIA devices).
//!
//! Pass `--json` to also dump the full point clouds as JSON.

use ccglib::Precision;
use gpu_sim::Gpu;
use tcbf_bench::{header, print_table};
use tuner::{Objective, Strategy, Tuner};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    header("Fig. 2 — auto-tuning: performance vs energy efficiency of every configuration");
    let mut outcomes = Vec::new();
    for gpu in Gpu::ALL {
        let mut precisions = vec![Precision::Float16];
        if gpu.spec().supports_int1() {
            precisions.push(Precision::Int1);
        }
        for precision in precisions {
            let tuner = Tuner::new(
                gpu.device(),
                Tuner::paper_tuning_shape(precision),
                precision,
            );
            let Some(outcome) = tuner.tune(Strategy::Exhaustive, Objective::Performance) else {
                continue;
            };
            let evaluated = outcome.evaluated.len();
            let min_tops = outcome
                .evaluated
                .iter()
                .map(|r| r.tops)
                .fold(f64::INFINITY, f64::min);
            let best_energy = outcome
                .best_under(Objective::EnergyEfficiency)
                .map(|r| r.tops_per_joule)
                .unwrap_or(0.0);
            println!();
            println!(
                "{gpu} {precision}: {evaluated} valid configurations, \
                 performance {min_tops:.0}–{:.0} TOPs/s, best energy efficiency {best_energy:.2} TOPs/J",
                outcome.best.tops
            );
            // Print a compact summary of the scatter: the five best points.
            let mut sorted = outcome.evaluated.clone();
            sorted.sort_by(|a, b| b.tops.total_cmp(&a.tops));
            let rows: Vec<Vec<String>> = sorted
                .iter()
                .take(5)
                .map(|r| {
                    vec![
                        r.params.to_string(),
                        format!("{:.0}", r.tops),
                        format!("{:.2}", r.tops_per_joule),
                    ]
                })
                .collect();
            print_table(&["configuration", "TOPs/s", "TOPs/J"], &rows);
            outcomes.push(outcome);
        }
    }
    if json {
        println!();
        let rendered: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
        println!("[{}]", rendered.join(",\n"));
    }
}
