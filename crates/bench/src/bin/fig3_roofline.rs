//! Regenerates Fig. 3: roofline analysis of the ccglib GEMM kernel — the
//! float16/int1 tensor-core and float32 ceilings per GPU, plus the measured
//! small/big evaluation points.

use ccglib::benchmark::roofline_points;
use gpu_sim::Gpu;
use tcbf_bench::{header, print_table};

fn main() {
    header("Fig. 3 — roofline analysis");
    for gpu in Gpu::ALL {
        let device = gpu.device();
        let roofline = device.roofline();
        println!();
        println!(
            "{gpu} (memory bandwidth {:.0} GB/s)",
            roofline.mem_bandwidth_gbs
        );
        let ceiling_rows: Vec<Vec<String>> = roofline
            .ceilings
            .iter()
            .map(|c| {
                vec![
                    c.label.clone(),
                    format!("{:.0}", c.peak_tops),
                    format!("{:.1}", roofline.ridge_point(&c.label).unwrap_or(0.0)),
                ]
            })
            .collect();
        print_table(
            &["ceiling", "peak TOPs/s", "ridge AI (op/B)"],
            &ceiling_rows,
        );

        let points = roofline_points(&device).expect("roofline points");
        let point_rows: Vec<Vec<String>> = points
            .iter()
            .map(|(label, ai, tops)| {
                let ceiling = if label.starts_with("int1") {
                    "int1 tensor"
                } else {
                    "float16 tensor"
                };
                let attainable = roofline.attainable_tops(ceiling, *ai).unwrap_or(0.0);
                vec![
                    label.clone(),
                    format!("{ai:.1}"),
                    format!("{tops:.0}"),
                    format!("{attainable:.0}"),
                    format!("{:.0}%", 100.0 * tops / attainable.max(1e-9)),
                ]
            })
            .collect();
        print_table(
            &[
                "point",
                "AI (op/B)",
                "achieved TOPs/s",
                "roofline limit",
                "% of limit",
            ],
            &point_rows,
        );
    }
}
