//! Regenerates Fig. 4: performance and energy efficiency of the complex
//! GEMM across a range of matrix sizes, with the Table III kernel
//! parameters — float16 on all seven GPUs, 1-bit on the NVIDIA GPUs
//! (separate M/N and K sweeps).

use ccglib::benchmark::{sweep_int1, sweep_square};
use ccglib::Precision;
use gpu_sim::Gpu;
use tcbf_bench::{header, print_table};

fn main() {
    let sizes: Vec<usize> = (1..=16).map(|i| i * 1000).collect();

    header("Fig. 4a — 16-bit float: TFLOPs/s and TFLOPs/J vs matrix size (all axes)");
    let mut rows = Vec::new();
    for &size in &sizes {
        let mut row = vec![size.to_string()];
        for gpu in Gpu::ALL {
            let r = sweep_square(&gpu.device(), Precision::Float16, &[size]).unwrap()[0];
            row.push(format!("{:.0}/{:.2}", r.tops, r.tops_per_joule));
        }
        rows.push(row);
    }
    print_table(
        &[
            "size", "AD4000", "A100", "GH200", "W7700", "MI210", "MI300X", "MI300A",
        ],
        &rows,
    );

    header("Fig. 4b — 1-bit int: TOPs/s and TOPs/J vs matrix size (M, N), K = 524288");
    let mut rows = Vec::new();
    for &size in &sizes {
        let mut row = vec![size.to_string()];
        for gpu in Gpu::NVIDIA {
            let (mn, _) = sweep_int1(&gpu.device(), &[size], 524_288, &[], 8192).unwrap();
            row.push(format!("{:.0}/{:.1}", mn[0].tops, mn[0].tops_per_joule));
        }
        rows.push(row);
    }
    print_table(&["size (M,N)", "AD4000", "A100", "GH200"], &rows);

    header("Fig. 4b — 1-bit int: TOPs/s and TOPs/J vs matrix size (K), M = N = 8192");
    let k_sizes: Vec<usize> = (1..=10).map(|i| i * 100_000).collect();
    let mut rows = Vec::new();
    for &k in &k_sizes {
        let mut row = vec![k.to_string()];
        for gpu in Gpu::NVIDIA {
            let (_, ks) = sweep_int1(&gpu.device(), &[], 524_288, &[k], 8192).unwrap();
            row.push(format!("{:.0}/{:.1}", ks[0].tops, ks[0].tops_per_joule));
        }
        rows.push(row);
    }
    print_table(&["size (K)", "AD4000", "A100", "GH200"], &rows);
    println!();
    println!("Each cell is TOPs/s / TOPs/J.  The dips at sizes that are not multiples of the");
    println!("per-block tile reproduce the sawtooth pattern caused by padding.");
}
