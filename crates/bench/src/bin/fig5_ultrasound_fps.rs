//! Regenerates Fig. 5: sustainable ultrasound reconstruction frame rate
//! versus the number of voxels, for the GH200, A100 and AD4000, with the
//! 1000 frames-per-second real-time requirement marked.

use gpu_sim::Gpu;
use tcbf_bench::{header, print_table};
use ultrasound::{FrameRateModel, REAL_TIME_FPS};

fn main() {
    header("Fig. 5 — ultrasound frames per second vs number of voxels");
    println!("Configuration: 128 frequencies x 64 transceivers x 32 transmissions, 1-bit mode,");
    println!("including packing + transpose of the measurement matrix.  Real-time threshold: {REAL_TIME_FPS} fps.");
    println!();

    let gpus = [Gpu::Gh200, Gpu::A100, Gpu::Ad4000];
    let models: Vec<FrameRateModel> = gpus
        .iter()
        .map(|g| FrameRateModel::paper(&g.device()))
        .collect();
    let sweeps: Vec<_> = models.iter().map(|m| m.sweep(128, 10)).collect();

    let mut rows = Vec::new();
    for i in 0..sweeps[0].len() {
        let mut row = vec![sweeps[0][i].voxels.to_string()];
        for sweep in &sweeps {
            row.push(format!(
                "{:.0}{}",
                sweep[i].frames_per_second,
                if sweep[i].real_time { " *" } else { "" }
            ));
        }
        rows.push(row);
    }
    print_table(&["voxels", "GH200 fps", "A100 fps", "AD4000 fps"], &rows);
    println!();
    println!("(* meets the real-time requirement)");

    let full = 128 * 128 * 128;
    for (gpu, model) in gpus.iter().zip(&models) {
        let fraction = model.real_time_voxel_capacity(full) as f64 / full as f64;
        println!(
            "{gpu}: can reconstruct {:.0}% of the full 128^3 volume in real time",
            100.0 * fraction
        );
    }

    // A second of streamed three-plane imaging as the session API reports
    // it: aggregate throughput and energy of the GEMM stage over the run.
    println!();
    let planes = 3 * 128 * 128;
    for (gpu, model) in gpus.iter().zip(&models) {
        let session = model.streaming_report(planes, 10);
        println!(
            "{gpu}: 10 streamed batches over 3 planes — {:.0} TOPs/s aggregate, {:.1} TOPs/J, {:.3} J",
            session.aggregate_tops(),
            session.tops_per_joule(),
            session.total_joules
        );
    }
}
