//! Regenerates Fig. 6 (maximum-intensity projections of the beamformed
//! flow volume) on a synthetic vascular phantom, plus the Section V-A
//! offline-dataset timing comparison (TCBF vs the Octave/OpenCL float32
//! baseline).
//!
//! The in-vivo mouse-brain dataset is not public; the synthetic phantom
//! exercises the identical pipeline (model × measurements, Doppler clutter
//! removal, 1-bit sign quantisation, ensemble averaging, projections) at a
//! reduced size so the functional reconstruction runs in seconds on a CPU.

use gpu_sim::Gpu;
use tcbf_bench::{ascii_image, header};
use ultrasound::{
    offline_comparison, AcousticModel, DopplerMode, FlowPhantom, ImagingConfig,
    ReconstructionPrecision, Reconstructor,
};

fn main() {
    header(
        "Fig. 6 — maximum-intensity projections of the beamformed flow volume (synthetic phantom)",
    );
    // Reduced-size functional reconstruction (the paper's sub-volume is
    // 36x30x30 voxels with K = 524288; here both are scaled down so the
    // functional path runs quickly on the CPU substrate).
    let config = ImagingConfig::small(24, 12, 4);
    let dims = (18, 15, 15);
    let voxels = ImagingConfig::voxel_grid(dims.0, dims.1, dims.2, 0.01, 0.02);
    let model = AcousticModel::build(&config, &voxels);
    let phantom = FlowPhantom::two_vessels(0.01, 0.02);
    let measurements = phantom.measurements(&model, 24);
    let reconstructor = Reconstructor::new(
        &Gpu::A100.device(),
        ReconstructionPrecision::Int1,
        DopplerMode::MeanRemoval,
    );
    let volume = reconstructor
        .reconstruct(&model, &measurements, dims)
        .expect("reconstruction");

    for (axis, name) in [(0usize, "sagittal"), (1, "coronal"), (2, "axial")] {
        let (img, w, h) = volume.max_intensity_projection(axis);
        println!();
        println!("{name} projection ({w} x {h}):");
        print!("{}", ascii_image(&img, w, h));
    }
    println!();
    println!(
        "Reconstruction GEMM: {:.1} TOPs/s, {:.1} TOPs/J, {:.3} ms predicted on the simulated A100 (1-bit mode)",
        volume.report.achieved_tops,
        volume.report.tops_per_joule,
        volume.report.predicted.elapsed_s * 1e3
    );

    header("Section V-A — pre-recorded dataset: TCBF vs Octave/OpenCL float32 baseline");
    println!("Shape: M = 38880 voxels, N = 8041 frames, K = 524288 (128 freq x 64 transceivers x 64 transmissions)");
    for gpu in [Gpu::A100, Gpu::Gh200] {
        let c = offline_comparison(&gpu.device());
        println!(
            "{gpu}: TCBF {:.2} s (budget {:.0} s) vs float32 baseline {:.0} s  ->  {:.0}x speed-up",
            c.tcbf_seconds, c.real_time_budget_seconds, c.baseline_seconds, c.speedup
        );
    }
    println!();
    println!("Paper: TCBF 1.2 s vs ~15 minutes in Octave — nearly three orders of magnitude.");
}
