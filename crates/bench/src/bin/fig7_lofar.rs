//! Regenerates Fig. 7: LOFAR tensor-core beamformer performance (TFLOPs/s)
//! and energy efficiency (TFLOPs/J) versus the number of receivers, for all
//! seven GPUs, with the float32 reference beamformer lines on the A100 and
//! GH200.

use gpu_sim::Gpu;
use radioastro::performance::{lofar_sweep, paper_receiver_counts, reference_sweep, LofarConfig};
use tcbf_bench::{header, print_table};

fn main() {
    let config = LofarConfig::paper();
    // Subsample the 8..512 sweep for a readable table; the full resolution
    // is available with --full.
    let full = std::env::args().any(|a| a == "--full");
    let receivers: Vec<usize> = if full {
        paper_receiver_counts()
    } else {
        paper_receiver_counts().into_iter().step_by(8).collect()
    };

    header("Fig. 7 — LOFAR beamformer: TFLOPs/s (and TFLOPs/J) vs number of receivers");
    println!("Configuration: 1024 beams, 1024 samples, batch 256 (channels x polarisations).");
    println!();

    let sweeps: Vec<(String, Vec<radioastro::SweepPoint>)> = Gpu::ALL
        .iter()
        .map(|gpu| {
            (
                gpu.name().to_string(),
                lofar_sweep(&gpu.device(), &config, &receivers),
            )
        })
        .chain([
            (
                "Ref A100".to_string(),
                reference_sweep(&Gpu::A100.device(), &config, &receivers),
            ),
            (
                "Ref GH200".to_string(),
                reference_sweep(&Gpu::Gh200.device(), &config, &receivers),
            ),
        ])
        .collect();

    let mut columns: Vec<&str> = vec!["receivers"];
    for (name, _) in &sweeps {
        columns.push(name.as_str());
    }
    let mut rows = Vec::new();
    for (i, &k) in receivers.iter().enumerate() {
        let mut row = vec![k.to_string()];
        for (_, sweep) in &sweeps {
            row.push(format!(
                "{:.0}/{:.2}",
                sweep[i].tflops, sweep[i].tflops_per_joule
            ));
        }
        rows.push(row);
    }
    print_table(&columns, &rows);

    println!();
    let typical = LofarConfig::TYPICAL_STATIONS;
    for gpu in [Gpu::A100, Gpu::Gh200] {
        let speedup =
            radioastro::performance::speedup_over_reference(&gpu.device(), &config, typical);
        println!("{gpu}: {speedup:.1}x faster than the reference beamformer at the typical {typical}-station configuration");
    }
    let max_speedup = receivers
        .iter()
        .map(|&k| radioastro::performance::speedup_over_reference(&Gpu::A100.device(), &config, k))
        .fold(0.0f64, f64::max);
    println!("A100: up to {max_speedup:.0}x faster than the reference beamformer over the sweep");
}
