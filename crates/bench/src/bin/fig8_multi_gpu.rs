//! Multi-GPU scaling of the sharded beamformer: streams one LOFAR-style
//! observation through 1/2/4-device pools (plus a heterogeneous mix) and
//! reports aggregate throughput, wall clock and parallel speed-up,
//! verifying along the way that every pool produces element-wise identical
//! output to the single-device reference.

use beamform::ShardPolicy;
use gpu_sim::{DevicePool, Gpu};
use radioastro::{CentralBeamformer, SkySource, StationBeamlets};
use tcbf_bench::{header, print_table};

fn observation(blocks: usize) -> Vec<StationBeamlets> {
    (0..blocks)
        .map(|i| {
            StationBeamlets::synthesise(
                48,
                64,
                150e6,
                &[SkySource {
                    azimuth: 2e-4,
                    amplitude: 1.0,
                }],
                0.0,
                128,
                0.05,
                23 + i as u64,
            )
        })
        .collect()
}

fn main() {
    header("Fig. 8 — multi-GPU scaling of the sharded central beamformer");
    println!("Observation: 48 stations, 16 blocks x 128 samples, 15 tied-array beams.");
    println!("Policy: capacity-weighted (blocks proportional to each device's peak TOPs).");
    println!();

    let blocks = observation(16);
    let beam_azimuths: Vec<f64> = (0..15).map(|i| (i as f64 - 7.0) * 1e-4).collect();
    let central = CentralBeamformer::new(&Gpu::Gh200.device(), beam_azimuths);

    let (reference, single) = central
        .stream_coherent(&blocks)
        .expect("single-device stream");

    let pools: Vec<(String, DevicePool)> = vec![
        ("1x GH200".into(), DevicePool::homogeneous(Gpu::Gh200, 1)),
        ("2x GH200".into(), DevicePool::homogeneous(Gpu::Gh200, 2)),
        ("4x GH200".into(), DevicePool::homogeneous(Gpu::Gh200, 4)),
        (
            "GH200+A100+MI300X+AD4000".into(),
            DevicePool::from_gpus(&[Gpu::Gh200, Gpu::A100, Gpu::Mi300x, Gpu::Ad4000]),
        ),
    ];

    let mut rows = Vec::new();
    for (name, pool) in &pools {
        let (outputs, report) = central
            .stream_coherent_sharded(pool, ShardPolicy::CapacityWeighted, &blocks)
            .expect("sharded stream");
        // Conformance: sharding is a pure scheduling decision.
        for (sharded, expected) in outputs.iter().zip(&reference) {
            assert_eq!(
                sharded.complex_beams.as_ref().unwrap(),
                expected.complex_beams.as_ref().unwrap(),
                "sharded output diverged on {name}"
            );
        }
        rows.push(vec![
            name.clone(),
            format!("{}", pool.len()),
            format!("{:.3}", report.aggregate_tops()),
            format!("{:.2}", report.aggregate_tops() / single.aggregate_tops()),
            format!("{:.3}", report.wall_clock_s() * 1e3),
            format!("{:.2}", report.speedup_over_serial()),
            format!("{:.0}", report.effective_fps()),
        ]);
    }
    print_table(
        &[
            "pool",
            "devices",
            "agg TOPs/s",
            "vs 1 dev",
            "wall ms",
            "par speedup",
            "blocks/s",
        ],
        &rows,
    );
    println!();
    println!(
        "Single GH200 aggregate: {:.3} TOPs/s over {} blocks; every pool above produced",
        single.aggregate_tops(),
        single.blocks
    );
    println!("element-wise identical beams — only the schedule and the wall clock change.");
}
