//! Wall-clock microbenchmark of the functional GEMM hot path.
//!
//! Unlike the figure/table binaries, which report *modelled* device
//! performance, this harness measures the real elapsed time of the
//! functional kernels that every session, shard and conformance test
//! executes — the code rewritten for throughput in the hot-path PR.  For
//! each shape in a small grid, and for both precisions (and both 1-bit
//! formulations), it times:
//!
//! * the **baseline**: the pre-rewrite kernels, reimplemented here
//!   verbatim — per-element `f16::to_f32` in the innermost loop, and four
//!   separate masked popcount passes per 1-bit output element;
//! * the **fused** path: the current `ccglib` kernels (decode-once f32
//!   planes + blocked micro-kernel, fused `dot4` popcounts) under the
//!   default [`MicroKernelConfig`];
//! * the **tuned** path: every other blocking on the per-precision
//!   [`MicroKernelConfig::menu_for`] menu, keeping the fastest.  The
//!   default seeds the comparison, so `tuned <= fused` on every shape by
//!   construction — the JSON records the winning config and its gain.
//!
//! Each measurement is a median of `reps` runs after a warmup run, and the
//! fused output is checked against the baseline before timings are
//! reported, so the harness cannot record a fast-but-wrong kernel.  The
//! results are written to `BENCH_gemm.json` at the repository root, giving
//! subsequent PRs a wall-clock trajectory to regress against.
//!
//! Usage: `hotpath_bench [--smoke] [--out PATH]`
//! `--smoke` shrinks the grid and repetition count for CI.

use ccglib::matrix::{F16Matrix, HostComplexMatrix, Int1Matrix};
use ccglib::synth::pseudo_random_matrix;
use ccglib::{gemm, reference_gemm, MicroKernelConfig, Precision};
use gpu_sim::BitOp;
use rayon::prelude::*;
use std::time::Instant;
use tcbf_bench::{header, print_table};
use tcbf_types::Complex32;

/// One measured (kernel, shape, formulation) cell.
struct BenchEntry {
    kernel: &'static str,
    bit_op: Option<BitOp>,
    m: usize,
    n: usize,
    k: usize,
    baseline_median_s: f64,
    fused_median_s: f64,
    tuned_median_s: f64,
    tuned_config: MicroKernelConfig,
}

impl BenchEntry {
    /// Wall-clock speedup of the fused path over the baseline.
    fn speedup(&self) -> f64 {
        self.baseline_median_s / self.fused_median_s
    }

    /// Throughput of the fused path in GElem/s: complex multiply-accumulate
    /// elements (`M·N·K`) per second of wall-clock time.
    fn gelems_per_s(&self) -> f64 {
        (self.m * self.n * self.k) as f64 / self.fused_median_s / 1e9
    }

    /// Wall-clock gain of the best menu blocking over the default one.
    /// `>= 1.0` by construction: the default is a member of the menu, so
    /// the winner is never slower than it.
    fn tuned_speedup_vs_default(&self) -> f64 {
        self.fused_median_s / self.tuned_median_s
    }
}

/// Times every micro-kernel blocking on the menu for `precision` with
/// `run(config)` and returns the winner `(median_s, config)`.  The default
/// blocking's already-measured `default_median_s` seeds the comparison, so
/// the tuned time can only improve on it.
fn best_menu_config(
    precision: Precision,
    default_median_s: f64,
    reps: usize,
    mut run: impl FnMut(&MicroKernelConfig),
) -> (f64, MicroKernelConfig) {
    let mut best = (default_median_s, MicroKernelConfig::default());
    for config in MicroKernelConfig::menu_for(precision) {
        if config == MicroKernelConfig::default() {
            continue;
        }
        let median = median_secs(reps, || run(&config));
        if median < best.0 {
            best = (median, config);
        }
    }
    best
}

/// The pre-rewrite float16 kernel: widens all four operand values to f32
/// inside the innermost loop (`O(M·N·K)` conversions).
fn baseline_gemm_f16(a: &F16Matrix, b_t: &F16Matrix) -> HostComplexMatrix {
    let m = a.rows();
    let n = b_t.rows();
    let k = a.cols();
    let (a_re, a_im) = (a.re(), a.im());
    let (b_re, b_im) = (b_t.re(), b_t.im());
    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let a_re_row = &a_re[i * k..(i + 1) * k];
        let a_im_row = &a_im[i * k..(i + 1) * k];
        for (j, slot) in row.iter_mut().enumerate() {
            let b_re_row = &b_re[j * k..(j + 1) * k];
            let b_im_row = &b_im[j * k..(j + 1) * k];
            let mut acc_rr = 0.0f32;
            let mut acc_ii = 0.0f32;
            let mut acc_ri = 0.0f32;
            let mut acc_ir = 0.0f32;
            for kk in 0..k {
                let ar = a_re_row[kk].to_f32();
                let ai = a_im_row[kk].to_f32();
                let br = b_re_row[kk].to_f32();
                let bi = b_im_row[kk].to_f32();
                acc_rr += ar * br;
                acc_ii += ai * bi;
                acc_ri += ar * bi;
                acc_ir += ai * br;
            }
            *slot = Complex32::new(acc_rr - acc_ii, acc_ri + acc_ir);
        }
    });
    HostComplexMatrix::from_data(m, n, out).expect("baseline shape is consistent")
}

/// The pre-rewrite 1-bit kernel: four separate dot-product passes per
/// output element, each re-deriving the tail mask per word, with the
/// `K_pad` correction re-read inside the element loop.
fn baseline_gemm_int1(a: &Int1Matrix, b_t: &Int1Matrix, op: BitOp) -> HostComplexMatrix {
    let m = a.rows();
    let n = b_t.rows();
    let dot = |x: &tcbf_types::PackedBits, y: &tcbf_types::PackedBits| -> i32 {
        match op {
            BitOp::Xor => x.dot_xor(y),
            BitOp::And => x.dot_and(y),
        }
    };
    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let ar = a.re_row(i);
        let ai = a.im_row(i);
        for (j, slot) in row.iter_mut().enumerate() {
            let br = b_t.re_row(j);
            let bi = b_t.im_row(j);
            let k_pad = a.k_padding() as i32;
            let rr = dot(ar, br);
            let ii = dot(ai, bi);
            let ri = dot(ar, bi);
            let ir = dot(ai, br);
            let re = (rr - k_pad) - (ii - k_pad);
            let im = (ri - k_pad) + (ir - k_pad);
            *slot = Complex32::new(re as f32, im as f32);
        }
    });
    HostComplexMatrix::from_data(m, n, out).expect("baseline shape is consistent")
}

/// Median elapsed seconds of `reps` runs of `f` after one warmup run.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: page in operands, spin up the thread pool
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_f16(m: usize, n: usize, k: usize, reps: usize) -> BenchEntry {
    let a_host = pseudo_random_matrix(m, k, 0xF16 + (m * n * k) as u64, 1.0);
    let b_host = pseudo_random_matrix(n, k, 0xB00 + (m + n + k) as u64, 1.0);
    let a = F16Matrix::from_host(&a_host);
    let b = F16Matrix::from_host(&b_host);

    // Correctness guard: the fused kernel must agree with the baseline to
    // within reassociation-level rounding before its time is recorded.
    let fused_out = gemm::gemm_f16(&a, &b).expect("shapes agree");
    let base_out = baseline_gemm_f16(&a, &b);
    let tol = 1e-3 * k as f32;
    let diff = fused_out.max_abs_diff(&base_out);
    assert!(diff < tol, "f16 fused/baseline diverged: {diff} >= {tol}");

    let baseline_median_s = median_secs(reps, || {
        std::hint::black_box(baseline_gemm_f16(&a, &b));
    });
    let fused_median_s = median_secs(reps, || {
        std::hint::black_box(gemm::gemm_f16(&a, &b).expect("shapes agree"));
    });
    let (tuned_median_s, tuned_config) =
        best_menu_config(Precision::Float16, fused_median_s, reps, |config| {
            std::hint::black_box(gemm::gemm_f16_with(&a, &b, config).expect("shapes agree"));
        });
    BenchEntry {
        kernel: "f16",
        bit_op: None,
        m,
        n,
        k,
        baseline_median_s,
        fused_median_s,
        tuned_median_s,
        tuned_config,
    }
}

fn bench_int1(m: usize, n: usize, k: usize, op: BitOp, reps: usize) -> BenchEntry {
    let a_host = pseudo_random_matrix(m, k, 0x1B17 + (m * k) as u64, 1.0);
    let b_host = pseudo_random_matrix(n, k, 0x0B17 + (n * k) as u64, 1.0);
    let a = Int1Matrix::from_host_padded(&a_host, 256);
    let b = Int1Matrix::from_host_padded(&b_host, 256);

    // Correctness guard: 1-bit outputs are integers, so the fused kernel
    // must match the baseline (and the decoded ±1 reference) exactly.
    let fused_out = gemm::gemm_int1(&a, &b, op).expect("shapes agree");
    assert_eq!(
        fused_out,
        baseline_gemm_int1(&a, &b, op),
        "int1 fused/baseline diverged"
    );
    if m * n * k <= 64 * 64 * 2048 {
        let reference = reference_gemm(&a.to_host(), &b.to_host()).expect("reference shapes agree");
        assert!(
            fused_out.max_abs_diff(&reference) < 0.5,
            "int1 vs reference"
        );
    }

    let baseline_median_s = median_secs(reps, || {
        std::hint::black_box(baseline_gemm_int1(&a, &b, op));
    });
    let fused_median_s = median_secs(reps, || {
        std::hint::black_box(gemm::gemm_int1(&a, &b, op).expect("shapes agree"));
    });
    let (tuned_median_s, tuned_config) =
        best_menu_config(Precision::Int1, fused_median_s, reps, |config| {
            std::hint::black_box(gemm::gemm_int1_with(&a, &b, op, config).expect("shapes agree"));
        });
    BenchEntry {
        kernel: "int1",
        bit_op: Some(op),
        m,
        n,
        k,
        baseline_median_s,
        fused_median_s,
        tuned_median_s,
        tuned_config,
    }
}

/// Serialises the results by hand (the workspace has no `serde_json`),
/// matching the stable schema documented in the README.
fn to_json(mode: &str, reps: usize, entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tcbf-hotpath-bench/v2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let bit_op = match e.bit_op {
            Some(BitOp::Xor) => "\"xor\"".to_string(),
            Some(BitOp::And) => "\"and\"".to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"bit_op\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"baseline_median_s\": {:.9}, \"fused_median_s\": {:.9}, \"speedup\": {:.3}, \
             \"gelems_per_s\": {:.4}, \"tuned_median_s\": {:.9}, \"tuned_config\": \"{}\", \
             \"tuned_speedup_vs_default\": {:.3}}}{}\n",
            e.kernel,
            bit_op,
            e.m,
            e.n,
            e.k,
            e.baseline_median_s,
            e.fused_median_s,
            e.speedup(),
            e.gelems_per_s(),
            e.tuned_median_s,
            e.tuned_config,
            e.tuned_speedup_vs_default(),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    // The shape grid deliberately includes one K that is not a multiple of
    // the 256-bit packing granularity or the f16 k-tile, so the tail paths
    // are timed as well as tested.
    let (grid, reps, mode) = if smoke {
        (
            vec![(64usize, 64usize, 1024usize), (96, 96, 1000)],
            3,
            "smoke",
        )
    } else {
        (
            vec![
                (256usize, 256usize, 2048usize),
                (128, 512, 1024),
                (512, 128, 4096),
                (96, 96, 1000),
            ],
            5,
            "full",
        )
    };

    header(&format!("GEMM hot path wall-clock ({mode} grid)"));
    let mut entries = Vec::new();
    for &(m, n, k) in &grid {
        entries.push(bench_f16(m, n, k, reps));
        for op in [BitOp::Xor, BitOp::And] {
            entries.push(bench_int1(m, n, k, op, reps));
        }
    }

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.kernel.to_string(),
                e.bit_op.map_or("—".to_string(), |op| op.to_string()),
                format!("{}x{}x{}", e.m, e.n, e.k),
                format!("{:.2}", e.baseline_median_s * 1e3),
                format!("{:.2}", e.fused_median_s * 1e3),
                format!("{:.2}x", e.speedup()),
                format!("{:.2}", e.gelems_per_s()),
                format!("{:.2}", e.tuned_median_s * 1e3),
                e.tuned_config.to_string(),
                format!("{:.2}x", e.tuned_speedup_vs_default()),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "bit op",
            "MxNxK",
            "baseline ms",
            "fused ms",
            "speedup",
            "GElem/s",
            "tuned ms",
            "tuned cfg",
            "vs default",
        ],
        &rows,
    );

    let min_speedup = |kernel: &str| -> f64 {
        entries
            .iter()
            .filter(|e| e.kernel == kernel)
            .map(BenchEntry::speedup)
            .fold(f64::INFINITY, f64::min)
    };
    let max_tuned_gain = entries
        .iter()
        .map(BenchEntry::tuned_speedup_vs_default)
        .fold(1.0f64, f64::max);
    println!();
    println!(
        "headline: f16 min speedup {:.2}x, int1 min speedup {:.2}x over the pre-rewrite kernels",
        min_speedup("f16"),
        min_speedup("int1")
    );
    println!(
        "autotune: best menu blocking gains up to {:.2}x over the default (never slower: \
         the default is on the menu)",
        max_tuned_gain
    );

    let json = to_json(mode, reps, &entries);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
