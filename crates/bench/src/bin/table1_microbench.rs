//! Regenerates Table I: tensor-core micro-benchmark results (measured and
//! theoretical peak TeraOps/s) for every evaluated GPU, float16 and the
//! four 1-bit fragment/operand combinations.

use cudapeak::table1;
use tcbf_bench::{fmt_opt, header, print_table};

fn main() {
    header("Table I — tensor-core micro-benchmarks (measured / theoretical TOPs/s)");
    let table = table1();
    let columns = [
        "Input/output",
        "Fragment",
        "AD4000",
        "A100",
        "GH200",
        "W7700",
        "MI210",
        "MI300X",
        "MI300A",
    ];
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|(case, cells)| {
            let mut row = vec![case.type_label(), case.fragment_label()];
            for cell in cells {
                row.push(match cell {
                    Some(r) => format!(
                        "{} / {}",
                        fmt_opt(r.measured_tops, 0),
                        fmt_opt(r.theoretical_tops, 0)
                    ),
                    None => "N/A".to_string(),
                });
            }
            row
        })
        .collect();
    print_table(&columns, &rows);
    println!();
    println!(
        "Note: 1-bit precision is available on NVIDIA GPUs only; the GH200 reaches only ~65% of"
    );
    println!("its peak through the WMMA interface, and its XOR operation is emulated in software.");
}
