//! Regenerates Table II (the 1-bit vector dot-product worked example) and
//! Fig. 1 (the 1-bit complex constellation).

use tcbf_bench::{header, print_table};
use tcbf_types::{OneBitComplex, PackedBits};

fn main() {
    header("Fig. 1 — 1-bit complex constellation");
    let rows: Vec<Vec<String>> = OneBitComplex::constellation()
        .iter()
        .map(|p| {
            vec![
                format!("{:02b}", p.binary_code()),
                format!("{:+.0}{:+.0}i", p.to_complex32().re, p.to_complex32().im),
            ]
        })
        .collect();
    print_table(&["binary", "value"], &rows);

    header("Table II — 1-bit vector dot product (K = 4)");
    let a_dec = [1i32, -1, 1, -1];
    let b_dec = [1i32, 1, -1, -1];
    let a = PackedBits::pack(&a_dec.map(|v| v > 0));
    let b = PackedBits::pack(&b_dec.map(|v| v > 0));
    let rows: Vec<Vec<String>> = (0..4)
        .map(|k| {
            vec![
                a_dec[k].to_string(),
                b_dec[k].to_string(),
                (a_dec[k] * b_dec[k]).to_string(),
                u8::from(a.get(k)).to_string(),
                u8::from(b.get(k)).to_string(),
                u8::from(a.get(k) != b.get(k)).to_string(),
            ]
        })
        .collect();
    print_table(&["A", "B", "A*B", "A(bin)", "B(bin)", "A xor B"], &rows);
    let popc: u32 = (0..4).map(|k| u32::from(a.get(k) != b.get(k))).sum();
    println!();
    println!(
        "sum(A*B)            = {}",
        a_dec.iter().zip(&b_dec).map(|(x, y)| x * y).sum::<i32>()
    );
    println!("popc(A xor B)       = {popc}");
    println!("K - 2 popc(A xor B) = {}", a.dot_xor(&b));
    println!("AND formulation     = {}", a.dot_and(&b));
    assert_eq!(a.dot_xor(&b), a.dot_and(&b));
}
