//! Regenerates Table III: the best matrix-multiplication kernel per GPU —
//! throughput, energy efficiency and the optimal tuning-parameter values.

use ccglib::Precision;
use gpu_sim::Gpu;
use tcbf_bench::{header, print_table};
use tuner::{Objective, Strategy, Tuner};

fn main() {
    header("Table III — best kernel per GPU (exhaustively tuned)");
    let columns = [
        "GPU",
        "Precision",
        "TOPs/s",
        "TOPs/J",
        "M/block",
        "M/warp",
        "N/block",
        "N/warp",
        "Buffers",
    ];
    let mut rows = Vec::new();
    for precision in [Precision::Float16, Precision::Int1] {
        for gpu in Gpu::ALL {
            if precision == Precision::Int1 && !gpu.spec().supports_int1() {
                continue;
            }
            let tuner = Tuner::new(
                gpu.device(),
                Tuner::paper_tuning_shape(precision),
                precision,
            );
            let Some(outcome) = tuner.tune(Strategy::Exhaustive, Objective::Performance) else {
                continue;
            };
            let p = outcome.best.params;
            rows.push(vec![
                gpu.name().to_string(),
                precision.to_string(),
                format!("{:.0}", outcome.best.tops),
                format!("{:.1}", outcome.best.tops_per_joule),
                p.m_per_block.to_string(),
                p.m_per_warp.to_string(),
                p.n_per_block.to_string(),
                p.n_per_warp.to_string(),
                p.buffers.to_string(),
            ]);
        }
    }
    print_table(&columns, &rows);
    println!();
    println!(
        "Paper values for comparison (Table III): AD4000 93/0.7, A100 173/0.8, GH200 335/0.8,"
    );
    println!(
        "W7700 45/0.3, MI210 147/1.3, MI300X 603/0.9, MI300A 518/0.8 (float16 TOPs/s / TOPs/J);"
    );
    println!("AD4000 1400/10.7, A100 3080/12.3, GH200 3780/6.0 (int1).");
}
