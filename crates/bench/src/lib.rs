//! Shared helpers for the table/figure-regenerating binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index) and prints it as an aligned
//! text table plus, when useful, machine-readable JSON.  The helpers here
//! keep the binaries small and the formatting consistent.

#![deny(missing_docs)]

/// Formats a floating point value with a sensible number of digits for a
/// performance table ("—" for missing values).
pub fn fmt_opt(value: Option<f64>, digits: usize) -> String {
    match value {
        Some(v) => format!("{v:.digits$}"),
        None => "—".to_string(),
    }
}

/// Prints a section header for a regenerated table or figure.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len()));
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Prints an aligned table: a header row followed by data rows.
pub fn print_table(columns: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a greyscale image (row-major, arbitrary positive scale) as
/// ASCII art, used for the Fig. 6 maximum-intensity projections.
pub fn ascii_image(pixels: &[f64], width: usize, height: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = pixels.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let mut out = String::with_capacity((width + 1) * height);
    for y in 0..height {
        for x in 0..width {
            let v = (pixels[y * width + x] / max).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_opt_handles_missing_values() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "—");
    }

    #[test]
    fn ascii_image_maps_intensity_to_ramp() {
        let img = ascii_image(&[0.0, 1.0, 0.5, 0.0], 2, 2);
        let lines: Vec<&str> = img.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().count(), 2);
        assert_eq!(lines[0].chars().next().unwrap(), ' ');
        assert_eq!(lines[0].chars().nth(1).unwrap(), '@');
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }
}
