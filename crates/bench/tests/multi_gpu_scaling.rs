//! Acceptance test for the multi-device execution layer: a 4-device
//! capacity-weighted shard run of the radio-astronomy streaming workload
//! must produce element-wise identical output to the single-device run and
//! report at least 3x the single-device aggregate throughput.

use beamform::ShardPolicy;
use gpu_sim::{DevicePool, Gpu};
use radioastro::{CentralBeamformer, SkySource, StationBeamlets};

fn observation(blocks: usize) -> Vec<StationBeamlets> {
    (0..blocks)
        .map(|i| {
            StationBeamlets::synthesise(
                32,
                48,
                150e6,
                &[SkySource {
                    azimuth: 2e-4,
                    amplitude: 1.0,
                }],
                0.0,
                64,
                0.05,
                31 + i as u64,
            )
        })
        .collect()
}

#[test]
fn four_device_shard_is_identical_and_at_least_3x_the_aggregate_tops() {
    let blocks = observation(12);
    let beam_azimuths: Vec<f64> = (0..9).map(|i| (i as f64 - 4.0) * 1e-4).collect();
    let central = CentralBeamformer::new(&Gpu::A100.device(), beam_azimuths);

    let (single_outputs, single_report) = central
        .stream_coherent(&blocks)
        .expect("single-device stream");

    let pool = DevicePool::homogeneous(Gpu::A100, 4);
    let (sharded_outputs, sharded_report) = central
        .stream_coherent_sharded(&pool, ShardPolicy::CapacityWeighted, &blocks)
        .expect("sharded stream");

    // Element-wise identical output, block for block.
    assert_eq!(sharded_outputs.len(), single_outputs.len());
    for (sharded, single) in sharded_outputs.iter().zip(&single_outputs) {
        assert_eq!(
            sharded.complex_beams.as_ref().unwrap(),
            single.complex_beams.as_ref().unwrap()
        );
    }

    // >= 3x the single-device aggregate TOPs (4 members, so the aggregate
    // sums four concurrent streams; 3x leaves room for uneven shards).
    let speedup = sharded_report.aggregate_tops() / single_report.aggregate_tops();
    assert!(
        speedup >= 3.0,
        "aggregate speed-up {speedup:.2} below 3x: sharded {:.3} vs single {:.3} TOPs/s",
        sharded_report.aggregate_tops(),
        single_report.aggregate_tops()
    );

    // The parallel wall clock also beats a serial run by at least 3x.
    assert!(sharded_report.speedup_over_serial() >= 3.0);

    // Every pool member took part.
    assert!(sharded_report
        .per_device()
        .iter()
        .all(|shard| shard.report.blocks > 0));
}
