//! Built-in benchmark tools.
//!
//! "We take the best parameters from Table III, and use the built-in
//! benchmark tools of ccglib to measure performance and energy efficiency
//! across a range of matrix sizes." (Section IV-C.)  These helpers run (or
//! predict) a GEMM for a given shape and return the paper's two metrics —
//! TeraOps/s and TeraOps/J — so the figure-regenerating binaries in the
//! `tcbf-bench` crate stay thin.

use crate::error::Result;
use crate::plan::Gemm;
use crate::{Precision, TuningParameters};
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use tcbf_types::GemmShape;

/// One benchmark measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputResult {
    /// Problem shape.
    pub shape: GemmShape,
    /// Achieved throughput in TeraOps/s.
    pub tops: f64,
    /// Energy efficiency in TeraOps/J.
    pub tops_per_joule: f64,
    /// Predicted execution time in seconds.
    pub elapsed_s: f64,
    /// Arithmetic intensity in operations per byte (touch-once traffic).
    pub arithmetic_intensity: f64,
}

/// Measures one shape with the shipped default parameters.
pub fn measure(
    device: &Device,
    shape: GemmShape,
    precision: Precision,
) -> Result<ThroughputResult> {
    let gemm = Gemm::new(device, shape, precision)?;
    Ok(result_from(&gemm, shape, precision))
}

/// Measures one shape with explicit tuning parameters (used by the tuner
/// and by the auto-tuning scatter of Fig. 2).
pub fn measure_with_params(
    device: &Device,
    shape: GemmShape,
    precision: Precision,
    params: TuningParameters,
) -> Result<ThroughputResult> {
    let gemm = Gemm::with_params(device, shape, precision, params)?;
    Ok(result_from(&gemm, shape, precision))
}

fn result_from(gemm: &Gemm, shape: GemmShape, precision: Precision) -> ThroughputResult {
    let report = gemm.predict();
    ThroughputResult {
        shape,
        tops: report.achieved_tops,
        tops_per_joule: report.tops_per_joule,
        elapsed_s: report.predicted.elapsed_s,
        arithmetic_intensity: shape.arithmetic_intensity(precision.input_bits()),
    }
}

/// Sweeps square matrices (`M = N = K = size`, batch 1) over a list of
/// sizes — the float16 panel of Fig. 4.
pub fn sweep_square(
    device: &Device,
    precision: Precision,
    sizes: &[usize],
) -> Result<Vec<ThroughputResult>> {
    sizes
        .iter()
        .map(|&s| measure(device, GemmShape::new(s, s, s), precision))
        .collect()
}

/// Sweeps the 1-bit shape of Fig. 4: `M = N = size` with a fixed large `K`,
/// and a separate sweep over `K` with fixed `M`, `N`.
pub fn sweep_int1(
    device: &Device,
    mn_sizes: &[usize],
    fixed_k: usize,
    k_sizes: &[usize],
    fixed_mn: usize,
) -> Result<(Vec<ThroughputResult>, Vec<ThroughputResult>)> {
    let mn: Result<Vec<_>> = mn_sizes
        .iter()
        .map(|&s| measure(device, GemmShape::new(s, s, fixed_k), Precision::Int1))
        .collect();
    let k: Result<Vec<_>> = k_sizes
        .iter()
        .map(|&kk| {
            measure(
                device,
                GemmShape::new(fixed_mn, fixed_mn, kk),
                Precision::Int1,
            )
        })
        .collect();
    Ok((mn?, k?))
}

/// Measures the four roofline evaluation points of Fig. 3 for a device:
/// (label, arithmetic intensity, achieved TOPs/s).
pub fn roofline_points(device: &Device) -> Result<Vec<(String, f64, f64)>> {
    use gpu_sim::roofline::eval_shapes;
    let mut points = Vec::new();
    for (label, shape, precision) in [
        (
            "float16 small",
            eval_shapes::f16_small(),
            Precision::Float16,
        ),
        ("float16 big", eval_shapes::f16_big(), Precision::Float16),
        ("int1 small", eval_shapes::int1_small(), Precision::Int1),
        ("int1 big", eval_shapes::int1_big(), Precision::Int1),
    ] {
        if precision == Precision::Int1 && !device.spec().supports_int1() {
            continue;
        }
        let r = measure(device, shape, precision)?;
        points.push((label.to_string(), r.arithmetic_intensity, r.tops));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Gpu;

    #[test]
    fn sweep_shows_ramp_then_plateau() {
        let device = Gpu::Mi300x.device();
        let results = sweep_square(&device, Precision::Float16, &[256, 1024, 4096, 8192]).unwrap();
        assert_eq!(results.len(), 4);
        // Performance grows with size…
        assert!(results[0].tops < results[1].tops);
        assert!(results[1].tops < results[3].tops);
        // …and approaches the Table III value for the biggest size.
        assert!(results[3].tops > 0.8 * 603.0);
    }

    #[test]
    fn energy_efficiency_tracks_performance() {
        let device = Gpu::A100.device();
        let small = measure(&device, GemmShape::new(512, 512, 512), Precision::Float16).unwrap();
        let big = measure(
            &device,
            GemmShape::new(8192, 8192, 8192),
            Precision::Float16,
        )
        .unwrap();
        assert!(big.tops_per_joule > small.tops_per_joule);
        // Table III: 0.8 TOPs/J.
        assert!((big.tops_per_joule - 0.8).abs() < 0.2);
    }

    #[test]
    fn int1_sweep_produces_both_series() {
        let device = Gpu::A100.device();
        let (mn, k) =
            sweep_int1(&device, &[1024, 8192], 524_288, &[65_536, 524_288], 8192).unwrap();
        assert_eq!(mn.len(), 2);
        assert_eq!(k.len(), 2);
        assert!(mn[1].tops > mn[0].tops);
        assert!(k[1].tops > k[0].tops);
    }

    #[test]
    fn roofline_points_skip_int1_on_amd() {
        let nv = roofline_points(&Gpu::A100.device()).unwrap();
        assert_eq!(nv.len(), 4);
        let amd = roofline_points(&Gpu::Mi210.device()).unwrap();
        assert_eq!(amd.len(), 2);
        // Small points have lower intensity than big points.
        assert!(nv[0].1 < nv[1].1);
    }

    #[test]
    fn measure_with_params_differs_from_default_for_bad_config() {
        let device = Gpu::Gh200.device();
        let shape = GemmShape::new(4096, 4096, 4096);
        let default = measure(&device, shape, Precision::Float16).unwrap();
        // A deliberately poor configuration: tiny warp tiles, single buffer.
        let poor = measure_with_params(
            &device,
            shape,
            Precision::Float16,
            TuningParameters::new(64, 16, 32, 16, 1),
        )
        .unwrap();
        assert!(poor.tops < default.tops);
    }
}
