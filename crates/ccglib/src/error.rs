//! Error type of the ccglib public API.

use tcbf_types::GemmShape;

/// Errors returned by ccglib.
#[derive(Clone, Debug, PartialEq)]
pub enum CcglibError {
    /// An operand's dimensions do not match the GEMM shape it is used in.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// The requested precision is not supported on the selected device
    /// (1-bit mode on AMD GPUs).
    UnsupportedPrecision {
        /// Device name.
        device: String,
        /// Requested precision.
        precision: String,
    },
    /// The tuning parameters are invalid for the device (shared memory
    /// overflow, too many warps per block, register pressure, …).
    InvalidParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// The operands would not fit in device memory.
    OutOfDeviceMemory {
        /// Problem shape.
        shape: GemmShape,
        /// Required bytes.
        required_bytes: u128,
        /// Available bytes.
        available_bytes: u128,
    },
    /// An operand was supplied in the wrong precision for this plan.
    PrecisionMismatch {
        /// Expected precision.
        expected: String,
        /// Supplied precision.
        actual: String,
    },
    /// A device refused work mid-stream (injected or real fault).  A
    /// permanent loss means the device will never accept work again; a
    /// transient one means the same call may be retried.
    DeviceLost {
        /// Pool index of the lost device.
        device: usize,
        /// True when the device is gone for good.
        permanent: bool,
    },
}

impl std::fmt::Display for CcglibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcglibError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            CcglibError::UnsupportedPrecision { device, precision } => {
                write!(f, "{precision} precision is not supported on {device}")
            }
            CcglibError::InvalidParameters { reason } => {
                write!(f, "invalid tuning parameters: {reason}")
            }
            CcglibError::OutOfDeviceMemory { shape, required_bytes, available_bytes } => write!(
                f,
                "problem {shape} needs {required_bytes} bytes but only {available_bytes} are available"
            ),
            CcglibError::PrecisionMismatch { expected, actual } => {
                write!(f, "operand precision mismatch: expected {expected}, got {actual}")
            }
            CcglibError::DeviceLost { device, permanent } => {
                if *permanent {
                    write!(f, "device {device} lost mid-stream (permanent fault)")
                } else {
                    write!(f, "device {device} refused work (transient fault, retryable)")
                }
            }
        }
    }
}

impl std::error::Error for CcglibError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CcglibError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        let e = CcglibError::UnsupportedPrecision {
            device: "MI300X".to_string(),
            precision: "int1".to_string(),
        };
        assert!(e.to_string().contains("MI300X"));
        assert!(e.to_string().contains("int1"));

        let e = CcglibError::OutOfDeviceMemory {
            shape: GemmShape::new(1, 2, 3),
            required_bytes: 100,
            available_bytes: 10,
        };
        assert!(e.to_string().contains("100"));

        let e = CcglibError::ShapeMismatch {
            expected: "64x32".into(),
            actual: "32x64".into(),
        };
        assert!(format!("{e}").contains("expected 64x32"));

        let e = CcglibError::DeviceLost {
            device: 2,
            permanent: true,
        };
        assert!(e.to_string().contains("device 2"));
        assert!(e.to_string().contains("permanent"));
        let e = CcglibError::DeviceLost {
            device: 0,
            permanent: false,
        };
        assert!(e.to_string().contains("retryable"));
    }
}
