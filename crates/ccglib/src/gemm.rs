//! Functional complex GEMM kernels.
//!
//! Two tensor-core kernels are implemented, mirroring Sections III-B, III-D
//! and III-E of the paper:
//!
//! * **float16** — complex multiplication decomposed into four real
//!   multiply-accumulates with an in-register negation of `Im(b)`; inputs
//!   are binary16, accumulation is binary32.
//! * **int1** — inputs are ±1 encoded as single bits; real-valued dot
//!   products are computed from XOR + popcount (Table II) or, on
//!   architectures where XOR is deprecated, from two AND + popcount passes
//!   (Eq. 6).  Complex outputs apply the padding correction of Eq. 5: the
//!   real part is insensitive to the −1-valued padding (the two partial
//!   products cancel), while the imaginary part must subtract the
//!   `K_pad` contribution.
//!
//! Operand convention used throughout the crate: `A` is `M×K`, `B` is
//! supplied **transposed** as `N×K` (each row holds the `K`-vector of one
//! output column).  This is the orientation the transpose kernel produces
//! and the one in which both the bit-rows of the 1-bit kernel and the
//! fragment loads of the 16-bit kernel are contiguous.

use crate::error::{CcglibError, Result};
use crate::matrix::{F16Matrix, HostComplexMatrix, Int1Matrix};
use crate::Precision;
use gpu_sim::BitOp;
use rayon::prelude::*;
use tcbf_types::Complex32;

/// The beamformed output matrix: `M×N` complex values in single precision
/// (for 1-bit inputs the components are integers represented exactly).
pub type ComplexOutput = HostComplexMatrix;

/// A quantised GEMM operand, ready for the tensor-core kernels.
#[derive(Clone, Debug)]
pub enum GemmInput {
    /// Planar binary16 operand.
    F16(F16Matrix),
    /// Packed 1-bit operand.
    Int1(Int1Matrix),
}

impl GemmInput {
    /// Default packing granularity for 1-bit operands: the depth of the
    /// 16×8×256 fragment, so a packed operand is always consumable by
    /// either fragment layout.
    pub const DEFAULT_INT1_K_GRANULARITY: usize = 256;

    /// Quantises a host matrix to binary16 planes.
    pub fn quantise_f16(host: &HostComplexMatrix) -> Self {
        GemmInput::F16(F16Matrix::from_host(host))
    }

    /// Builds a binary16 operand from interleaved single-precision data
    /// (the layout applications naturally produce); the split into planes
    /// is what the paper's transpose kernel does.
    pub fn quantise_f16_interleaved(rows: usize, cols: usize, interleaved: &[f32]) -> Self {
        GemmInput::F16(crate::transpose::interleaved_to_planar(
            rows,
            cols,
            interleaved,
        ))
    }

    /// Quantises a host matrix to packed 1-bit planes with the default
    /// padding granularity.
    pub fn quantise_int1(host: &HostComplexMatrix) -> Self {
        GemmInput::Int1(Int1Matrix::from_host_padded(
            host,
            Self::DEFAULT_INT1_K_GRANULARITY,
        ))
    }

    /// Quantises to 1-bit with an explicit padding granularity.
    pub fn quantise_int1_padded(host: &HostComplexMatrix, k_granularity: usize) -> Self {
        GemmInput::Int1(Int1Matrix::from_host_padded(host, k_granularity))
    }

    /// Precision of this operand.
    pub fn precision(&self) -> Precision {
        match self {
            GemmInput::F16(_) => Precision::Float16,
            GemmInput::Int1(_) => Precision::Int1,
        }
    }

    /// Number of rows (M for the `A` operand, N for the transposed `B`).
    pub fn rows(&self) -> usize {
        match self {
            GemmInput::F16(m) => m.rows(),
            GemmInput::Int1(m) => m.rows(),
        }
    }

    /// Logical reduction-dimension length (K, before padding).
    pub fn k(&self) -> usize {
        match self {
            GemmInput::F16(m) => m.cols(),
            GemmInput::Int1(m) => m.k_bits(),
        }
    }

    /// Device-memory footprint in bytes.
    pub fn device_bytes(&self) -> u128 {
        match self {
            GemmInput::F16(m) => m.device_bytes(),
            GemmInput::Int1(m) => m.device_bytes(),
        }
    }
}

/// The `A` operand of a batched GEMM: either one matrix per batch element
/// or a single matrix shared by all of them (the beamforming case, where
/// every frequency channel applies the same weights).
#[derive(Clone, Debug)]
enum BatchOperand {
    Shared(GemmInput),
    PerBatch(Vec<GemmInput>),
}

/// Operands of a batched complex GEMM: `batch` independent multiplications
/// sharing one shape, executed functionally by [`crate::Gemm::run_batch`]
/// under a single [`crate::RunReport`] covering the whole batch.
#[derive(Clone, Debug)]
pub struct GemmBatchInput {
    a: BatchOperand,
    b_t: Vec<GemmInput>,
}

impl GemmBatchInput {
    /// Builds a batch from one `A` and one transposed `B` operand per batch
    /// element.  The two lists must be non-empty and of equal length.
    pub fn new(a: Vec<GemmInput>, b_t: Vec<GemmInput>) -> Result<Self> {
        if a.is_empty() || a.len() != b_t.len() {
            return Err(CcglibError::ShapeMismatch {
                expected: "equal, non-zero numbers of A and B operands".to_string(),
                actual: format!("{} A operands, {} B operands", a.len(), b_t.len()),
            });
        }
        Ok(GemmBatchInput {
            a: BatchOperand::PerBatch(a),
            b_t,
        })
    }

    /// Builds a batch in which every element multiplies the same `A`
    /// operand (shared weights) with its own transposed `B` operand.
    pub fn with_shared_a(a: GemmInput, b_t: Vec<GemmInput>) -> Result<Self> {
        if b_t.is_empty() {
            return Err(CcglibError::ShapeMismatch {
                expected: "at least one B operand".to_string(),
                actual: "0 B operands".to_string(),
            });
        }
        Ok(GemmBatchInput {
            a: BatchOperand::Shared(a),
            b_t,
        })
    }

    /// Number of batch elements.
    pub fn batch(&self) -> usize {
        self.b_t.len()
    }

    /// The `A` operand of batch element `index`.
    pub fn a(&self, index: usize) -> &GemmInput {
        match &self.a {
            BatchOperand::Shared(a) => a,
            BatchOperand::PerBatch(a) => &a[index],
        }
    }

    /// The transposed `B` operand of batch element `index`.
    pub fn b_t(&self, index: usize) -> &GemmInput {
        &self.b_t[index]
    }
}

/// float16 complex GEMM: `C[M×N] = A[M×K] · Bᵀ[N×K]` with binary16 inputs
/// and binary32 accumulation.
pub fn gemm_f16(a: &F16Matrix, b_t: &F16Matrix) -> Result<ComplexOutput> {
    if a.cols() != b_t.cols() {
        return Err(CcglibError::ShapeMismatch {
            expected: format!("A and B to share K (A has K={})", a.cols()),
            actual: format!("B has K={}", b_t.cols()),
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let k = a.cols();
    let (a_re, a_im) = (a.re(), a.im());
    let (b_re, b_im) = (b_t.re(), b_t.im());

    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let a_re_row = &a_re[i * k..(i + 1) * k];
        let a_im_row = &a_im[i * k..(i + 1) * k];
        for (j, slot) in row.iter_mut().enumerate() {
            let b_re_row = &b_re[j * k..(j + 1) * k];
            let b_im_row = &b_im[j * k..(j + 1) * k];
            // Four real accumulations, exactly as the tensor-core kernel
            // issues them (Section III-B); Im(b) is negated "in registers"
            // by subtracting the product instead of mutating the operand.
            let mut acc_rr = 0.0f32;
            let mut acc_ii = 0.0f32;
            let mut acc_ri = 0.0f32;
            let mut acc_ir = 0.0f32;
            for kk in 0..k {
                let ar = a_re_row[kk].to_f32();
                let ai = a_im_row[kk].to_f32();
                let br = b_re_row[kk].to_f32();
                let bi = b_im_row[kk].to_f32();
                acc_rr += ar * br;
                acc_ii += ai * bi;
                acc_ri += ar * bi;
                acc_ir += ai * br;
            }
            *slot = Complex32::new(acc_rr - acc_ii, acc_ri + acc_ir);
        }
    });
    HostComplexMatrix::from_data(m, n, out)
}

/// 1-bit complex GEMM with the XOR or AND formulation.
///
/// Both operands must have been packed with the same padding granularity;
/// the `K_pad` correction of Eq. 5 is applied to the imaginary part.  The
/// two formulations produce bit-identical results (a property the test
/// suite asserts); the AND path exists because XOR is deprecated from the
/// Hopper architecture on.
pub fn gemm_int1(a: &Int1Matrix, b_t: &Int1Matrix, op: BitOp) -> Result<ComplexOutput> {
    if a.k_bits() != b_t.k_bits() || a.k_padded() != b_t.k_padded() {
        return Err(CcglibError::ShapeMismatch {
            expected: format!(
                "A and B to share K (A has K={}/{} padded)",
                a.k_bits(),
                a.k_padded()
            ),
            actual: format!("B has K={}/{} padded", b_t.k_bits(), b_t.k_padded()),
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let k_valid = a.k_bits() as i32;

    // Real-valued ±1 dot product of two packed planes, through the chosen
    // bit operation.  The popcount identities are implemented in
    // `tcbf_types::PackedBits`; the AND variant needs the second pass over
    // the complemented inputs, doubling the tensor-core instruction count.
    let dot = |x: &tcbf_types::PackedBits, y: &tcbf_types::PackedBits| -> i32 {
        match op {
            BitOp::Xor => x.dot_xor(y),
            BitOp::And => x.dot_and(y),
        }
    };

    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        let ar = a.re_row(i);
        let ai = a.im_row(i);
        for (j, slot) in row.iter_mut().enumerate() {
            let br = b_t.re_row(j);
            let bi = b_t.im_row(j);
            // Dot products over the padded length.  The padding value is
            // binary 0 (decimal −1) in every plane, so:
            //  * the real part  Σ ar·br − Σ ai·bi  sees +K_pad from both
            //    terms and they cancel;
            //  * the imaginary part Σ ar·bi + Σ ai·br picks up +K_pad from
            //    each term, which must be subtracted (Eq. 5).
            let k_pad = a.k_padding() as i32;
            let rr = dot(ar, br);
            let ii = dot(ai, bi);
            let ri = dot(ar, bi);
            let ir = dot(ai, br);
            let re = (rr - k_pad) - (ii - k_pad);
            let im = (ri - k_pad) + (ir - k_pad);
            debug_assert!(re.abs() <= 2 * k_valid && im.abs() <= 2 * k_valid);
            *slot = Complex32::new(re as f32, im as f32);
        }
    });
    HostComplexMatrix::from_data(m, n, out)
}

/// Executes a GEMM on already-quantised operands, dispatching on their
/// precision.  Both operands must share the same precision.
pub fn gemm_dispatch(a: &GemmInput, b_t: &GemmInput, op: BitOp) -> Result<ComplexOutput> {
    match (a, b_t) {
        (GemmInput::F16(a), GemmInput::F16(b)) => gemm_f16(a, b),
        (GemmInput::Int1(a), GemmInput::Int1(b)) => gemm_int1(a, b, op),
        (a, b) => Err(CcglibError::PrecisionMismatch {
            expected: a.precision().to_string(),
            actual: b.precision().to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm;
    use proptest::prelude::*;
    use tcbf_types::Complex;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> HostComplexMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 40) & 0xFFFF) as f32 / 32768.0 - 1.0) * scale
        };
        HostComplexMatrix::from_fn(rows, cols, |_, _| Complex::new(next(), next()))
    }

    #[test]
    fn f16_gemm_matches_reference_within_half_precision() {
        let a = pseudo_random_matrix(24, 40, 1, 1.0);
        let b_t = pseudo_random_matrix(16, 40, 2, 1.0);
        let tensor = gemm_f16(&F16Matrix::from_host(&a), &F16Matrix::from_host(&b_t)).unwrap();
        let exact = reference_gemm(&a, &b_t).unwrap();
        // Binary16 quantisation of the inputs bounds the error: relative
        // 2^-11 per input value, accumulated over K=40 terms.
        let tol = 40.0 * 2.0 * 2.0f32.powi(-11) * 2.0;
        assert!(
            tensor.max_abs_diff(&exact) < tol,
            "diff = {}",
            tensor.max_abs_diff(&exact)
        );
    }

    #[test]
    fn f16_gemm_checks_shapes() {
        let a = F16Matrix::from_host(&HostComplexMatrix::zeros(4, 8));
        let b = F16Matrix::from_host(&HostComplexMatrix::zeros(4, 9));
        assert!(gemm_f16(&a, &b).is_err());
    }

    #[test]
    fn int1_gemm_matches_decoded_reference_with_padding() {
        // K = 100 forces 156 bits of padding at granularity 256; the
        // corrected kernel must agree exactly with the ±1 reference.
        let a_host = pseudo_random_matrix(9, 100, 3, 1.0);
        let b_host = pseudo_random_matrix(7, 100, 4, 1.0);
        let a = Int1Matrix::from_host_padded(&a_host, 256);
        let b = Int1Matrix::from_host_padded(&b_host, 256);
        assert_eq!(a.k_padding(), 156);
        let reference = reference_gemm(&a.to_host(), &b.to_host()).unwrap();
        for op in [BitOp::Xor, BitOp::And] {
            let result = gemm_int1(&a, &b, op).unwrap();
            assert_eq!(result.rows(), 9);
            assert_eq!(result.cols(), 7);
            assert!(result.max_abs_diff(&reference) < 0.5, "op {op}");
        }
    }

    #[test]
    fn int1_xor_and_paths_are_bit_identical() {
        let a_host = pseudo_random_matrix(12, 300, 5, 1.0);
        let b_host = pseudo_random_matrix(10, 300, 6, 1.0);
        let a = Int1Matrix::from_host_padded(&a_host, 128);
        let b = Int1Matrix::from_host_padded(&b_host, 128);
        let xor = gemm_int1(&a, &b, BitOp::Xor).unwrap();
        let and = gemm_int1(&a, &b, BitOp::And).unwrap();
        assert_eq!(xor, and);
    }

    #[test]
    fn int1_values_have_expected_parity_and_bounds() {
        let a_host = pseudo_random_matrix(6, 64, 7, 1.0);
        let b_host = pseudo_random_matrix(6, 64, 8, 1.0);
        let a = Int1Matrix::from_host(&a_host);
        let b = Int1Matrix::from_host(&b_host);
        let c = gemm_int1(&a, &b, BitOp::Xor).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let v = c.get(i, j);
                // Each component is a sum/difference of 2·64 ±1 terms:
                // bounded by 128 and even.
                assert!(v.re.abs() <= 128.0 && v.im.abs() <= 128.0);
                assert_eq!(v.re as i32 % 2, 0);
                assert_eq!(v.im as i32 % 2, 0);
            }
        }
    }

    #[test]
    fn gemm_dispatch_rejects_mixed_precision() {
        let host = HostComplexMatrix::zeros(4, 32);
        let f = GemmInput::quantise_f16(&host);
        let b = GemmInput::quantise_int1(&host);
        assert!(matches!(
            gemm_dispatch(&f, &b, BitOp::Xor),
            Err(CcglibError::PrecisionMismatch { .. })
        ));
        assert!(gemm_dispatch(&f, &f, BitOp::Xor).is_ok());
    }

    #[test]
    fn gemm_input_accessors() {
        let host = HostComplexMatrix::zeros(4, 100);
        let f = GemmInput::quantise_f16(&host);
        assert_eq!(f.precision(), Precision::Float16);
        assert_eq!(f.rows(), 4);
        assert_eq!(f.k(), 100);
        assert_eq!(f.device_bytes(), 4 * 100 * 4);
        let i = GemmInput::quantise_int1(&host);
        assert_eq!(i.precision(), Precision::Int1);
        assert_eq!(i.k(), 100);
        // Padded to 256 bits → 2 planes × 4 rows × 32 bytes.
        assert_eq!(i.device_bytes(), 2 * 4 * 256 / 8);
    }

    #[test]
    fn interleaved_input_matches_planar_input() {
        let host = pseudo_random_matrix(8, 16, 11, 2.0);
        let mut interleaved = Vec::new();
        for r in 0..8 {
            for c in 0..16 {
                let v = host.get(r, c);
                interleaved.push(v.re);
                interleaved.push(v.im);
            }
        }
        let from_planar = GemmInput::quantise_f16(&host);
        let from_interleaved = GemmInput::quantise_f16_interleaved(8, 16, &interleaved);
        let b = GemmInput::quantise_f16(&pseudo_random_matrix(4, 16, 12, 1.0));
        let c1 = gemm_dispatch(&from_planar, &b, BitOp::Xor).unwrap();
        let c2 = gemm_dispatch(&from_interleaved, &b, BitOp::Xor).unwrap();
        assert_eq!(c1, c2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn int1_gemm_equals_reference_for_random_shapes(
            m in 1usize..8, n in 1usize..8, k in 1usize..150, seed in any::<u64>(),
        ) {
            let a_host = pseudo_random_matrix(m, k, seed, 1.0);
            let b_host = pseudo_random_matrix(n, k, seed ^ 0xABCD, 1.0);
            let a = Int1Matrix::from_host_padded(&a_host, 128);
            let b = Int1Matrix::from_host_padded(&b_host, 128);
            let reference = reference_gemm(&a.to_host(), &b.to_host()).unwrap();
            let result = gemm_int1(&a, &b, BitOp::Xor).unwrap();
            prop_assert!(result.max_abs_diff(&reference) < 0.5);
        }

        #[test]
        fn f16_gemm_linear_in_scalar(
            m in 1usize..6, n in 1usize..6, k in 1usize..32, seed in any::<u64>(),
        ) {
            // (2A)·B ≈ 2·(A·B) up to half-precision rounding.
            let a_host = pseudo_random_matrix(m, k, seed, 1.0);
            let b_host = pseudo_random_matrix(n, k, seed ^ 0x1111, 1.0);
            let a2_host = HostComplexMatrix::from_fn(m, k, |r, c| a_host.get(r, c).scale(2.0));
            let c1 = gemm_f16(&F16Matrix::from_host(&a_host), &F16Matrix::from_host(&b_host)).unwrap();
            let c2 = gemm_f16(&F16Matrix::from_host(&a2_host), &F16Matrix::from_host(&b_host)).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let lhs = c2.get(i, j);
                    let rhs = c1.get(i, j).scale(2.0);
                    let tol = 0.02 * (1.0 + rhs.abs()) + 0.02 * k as f32;
                    prop_assert!((lhs - rhs).abs() <= tol, "{lhs:?} vs {rhs:?}");
                }
            }
        }
    }
}
