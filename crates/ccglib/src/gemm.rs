//! Functional complex GEMM kernels.
//!
//! Two tensor-core kernels are implemented, mirroring Sections III-B, III-D
//! and III-E of the paper:
//!
//! * **float16** — complex multiplication decomposed into four real
//!   multiply-accumulates with an in-register negation of `Im(b)`; inputs
//!   are binary16, accumulation is binary32.
//! * **int1** — inputs are ±1 encoded as single bits; real-valued dot
//!   products are computed from XOR + popcount (Table II) or, on
//!   architectures where XOR is deprecated, from two AND + popcount passes
//!   (Eq. 6).  Complex outputs apply the padding correction of Eq. 5: the
//!   real part is insensitive to the −1-valued padding (the two partial
//!   products cancel), while the imaginary part must subtract the
//!   `K_pad` contribution.
//!
//! Operand convention used throughout the crate: `A` is `M×K`, `B` is
//! supplied **transposed** as `N×K` (each row holds the `K`-vector of one
//! output column).  This is the orientation the transpose kernel produces
//! and the one in which both the bit-rows of the 1-bit kernel and the
//! fragment loads of the 16-bit kernel are contiguous.

use crate::error::{CcglibError, Result};
use crate::matrix::{F16Matrix, HostComplexMatrix, Int1Matrix};
use crate::micro::MicroKernelConfig;
use crate::Precision;
use gpu_sim::BitOp;
use rayon::prelude::*;
use tcbf_types::{decode_to_f32, Complex32, PackedBits};

/// The beamformed output matrix: `M×N` complex values in single precision
/// (for 1-bit inputs the components are integers represented exactly).
pub type ComplexOutput = HostComplexMatrix;

/// A quantised GEMM operand, ready for the tensor-core kernels.
#[derive(Clone, Debug)]
pub enum GemmInput {
    /// Planar binary16 operand.
    F16(F16Matrix),
    /// Packed 1-bit operand.
    Int1(Int1Matrix),
}

impl GemmInput {
    /// Default packing granularity for 1-bit operands: the depth of the
    /// 16×8×256 fragment, so a packed operand is always consumable by
    /// either fragment layout.
    pub const DEFAULT_INT1_K_GRANULARITY: usize = 256;

    /// Quantises a host matrix to binary16 planes.
    pub fn quantise_f16(host: &HostComplexMatrix) -> Self {
        GemmInput::F16(F16Matrix::from_host(host))
    }

    /// Builds a binary16 operand from interleaved single-precision data
    /// (the layout applications naturally produce); the split into planes
    /// is what the paper's transpose kernel does.
    pub fn quantise_f16_interleaved(rows: usize, cols: usize, interleaved: &[f32]) -> Self {
        GemmInput::F16(crate::transpose::interleaved_to_planar(
            rows,
            cols,
            interleaved,
        ))
    }

    /// Quantises a host matrix to packed 1-bit planes with the default
    /// padding granularity.
    pub fn quantise_int1(host: &HostComplexMatrix) -> Self {
        GemmInput::Int1(Int1Matrix::from_host_padded(
            host,
            Self::DEFAULT_INT1_K_GRANULARITY,
        ))
    }

    /// Quantises to 1-bit with an explicit padding granularity.
    pub fn quantise_int1_padded(host: &HostComplexMatrix, k_granularity: usize) -> Self {
        GemmInput::Int1(Int1Matrix::from_host_padded(host, k_granularity))
    }

    /// Precision of this operand.
    pub fn precision(&self) -> Precision {
        match self {
            GemmInput::F16(_) => Precision::Float16,
            GemmInput::Int1(_) => Precision::Int1,
        }
    }

    /// Number of rows (M for the `A` operand, N for the transposed `B`).
    pub fn rows(&self) -> usize {
        match self {
            GemmInput::F16(m) => m.rows(),
            GemmInput::Int1(m) => m.rows(),
        }
    }

    /// Logical reduction-dimension length (K, before padding).
    pub fn k(&self) -> usize {
        match self {
            GemmInput::F16(m) => m.cols(),
            GemmInput::Int1(m) => m.k_bits(),
        }
    }

    /// Device-memory footprint in bytes.
    pub fn device_bytes(&self) -> u128 {
        match self {
            GemmInput::F16(m) => m.device_bytes(),
            GemmInput::Int1(m) => m.device_bytes(),
        }
    }
}

/// A binary16 operand bulk-decoded to binary32 planes once, so the GEMM
/// micro-kernel streams plain `f32` data instead of converting inside the
/// inner loop.
///
/// The decode is exact (binary16 ⊂ binary32) and costs `O(rows·cols)`
/// table lookups; the naive kernel paid an `O(M·N·K)` conversion tax by
/// widening all four operand values per multiply-accumulate.
#[derive(Clone, Debug)]
pub struct DecodedPlanes {
    rows: usize,
    cols: usize,
    re: Vec<f32>,
    im: Vec<f32>,
}

impl DecodedPlanes {
    /// Decodes both planes of a binary16 matrix in one bulk pass each.
    pub fn from_f16(matrix: &F16Matrix) -> Self {
        DecodedPlanes {
            rows: matrix.rows(),
            cols: matrix.cols(),
            re: decode_to_f32(matrix.re()),
            im: decode_to_f32(matrix.im()),
        }
    }

    /// The preparation an operand needs, if any: binary16 operands decode
    /// to f32 planes, packed 1-bit operands are already in kernel format.
    /// The single source of truth for the precision→preparation mapping
    /// (used by [`PreparedOperand::new`] and the decode-once batch paths).
    pub fn maybe_from(input: &GemmInput) -> Option<Self> {
        match input {
            GemmInput::F16(m) => Some(DecodedPlanes::from_f16(m)),
            GemmInput::Int1(_) => None,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns (the reduction dimension K).
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Decoded real plane, row-major.
    pub fn re(&self) -> &[f32] {
        &self.re
    }
    /// Decoded imaginary plane, row-major.
    pub fn im(&self) -> &[f32] {
        &self.im
    }
}

/// A GEMM operand with its precision-specific pre-processing done once, so
/// repeated executions (streaming sessions, shared-`A` batches) skip it.
///
/// For binary16 operands this holds the bulk-decoded f32 planes alongside
/// the original operand; 1-bit operands are already in kernel format, so
/// preparation is free.  Built with [`GemmInput::prepare`] or
/// [`PreparedOperand::new`] and consumed by [`crate::Gemm::run_prepared`]
/// and [`crate::Gemm::run_batch_shared_prepared`].
#[derive(Clone, Debug)]
pub struct PreparedOperand {
    input: GemmInput,
    decoded: Option<DecodedPlanes>,
}

impl PreparedOperand {
    /// Prepares an operand, taking ownership.
    pub fn new(input: GemmInput) -> Self {
        let decoded = DecodedPlanes::maybe_from(&input);
        PreparedOperand { input, decoded }
    }

    /// The quantised operand this preparation wraps.
    pub fn input(&self) -> &GemmInput {
        &self.input
    }

    /// The pre-decoded planes (binary16 operands only).
    pub fn decoded(&self) -> Option<&DecodedPlanes> {
        self.decoded.as_ref()
    }
}

impl From<GemmInput> for PreparedOperand {
    fn from(input: GemmInput) -> Self {
        PreparedOperand::new(input)
    }
}

impl GemmInput {
    /// Pre-processes this operand for repeated kernel executions (bulk
    /// half→float decode for binary16; a no-op for packed 1-bit data).
    ///
    /// This clones the operand so the original stays usable; callers that
    /// own the operand and are done with it should move it into
    /// [`PreparedOperand::new`] instead and skip the copy.
    pub fn prepare(&self) -> PreparedOperand {
        PreparedOperand::new(self.clone())
    }
}

/// The `A` operand of a batched GEMM: either one matrix per batch element
/// or a single matrix shared by all of them (the beamforming case, where
/// every frequency channel applies the same weights).
#[derive(Clone, Debug)]
enum BatchOperand {
    Shared(GemmInput),
    PerBatch(Vec<GemmInput>),
}

/// Operands of a batched complex GEMM: `batch` independent multiplications
/// sharing one shape, executed functionally by [`crate::Gemm::run_batch`]
/// under a single [`crate::RunReport`] covering the whole batch.
#[derive(Clone, Debug)]
pub struct GemmBatchInput {
    a: BatchOperand,
    b_t: Vec<GemmInput>,
}

impl GemmBatchInput {
    /// Builds a batch from one `A` and one transposed `B` operand per batch
    /// element.  The two lists must be non-empty and of equal length.
    pub fn new(a: Vec<GemmInput>, b_t: Vec<GemmInput>) -> Result<Self> {
        if a.is_empty() || a.len() != b_t.len() {
            return Err(CcglibError::ShapeMismatch {
                expected: "equal, non-zero numbers of A and B operands".to_string(),
                actual: format!("{} A operands, {} B operands", a.len(), b_t.len()),
            });
        }
        Ok(GemmBatchInput {
            a: BatchOperand::PerBatch(a),
            b_t,
        })
    }

    /// Builds a batch in which every element multiplies the same `A`
    /// operand (shared weights) with its own transposed `B` operand.
    pub fn with_shared_a(a: GemmInput, b_t: Vec<GemmInput>) -> Result<Self> {
        if b_t.is_empty() {
            return Err(CcglibError::ShapeMismatch {
                expected: "at least one B operand".to_string(),
                actual: "0 B operands".to_string(),
            });
        }
        Ok(GemmBatchInput {
            a: BatchOperand::Shared(a),
            b_t,
        })
    }

    /// Number of batch elements.
    pub fn batch(&self) -> usize {
        self.b_t.len()
    }

    /// The `A` operand of batch element `index`.
    pub fn a(&self, index: usize) -> &GemmInput {
        match &self.a {
            BatchOperand::Shared(a) => a,
            BatchOperand::PerBatch(a) => &a[index],
        }
    }

    /// The transposed `B` operand of batch element `index`.
    pub fn b_t(&self, index: usize) -> &GemmInput {
        &self.b_t[index]
    }

    /// The shared `A` operand, if this batch was built with
    /// [`GemmBatchInput::with_shared_a`] — the case the execution layer
    /// prepares (decodes) exactly once for the whole batch.
    pub fn shared_a(&self) -> Option<&GemmInput> {
        match &self.a {
            BatchOperand::Shared(a) => Some(a),
            BatchOperand::PerBatch(_) => None,
        }
    }

    /// All transposed `B` operands, in batch order.
    pub fn b_ts(&self) -> &[GemmInput] {
        &self.b_t
    }
}

/// One vectorised fused-multiply-add step over a lane group.
#[inline(always)]
fn fma_lanes<const LANES: usize>(acc: &mut [f32; LANES], a: &[f32], b: &[f32]) {
    for l in 0..LANES {
        acc[l] = a[l].mul_add(b[l], acc[l]);
    }
}

/// Fixed pairwise reduction of one lane vector (plus the scalar-remainder
/// accumulator), keeping the summation order independent of `K`.
///
/// Adjacent lanes are halved pairwise — `buf[i] = buf[2i] + buf[2i+1]` —
/// until one value remains, the same summation tree at every power-of-two
/// width.  For 8 lanes this is exactly the historical hand-written order
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, so the default configuration
/// is bit-for-bit the pre-refactor kernel.
#[inline(always)]
fn reduce_lanes<const LANES: usize>(lanes: &[f32; LANES], tail: f32) -> f32 {
    let mut buf = *lanes;
    let mut width = LANES;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            buf[i] = buf[2 * i] + buf[2 * i + 1];
        }
    }
    buf[0] + tail
}

/// The blocked f16 micro-kernel over pre-decoded f32 planes: one output
/// row per invocation, tiled over `j` (output columns, `JT` at a time) and
/// `k` (the reduction dimension, `k_tile` at a time), four lane-vector
/// accumulators of `LANES` lanes per column held in registers, fused
/// multiply-adds in the inner loop.
///
/// Per output element the four real accumulations of Section III-B are
/// chained in ascending `k` within each lane, and the lanes are combined
/// in a fixed pairwise order at the end — a deterministic schedule, the
/// software analogue of the per-fragment accumulators the tensor-core
/// kernel keeps in flight.  `Im(b)` is negated "in registers" by
/// subtracting the `ii` accumulator at the end instead of mutating the
/// operand.
///
/// The blocking factors only change which dot products are in flight
/// together and how the reduction interleaves with memory traffic; the
/// per-element summation order is identical for every `(JT, LANES,
/// k_tile)` with the same `LANES`, and across `LANES` the pairwise tree
/// differs only where floating-point addition is exact on the conformance
/// input family — which is why every menu configuration is bit-identical
/// on the inputs the proptests use.
fn f16_row_kernel<const JT: usize, const LANES: usize>(
    row: &mut [Complex32],
    a_re_row: &[f32],
    a_im_row: &[f32],
    b_re: &[f32],
    b_im: &[f32],
    k: usize,
    k_tile: usize,
) {
    let n = row.len();
    let mut jt = 0;
    while jt < n {
        let jn = JT.min(n - jt);
        let mut acc = [[[0.0f32; LANES]; 4]; JT];
        let mut tail = [[0.0f32; 4]; JT];
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + k_tile).min(k);
            let ar_slice = &a_re_row[k0..k1];
            let ai_slice = &a_im_row[k0..k1];
            for jj in 0..jn {
                let j = jt + jj;
                let br_slice = &b_re[j * k + k0..j * k + k1];
                let bi_slice = &b_im[j * k + k0..j * k + k1];
                let [rr, ii, ri, ir] = &mut acc[jj];
                for (((ar, ai), br), bi) in ar_slice
                    .chunks_exact(LANES)
                    .zip(ai_slice.chunks_exact(LANES))
                    .zip(br_slice.chunks_exact(LANES))
                    .zip(bi_slice.chunks_exact(LANES))
                {
                    fma_lanes(rr, ar, br);
                    fma_lanes(ii, ai, bi);
                    fma_lanes(ri, ar, bi);
                    fma_lanes(ir, ai, br);
                }
                // Scalar remainder of a ragged K (only the last k-slice
                // can have one: the tile size is a multiple of the lane
                // count), accumulated separately and folded in at the
                // final reduction.
                let rem = ar_slice.len() - ar_slice.len() % LANES;
                let [mut t_rr, mut t_ii, mut t_ri, mut t_ir] = tail[jj];
                for kk in rem..ar_slice.len() {
                    let (ar, ai) = (ar_slice[kk], ai_slice[kk]);
                    let (br, bi) = (br_slice[kk], bi_slice[kk]);
                    t_rr = ar.mul_add(br, t_rr);
                    t_ii = ai.mul_add(bi, t_ii);
                    t_ri = ar.mul_add(bi, t_ri);
                    t_ir = ai.mul_add(br, t_ir);
                }
                tail[jj] = [t_rr, t_ii, t_ri, t_ir];
            }
            k0 = k1;
        }
        for jj in 0..jn {
            let rr = reduce_lanes(&acc[jj][0], tail[jj][0]);
            let ii = reduce_lanes(&acc[jj][1], tail[jj][1]);
            let ri = reduce_lanes(&acc[jj][2], tail[jj][2]);
            let ir = reduce_lanes(&acc[jj][3], tail[jj][3]);
            row[jt + jj] = Complex32::new(rr - ii, ri + ir);
        }
        jt += jn;
    }
}

/// The signature of one monomorphised f16 row kernel.
type F16RowKernel = fn(&mut [Complex32], &[f32], &[f32], &[f32], &[f32], usize, usize);

/// Resolves a configuration's `(j-tile, lanes)` pair to its compiled
/// kernel instance.  The menu is closed — [`MicroKernelConfig::validate`]
/// admits only these pairs — so the fallback arm is unreachable for
/// validated configs and conservatively selects the default instance.
fn f16_row_dispatch(micro: &MicroKernelConfig) -> F16RowKernel {
    match (micro.f16_j_tile, micro.f16_lanes) {
        (1, 4) => f16_row_kernel::<1, 4>,
        (1, 8) => f16_row_kernel::<1, 8>,
        (1, 16) => f16_row_kernel::<1, 16>,
        (2, 4) => f16_row_kernel::<2, 4>,
        (2, 16) => f16_row_kernel::<2, 16>,
        (4, 4) => f16_row_kernel::<4, 4>,
        (4, 8) => f16_row_kernel::<4, 8>,
        (4, 16) => f16_row_kernel::<4, 16>,
        _ => f16_row_kernel::<2, 8>,
    }
}

/// Shared implementation of the f16 paths: `A` is already decoded, `B` is
/// decoded here (once per operand, never per output element).
pub(crate) fn gemm_f16_decoded_with(
    a: &DecodedPlanes,
    b_t: &F16Matrix,
    micro: &MicroKernelConfig,
) -> Result<ComplexOutput> {
    if a.cols() != b_t.cols() {
        return Err(CcglibError::ShapeMismatch {
            expected: format!("A and B to share K (A has K={})", a.cols()),
            actual: format!("B has K={}", b_t.cols()),
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let k = a.cols();
    let b = DecodedPlanes::from_f16(b_t);
    let kernel = f16_row_dispatch(micro);
    let k_tile = micro.f16_k_tile;

    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            kernel(
                row,
                &a.re()[i * k..(i + 1) * k],
                &a.im()[i * k..(i + 1) * k],
                b.re(),
                b.im(),
                k,
                k_tile,
            );
        });
    HostComplexMatrix::from_data(m, n, out)
}

/// float16 complex GEMM: `C[M×N] = A[M×K] · Bᵀ[N×K]` with binary16 inputs
/// and binary32 accumulation.
///
/// Both operands are bulk-decoded to f32 planes first (`O((M+N)·K)`
/// conversions instead of the naive kernel's `O(M·N·K)`), then multiplied
/// by the cache-blocked micro-kernel.  Callers that reuse `A` across many
/// calls should decode it once via [`GemmInput::prepare`] and the prepared
/// entry points on [`crate::Gemm`].
///
/// Runs the default [`MicroKernelConfig`]; [`gemm_f16_with`] selects a
/// tuned blocking.
pub fn gemm_f16(a: &F16Matrix, b_t: &F16Matrix) -> Result<ComplexOutput> {
    gemm_f16_with(a, b_t, &MicroKernelConfig::default())
}

/// [`gemm_f16`] under an explicit micro-kernel blocking configuration —
/// the entry point the real-measurement autotuner benchmarks and the
/// tuned plans execute.  Every menu configuration produces bit-identical
/// output on the conformance input family; only wall clock changes.
pub fn gemm_f16_with(
    a: &F16Matrix,
    b_t: &F16Matrix,
    micro: &MicroKernelConfig,
) -> Result<ComplexOutput> {
    gemm_f16_decoded_with(&DecodedPlanes::from_f16(a), b_t, micro)
}

/// 1-bit complex GEMM with the XOR or AND formulation.
///
/// Both operands must have been packed with the same padding granularity;
/// the `K_pad` correction of Eq. 5 is applied to the imaginary part.  The
/// two formulations produce bit-identical results (a property the test
/// suite asserts); the AND path exists because XOR is deprecated from the
/// Hopper architecture on.
///
/// Runs the default [`MicroKernelConfig`]; [`gemm_int1_with`] selects a
/// tuned word-unroll depth.
pub fn gemm_int1(a: &Int1Matrix, b_t: &Int1Matrix, op: BitOp) -> Result<ComplexOutput> {
    gemm_int1_with(a, b_t, op, &MicroKernelConfig::default())
}

/// The signature of one monomorphised fused quadruple dot product.
type Dot4 = fn(&PackedBits, &PackedBits, &PackedBits, &PackedBits) -> [i32; 4];

/// Resolves `(formulation, unroll depth)` to its compiled fused-popcount
/// instance.  Integer-exact at every depth, so all choices agree on all
/// inputs; unvalidated depths conservatively fall back to no unrolling.
fn dot4_dispatch(op: BitOp, unroll: usize) -> Dot4 {
    match (op, unroll) {
        (BitOp::Xor, 2) => PackedBits::dot4_xor_unrolled::<2>,
        (BitOp::Xor, 4) => PackedBits::dot4_xor_unrolled::<4>,
        (BitOp::And, 2) => PackedBits::dot4_and_unrolled::<2>,
        (BitOp::And, 4) => PackedBits::dot4_and_unrolled::<4>,
        (BitOp::Xor, _) => PackedBits::dot4_xor,
        (BitOp::And, _) => PackedBits::dot4_and,
    }
}

/// [`gemm_int1`] under an explicit micro-kernel configuration (only the
/// word-unroll depth applies to the 1-bit path) — the entry point the
/// real-measurement autotuner benchmarks and the tuned plans execute.
pub fn gemm_int1_with(
    a: &Int1Matrix,
    b_t: &Int1Matrix,
    op: BitOp,
    micro: &MicroKernelConfig,
) -> Result<ComplexOutput> {
    if a.k_bits() != b_t.k_bits() || a.k_padded() != b_t.k_padded() {
        return Err(CcglibError::ShapeMismatch {
            expected: format!(
                "A and B to share K (A has K={}/{} padded)",
                a.k_bits(),
                a.k_padded()
            ),
            actual: format!("B has K={}/{} padded", b_t.k_bits(), b_t.k_padded()),
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let k_valid = a.k_bits() as i32;
    // The K_pad correction of Eq. 5 is a property of the operands, not of
    // any particular output element — hoisted out of both loops.  The
    // padding value is binary 0 (decimal −1) in every plane, so:
    //  * the real part  Σ ar·br − Σ ai·bi  sees +K_pad from both terms and
    //    they cancel (re = rr − ii with no correction);
    //  * the imaginary part Σ ar·bi + Σ ai·br picks up +K_pad from each
    //    term, which must be subtracted.
    let k_pad = a.k_padding() as i32;

    // The four plane-pair dot products of one output element, fused: one
    // pass over the packed words instead of four (the AND variant still
    // doubles the popcount work per word, mirroring the doubled
    // tensor-core instruction count on Hopper), at the configured unroll
    // depth.
    let dot4 = dot4_dispatch(op, micro.int1_unroll);

    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            let ar = a.re_row(i);
            let ai = a.im_row(i);
            for (j, slot) in row.iter_mut().enumerate() {
                let [rr, ii, ri, ir] = dot4(ar, ai, b_t.re_row(j), b_t.im_row(j));
                let re = rr - ii;
                let im = (ri - k_pad) + (ir - k_pad);
                debug_assert!(re.abs() <= 2 * k_valid && im.abs() <= 2 * k_valid);
                *slot = Complex32::new(re as f32, im as f32);
            }
        });
    HostComplexMatrix::from_data(m, n, out)
}

/// Executes a GEMM on already-quantised operands, dispatching on their
/// precision.  Both operands must share the same precision.  Runs the
/// default [`MicroKernelConfig`]; tuned configurations flow through
/// [`crate::GemmPlan`] and the [`crate::Gemm`] entry points.
pub fn gemm_dispatch(a: &GemmInput, b_t: &GemmInput, op: BitOp) -> Result<ComplexOutput> {
    gemm_dispatch_decoded(a, None, b_t, op, &MicroKernelConfig::default())
}

/// Executes a GEMM with an operand whose preparation (bulk half→float
/// decode) was done ahead of time, dispatching on precision.
pub fn gemm_dispatch_prepared(
    a: &PreparedOperand,
    b_t: &GemmInput,
    op: BitOp,
) -> Result<ComplexOutput> {
    gemm_dispatch_decoded(
        a.input(),
        a.decoded(),
        b_t,
        op,
        &MicroKernelConfig::default(),
    )
}

/// Dispatch core: uses `decoded` for the `A` operand when supplied (the
/// decode-once paths), decodes on the fly otherwise, and runs the kernel
/// instance `micro` selects — the point where a plan's tuned blocking
/// reaches the hot path.
pub(crate) fn gemm_dispatch_decoded(
    a: &GemmInput,
    decoded: Option<&DecodedPlanes>,
    b_t: &GemmInput,
    op: BitOp,
    micro: &MicroKernelConfig,
) -> Result<ComplexOutput> {
    match (a, b_t) {
        (GemmInput::F16(a), GemmInput::F16(b)) => match decoded {
            Some(planes) => gemm_f16_decoded_with(planes, b, micro),
            None => gemm_f16_with(a, b, micro),
        },
        (GemmInput::Int1(a), GemmInput::Int1(b)) => gemm_int1_with(a, b, op, micro),
        (a, b) => Err(CcglibError::PrecisionMismatch {
            expected: a.precision().to_string(),
            actual: b.precision().to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm;
    use crate::synth::{exact_integer_matrix, pseudo_random_matrix};
    use proptest::prelude::*;

    #[test]
    fn f16_gemm_matches_reference_within_half_precision() {
        let a = pseudo_random_matrix(24, 40, 1, 1.0);
        let b_t = pseudo_random_matrix(16, 40, 2, 1.0);
        let tensor = gemm_f16(&F16Matrix::from_host(&a), &F16Matrix::from_host(&b_t)).unwrap();
        let exact = reference_gemm(&a, &b_t).unwrap();
        // Binary16 quantisation of the inputs bounds the error: relative
        // 2^-11 per input value, accumulated over K=40 terms.
        let tol = 40.0 * 2.0 * 2.0f32.powi(-11) * 2.0;
        assert!(
            tensor.max_abs_diff(&exact) < tol,
            "diff = {}",
            tensor.max_abs_diff(&exact)
        );
    }

    #[test]
    fn f16_gemm_checks_shapes() {
        let a = F16Matrix::from_host(&HostComplexMatrix::zeros(4, 8));
        let b = F16Matrix::from_host(&HostComplexMatrix::zeros(4, 9));
        assert!(gemm_f16(&a, &b).is_err());
    }

    #[test]
    fn int1_gemm_matches_decoded_reference_with_padding() {
        // K = 100 forces 156 bits of padding at granularity 256; the
        // corrected kernel must agree exactly with the ±1 reference.
        let a_host = pseudo_random_matrix(9, 100, 3, 1.0);
        let b_host = pseudo_random_matrix(7, 100, 4, 1.0);
        let a = Int1Matrix::from_host_padded(&a_host, 256);
        let b = Int1Matrix::from_host_padded(&b_host, 256);
        assert_eq!(a.k_padding(), 156);
        let reference = reference_gemm(&a.to_host(), &b.to_host()).unwrap();
        for op in [BitOp::Xor, BitOp::And] {
            let result = gemm_int1(&a, &b, op).unwrap();
            assert_eq!(result.rows(), 9);
            assert_eq!(result.cols(), 7);
            assert!(result.max_abs_diff(&reference) < 0.5, "op {op}");
        }
    }

    #[test]
    fn int1_xor_and_paths_are_bit_identical() {
        let a_host = pseudo_random_matrix(12, 300, 5, 1.0);
        let b_host = pseudo_random_matrix(10, 300, 6, 1.0);
        let a = Int1Matrix::from_host_padded(&a_host, 128);
        let b = Int1Matrix::from_host_padded(&b_host, 128);
        let xor = gemm_int1(&a, &b, BitOp::Xor).unwrap();
        let and = gemm_int1(&a, &b, BitOp::And).unwrap();
        assert_eq!(xor, and);
    }

    #[test]
    fn int1_values_have_expected_parity_and_bounds() {
        let a_host = pseudo_random_matrix(6, 64, 7, 1.0);
        let b_host = pseudo_random_matrix(6, 64, 8, 1.0);
        let a = Int1Matrix::from_host(&a_host);
        let b = Int1Matrix::from_host(&b_host);
        let c = gemm_int1(&a, &b, BitOp::Xor).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let v = c.get(i, j);
                // Each component is a sum/difference of 2·64 ±1 terms:
                // bounded by 128 and even.
                assert!(v.re.abs() <= 128.0 && v.im.abs() <= 128.0);
                assert_eq!(v.re as i32 % 2, 0);
                assert_eq!(v.im as i32 % 2, 0);
            }
        }
    }

    #[test]
    fn gemm_dispatch_rejects_mixed_precision() {
        let host = HostComplexMatrix::zeros(4, 32);
        let f = GemmInput::quantise_f16(&host);
        let b = GemmInput::quantise_int1(&host);
        assert!(matches!(
            gemm_dispatch(&f, &b, BitOp::Xor),
            Err(CcglibError::PrecisionMismatch { .. })
        ));
        assert!(gemm_dispatch(&f, &f, BitOp::Xor).is_ok());
    }

    #[test]
    fn gemm_input_accessors() {
        let host = HostComplexMatrix::zeros(4, 100);
        let f = GemmInput::quantise_f16(&host);
        assert_eq!(f.precision(), Precision::Float16);
        assert_eq!(f.rows(), 4);
        assert_eq!(f.k(), 100);
        assert_eq!(f.device_bytes(), 4 * 100 * 4);
        let i = GemmInput::quantise_int1(&host);
        assert_eq!(i.precision(), Precision::Int1);
        assert_eq!(i.k(), 100);
        // Padded to 256 bits → 2 planes × 4 rows × 32 bytes.
        assert_eq!(i.device_bytes(), 2 * 4 * 256 / 8);
    }

    #[test]
    fn interleaved_input_matches_planar_input() {
        let host = pseudo_random_matrix(8, 16, 11, 2.0);
        let mut interleaved = Vec::new();
        for r in 0..8 {
            for c in 0..16 {
                let v = host.get(r, c);
                interleaved.push(v.re);
                interleaved.push(v.im);
            }
        }
        let from_planar = GemmInput::quantise_f16(&host);
        let from_interleaved = GemmInput::quantise_f16_interleaved(8, 16, &interleaved);
        let b = GemmInput::quantise_f16(&pseudo_random_matrix(4, 16, 12, 1.0));
        let c1 = gemm_dispatch(&from_planar, &b, BitOp::Xor).unwrap();
        let c2 = gemm_dispatch(&from_interleaved, &b, BitOp::Xor).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn prepared_paths_are_bit_identical_to_the_direct_path() {
        let a_host = pseudo_random_matrix(13, 300, 21, 1.0);
        let b_host = pseudo_random_matrix(9, 300, 22, 1.0);
        for (a, b) in [
            (
                GemmInput::quantise_f16(&a_host),
                GemmInput::quantise_f16(&b_host),
            ),
            (
                GemmInput::quantise_int1(&a_host),
                GemmInput::quantise_int1(&b_host),
            ),
        ] {
            let direct = gemm_dispatch(&a, &b, BitOp::Xor).unwrap();
            let prepared = gemm_dispatch_prepared(&a.prepare(), &b, BitOp::Xor).unwrap();
            assert_eq!(direct, prepared);
        }
    }

    #[test]
    fn decoded_planes_are_exact() {
        let host = pseudo_random_matrix(7, 45, 31, 100.0);
        let f16m = F16Matrix::from_host(&host);
        let planes = DecodedPlanes::from_f16(&f16m);
        assert_eq!(planes.rows(), 7);
        assert_eq!(planes.cols(), 45);
        for (idx, (&re, &im)) in planes.re().iter().zip(planes.im()).enumerate() {
            let v = f16m.get(idx / 45, idx % 45);
            assert_eq!(re.to_bits(), v.re.to_bits());
            assert_eq!(im.to_bits(), v.im.to_bits());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn blocked_f16_kernel_is_bit_identical_to_reference_on_exact_inputs(
            m in 1usize..10, n in 1usize..10, k in 1usize..600, seed in any::<u64>(),
        ) {
            // Integer inputs in ±4 keep every product and partial sum exact
            // (|Σ| ≤ 600·16 < 2^24), so the blocked micro-kernel must agree
            // with the f32 reference GEMM bit for bit — across K values
            // that are not multiples of the k-tile, j-tile or word size.
            let a_host = exact_integer_matrix(m, k, seed);
            let b_host = exact_integer_matrix(n, k, seed ^ 0x5A5A);
            let result = gemm_f16(&F16Matrix::from_host(&a_host), &F16Matrix::from_host(&b_host))
                .unwrap();
            let reference = reference_gemm(&a_host, &b_host).unwrap();
            prop_assert_eq!(result, reference);
        }

        #[test]
        fn every_menu_config_is_bit_identical_to_the_default(
            m in 1usize..8, n in 1usize..8, k in 1usize..600, seed in any::<u64>(),
        ) {
            // f16: exact integer inputs make every summation order exact,
            // so all blockings must agree bit for bit.  int1: outputs are
            // exact integers on every input, so all unroll depths must.
            let a_host = exact_integer_matrix(m, k, seed);
            let b_host = exact_integer_matrix(n, k, seed ^ 0x33CC);
            let a = F16Matrix::from_host(&a_host);
            let b = F16Matrix::from_host(&b_host);
            let f16_default = gemm_f16(&a, &b).unwrap();
            for config in MicroKernelConfig::menu_for(Precision::Float16) {
                let tuned = gemm_f16_with(&a, &b, &config).unwrap();
                prop_assert_eq!(&tuned, &f16_default, "f16 config {}", config);
            }
            let ai = Int1Matrix::from_host_padded(&a_host, 128);
            let bi = Int1Matrix::from_host_padded(&b_host, 128);
            for op in [BitOp::Xor, BitOp::And] {
                let int1_default = gemm_int1(&ai, &bi, op).unwrap();
                for config in MicroKernelConfig::menu_for(Precision::Int1) {
                    let tuned = gemm_int1_with(&ai, &bi, op, &config).unwrap();
                    prop_assert_eq!(&tuned, &int1_default, "int1 config {} op {}", config, op);
                }
            }
        }

        #[test]
        fn int1_gemm_equals_reference_for_random_shapes(
            m in 1usize..8, n in 1usize..8, k in 1usize..150, seed in any::<u64>(),
        ) {
            let a_host = pseudo_random_matrix(m, k, seed, 1.0);
            let b_host = pseudo_random_matrix(n, k, seed ^ 0xABCD, 1.0);
            let a = Int1Matrix::from_host_padded(&a_host, 128);
            let b = Int1Matrix::from_host_padded(&b_host, 128);
            let reference = reference_gemm(&a.to_host(), &b.to_host()).unwrap();
            let result = gemm_int1(&a, &b, BitOp::Xor).unwrap();
            prop_assert!(result.max_abs_diff(&reference) < 0.5);
        }

        #[test]
        fn f16_gemm_linear_in_scalar(
            m in 1usize..6, n in 1usize..6, k in 1usize..32, seed in any::<u64>(),
        ) {
            // (2A)·B ≈ 2·(A·B) up to half-precision rounding.
            let a_host = pseudo_random_matrix(m, k, seed, 1.0);
            let b_host = pseudo_random_matrix(n, k, seed ^ 0x1111, 1.0);
            let a2_host = HostComplexMatrix::from_fn(m, k, |r, c| a_host.get(r, c).scale(2.0));
            let c1 = gemm_f16(&F16Matrix::from_host(&a_host), &F16Matrix::from_host(&b_host)).unwrap();
            let c2 = gemm_f16(&F16Matrix::from_host(&a2_host), &F16Matrix::from_host(&b_host)).unwrap();
            for i in 0..m {
                for j in 0..n {
                    let lhs = c2.get(i, j);
                    let rhs = c1.get(i, j).scale(2.0);
                    let tol = 0.02 * (1.0 + rhs.abs()) + 0.02 * k as f32;
                    prop_assert!((lhs - rhs).abs() <= tol, "{lhs:?} vs {rhs:?}");
                }
            }
        }
    }
}
