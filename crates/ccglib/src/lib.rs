//! ccglib — the complex-valued GEMM library at the core of the
//! Tensor-Core Beamformer (Section III of the paper).
//!
//! The library multiplies an `M×K` complex matrix `A` (beamforming
//! weights) by a `K×N` complex matrix `B` (receiver samples), batched,
//! using (simulated) GPU tensor cores in either 16-bit floating point or
//! 1-bit integer precision.  The complexity of the tensor cores — complex
//! arithmetic decomposition, 1-bit encodings and popcount identities, data
//! packing and tiling, pipeline buffers, per-architecture operand selection
//! — is hidden behind a small API:
//!
//! ```
//! use ccglib::{Gemm, GemmInput, Precision};
//! use ccglib::matrix::HostComplexMatrix;
//! use gpu_sim::Gpu;
//! use tcbf_types::GemmShape;
//!
//! let device = Gpu::A100.device();
//! let shape = GemmShape::new(64, 32, 128);
//! let gemm = Gemm::new(&device, shape, Precision::Float16).unwrap();
//!
//! let a = HostComplexMatrix::from_fn(64, 128, |r, c| {
//!     tcbf_types::Complex::new((r + c) as f32 * 0.01, 0.5)
//! });
//! let b = HostComplexMatrix::from_fn(128, 32, |r, c| {
//!     tcbf_types::Complex::new(0.25, (r as f32 - c as f32) * 0.01)
//! });
//! let (c, report) = gemm
//!     .run(&GemmInput::quantise_f16(&a), &GemmInput::quantise_f16(&b.transposed()))
//!     .unwrap();
//! assert_eq!(c.rows(), 64);
//! assert_eq!(c.cols(), 32);
//! assert!(report.predicted.elapsed_s > 0.0);
//! ```
//!
//! Functional results are always computed (bit-faithfully for the 1-bit
//! path, with binary16 rounding for the 16-bit path); execution time and
//! energy come from the `gpu-sim` analytic model, so the library can also
//! *predict* the performance of paper-scale problems without materialising
//! terabyte-sized operands (see [`Gemm::predict`]).

#![deny(missing_docs)]

pub mod benchmark;
pub mod error;
pub mod gemm;
pub mod matrix;
pub mod micro;
pub mod pack;
pub mod params;
pub mod plan;
pub mod reference;
pub mod synth;
pub mod transpose;

pub use error::{CcglibError, Result};
pub use gemm::{ComplexOutput, DecodedPlanes, GemmBatchInput, GemmInput, PreparedOperand};
pub use micro::MicroKernelConfig;
pub use params::{ParameterSpace, TuningParameters};
pub use plan::{
    calibration_enumerations, calibration_shape, warm_calibration, Gemm, GemmPlan, RunReport,
};
pub use reference::reference_gemm;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Input precision of the GEMM kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 16-bit floating point input, 32-bit floating point output.
    Float16,
    /// 1-bit integer input, 32-bit integer output.
    Int1,
    /// 32-bit floating point on the regular GPU cores — the baseline the
    /// paper compares against (reference LOFAR beamformer, Octave/OpenCL
    /// ultrasound pipeline).
    Float32Reference,
}

impl Precision {
    /// Bits per real component of the input data.
    pub fn input_bits(self) -> usize {
        match self {
            Precision::Float16 => 16,
            Precision::Int1 => 1,
            Precision::Float32Reference => 32,
        }
    }

    /// Whether this precision runs on the tensor cores.
    pub fn uses_tensor_cores(self) -> bool {
        !matches!(self, Precision::Float32Reference)
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Float16 => write!(f, "float16"),
            Precision::Int1 => write!(f, "int1"),
            Precision::Float32Reference => write!(f, "float32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_properties() {
        assert_eq!(Precision::Float16.input_bits(), 16);
        assert_eq!(Precision::Int1.input_bits(), 1);
        assert_eq!(Precision::Float32Reference.input_bits(), 32);
        assert!(Precision::Float16.uses_tensor_cores());
        assert!(Precision::Int1.uses_tensor_cores());
        assert!(!Precision::Float32Reference.uses_tensor_cores());
        assert_eq!(Precision::Int1.to_string(), "int1");
    }
}
