//! Host- and device-side complex matrix containers.
//!
//! ccglib distinguishes three representations:
//!
//! * [`HostComplexMatrix`] — the user-facing container: full-precision
//!   complex values in the usual interleaved row-major layout.  This is
//!   what application code produces (beam weights, receiver samples) and
//!   consumes (beamformed output).
//! * [`F16Matrix`] — the 16-bit device format: separate (planar) real and
//!   imaginary planes of binary16 values, the layout the float16 tensor
//!   core kernel consumes after the transpose kernel has split the
//!   interleaved input.
//! * [`Int1Matrix`] — the 1-bit device format: real and imaginary bit
//!   planes packed 32 samples per word along the reduction dimension, the
//!   output of the packing kernel.

use crate::error::{CcglibError, Result};
use serde::{Deserialize, Serialize};
use tcbf_types::matrix::round_up;
use tcbf_types::{f16, Complex, Complex32, PackedBits};

/// A host-side complex matrix in row-major order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostComplexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex32>,
}

impl HostComplexMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        HostComplexMatrix {
            rows,
            cols,
            data: vec![Complex32::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        HostComplexMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major data.
    pub fn from_data(rows: usize, cols: usize, data: Vec<Complex32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(CcglibError::ShapeMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(HostComplexMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex32 {
        self.data[row * self.cols + col]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Complex32) {
        self.data[row * self.cols + col] = value;
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[Complex32] {
        &self.data
    }

    /// Returns the transposed matrix (used to bring the `B` operand into
    /// the `N×K` orientation the packed kernels expect).
    pub fn transposed(&self) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Maximum absolute difference to another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &HostComplexMatrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|c| c.norm_sqr()).sum::<f32>().sqrt()
    }
}

/// Planar binary16 device matrix: the input format of the float16 tensor
/// core GEMM kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct F16Matrix {
    rows: usize,
    cols: usize,
    re: Vec<f16>,
    im: Vec<f16>,
}

impl F16Matrix {
    /// Quantises a host matrix to binary16, splitting it into planes.
    pub fn from_host(host: &HostComplexMatrix) -> Self {
        let n = host.rows() * host.cols();
        let mut re = Vec::with_capacity(n);
        let mut im = Vec::with_capacity(n);
        for v in host.data() {
            re.push(f16::from_f32(v.re));
            im.push(f16::from_f32(v.im));
        }
        F16Matrix {
            rows: host.rows(),
            cols: host.cols(),
            re,
            im,
        }
    }

    /// Builds a matrix directly from planes (used by the transpose kernel).
    pub fn from_planes(rows: usize, cols: usize, re: Vec<f16>, im: Vec<f16>) -> Result<Self> {
        if re.len() != rows * cols || im.len() != rows * cols {
            return Err(CcglibError::ShapeMismatch {
                expected: format!("{} scalars per plane", rows * cols),
                actual: format!("re={}, im={}", re.len(), im.len()),
            });
        }
        Ok(F16Matrix { rows, cols, re, im })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Real plane, row-major.
    pub fn re(&self) -> &[f16] {
        &self.re
    }
    /// Imaginary plane, row-major.
    pub fn im(&self) -> &[f16] {
        &self.im
    }

    /// Element access, widening to single precision.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex32 {
        let idx = row * self.cols + col;
        Complex::new(self.re[idx].to_f32(), self.im[idx].to_f32())
    }

    /// Converts back to a host matrix (exact: binary16 ⊂ binary32).
    pub fn to_host(&self) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(self.rows, self.cols, |r, c| self.get(r, c))
    }

    /// Device-memory footprint in bytes (two planes of 2-byte scalars).
    pub fn device_bytes(&self) -> u128 {
        4 * (self.rows as u128) * (self.cols as u128)
    }
}

/// Packed 1-bit device matrix: `rows` bit-rows of `k_bits` samples packed
/// along the reduction dimension, one plane per complex component.
///
/// Both operands of the 1-bit GEMM use this orientation: `A` as `M×K` and
/// `B` transposed to `N×K`, so each output element is a dot product of two
/// bit-rows — exactly how the binary tensor-core fragments consume data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Int1Matrix {
    rows: usize,
    /// Number of valid (unpadded) samples along the packed dimension.
    k_bits: usize,
    /// Number of samples after padding to the packing granularity.
    k_padded: usize,
    re: Vec<PackedBits>,
    im: Vec<PackedBits>,
}

impl Int1Matrix {
    /// Packing granularity in bits: 32 samples per word.
    pub const WORD_BITS: usize = 32;

    /// Quantises a host matrix (`rows × k`) to 1-bit by keeping component
    /// signs, padding the packed dimension to a whole number of words with
    /// binary 0 (decimal −1) as the paper prescribes.
    pub fn from_host(host: &HostComplexMatrix) -> Self {
        Self::from_host_padded(host, Self::WORD_BITS)
    }

    /// Quantises and pads the packed dimension up to a multiple of
    /// `k_granularity` bits (e.g. the tensor-core fragment depth), so the
    /// K<sub>pad</sub> correction of Eq. 5 can be exercised explicitly.
    pub fn from_host_padded(host: &HostComplexMatrix, k_granularity: usize) -> Self {
        let rows = host.rows();
        let k_bits = host.cols();
        let k_padded = round_up(k_bits.max(1), k_granularity.max(Self::WORD_BITS));
        let words_per_row = k_padded / 32;
        let mut re = Vec::with_capacity(rows);
        let mut im = Vec::with_capacity(rows);
        for r in 0..rows {
            // Assemble whole words in registers — one write per 32 samples
            // instead of one masked read-modify-write per bit.  Words past
            // the valid samples stay zero: binary 0 is the padding value.
            let row = &host.data()[r * k_bits..(r + 1) * k_bits];
            let mut re_words = vec![0u32; words_per_row];
            let mut im_words = vec![0u32; words_per_row];
            for (w, chunk) in row.chunks(32).enumerate() {
                let mut re_word = 0u32;
                let mut im_word = 0u32;
                for (i, v) in chunk.iter().enumerate() {
                    re_word |= u32::from(v.re >= 0.0) << i;
                    im_word |= u32::from(v.im >= 0.0) << i;
                }
                re_words[w] = re_word;
                im_words[w] = im_word;
            }
            re.push(PackedBits::from_words(re_words, k_padded));
            im.push(PackedBits::from_words(im_words, k_padded));
        }
        Int1Matrix {
            rows,
            k_bits,
            k_padded,
            re,
            im,
        }
    }

    /// Number of bit-rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Valid samples per row (the logical `K`).
    pub fn k_bits(&self) -> usize {
        self.k_bits
    }

    /// Samples per row after padding.
    pub fn k_padded(&self) -> usize {
        self.k_padded
    }

    /// Amount of padding along the packed dimension (the `K_pad` of Eq. 5).
    pub fn k_padding(&self) -> usize {
        self.k_padded - self.k_bits
    }

    /// Real bit plane of one row.
    pub fn re_row(&self, row: usize) -> &PackedBits {
        &self.re[row]
    }

    /// Imaginary bit plane of one row.
    pub fn im_row(&self, row: usize) -> &PackedBits {
        &self.im[row]
    }

    /// Decodes back to ±1-valued complex numbers (only the valid samples).
    pub fn to_host(&self) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(self.rows, self.k_bits, |r, c| {
            Complex::new(
                if self.re[r].get(c) { 1.0 } else { -1.0 },
                if self.im[r].get(c) { 1.0 } else { -1.0 },
            )
        })
    }

    /// Device-memory footprint in bytes (two bit planes).
    pub fn device_bytes(&self) -> u128 {
        2 * (self.rows as u128) * (self.k_padded as u128) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn host_matrix_roundtrip_and_indexing() {
        let m = HostComplexMatrix::from_fn(3, 4, |r, c| Complex::new(r as f32, c as f32));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(2, 3), Complex::new(2.0, 3.0));
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.get(3, 2), Complex::new(2.0, 3.0));
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn from_data_validates_length() {
        assert!(HostComplexMatrix::from_data(2, 2, vec![Complex32::ZERO; 4]).is_ok());
        assert!(HostComplexMatrix::from_data(2, 2, vec![Complex32::ZERO; 3]).is_err());
    }

    #[test]
    fn f16_matrix_quantises_with_half_precision() {
        let host = HostComplexMatrix::from_fn(4, 4, |r, c| {
            Complex::new(1.0 / (1.0 + r as f32), -1.0 / (1.0 + c as f32))
        });
        let dev = F16Matrix::from_host(&host);
        let back = dev.to_host();
        assert!(host.max_abs_diff(&back) < 1e-3);
        assert_eq!(dev.device_bytes(), 4 * 16);
    }

    #[test]
    fn int1_matrix_packs_signs_and_pads() {
        let host = HostComplexMatrix::from_fn(2, 40, |r, c| {
            Complex::new(if (r + c) % 2 == 0 { 1.0 } else { -1.0 }, -0.5)
        });
        let dev = Int1Matrix::from_host_padded(&host, 128);
        assert_eq!(dev.rows(), 2);
        assert_eq!(dev.k_bits(), 40);
        assert_eq!(dev.k_padded(), 128);
        assert_eq!(dev.k_padding(), 88);
        // Padding bits decode as −1 (binary 0).
        assert!(!dev.re_row(0).get(100));
        let back = dev.to_host();
        assert_eq!(back.cols(), 40);
        for r in 0..2 {
            for c in 0..40 {
                let expect = Complex::new(if (r + c) % 2 == 0 { 1.0 } else { -1.0 }, -1.0);
                assert_eq!(back.get(r, c), expect);
            }
        }
    }

    #[test]
    fn word_assembled_packing_matches_the_per_bit_layout() {
        // The fast path must produce the exact word layout of the original
        // per-bit `PackedBits::set` construction, including padding words.
        let host = HostComplexMatrix::from_fn(3, 70, |r, c| {
            Complex::new(
                ((r * 31 + c * 17) % 7) as f32 - 3.0,
                ((r * 13 + c * 5) % 11) as f32 - 5.0,
            )
        });
        let fast = Int1Matrix::from_host_padded(&host, 128);
        for r in 0..3 {
            let mut re_bits = PackedBits::zeros(fast.k_padded());
            let mut im_bits = PackedBits::zeros(fast.k_padded());
            for c in 0..70 {
                let v = host.get(r, c);
                re_bits.set(c, v.re >= 0.0);
                im_bits.set(c, v.im >= 0.0);
            }
            assert_eq!(fast.re_row(r), &re_bits, "re row {r}");
            assert_eq!(fast.im_row(r), &im_bits, "im row {r}");
        }
    }

    #[test]
    fn device_bytes_accounting() {
        let host = HostComplexMatrix::zeros(8, 256);
        let one_bit = Int1Matrix::from_host(&host);
        // 8 rows × 256 bits × 2 planes / 8 bits-per-byte = 512 bytes.
        assert_eq!(one_bit.device_bytes(), 512);
        let f16m = F16Matrix::from_host(&host);
        assert_eq!(f16m.device_bytes(), 8 * 256 * 4);
    }

    #[test]
    fn frobenius_norm_and_diff() {
        let a = HostComplexMatrix::from_fn(2, 2, |_, _| Complex::new(1.0, 0.0));
        let b = HostComplexMatrix::from_fn(2, 2, |_, _| Complex::new(0.0, 0.0));
        assert_eq!(a.frobenius_norm(), 2.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int1_quantisation_is_idempotent(rows in 1usize..6, k in 1usize..80, seed in any::<u64>()) {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / 8388608.0) - 1.0
            };
            let host = HostComplexMatrix::from_fn(rows, k, |_, _| Complex::new(next(), next()));
            let once = Int1Matrix::from_host(&host).to_host();
            let twice = Int1Matrix::from_host(&once).to_host();
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn f16_roundtrip_error_is_bounded(rows in 1usize..5, cols in 1usize..5, scale in 0.1f32..100.0) {
            let host = HostComplexMatrix::from_fn(rows, cols, |r, c| {
                Complex::new(scale * (r as f32 + 0.5), -scale * (c as f32 + 0.25))
            });
            let back = F16Matrix::from_host(&host).to_host();
            let tol = scale * (rows + cols) as f32 * 2.0f32.powi(-10);
            prop_assert!(host.max_abs_diff(&back) <= tol);
        }
    }
}
