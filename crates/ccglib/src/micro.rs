//! The searchable shape of the host micro-kernels.
//!
//! [`TuningParameters`](crate::TuningParameters) describe the *simulated*
//! GPU kernel (warps, fragments, shared-memory buffers) and feed the
//! analytic execution model.  This module describes the kernel that
//! actually burns wall clock: the cache-blocked f16 hot path and the
//! fused-popcount int1 hot path in [`gemm`](crate::gemm).  A
//! [`MicroKernelConfig`] names the blocking factors those kernels used to
//! hard-code — the f16 column tile, lane-vector width and k-tile, and the
//! int1 word-unroll depth — so the tuner can search them against real
//! measured throughput and the winner can ride on a
//! [`GemmPlan`](crate::GemmPlan).
//!
//! Every configuration on the [`MicroKernelConfig::menu`] is
//! **bit-identical** to every other on all inputs: the f16 kernel reduces
//! each lane vector by adjacent pairwise halving (the same summation tree
//! at every width) and tiles only change which dot products are in flight
//! together, never the order of any single reduction; the int1 kernel is
//! integer-exact at every unroll depth.  The conformance suites assert
//! this, so tuning can never change results — only wall clock.

use crate::error::{CcglibError, Result};
use crate::Precision;
use serde::{Deserialize, Serialize};

/// The f16 column-tile widths the menu searches over.
pub const F16_J_TILES: [usize; 3] = [1, 2, 4];
/// The f16 lane-vector widths (accumulator lanes per dot product) the menu
/// searches over.  Powers of two, so pairwise-halving reduction is exact.
pub const F16_LANE_WIDTHS: [usize; 3] = [4, 8, 16];
/// The f16 k-tile lengths the menu searches over.
pub const F16_K_TILES: [usize; 3] = [256, 1024, 4096];
/// The int1 word-unroll depths (fused 64-bit popcounts per loop iteration)
/// the menu searches over.
pub const INT1_UNROLLS: [usize; 3] = [1, 2, 4];

/// A validated blocking configuration of the host micro-kernels — the
/// value the autotuner searches and [`GemmPlan`](crate::GemmPlan) carries.
///
/// The default reproduces the previously hard-coded constants exactly
/// (j-tile 2, 8 lanes, k-tile 1024, unroll 1), so untuned code paths are
/// byte-for-byte the kernels that produced the committed benchmarks.
///
/// ```
/// use ccglib::MicroKernelConfig;
///
/// let config = MicroKernelConfig::default();
/// assert!(config.validate().is_ok());
/// assert!(MicroKernelConfig::menu().contains(&config));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroKernelConfig {
    /// Output columns computed together per f16 kernel row pass (the
    /// j-tile): more columns reuse one A-row load across more dot
    /// products but need more live accumulators.
    pub f16_j_tile: usize,
    /// Lanes per f16 accumulator vector: wider vectors expose more
    /// instruction-level parallelism per dot product.
    pub f16_lanes: usize,
    /// Reduction-dimension tile of the f16 kernel: bounds the working set
    /// of one (A-row, B-column-tile) pass.
    pub f16_k_tile: usize,
    /// Fused 64-bit popcounts issued per int1 inner-loop iteration.
    pub int1_unroll: usize,
}

impl Default for MicroKernelConfig {
    fn default() -> Self {
        MicroKernelConfig {
            f16_j_tile: 2,
            f16_lanes: 8,
            f16_k_tile: 1024,
            int1_unroll: 1,
        }
    }
}

impl std::fmt::Display for MicroKernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "j{} l{} k{} u{}",
            self.f16_j_tile, self.f16_lanes, self.f16_k_tile, self.int1_unroll
        )
    }
}

impl MicroKernelConfig {
    /// Checks every field against the monomorphised menu axes: the
    /// kernels dispatch over compiled instances, so only listed values
    /// are executable.  The k-tile must also be a multiple of the lane
    /// width so whole tiles split into whole lane vectors.
    pub fn validate(&self) -> Result<()> {
        let invalid = |reason: String| CcglibError::InvalidParameters { reason };
        if !F16_J_TILES.contains(&self.f16_j_tile) {
            return Err(invalid(format!(
                "f16_j_tile {} not in the compiled menu {F16_J_TILES:?}",
                self.f16_j_tile
            )));
        }
        if !F16_LANE_WIDTHS.contains(&self.f16_lanes) {
            return Err(invalid(format!(
                "f16_lanes {} not in the compiled menu {F16_LANE_WIDTHS:?}",
                self.f16_lanes
            )));
        }
        if !F16_K_TILES.contains(&self.f16_k_tile) {
            return Err(invalid(format!(
                "f16_k_tile {} not in the compiled menu {F16_K_TILES:?}",
                self.f16_k_tile
            )));
        }
        if !self.f16_k_tile.is_multiple_of(self.f16_lanes) {
            return Err(invalid(format!(
                "f16_k_tile {} is not a multiple of f16_lanes {}",
                self.f16_k_tile, self.f16_lanes
            )));
        }
        if !INT1_UNROLLS.contains(&self.int1_unroll) {
            return Err(invalid(format!(
                "int1_unroll {} not in the compiled menu {INT1_UNROLLS:?}",
                self.int1_unroll
            )));
        }
        Ok(())
    }

    /// The full menu of compiled configurations, default first: the
    /// j-tile × lane-width cartesian product at the default k-tile, the
    /// non-default k-tiles at the default f16 blocking, and the
    /// non-default int1 unroll depths.  Every entry validates.
    pub fn menu() -> Vec<MicroKernelConfig> {
        let base = MicroKernelConfig::default();
        let mut menu = vec![base];
        for j_tile in F16_J_TILES {
            for lanes in F16_LANE_WIDTHS {
                let candidate = MicroKernelConfig {
                    f16_j_tile: j_tile,
                    f16_lanes: lanes,
                    ..base
                };
                if candidate != base {
                    menu.push(candidate);
                }
            }
        }
        for k_tile in F16_K_TILES {
            if k_tile != base.f16_k_tile {
                menu.push(MicroKernelConfig {
                    f16_k_tile: k_tile,
                    ..base
                });
            }
        }
        for unroll in INT1_UNROLLS {
            if unroll != base.int1_unroll {
                menu.push(MicroKernelConfig {
                    int1_unroll: unroll,
                    ..base
                });
            }
        }
        menu
    }

    /// The menu entries that can change the hot path at `precision`:
    /// f16-blocking variants for [`Precision::Float16`], unroll variants
    /// for [`Precision::Int1`], the default alone for the scalar
    /// reference.  The default is always first, so exhaustive search
    /// ties resolve towards it.
    pub fn menu_for(precision: Precision) -> Vec<MicroKernelConfig> {
        let base = MicroKernelConfig::default();
        match precision {
            Precision::Float16 => Self::menu()
                .into_iter()
                .filter(|c| c.int1_unroll == base.int1_unroll)
                .collect(),
            Precision::Int1 => Self::menu()
                .into_iter()
                .filter(|c| {
                    c.f16_j_tile == base.f16_j_tile
                        && c.f16_lanes == base.f16_lanes
                        && c.f16_k_tile == base.f16_k_tile
                })
                .collect(),
            Precision::Float32Reference => vec![base],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_the_previously_hard_coded_constants() {
        let config = MicroKernelConfig::default();
        assert_eq!(config.f16_j_tile, 2);
        assert_eq!(config.f16_lanes, 8);
        assert_eq!(config.f16_k_tile, 1024);
        assert_eq!(config.int1_unroll, 1);
        config.validate().unwrap();
    }

    #[test]
    fn every_menu_entry_validates_and_the_default_leads() {
        let menu = MicroKernelConfig::menu();
        assert_eq!(menu[0], MicroKernelConfig::default());
        for config in &menu {
            config.validate().unwrap();
        }
        let unique: std::collections::HashSet<_> = menu.iter().collect();
        assert_eq!(unique.len(), menu.len(), "menu entries are distinct");
    }

    #[test]
    fn per_precision_menus_partition_the_search_space() {
        let f16 = MicroKernelConfig::menu_for(Precision::Float16);
        let int1 = MicroKernelConfig::menu_for(Precision::Int1);
        assert_eq!(f16[0], MicroKernelConfig::default());
        assert_eq!(int1[0], MicroKernelConfig::default());
        assert!(f16.iter().all(|c| c.int1_unroll == 1));
        assert!(int1.iter().all(|c| c.f16_j_tile == 2 && c.f16_lanes == 8));
        assert_eq!(int1.len(), INT1_UNROLLS.len());
        assert_eq!(
            MicroKernelConfig::menu_for(Precision::Float32Reference),
            vec![MicroKernelConfig::default()]
        );
    }

    #[test]
    fn validation_rejects_each_out_of_menu_field() {
        let base = MicroKernelConfig::default();
        for bad in [
            MicroKernelConfig {
                f16_j_tile: 3,
                ..base
            },
            MicroKernelConfig {
                f16_lanes: 6,
                ..base
            },
            MicroKernelConfig {
                f16_k_tile: 1000,
                ..base
            },
            MicroKernelConfig {
                int1_unroll: 3,
                ..base
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must not validate");
        }
    }

    #[test]
    fn display_is_compact_and_field_complete() {
        assert_eq!(MicroKernelConfig::default().to_string(), "j2 l8 k1024 u1");
    }
}
