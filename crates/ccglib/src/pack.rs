//! The 1-bit packing / unpacking kernel.
//!
//! "For 1-bit precision, the input data must be packed, i.e. 32 consecutive
//! 1-bit samples must be stored in a single 32-bit integer.  Packing and
//! unpacking kernels are provided to handle this."  (Section III.)
//!
//! Packing keeps only the sign of every real and imaginary component and is
//! purely a data-movement operation, so on the device it is bound by memory
//! bandwidth; the [`pack_profile`] function exposes that cost to the
//! execution model so pipelines that include packing (e.g. the ultrasound
//! measurement-matrix path of Fig. 5) account for it.

use crate::matrix::{HostComplexMatrix, Int1Matrix};
use gpu_sim::{DeviceSpec, KernelKind, KernelProfile, LaunchConfig};

/// Packs a host complex matrix (`rows × k`) into 1-bit planes, padding the
/// packed dimension to `k_granularity` bits (the fragment depth of the
/// kernel that will consume it).
pub fn pack(host: &HostComplexMatrix, k_granularity: usize) -> Int1Matrix {
    Int1Matrix::from_host_padded(host, k_granularity)
}

/// Unpacks a 1-bit matrix back to ±1-valued complex samples.
pub fn unpack(packed: &Int1Matrix) -> HostComplexMatrix {
    packed.to_host()
}

/// Kernel profile of packing a `rows × k` matrix whose source samples are
/// `input_bits_per_component` bits wide (16 for half-precision input, 32
/// for single-precision input straight from the application).
///
/// The kernel reads every input sample once and writes two packed bit
/// planes; it performs no arithmetic worth counting.
pub fn pack_profile(
    spec: &DeviceSpec,
    rows: usize,
    k: usize,
    input_bits_per_component: usize,
) -> KernelProfile {
    let elements = rows as f64 * k as f64;
    let input_bytes = elements * 2.0 * input_bits_per_component as f64 / 8.0;
    let output_bytes = elements * 2.0 / 8.0;
    let threads_per_block = 256;
    // One thread per 32 input samples (one output word).
    let words = (elements / 32.0).ceil().max(1.0);
    let blocks = (words / threads_per_block as f64).ceil().max(1.0) as usize;
    let _ = spec;
    KernelProfile::data_movement(
        KernelKind::Pack,
        input_bytes + output_bytes,
        LaunchConfig::new(blocks, threads_per_block),
    )
}

/// Kernel profile of the unpacking direction (reads bit planes, writes
/// full-width samples).
pub fn unpack_profile(
    spec: &DeviceSpec,
    rows: usize,
    k: usize,
    output_bits_per_component: usize,
) -> KernelProfile {
    // Same traffic as packing with the roles of input and output swapped.
    pack_profile(spec, rows, k, output_bits_per_component)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{ExecutionModel, Gpu};
    use tcbf_types::Complex;

    #[test]
    fn pack_unpack_roundtrip_preserves_signs() {
        let host = HostComplexMatrix::from_fn(5, 67, |r, c| {
            Complex::new((r as f32 - 2.0) * 0.3, (c as f32 - 33.0) * 0.1)
        });
        let packed = pack(&host, 128);
        let unpacked = unpack(&packed);
        assert_eq!(unpacked.rows(), 5);
        assert_eq!(unpacked.cols(), 67);
        for r in 0..5 {
            for c in 0..67 {
                let orig = host.get(r, c);
                let got = unpacked.get(r, c);
                assert_eq!(got.re, if orig.re >= 0.0 { 1.0 } else { -1.0 });
                assert_eq!(got.im, if orig.im >= 0.0 { 1.0 } else { -1.0 });
            }
        }
    }

    #[test]
    fn pack_pads_to_fragment_depth() {
        let host = HostComplexMatrix::zeros(3, 300);
        let packed = pack(&host, 256);
        assert_eq!(packed.k_padded(), 512);
        assert_eq!(packed.k_padding(), 212);
    }

    #[test]
    fn pack_profile_is_memory_bound_and_scales_with_size() {
        let spec = Gpu::A100.spec();
        let model = ExecutionModel::new(spec.clone());
        let small = model.time(&pack_profile(&spec, 64, 8192, 16));
        let large = model.time(&pack_profile(&spec, 64, 8_192_000, 16));
        assert!(large.elapsed_s > small.elapsed_s);
        assert!(large.is_memory_bound());
        assert_eq!(small.compute_time_s, 0.0);
    }

    #[test]
    fn pack_traffic_dominated_by_input_width() {
        let spec = Gpu::Gh200.spec();
        let from_f32 = pack_profile(&spec, 128, 65536, 32);
        let from_f16 = pack_profile(&spec, 128, 65536, 16);
        assert!(from_f32.global_bytes > from_f16.global_bytes);
        // Output is 32x smaller than a 32-bit input.
        let elements = 128.0 * 65536.0;
        assert!((from_f32.global_bytes - (elements * 8.0 + elements * 0.25)).abs() < 1.0);
    }

    #[test]
    fn unpack_profile_mirrors_pack() {
        let spec = Gpu::Ad4000.spec();
        let p = pack_profile(&spec, 10, 1000, 16);
        let u = unpack_profile(&spec, 10, 1000, 16);
        assert_eq!(p.global_bytes, u.global_bytes);
    }
}
