//! Tunable kernel parameters and the tuning search space.
//!
//! The matrix-matrix multiplication kernels are "adaptive in the amount of
//! work per thread block and warp" (Section III-C); the tunable parameters
//! are exactly those of Table III: work per block and per warp along `M`
//! and `N`, and the number of asynchronous-copy pipeline buffers.  ccglib
//! ships a set of per-GPU defaults (the tuned values of Table III) and
//! selects them automatically at run time; the `tuner` crate re-derives
//! them by searching the space defined here.

use crate::error::{CcglibError, Result};
use crate::Precision;
use gpu_sim::{DeviceSpec, Gpu, SharedMemoryPlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One configuration of the tunable kernel parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TuningParameters {
    /// Output rows processed per thread block.
    pub m_per_block: usize,
    /// Output rows processed per warp.
    pub m_per_warp: usize,
    /// Output columns processed per thread block.
    pub n_per_block: usize,
    /// Output columns processed per warp.
    pub n_per_warp: usize,
    /// Number of shared-memory pipeline stages (asynchronous-copy
    /// buffers).  Automatically forced to 1 on AMD devices.
    pub buffers: usize,
}

impl TuningParameters {
    /// Creates a parameter set.
    pub const fn new(
        m_per_block: usize,
        m_per_warp: usize,
        n_per_block: usize,
        n_per_warp: usize,
        buffers: usize,
    ) -> Self {
        TuningParameters {
            m_per_block,
            m_per_warp,
            n_per_block,
            n_per_warp,
            buffers,
        }
    }

    /// The K-depth of one shared-memory stage for a precision: two
    /// fragments deep for float16 (32 elements), two 256-bit fragments for
    /// 1-bit (512 samples).
    pub fn k_slice(precision: Precision) -> usize {
        match precision {
            Precision::Float16 | Precision::Float32Reference => 32,
            Precision::Int1 => 512,
        }
    }

    /// Number of warps per thread block implied by the per-block and
    /// per-warp work.
    pub fn warps_per_block(&self) -> usize {
        (self.m_per_block / self.m_per_warp.max(1)).max(1)
            * (self.n_per_block / self.n_per_warp.max(1)).max(1)
    }

    /// Threads per block on a device (warps × warp width).
    pub fn threads_per_block(&self, spec: &DeviceSpec) -> usize {
        self.warps_per_block() * spec.warp_size
    }

    /// 32-bit accumulator registers needed per block: one complex
    /// single-precision accumulator per output element held in registers.
    pub fn accumulator_registers(&self) -> usize {
        2 * self.m_per_block * self.n_per_block
    }

    /// Shared-memory footprint of this configuration for a precision.
    pub fn shared_memory_plan(&self, precision: Precision) -> SharedMemoryPlan {
        SharedMemoryPlan::new(
            self.m_per_block,
            self.n_per_block,
            Self::k_slice(precision),
            self.buffers,
            precision.input_bits(),
        )
    }

    /// Checks this configuration against the hard limits of a device;
    /// returns a descriptive error for configurations a real kernel could
    /// not launch with.
    pub fn validate(&self, spec: &DeviceSpec, precision: Precision) -> Result<()> {
        let invalid = |reason: String| Err(CcglibError::InvalidParameters { reason });
        if self.m_per_warp > self.m_per_block || self.n_per_warp > self.n_per_block {
            return invalid(format!(
                "warp tile {}x{} exceeds block tile {}x{}",
                self.m_per_warp, self.n_per_warp, self.m_per_block, self.n_per_block
            ));
        }
        if !self.m_per_block.is_multiple_of(self.m_per_warp)
            || !self.n_per_block.is_multiple_of(self.n_per_warp)
        {
            return invalid("block tile must be a multiple of the warp tile".to_string());
        }
        if self.buffers == 0 {
            return invalid("at least one pipeline buffer is required".to_string());
        }
        let threads = self.threads_per_block(spec);
        if threads > spec.max_threads_per_block {
            return invalid(format!(
                "{} warps need {} threads, device allows {} per block",
                self.warps_per_block(),
                threads,
                spec.max_threads_per_block
            ));
        }
        if self.accumulator_registers() > spec.registers_per_block {
            return invalid(format!(
                "accumulators need {} registers per block, device has {}",
                self.accumulator_registers(),
                spec.registers_per_block
            ));
        }
        let smem = self.shared_memory_plan(precision);
        if !smem.fits(spec) {
            return invalid(format!(
                "tile needs {} KiB shared memory, device allows {} KiB",
                smem.total_bytes() / 1024,
                spec.shared_mem_per_block_kib
            ));
        }
        Ok(())
    }

    /// The number of pipeline buffers actually used on a device: AMD GPUs
    /// have no asynchronous copies, so ccglib forces a single buffer there
    /// (Section III-C).
    pub fn effective_buffers(&self, spec: &DeviceSpec) -> usize {
        if spec.arch.supports_async_copies() {
            self.buffers
        } else {
            1
        }
    }

    /// The tuned per-GPU defaults shipped with ccglib (Table III).
    pub fn default_for(gpu: Gpu, precision: Precision) -> TuningParameters {
        match precision {
            Precision::Float16 | Precision::Float32Reference => match gpu {
                Gpu::Ad4000 => TuningParameters::new(256, 32, 32, 32, 2),
                Gpu::A100 => TuningParameters::new(256, 64, 32, 32, 2),
                Gpu::Gh200 => TuningParameters::new(128, 64, 64, 32, 2),
                Gpu::W7700 => TuningParameters::new(256, 128, 64, 16, 1),
                Gpu::Mi210 => TuningParameters::new(128, 64, 64, 32, 1),
                Gpu::Mi300x | Gpu::Mi300a => TuningParameters::new(128, 64, 128, 32, 1),
            },
            Precision::Int1 => match gpu {
                Gpu::Ad4000 => TuningParameters::new(256, 128, 32, 16, 2),
                Gpu::A100 => TuningParameters::new(128, 32, 64, 64, 4),
                Gpu::Gh200 => TuningParameters::new(64, 64, 128, 32, 2),
                // 1-bit mode does not exist on AMD GPUs; fall back to the
                // float16 tile so callers that only need a tile shape (e.g.
                // padding estimates) still get something sensible.
                other => TuningParameters::default_for(other, Precision::Float16),
            },
        }
    }
}

impl fmt::Display for TuningParameters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block {}x{}, warp {}x{}, {} buffer(s)",
            self.m_per_block, self.n_per_block, self.m_per_warp, self.n_per_warp, self.buffers
        )
    }
}

/// The tuning search space explored by the auto-tuner (Section IV-A).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParameterSpace {
    /// Candidate values for work per block along M.
    pub m_per_block: Vec<usize>,
    /// Candidate values for work per warp along M.
    pub m_per_warp: Vec<usize>,
    /// Candidate values for work per block along N.
    pub n_per_block: Vec<usize>,
    /// Candidate values for work per warp along N.
    pub n_per_warp: Vec<usize>,
    /// Candidate buffer counts.
    pub buffers: Vec<usize>,
}

impl ParameterSpace {
    /// The search space used for the paper's auto-tuning runs.
    pub fn paper_space() -> Self {
        ParameterSpace {
            m_per_block: vec![64, 128, 256],
            m_per_warp: vec![16, 32, 64, 128],
            n_per_block: vec![32, 64, 128],
            n_per_warp: vec![16, 32, 64],
            buffers: vec![1, 2, 4],
        }
    }

    /// Enumerates every combination in the space, valid or not.
    pub fn all_combinations(&self) -> Vec<TuningParameters> {
        let mut out = Vec::new();
        for &mb in &self.m_per_block {
            for &mw in &self.m_per_warp {
                for &nb in &self.n_per_block {
                    for &nw in &self.n_per_warp {
                        for &b in &self.buffers {
                            out.push(TuningParameters::new(mb, mw, nb, nw, b));
                        }
                    }
                }
            }
        }
        out
    }

    /// Enumerates only the configurations that are launchable on a device
    /// for a precision.
    pub fn valid_combinations(
        &self,
        spec: &DeviceSpec,
        precision: Precision,
    ) -> Vec<TuningParameters> {
        self.all_combinations()
            .into_iter()
            .filter(|p| p.validate(spec, precision).is_ok())
            .collect()
    }

    /// Size of the unconstrained space.
    pub fn len(&self) -> usize {
        self.m_per_block.len()
            * self.m_per_warp.len()
            * self.n_per_block.len()
            * self.n_per_warp.len()
            * self.buffers.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_match_table3() {
        let p = TuningParameters::default_for(Gpu::Gh200, Precision::Float16);
        assert_eq!(
            (
                p.m_per_block,
                p.m_per_warp,
                p.n_per_block,
                p.n_per_warp,
                p.buffers
            ),
            (128, 64, 64, 32, 2)
        );
        let p = TuningParameters::default_for(Gpu::A100, Precision::Int1);
        assert_eq!(
            (
                p.m_per_block,
                p.m_per_warp,
                p.n_per_block,
                p.n_per_warp,
                p.buffers
            ),
            (128, 32, 64, 64, 4)
        );
        let p = TuningParameters::default_for(Gpu::Mi300x, Precision::Float16);
        assert_eq!((p.m_per_block, p.n_per_block), (128, 128));
        // MI300X and MI300A share optimal parameters, as the paper notes.
        assert_eq!(
            TuningParameters::default_for(Gpu::Mi300x, Precision::Float16),
            TuningParameters::default_for(Gpu::Mi300a, Precision::Float16)
        );
    }

    #[test]
    fn all_table3_defaults_are_valid_on_their_device() {
        for gpu in Gpu::ALL {
            let spec = gpu.spec();
            let p16 = TuningParameters::default_for(gpu, Precision::Float16);
            assert!(
                p16.validate(&spec, Precision::Float16).is_ok(),
                "{gpu} f16: {p16}"
            );
            if spec.supports_int1() {
                let p1 = TuningParameters::default_for(gpu, Precision::Int1);
                assert!(
                    p1.validate(&spec, Precision::Int1).is_ok(),
                    "{gpu} int1: {p1}"
                );
            }
        }
    }

    #[test]
    fn warp_and_thread_accounting() {
        let spec = Gpu::A100.spec();
        let p = TuningParameters::new(128, 64, 64, 32, 2);
        assert_eq!(p.warps_per_block(), 2 * 2);
        assert_eq!(p.threads_per_block(&spec), 4 * 32);
        assert_eq!(p.accumulator_registers(), 2 * 128 * 64);
        let amd = Gpu::Mi210.spec();
        assert_eq!(p.threads_per_block(&amd), 4 * 64);
        assert_eq!(p.effective_buffers(&amd), 1);
        assert_eq!(p.effective_buffers(&spec), 2);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let spec = Gpu::W7700.spec();
        // Warp tile larger than block tile.
        assert!(TuningParameters::new(64, 128, 64, 32, 1)
            .validate(&spec, Precision::Float16)
            .is_err());
        // Non-divisible tiles.
        assert!(TuningParameters::new(96, 64, 64, 32, 1)
            .validate(&spec, Precision::Float16)
            .is_err());
        // Zero buffers.
        assert!(TuningParameters::new(64, 64, 64, 64, 0)
            .validate(&spec, Precision::Float16)
            .is_err());
        // Too much shared memory for the 64 KiB LDS of the W7700.
        assert!(TuningParameters::new(256, 64, 128, 32, 4)
            .validate(&spec, Precision::Float16)
            .is_err());
        // Too many warps per block (64×16 = wait, 256/16 × 128/16 = 128 warps).
        assert!(TuningParameters::new(256, 16, 128, 16, 1)
            .validate(&spec, Precision::Float16)
            .is_err());
    }

    #[test]
    fn paper_space_size_and_filtering() {
        let space = ParameterSpace::paper_space();
        assert_eq!(space.len(), 3 * 4 * 3 * 3 * 3);
        assert_eq!(space.all_combinations().len(), space.len());
        assert!(!space.is_empty());
        for gpu in Gpu::ALL {
            let valid = space.valid_combinations(&gpu.spec(), Precision::Float16);
            assert!(!valid.is_empty(), "{gpu} has no valid configurations");
            assert!(
                valid.len() < space.len(),
                "{gpu} accepted every configuration"
            );
            // The shipped default must be inside the searched space.
            let default = TuningParameters::default_for(gpu, Precision::Float16);
            assert!(
                valid.contains(&default),
                "{gpu} default {default} not in space"
            );
        }
    }

    proptest! {
        #[test]
        fn validated_configs_respect_all_limits(idx in 0usize..324) {
            let space = ParameterSpace::paper_space();
            let combos = space.all_combinations();
            let p = combos[idx % combos.len()];
            for gpu in [Gpu::A100, Gpu::Mi300x, Gpu::W7700] {
                let spec = gpu.spec();
                if p.validate(&spec, Precision::Float16).is_ok() {
                    prop_assert!(p.threads_per_block(&spec) <= spec.max_threads_per_block);
                    prop_assert!(p.accumulator_registers() <= spec.registers_per_block);
                    prop_assert!(p.shared_memory_plan(Precision::Float16).fits(&spec));
                }
            }
        }
    }
}
