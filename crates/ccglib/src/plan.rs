//! Kernel planning, the performance model, and the user-facing [`Gemm`]
//! handle.
//!
//! On real hardware ccglib compiles its GPU kernel at run time with
//! knowledge of the device and the problem shape, then launches it with the
//! tuned per-GPU parameters.  The simulated equivalent is the
//! [`GemmPlan`]: it selects the tuning parameters (shipped defaults or
//! user-supplied), selects the bit operation and fragment layout for 1-bit
//! mode (AND on Hopper and newer, the 16×8×256 fragment whenever
//! available), checks the configuration against the device limits, and
//! derives the *configuration efficiency* that feeds the `gpu-sim`
//! execution model.
//!
//! The configuration efficiency is a product of physically motivated
//! factors —
//!
//! * **padding**: the fraction of the padded iteration space that is useful
//!   work (the origin of the sawtooth in Figs. 4 and 7);
//! * **warp-level pipelining**: a warp needs several independent fragment
//!   accumulators in flight to hide the tensor-core latency;
//! * **block-level latency hiding**: a block needs several warps;
//! * **copy pipelining**: with fewer shared-memory stages, less of the
//!   global→shared copy latency can be hidden (and AMD devices are forced
//!   to a single stage);
//!
//! — normalised so that the best configuration on the paper's tuning shape
//! reproduces the end-to-end throughput of Table III (see `DESIGN.md` for
//! the calibration discussion).

use crate::error::{CcglibError, Result};
use crate::gemm::{
    gemm_dispatch_decoded, ComplexOutput, DecodedPlanes, GemmBatchInput, GemmInput, PreparedOperand,
};
use crate::micro::MicroKernelConfig;
use crate::params::{ParameterSpace, TuningParameters};
use crate::reference;
use crate::Precision;
use gpu_sim::{
    BitFragmentShape, BitOp, Device, DeviceSpec, ExecutionModel, FragmentShape, KernelKind,
    KernelProfile, KernelTimings, LaunchConfig, MemoryModel,
};
use parking_lot::Mutex;
use pmt::{EnergyMeasurement, PowerMeter};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use tcbf_types::{GemmShape, TileShape};

/// Memoised best-raw-efficiency values per `(device, precision)`; see
/// [`GemmPlan::best_raw_on_calibration_shape`].
static CALIBRATION_CACHE: Mutex<Option<HashMap<(gpu_sim::Gpu, Precision), f64>>> = Mutex::new(None);

/// Number of cacheable (catalog-spec) parameter-space enumerations
/// performed so far — observable through [`calibration_enumerations`] so
/// tests and benches can assert the cache actually short-circuits repeated
/// plan construction.
static CALIBRATION_ENUMERATIONS: AtomicUsize = AtomicUsize::new(0);

/// How many times the calibration search space has been enumerated for a
/// catalog device in this process.  Stays flat once every catalog
/// `(device, precision)` pair in use has been seen, no matter how many
/// plans are constructed; enumerations for hand-modified specs (which
/// bypass the cache) are not counted.
pub fn calibration_enumerations() -> usize {
    CALIBRATION_ENUMERATIONS.load(Ordering::Relaxed)
}

/// Pre-populates the calibration cache for a set of devices, enumerating
/// the missing `(gpu, precision)` pairs **in parallel**.
///
/// Plan construction normally calibrates devices one at a time under the
/// cache lock.  A multi-device pool would pay that serial cost once per
/// distinct member, so the sharding layer calls this first: the still
/// uncached catalog pairs are enumerated concurrently (one worker per
/// device) and inserted in a single batch.  Hand-modified specs and
/// devices that do not support `precision` are skipped, exactly like the
/// per-plan path; the [`calibration_enumerations`] counter advances only
/// for pairs actually inserted.
pub fn warm_calibration(specs: &[DeviceSpec], precision: Precision) {
    use rayon::prelude::*;

    let mut missing: Vec<DeviceSpec> = Vec::new();
    {
        let mut cache = CALIBRATION_CACHE.lock();
        let map = cache.get_or_insert_with(HashMap::new);
        for spec in specs {
            if precision == Precision::Int1 && !spec.supports_int1() {
                continue;
            }
            if *spec != DeviceSpec::of(spec.gpu) {
                continue;
            }
            if !map.contains_key(&(spec.gpu, precision))
                && !missing.iter().any(|s| s.gpu == spec.gpu)
            {
                missing.push(spec.clone());
            }
        }
    }
    if missing.is_empty() {
        return;
    }
    let computed: Vec<(gpu_sim::Gpu, f64)> = missing
        .par_iter()
        .map(|spec| (spec.gpu, GemmPlan::enumerate_best_raw(spec, precision)))
        .collect();
    let mut cache = CALIBRATION_CACHE.lock();
    let map = cache.get_or_insert_with(HashMap::new);
    for (gpu, best) in computed {
        // A plan constructed concurrently may have won the race for this
        // pair; only count enumerations that actually populate the cache so
        // the counter keeps equalling the number of cached entries.
        if let std::collections::hash_map::Entry::Vacant(entry) = map.entry((gpu, precision)) {
            entry.insert(best);
            CALIBRATION_ENUMERATIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Report of one (simulated) GEMM execution: predicted timings, energy and
/// the derived throughput metrics of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Predicted kernel timings.
    pub predicted: KernelTimings,
    /// Energy measurement over the kernel.
    pub energy: EnergyMeasurement,
    /// Achieved throughput in TeraOps/s (useful operations).
    pub achieved_tops: f64,
    /// Energy efficiency in TeraOps/J.
    pub tops_per_joule: f64,
    /// Tuning parameters the kernel ran with.
    pub params: TuningParameters,
    /// Bit operation used (1-bit mode only).
    pub bit_op: Option<BitOp>,
}

/// A planned complex GEMM on one device.
#[derive(Clone, Debug)]
pub struct GemmPlan {
    spec: DeviceSpec,
    shape: GemmShape,
    precision: Precision,
    params: TuningParameters,
    bit_op: BitOp,
    bit_fragment: Option<BitFragmentShape>,
    config_efficiency: f64,
    micro: MicroKernelConfig,
}

/// The paper's tuning shape for `precision` — the single source of truth
/// behind both the efficiency-model calibration points and the simulated
/// tuner's search shape (`M = N = K = 8192` for float16; `M = 32768,
/// N = 8192, K = 524288` for 1-bit; the float16 shape for the scalar
/// reference, which shares its calibration point).
pub fn calibration_shape(precision: Precision) -> GemmShape {
    match precision {
        Precision::Int1 => GemmShape::new(32_768, 8192, 524_288),
        _ => GemmShape::new(8192, 8192, 8192),
    }
}

impl GemmPlan {
    /// The paper's float16 tuning shape, used as the calibration point of
    /// the efficiency model.  Delegates to [`calibration_shape`].
    pub fn f16_calibration_shape() -> GemmShape {
        calibration_shape(Precision::Float16)
    }

    /// The paper's 1-bit tuning shape.  Delegates to [`calibration_shape`].
    pub fn int1_calibration_shape() -> GemmShape {
        calibration_shape(Precision::Int1)
    }

    /// Plans a GEMM with the shipped per-GPU default parameters.
    pub fn new(device: &Device, shape: GemmShape, precision: Precision) -> Result<Self> {
        let params = TuningParameters::default_for(device.gpu(), precision);
        Self::with_params(device, shape, precision, params)
    }

    /// Plans a GEMM with explicit tuning parameters (used by the
    /// auto-tuner).
    pub fn with_params(
        device: &Device,
        shape: GemmShape,
        precision: Precision,
        params: TuningParameters,
    ) -> Result<Self> {
        let spec = device.spec().clone();
        if precision == Precision::Int1 && !spec.supports_int1() {
            return Err(CcglibError::UnsupportedPrecision {
                device: spec.name.to_string(),
                precision: precision.to_string(),
            });
        }
        if precision.uses_tensor_cores() {
            // The float32 reference path does not use the tensor-core tile
            // parameters (its profile is built directly from the FP32
            // ceiling), so only the tensor-core precisions validate them —
            // and only they are bound by the operand-footprint check.
            params.validate(&spec, precision)?;
            let required = Self::operand_bytes(&shape, precision);
            let available = (spec.mem_size_gib * 1024.0 * 1024.0 * 1024.0) as u128;
            if required > available {
                return Err(CcglibError::OutOfDeviceMemory {
                    shape,
                    required_bytes: required,
                    available_bytes: available,
                });
            }
        }
        let bit_op = BitOp::preferred_for(spec.arch);
        let bit_fragment = if spec.supports_int1() {
            Some(BitFragmentShape::M16N8K256)
        } else {
            None
        };
        let config_efficiency =
            Self::calibrated_efficiency(&spec, precision, &params, &shape, bit_op);
        Ok(GemmPlan {
            spec,
            shape,
            precision,
            params,
            bit_op,
            bit_fragment,
            config_efficiency,
            micro: MicroKernelConfig::default(),
        })
    }

    /// Returns the plan with a validated host micro-kernel configuration —
    /// the point where an autotuned (or explicitly pinned) blocking is
    /// attached.  The micro-kernel configuration selects which compiled
    /// kernel instance executes the functional hot path; it does not enter
    /// the analytic GPU model, so predictions are unchanged.
    pub fn with_micro(mut self, micro: MicroKernelConfig) -> Result<Self> {
        micro.validate()?;
        self.micro = micro;
        Ok(self)
    }

    /// Total device-memory footprint of the operands and the output.
    pub fn operand_bytes(shape: &GemmShape, precision: Precision) -> u128 {
        let bits = precision.input_bits() as u128;
        let a = shape.a_elements() as u128 * 2 * bits / 8;
        let b = shape.b_elements() as u128 * 2 * bits / 8;
        let c = shape.c_elements() as u128 * 8;
        a + b + c
    }

    /// Raw (uncalibrated) efficiency of a configuration for a shape: the
    /// product of the physically motivated factors described in the module
    /// documentation.  Always in `(0, 1]`.
    pub fn raw_efficiency(
        spec: &DeviceSpec,
        precision: Precision,
        params: &TuningParameters,
        shape: &GemmShape,
    ) -> f64 {
        let (frag_m, frag_n, frag_k) = match precision {
            Precision::Int1 => {
                let f = BitFragmentShape::M16N8K256;
                (f.m(), f.n(), f.k())
            }
            _ => {
                let f = FragmentShape::M16N16K16;
                (f.m(), f.n(), f.k())
            }
        };

        // 1. Padding: fraction of the padded iteration space that is useful.
        let tile = TileShape::new(params.m_per_block, params.n_per_block, frag_k);
        let padding = tile.efficiency(shape);

        // 2. Warp-level pipelining: independent fragment accumulators per warp.
        let frags_per_warp =
            ((params.m_per_warp / frag_m).max(1) * (params.n_per_warp / frag_n).max(1)) as f64;
        let warp_pipeline = (frags_per_warp / 4.0).min(1.0);

        // 3. Block-level latency hiding: warps per block.
        let warps = params.warps_per_block() as f64;
        let block_warps = (warps / 4.0).min(1.0);

        // 4. Copy pipelining: stages of the shared-memory pipeline.
        let memory = MemoryModel::new(spec.clone());
        let stages = memory.effective_stages(params.effective_buffers(spec));
        let overlap = memory.copy_overlap_fraction(stages);
        let copy_pipeline = 1.0 / (1.0 + 0.25 * (1.0 - overlap));

        // 5. K-loop prologue/epilogue: filling and draining the software
        //    pipeline costs a few K-slices of idle tensor-core cycles, which
        //    only amortises once K is much larger than the slice depth.
        //    This is why the LOFAR workload (K = number of stations ≤ 512)
        //    cannot saturate the biggest devices (Section V-B).
        let k_slice = TuningParameters::k_slice(precision) as f64;
        let prologue = k_slice * (stages as f64 + 2.0);
        let k_loop = shape.k as f64 / (shape.k as f64 + prologue);

        (padding * warp_pipeline * block_warps * copy_pipeline * k_loop)
            .clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Enumerates the paper's search space on the calibration shape and
    /// returns the best raw efficiency (the expensive step plan
    /// construction memoises).
    fn enumerate_best_raw(spec: &DeviceSpec, precision: Precision) -> f64 {
        let calib_shape = match precision {
            Precision::Int1 => Self::int1_calibration_shape(),
            _ => Self::f16_calibration_shape(),
        };
        ParameterSpace::paper_space()
            .valid_combinations(spec, precision)
            .iter()
            .map(|p| Self::raw_efficiency(spec, precision, p, &calib_shape))
            .fold(f64::MIN_POSITIVE, f64::max)
    }

    /// The best raw efficiency over the paper's search space on the
    /// calibration shape for this precision.
    ///
    /// Enumerating the parameter space is by far the most expensive part of
    /// plan construction, and for a given catalog device the result only
    /// depends on `(gpu, precision)`, so it is memoised process-wide: every
    /// plan after the first for such a pair reads the cached value.  The
    /// lock is held across the enumeration so each pair is enumerated at
    /// most once per process.  Hand-modified [`DeviceSpec`]s (what-if
    /// simulations through [`Device::new`]) bypass the cache entirely and
    /// are enumerated from the spec actually supplied.
    fn best_raw_on_calibration_shape(spec: &DeviceSpec, precision: Precision) -> f64 {
        if *spec != DeviceSpec::of(spec.gpu) {
            return Self::enumerate_best_raw(spec, precision);
        }
        let key = (spec.gpu, precision);
        let mut cache = CALIBRATION_CACHE.lock();
        if let Some(&best) = cache.get_or_insert_with(HashMap::new).get(&key) {
            return best;
        }
        // Only cacheable (catalog-spec) enumerations count: the counter
        // measures cache effectiveness, and keeping bypass-spec runs out of
        // it lets tests assert flatness without racing them.
        CALIBRATION_ENUMERATIONS.fetch_add(1, Ordering::Relaxed);
        let best = Self::enumerate_best_raw(spec, precision);
        cache.get_or_insert_with(HashMap::new).insert(key, best);
        best
    }

    /// Calibrated efficiency: raw efficiency scaled so the best
    /// configuration on the calibration shape reaches the end-to-end
    /// fraction of peak reported in Table III.
    fn calibrated_efficiency(
        spec: &DeviceSpec,
        precision: Precision,
        params: &TuningParameters,
        shape: &GemmShape,
        _bit_op: BitOp,
    ) -> f64 {
        let target = match precision {
            Precision::Float16 => spec.gemm_efficiency_f16,
            Precision::Int1 => spec
                .gemm_efficiency_int1
                .unwrap_or(spec.gemm_efficiency_f16),
            Precision::Float32Reference => reference::DEFAULT_REFERENCE_EFFICIENCY,
        };
        let raw = Self::raw_efficiency(spec, precision, params, shape);
        let best = Self::best_raw_on_calibration_shape(spec, precision);
        (raw / best * target).clamp(0.0, 1.0)
    }

    /// The peak useful throughput (TeraOps/s) of the execution units this
    /// plan runs on.
    pub fn peak_tops(&self) -> f64 {
        match self.precision {
            Precision::Float16 => self.spec.f16_peak_tops(),
            Precision::Int1 => self
                .spec
                .int1_useful_peak_tops(
                    self.bit_fragment.unwrap_or(BitFragmentShape::M16N8K256),
                    self.bit_op,
                )
                .unwrap_or(0.0),
            Precision::Float32Reference => self.spec.fp32_peak_tops(),
        }
    }

    /// The kernel profile the execution model times.
    pub fn kernel_profile(&self) -> KernelProfile {
        if self.precision == Precision::Float32Reference {
            return reference::reference_profile(
                &self.spec,
                &self.shape,
                reference::DEFAULT_REFERENCE_EFFICIENCY,
            );
        }
        let memory = MemoryModel::new(self.spec.clone());
        let global_bytes = memory.gemm_global_bytes(
            &self.shape,
            self.params.m_per_block,
            self.params.n_per_block,
            self.precision.input_bits(),
        );
        let blocks = self.shape.batch
            * self.shape.m.div_ceil(self.params.m_per_block)
            * self.shape.n.div_ceil(self.params.n_per_block);
        let kind = match self.precision {
            Precision::Float16 => KernelKind::GemmF16,
            Precision::Int1 => KernelKind::GemmInt1,
            Precision::Float32Reference => KernelKind::GemmF32,
        };
        KernelProfile {
            kind,
            useful_ops: self.shape.complex_ops() as f64,
            peak_tops: self.peak_tops(),
            config_efficiency: self.config_efficiency,
            global_bytes,
            launch: LaunchConfig::new(blocks.max(1), self.params.threads_per_block(&self.spec)),
        }
    }

    /// Device specification of the plan.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
    /// Problem shape.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }
    /// Input precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }
    /// Tuning parameters in effect.
    pub fn params(&self) -> TuningParameters {
        self.params
    }
    /// Bit operation selected for 1-bit mode (AND on Hopper and newer).
    pub fn bit_op(&self) -> BitOp {
        self.bit_op
    }
    /// Fragment layout selected for 1-bit mode.
    pub fn bit_fragment(&self) -> Option<BitFragmentShape> {
        self.bit_fragment
    }
    /// Calibrated configuration efficiency.
    pub fn config_efficiency(&self) -> f64 {
        self.config_efficiency
    }
    /// Host micro-kernel configuration the functional hot path executes
    /// with (the default blocking unless [`GemmPlan::with_micro`] attached
    /// a tuned one).
    pub fn micro(&self) -> MicroKernelConfig {
        self.micro
    }
}

/// The user-facing GEMM handle: owns the plan, the execution model and a
/// power meter, and runs (or predicts) the multiplication.
#[derive(Clone)]
pub struct Gemm {
    plan: GemmPlan,
    exec: ExecutionModel,
    meter: PowerMeter,
}

impl Gemm {
    /// Creates a GEMM with the shipped per-GPU default parameters.
    pub fn new(device: &Device, shape: GemmShape, precision: Precision) -> Result<Self> {
        let plan = GemmPlan::new(device, shape, precision)?;
        Ok(Self::from_plan(plan))
    }

    /// Creates a GEMM with explicit tuning parameters.
    pub fn with_params(
        device: &Device,
        shape: GemmShape,
        precision: Precision,
        params: TuningParameters,
    ) -> Result<Self> {
        let plan = GemmPlan::with_params(device, shape, precision, params)?;
        Ok(Self::from_plan(plan))
    }

    /// Wraps an existing plan.
    pub fn from_plan(plan: GemmPlan) -> Self {
        let exec = ExecutionModel::new(plan.spec().clone());
        let meter = PowerMeter::for_device(plan.spec());
        Gemm { plan, exec, meter }
    }

    /// Returns the handle with a validated host micro-kernel configuration
    /// attached to its plan — the builder-level hook for pinning or
    /// applying an autotuned blocking.
    pub fn with_micro(mut self, micro: MicroKernelConfig) -> Result<Self> {
        self.plan = self.plan.with_micro(micro)?;
        Ok(self)
    }

    /// The underlying plan.
    pub fn plan(&self) -> &GemmPlan {
        &self.plan
    }

    /// The power meter recording this handle's executions.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    fn report(&self, profile: &KernelProfile) -> RunReport {
        let timings = self.exec.time(profile);
        let energy = self.meter.record_kernel(profile.kind, &timings);
        RunReport {
            predicted: timings,
            energy,
            achieved_tops: timings.achieved_tops,
            tops_per_joule: energy.tops_per_joule(profile.useful_ops),
            params: self.plan.params(),
            bit_op: (self.plan.precision() == Precision::Int1).then_some(self.plan.bit_op()),
        }
    }

    /// Predicts performance and energy without computing a functional
    /// result — used for paper-scale problems whose operands would not fit
    /// in host memory.
    pub fn predict(&self) -> RunReport {
        self.report(&self.plan.kernel_profile())
    }

    /// Checks one operand pair against the plan's precision and per-batch
    /// element shape.
    fn validate_pair(&self, a: &GemmInput, b_t: &GemmInput) -> Result<()> {
        let shape = self.plan.shape();
        if a.precision() != self.plan.precision() || b_t.precision() != self.plan.precision() {
            return Err(CcglibError::PrecisionMismatch {
                expected: self.plan.precision().to_string(),
                actual: format!("A {}, B {}", a.precision(), b_t.precision()),
            });
        }
        if a.rows() != shape.m || b_t.rows() != shape.n || a.k() != shape.k || b_t.k() != shape.k {
            return Err(CcglibError::ShapeMismatch {
                expected: format!("A {}x{}, B(T) {}x{}", shape.m, shape.k, shape.n, shape.k),
                actual: format!("A {}x{}, B(T) {}x{}", a.rows(), a.k(), b_t.rows(), b_t.k()),
            });
        }
        Ok(())
    }

    /// Runs the GEMM on quantised operands (`A` as `M×K`, `B` transposed as
    /// `N×K`) and returns the output together with the run report.
    ///
    /// The plan's batch size must be 1 because only one operand pair is
    /// supplied; batched plans run functionally through
    /// [`Gemm::run_batch`], or use [`Gemm::predict`] when only performance
    /// numbers are needed.
    pub fn run(&self, a: &GemmInput, b_t: &GemmInput) -> Result<(ComplexOutput, RunReport)> {
        self.run_decoded(a, None, b_t)
    }

    /// Runs the GEMM with a pre-prepared `A` operand (bulk-decoded once,
    /// e.g. cached beamforming weights), skipping the per-call half→float
    /// decode of the hot path.  Otherwise identical to [`Gemm::run`],
    /// including bit-identical output.
    pub fn run_prepared(
        &self,
        a: &PreparedOperand,
        b_t: &GemmInput,
    ) -> Result<(ComplexOutput, RunReport)> {
        self.run_decoded(a.input(), a.decoded(), b_t)
    }

    fn run_decoded(
        &self,
        a: &GemmInput,
        decoded: Option<&DecodedPlanes>,
        b_t: &GemmInput,
    ) -> Result<(ComplexOutput, RunReport)> {
        let shape = self.plan.shape();
        if shape.batch != 1 {
            return Err(CcglibError::ShapeMismatch {
                expected: format!(
                    "one operand pair per batch element: use Gemm::run_batch for batch {}",
                    shape.batch
                ),
                actual: "a single operand pair".to_string(),
            });
        }
        self.validate_pair(a, b_t)?;
        let output = gemm_dispatch_decoded(a, decoded, b_t, self.plan.bit_op(), &self.plan.micro)?;
        let report = self.report(&self.plan.kernel_profile());
        Ok((output, report))
    }

    /// Shared core of the batched paths: validates and multiplies every
    /// operand pair (reusing one decoded `A` when the batch shares it),
    /// then emits one report covering the whole batch.
    fn run_batch_decoded(
        &self,
        pairs: &[(&GemmInput, Option<&DecodedPlanes>, &GemmInput)],
    ) -> Result<(Vec<ComplexOutput>, RunReport)> {
        let shape = self.plan.shape();
        if pairs.len() != shape.batch {
            return Err(CcglibError::ShapeMismatch {
                expected: format!("batch {}", shape.batch),
                actual: format!("batch {}", pairs.len()),
            });
        }
        let mut outputs = Vec::with_capacity(pairs.len());
        for (a, decoded, b_t) in pairs {
            self.validate_pair(a, b_t)?;
            outputs.push(gemm_dispatch_decoded(
                a,
                *decoded,
                b_t,
                self.plan.bit_op(),
                &self.plan.micro,
            )?);
        }
        let report = self.report(&self.plan.kernel_profile());
        Ok((outputs, report))
    }

    /// Runs a batched GEMM functionally: every element of `batch` is
    /// multiplied under this plan, and a single [`RunReport`] covering the
    /// whole batch (the paper times batched problems as one kernel) is
    /// returned alongside the per-element outputs.
    ///
    /// A batch built with [`GemmBatchInput::with_shared_a`] decodes the
    /// shared `A` operand exactly once for the whole batch instead of once
    /// per element.  The batch size of the input must equal the plan's
    /// batch size; every operand pair is validated against the per-element
    /// shape.
    pub fn run_batch(&self, batch: &GemmBatchInput) -> Result<(Vec<ComplexOutput>, RunReport)> {
        match batch.shared_a() {
            Some(a) => self.run_batch_shared(a, batch.b_ts()),
            None => {
                let pairs: Vec<(&GemmInput, Option<&DecodedPlanes>, &GemmInput)> = (0..batch
                    .batch())
                    .map(|index| (batch.a(index), None, batch.b_t(index)))
                    .collect();
                self.run_batch_decoded(&pairs)
            }
        }
    }

    /// Runs a batched GEMM in which every batch element multiplies the same
    /// borrowed `A` operand (shared weights) with its own transposed `B`
    /// operand — the beamforming hot path, without cloning `A` per call.
    /// The shared `A` is decoded once for the whole batch.
    pub fn run_batch_shared(
        &self,
        a: &GemmInput,
        b_ts: &[GemmInput],
    ) -> Result<(Vec<ComplexOutput>, RunReport)> {
        let decoded = DecodedPlanes::maybe_from(a);
        let pairs: Vec<(&GemmInput, Option<&DecodedPlanes>, &GemmInput)> =
            b_ts.iter().map(|b_t| (a, decoded.as_ref(), b_t)).collect();
        self.run_batch_decoded(&pairs)
    }

    /// The shared-`A` batched path with the preparation already done —
    /// streaming sessions cache the prepared weights and skip even the
    /// once-per-batch decode.
    pub fn run_batch_shared_prepared(
        &self,
        a: &PreparedOperand,
        b_ts: &[GemmInput],
    ) -> Result<(Vec<ComplexOutput>, RunReport)> {
        let pairs: Vec<(&GemmInput, Option<&DecodedPlanes>, &GemmInput)> = b_ts
            .iter()
            .map(|b_t| (a.input(), a.decoded(), b_t))
            .collect();
        self.run_batch_decoded(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::HostComplexMatrix;
    use gpu_sim::Gpu;
    use tcbf_types::Complex;

    fn device(gpu: Gpu) -> Device {
        gpu.device()
    }

    #[test]
    fn unsupported_precision_is_rejected() {
        let dev = device(Gpu::Mi300x);
        let err = GemmPlan::new(&dev, GemmShape::new(64, 64, 64), Precision::Int1).unwrap_err();
        assert!(matches!(err, CcglibError::UnsupportedPrecision { .. }));
    }

    #[test]
    fn oversized_problems_are_rejected() {
        let dev = device(Gpu::W7700);
        // 1e6 × 1e6 f16 output alone is ~8 TB.
        let err = GemmPlan::new(
            &dev,
            GemmShape::new(1_000_000, 1_000_000, 64),
            Precision::Float16,
        )
        .unwrap_err();
        assert!(matches!(err, CcglibError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn bit_op_selection_follows_architecture() {
        let ampere = GemmPlan::new(
            &device(Gpu::A100),
            GemmShape::new(64, 64, 256),
            Precision::Int1,
        )
        .unwrap();
        assert_eq!(ampere.bit_op(), BitOp::Xor);
        let hopper = GemmPlan::new(
            &device(Gpu::Gh200),
            GemmShape::new(64, 64, 256),
            Precision::Int1,
        )
        .unwrap();
        assert_eq!(hopper.bit_op(), BitOp::And);
        assert_eq!(hopper.bit_fragment(), Some(BitFragmentShape::M16N8K256));
    }

    #[test]
    fn calibration_shape_reaches_table3_throughput() {
        for (gpu, expect_tops) in [
            (Gpu::A100, 173.0),
            (Gpu::Gh200, 335.0),
            (Gpu::Mi300x, 603.0),
        ] {
            let dev = device(gpu);
            let gemm =
                Gemm::new(&dev, GemmPlan::f16_calibration_shape(), Precision::Float16).unwrap();
            let report = gemm.predict();
            assert!(
                (report.achieved_tops - expect_tops).abs() / expect_tops < 0.10,
                "{gpu}: {} vs {expect_tops}",
                report.achieved_tops
            );
        }
    }

    #[test]
    fn int1_calibration_reaches_table3_throughput() {
        for (gpu, expect_tops) in [
            (Gpu::Ad4000, 1400.0),
            (Gpu::A100, 3080.0),
            (Gpu::Gh200, 3780.0),
        ] {
            let dev = device(gpu);
            let gemm =
                Gemm::new(&dev, GemmPlan::int1_calibration_shape(), Precision::Int1).unwrap();
            let report = gemm.predict();
            assert!(
                (report.achieved_tops - expect_tops).abs() / expect_tops < 0.15,
                "{gpu}: {} vs {expect_tops}",
                report.achieved_tops
            );
        }
    }

    #[test]
    fn default_params_beat_or_match_most_alternatives() {
        // The shipped defaults should be near the top of the search space on
        // the calibration shape.
        let dev = device(Gpu::A100);
        let spec = dev.spec();
        let shape = GemmPlan::f16_calibration_shape();
        let default = TuningParameters::default_for(Gpu::A100, Precision::Float16);
        let default_raw = GemmPlan::raw_efficiency(spec, Precision::Float16, &default, &shape);
        let space = ParameterSpace::paper_space().valid_combinations(spec, Precision::Float16);
        let better = space
            .iter()
            .filter(|p| {
                GemmPlan::raw_efficiency(spec, Precision::Float16, p, &shape) > default_raw + 1e-9
            })
            .count();
        // Allow a few ties/better configs (the model is not a perfect match
        // for the hardware) but the default must be in the top quartile.
        assert!(
            better * 4 < space.len(),
            "default beaten by {better}/{}",
            space.len()
        );
    }

    #[test]
    fn padding_produces_sawtooth() {
        // A shape that is a multiple of the block tile is more efficient
        // than one that is a few elements larger (once the device is full
        // enough that occupancy no longer dominates).
        let dev = device(Gpu::A100);
        let aligned = Gemm::new(&dev, GemmShape::new(4096, 4096, 4096), Precision::Float16)
            .unwrap()
            .predict();
        let ragged = Gemm::new(&dev, GemmShape::new(4100, 4100, 4096), Precision::Float16)
            .unwrap()
            .predict();
        assert!(aligned.achieved_tops > ragged.achieved_tops);
    }

    #[test]
    fn run_validates_and_computes() {
        let dev = device(Gpu::A100);
        let shape = GemmShape::new(16, 8, 64);
        let gemm = Gemm::new(&dev, shape, Precision::Float16).unwrap();
        let a = HostComplexMatrix::from_fn(16, 64, |r, c| {
            Complex::new(r as f32 * 0.1, c as f32 * 0.01)
        });
        let b_t = HostComplexMatrix::from_fn(8, 64, |r, c| {
            Complex::new(0.5 - r as f32 * 0.05, c as f32 * 0.02)
        });
        let (out, report) = gemm
            .run(&GemmInput::quantise_f16(&a), &GemmInput::quantise_f16(&b_t))
            .unwrap();
        assert_eq!(out.rows(), 16);
        assert_eq!(out.cols(), 8);
        let reference = reference::reference_gemm(&a, &b_t).unwrap();
        assert!(out.max_abs_diff(&reference) < 0.5);
        assert!(report.predicted.elapsed_s > 0.0);
        assert!(report.tops_per_joule > 0.0);
        assert!(report.bit_op.is_none());

        // Wrong operand shape is rejected.
        let bad = HostComplexMatrix::zeros(9, 64);
        assert!(gemm
            .run(&GemmInput::quantise_f16(&a), &GemmInput::quantise_f16(&bad))
            .is_err());
        // Wrong precision is rejected.
        assert!(gemm
            .run(
                &GemmInput::quantise_f16(&a),
                &GemmInput::quantise_int1(&b_t)
            )
            .is_err());
    }

    #[test]
    fn int1_run_reports_bit_op() {
        let dev = device(Gpu::Gh200);
        let shape = GemmShape::new(8, 8, 128);
        let gemm = Gemm::new(&dev, shape, Precision::Int1).unwrap();
        let a = HostComplexMatrix::from_fn(8, 128, |r, c| {
            Complex::new(((r + c) % 3) as f32 - 1.0, ((r * c) % 5) as f32 - 2.0)
        });
        let b_t = HostComplexMatrix::from_fn(8, 128, |r, c| {
            Complex::new(((r * 2 + c) % 7) as f32 - 3.0, (c % 2) as f32 - 0.5)
        });
        let (out, report) = gemm
            .run(
                &GemmInput::quantise_int1(&a),
                &GemmInput::quantise_int1(&b_t),
            )
            .unwrap();
        assert_eq!(report.bit_op, Some(BitOp::And));
        // Result must match the ±1 reference.
        let qa = crate::matrix::Int1Matrix::from_host(&a).to_host();
        let qb = crate::matrix::Int1Matrix::from_host(&b_t).to_host();
        let reference = reference::reference_gemm(&qa, &qb).unwrap();
        assert!(out.max_abs_diff(&reference) < 0.5);
    }

    #[test]
    fn batched_shapes_predict_and_point_run_at_run_batch() {
        let dev = device(Gpu::A100);
        let shape = GemmShape::batched(4, 32, 32, 64);
        let gemm = Gemm::new(&dev, shape, Precision::Float16).unwrap();
        let report = gemm.predict();
        assert!(report.predicted.elapsed_s > 0.0);
        let a = GemmInput::quantise_f16(&HostComplexMatrix::zeros(32, 64));
        let err = gemm.run(&a, &a).unwrap_err();
        assert!(err.to_string().contains("run_batch"), "{err}");
    }

    #[test]
    fn run_batch_matches_per_element_references() {
        let dev = device(Gpu::A100);
        let batch = 3;
        let shape = GemmShape::batched(batch, 8, 6, 32);
        let gemm = Gemm::new(&dev, shape, Precision::Float16).unwrap();
        let a_host = HostComplexMatrix::from_fn(8, 32, |r, c| {
            Complex::new(r as f32 * 0.1 - 0.3, c as f32 * 0.02)
        });
        let b_hosts: Vec<HostComplexMatrix> = (0..batch)
            .map(|e| {
                HostComplexMatrix::from_fn(6, 32, |r, c| {
                    Complex::new((e + r) as f32 * 0.05, 0.4 - c as f32 * 0.01)
                })
            })
            .collect();
        let inputs = GemmBatchInput::with_shared_a(
            GemmInput::quantise_f16(&a_host),
            b_hosts.iter().map(GemmInput::quantise_f16).collect(),
        )
        .unwrap();
        let (outputs, report) = gemm.run_batch(&inputs).unwrap();
        assert_eq!(outputs.len(), batch);
        for (out, b_host) in outputs.iter().zip(&b_hosts) {
            let expected = reference::reference_gemm(&a_host, b_host).unwrap();
            assert!(out.max_abs_diff(&expected) < 0.5);
        }
        // One report covers the whole batch: its useful-op count (through
        // the achieved throughput and elapsed time) is the batched shape's.
        let ops = report.achieved_tops * 1e12 * report.predicted.elapsed_s;
        let expected_ops = shape.complex_ops() as f64;
        assert!((ops - expected_ops).abs() / expected_ops < 1e-6);
    }

    #[test]
    fn run_batch_validates_batch_size_and_shapes() {
        let dev = device(Gpu::A100);
        let gemm = Gemm::new(&dev, GemmShape::batched(2, 4, 4, 32), Precision::Float16).unwrap();
        let good = GemmInput::quantise_f16(&HostComplexMatrix::zeros(4, 32));
        // Wrong batch size.
        let one = GemmBatchInput::with_shared_a(good.clone(), vec![good.clone()]).unwrap();
        assert!(matches!(
            gemm.run_batch(&one),
            Err(CcglibError::ShapeMismatch { .. })
        ));
        // Wrong element shape.
        let bad = GemmInput::quantise_f16(&HostComplexMatrix::zeros(5, 32));
        let mixed =
            GemmBatchInput::new(vec![good.clone(), good.clone()], vec![good.clone(), bad]).unwrap();
        assert!(matches!(
            gemm.run_batch(&mixed),
            Err(CcglibError::ShapeMismatch { .. })
        ));
        // Empty and unequal batches are rejected at construction.
        assert!(GemmBatchInput::new(vec![], vec![]).is_err());
        assert!(GemmBatchInput::new(vec![good.clone()], vec![good.clone(), good.clone()]).is_err());
        assert!(GemmBatchInput::with_shared_a(good.clone(), vec![]).is_err());
    }

    #[test]
    fn calibration_search_is_memoised_across_plan_constructions() {
        // Warm the cache for every (catalog device, precision) pair any
        // test in this process could touch; the cache lock is held across
        // each enumeration, so once all pairs are cached the enumeration
        // counter can no longer move (even with tests running in parallel).
        let shape = GemmShape::new(128, 128, 128);
        let warm_all = || {
            for gpu in Gpu::ALL {
                let dev = device(gpu);
                for precision in [
                    Precision::Float16,
                    Precision::Int1,
                    Precision::Float32Reference,
                ] {
                    let _ = GemmPlan::new(&dev, shape, precision);
                }
            }
        };
        warm_all();
        let warm = crate::plan::calibration_enumerations();
        assert!(warm > 0, "warming must have enumerated at least once");
        warm_all();
        for m in 1..20usize {
            GemmPlan::new(
                &device(Gpu::Ad4000),
                GemmShape::new(m * 16, 128, 128),
                Precision::Float16,
            )
            .unwrap();
        }
        assert_eq!(
            crate::plan::calibration_enumerations(),
            warm,
            "repeated plan construction must not re-enumerate the parameter space"
        );
    }

    #[test]
    fn modified_specs_bypass_the_calibration_cache() {
        // A what-if spec (higher sustained clock than the catalog A100)
        // must be calibrated from the spec actually supplied, not from the
        // cached stock value: a faster clock shifts the predicted
        // throughput of the same shape.
        let stock = Gemm::new(
            &device(Gpu::A100),
            GemmPlan::f16_calibration_shape(),
            Precision::Float16,
        )
        .unwrap()
        .predict();
        let mut spec = DeviceSpec::of(Gpu::A100);
        spec.sustained_clock_ghz *= 1.2;
        spec.f16_tensor_measured *= 1.2;
        let boosted = Gemm::new(
            &Device::new(spec),
            GemmPlan::f16_calibration_shape(),
            Precision::Float16,
        )
        .unwrap()
        .predict();
        assert!(
            boosted.achieved_tops > 1.05 * stock.achieved_tops,
            "boosted {} vs stock {}",
            boosted.achieved_tops,
            stock.achieved_tops
        );
    }

    #[test]
    fn warm_calibration_short_circuits_subsequent_plans() {
        // Warming a heterogeneous pool caches every catalog pair it
        // enumerates; constructing plans for those devices afterwards must
        // not enumerate again.
        let specs: Vec<DeviceSpec> = [Gpu::Ad4000, Gpu::A100, Gpu::Mi210, Gpu::W7700]
            .iter()
            .map(|&g| g.spec())
            .collect();
        crate::plan::warm_calibration(&specs, Precision::Float16);
        // AMD devices are skipped for 1-bit mode instead of caching junk.
        crate::plan::warm_calibration(&specs, Precision::Int1);
        let after_warm = crate::plan::calibration_enumerations();
        for spec in &specs {
            GemmPlan::new(
                &Device::new(spec.clone()),
                GemmShape::new(128, 128, 128),
                Precision::Float16,
            )
            .unwrap();
        }
        crate::plan::warm_calibration(&specs, Precision::Float16);
        assert_eq!(
            crate::plan::calibration_enumerations(),
            after_warm,
            "warmed pairs must not be re-enumerated"
        );
    }

    #[test]
    fn meter_accumulates_over_runs() {
        let dev = device(Gpu::Ad4000);
        let gemm = Gemm::new(&dev, GemmShape::new(256, 256, 256), Precision::Float16).unwrap();
        let before = gemm.meter().read();
        gemm.predict();
        gemm.predict();
        let after = gemm.meter().read();
        assert!(after.joules > before.joules);
        assert!(after.timestamp_s > before.timestamp_s);
    }
}
