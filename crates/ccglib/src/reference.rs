//! Single-precision reference GEMM on the "normal" GPU cores.
//!
//! Every comparison in the paper is against a float32 implementation that
//! does not use tensor cores: the existing LOFAR beamformer kernel
//! (Fig. 7, "Reference") and the Octave/OpenCL ultrasound pipeline
//! (Section V-A).  This module provides both the functional float32
//! complex GEMM (also used as the ground truth for correctness tests of
//! the tensor-core kernels) and its performance profile on the simulated
//! devices' regular FP32 pipelines.

use crate::error::{CcglibError, Result};
use crate::matrix::HostComplexMatrix;
use gpu_sim::{DeviceSpec, KernelKind, KernelProfile, LaunchConfig, MemoryModel};
use rayon::prelude::*;
use tcbf_types::{Complex32, GemmShape};

/// Computes `C[M×N] = A[M×K] · B[N×K]ᵀ` in single precision.
///
/// Note the operand orientation: like every kernel in this crate, the `B`
/// operand is supplied transposed (`N×K`), i.e. row `j` of `b_t` holds the
/// `K`-vector that produces output column `j`.
pub fn reference_gemm(a: &HostComplexMatrix, b_t: &HostComplexMatrix) -> Result<HostComplexMatrix> {
    if a.cols() != b_t.cols() {
        return Err(CcglibError::ShapeMismatch {
            expected: format!("A K-dimension {} to match B K-dimension", a.cols()),
            actual: format!("{}", b_t.cols()),
        });
    }
    let m = a.rows();
    let n = b_t.rows();
    let k = a.cols();
    let mut out = vec![Complex32::ZERO; m * n];
    out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
        for (j, slot) in row.iter_mut().enumerate() {
            let mut re = 0.0f32;
            let mut im = 0.0f32;
            for kk in 0..k {
                let av = a.get(i, kk);
                let bv = b_t.get(j, kk);
                re += av.re * bv.re - av.im * bv.im;
                im += av.re * bv.im + av.im * bv.re;
            }
            *slot = Complex32::new(re, im);
        }
    });
    HostComplexMatrix::from_data(m, n, out)
}

/// Performance profile of a float32 complex GEMM of the given shape on the
/// regular cores of a device — the baseline the tensor-core kernels are
/// compared against.
///
/// A well-optimised float32 GEMM (cuBLAS-class) sustains roughly 85 % of
/// the FP32 peak on large matrices; the reference beamformer kernels the
/// paper compares against are hand-written and somewhat less efficient, so
/// a configurable efficiency is exposed.
pub fn reference_profile(spec: &DeviceSpec, shape: &GemmShape, efficiency: f64) -> KernelProfile {
    let memory = MemoryModel::new(spec.clone());
    // The reference implementations tile much less aggressively; model a
    // modest 64×64 block tile.
    let global_bytes = shape.batch as f64
        * memory.gemm_global_bytes(&GemmShape::new(shape.m, shape.n, shape.k), 64, 64, 32);
    let blocks = shape.batch * shape.m.div_ceil(64) * shape.n.div_ceil(64);
    KernelProfile {
        kind: KernelKind::GemmF32,
        useful_ops: shape.complex_ops() as f64,
        peak_tops: spec.fp32_peak_tops(),
        config_efficiency: efficiency.clamp(0.0, 1.0),
        global_bytes,
        launch: LaunchConfig::new(blocks.max(1), 256),
    }
}

/// Default efficiency of the float32 reference implementations relative to
/// the FP32 peak.
pub const DEFAULT_REFERENCE_EFFICIENCY: f64 = 0.75;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{ExecutionModel, Gpu};
    use tcbf_types::Complex;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let k = 8;
        let a = HostComplexMatrix::from_fn(k, k, |r, c| {
            if r == c {
                Complex::new(1.0, 0.0)
            } else {
                Complex32::ZERO
            }
        });
        let b_t = HostComplexMatrix::from_fn(5, k, |r, c| Complex::new(r as f32, c as f32));
        let c = reference_gemm(&a, &b_t).unwrap();
        assert_eq!(c.rows(), k);
        assert_eq!(c.cols(), 5);
        for i in 0..k {
            for j in 0..5 {
                assert_eq!(c.get(i, j), b_t.get(j, i));
            }
        }
    }

    #[test]
    fn small_hand_computed_case() {
        // A = [[1+i, 2]], B^T rows: col0 = [1, 1+i] -> C[0][0] = (1+i)*1 + 2*(1+i) = 3+3i.
        let a = HostComplexMatrix::from_data(
            1,
            2,
            vec![Complex::new(1.0, 1.0), Complex::new(2.0, 0.0)],
        )
        .unwrap();
        let b_t = HostComplexMatrix::from_data(
            1,
            2,
            vec![Complex::new(1.0, 0.0), Complex::new(1.0, 1.0)],
        )
        .unwrap();
        let c = reference_gemm(&a, &b_t).unwrap();
        assert_eq!(c.get(0, 0), Complex::new(3.0, 3.0));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = HostComplexMatrix::zeros(2, 3);
        let b_t = HostComplexMatrix::zeros(2, 4);
        assert!(matches!(
            reference_gemm(&a, &b_t),
            Err(CcglibError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn reference_is_much_slower_than_tensor_cores_on_big_problems() {
        // The premise of the whole paper, checked through the models: the
        // float32 reference on an A100 is an order of magnitude slower than
        // the calibrated tensor-core throughput.
        let spec = Gpu::A100.spec();
        let model = ExecutionModel::new(spec.clone());
        let shape = GemmShape::new(8192, 8192, 8192);
        let profile = reference_profile(&spec, &shape, DEFAULT_REFERENCE_EFFICIENCY);
        let t = model.time(&profile);
        assert!(t.achieved_tops < 20.0);
        assert!(spec.gemm_efficiency_f16 * spec.f16_tensor_measured > 8.0 * t.achieved_tops);
    }

    #[test]
    fn reference_profile_counts_batch() {
        let spec = Gpu::Gh200.spec();
        let single = reference_profile(&spec, &GemmShape::new(1024, 1024, 64), 0.8);
        let batched = reference_profile(&spec, &GemmShape::batched(4, 1024, 1024, 64), 0.8);
        assert!((batched.useful_ops - 4.0 * single.useful_ops).abs() < 1.0);
        assert!((batched.global_bytes - 4.0 * single.global_bytes).abs() < 1.0);
        assert_eq!(batched.launch.blocks, 4 * single.launch.blocks);
    }
}
