//! The transpose / tiling kernel.
//!
//! "The matrix-matrix multiplication kernel requires that the input
//! matrices are tiled in device memory.  This can be handled by ccglib
//! through a transpose kernel."  (Section III.)  Two related data
//! reorganisations are covered:
//!
//! * splitting interleaved complex data into separate real and imaginary
//!   planes (the kernels need planar data; interleaved support is future
//!   work in the paper and available here through
//!   [`crate::gemm::GemmInput::quantise_f16_interleaved`]);
//! * transposing the `B` operand from the natural `K×N` orientation into
//!   the `N×K` bit-row orientation the packed 1-bit kernel consumes.
//!
//! Both are pure data movement and therefore memory-bandwidth bound, like
//! the packing kernel.

use crate::matrix::{F16Matrix, HostComplexMatrix};
use gpu_sim::{DeviceSpec, KernelKind, KernelProfile, LaunchConfig};
use tcbf_types::{f16, Complex32};

/// Splits an interleaved complex buffer (row-major `rows × cols`, `re, im`
/// pairs) into a planar binary16 device matrix — the "transpose" the paper
/// describes between the host layout and the tensor-core layout.
pub fn interleaved_to_planar(rows: usize, cols: usize, interleaved: &[f32]) -> F16Matrix {
    assert_eq!(
        interleaved.len(),
        rows * cols * 2,
        "interleaved buffer has wrong length"
    );
    let mut re = Vec::with_capacity(rows * cols);
    let mut im = Vec::with_capacity(rows * cols);
    for e in 0..rows * cols {
        re.push(f16::from_f32(interleaved[2 * e]));
        im.push(f16::from_f32(interleaved[2 * e + 1]));
    }
    F16Matrix::from_planes(rows, cols, re, im).expect("plane lengths are consistent")
}

/// Merges a planar matrix back into an interleaved single-precision buffer.
pub fn planar_to_interleaved(matrix: &F16Matrix) -> Vec<f32> {
    let mut out = Vec::with_capacity(matrix.rows() * matrix.cols() * 2);
    for r in 0..matrix.rows() {
        for c in 0..matrix.cols() {
            let v = matrix.get(r, c);
            out.push(v.re);
            out.push(v.im);
        }
    }
    out
}

/// Transposes a host matrix (used to bring `B` from `K×N` into `N×K`).
pub fn transpose(host: &HostComplexMatrix) -> HostComplexMatrix {
    host.transposed()
}

/// Tiles a matrix into contiguous `tile_rows × tile_cols` blocks in the
/// order a block-tiled kernel would read them, returning the tile-major
/// element order.  Out-of-range elements (when the matrix dimensions are
/// not multiples of the tile) are padded with zeros, mirroring the padding
/// the device kernel applies.
pub fn tile_elements(
    host: &HostComplexMatrix,
    tile_rows: usize,
    tile_cols: usize,
) -> Vec<Complex32> {
    assert!(tile_rows > 0 && tile_cols > 0);
    let row_tiles = host.rows().div_ceil(tile_rows);
    let col_tiles = host.cols().div_ceil(tile_cols);
    let mut out = Vec::with_capacity(row_tiles * col_tiles * tile_rows * tile_cols);
    for tr in 0..row_tiles {
        for tc in 0..col_tiles {
            for r in 0..tile_rows {
                for c in 0..tile_cols {
                    let rr = tr * tile_rows + r;
                    let cc = tc * tile_cols + c;
                    if rr < host.rows() && cc < host.cols() {
                        out.push(host.get(rr, cc));
                    } else {
                        out.push(Complex32::ZERO);
                    }
                }
            }
        }
    }
    out
}

/// Kernel profile of the transpose kernel for a `rows × cols` complex
/// matrix with `bits_per_component` input precision: it reads and writes
/// every element once.
pub fn transpose_profile(
    spec: &DeviceSpec,
    rows: usize,
    cols: usize,
    bits_per_component: usize,
) -> KernelProfile {
    let elements = rows as f64 * cols as f64;
    let bytes_per_element = 2.0 * bits_per_component as f64 / 8.0;
    let traffic = 2.0 * elements * bytes_per_element; // read + write
    let threads_per_block = 256;
    let blocks = ((elements / threads_per_block as f64).ceil()).max(1.0) as usize;
    let _ = spec;
    KernelProfile::data_movement(
        KernelKind::Transpose,
        traffic,
        LaunchConfig::new(blocks, threads_per_block),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{ExecutionModel, Gpu};
    use tcbf_types::Complex;

    #[test]
    fn interleaved_planar_roundtrip() {
        let rows = 3;
        let cols = 5;
        let interleaved: Vec<f32> = (0..rows * cols * 2).map(|i| i as f32 * 0.125).collect();
        let planar = interleaved_to_planar(rows, cols, &interleaved);
        assert_eq!(planar.rows(), rows);
        assert_eq!(planar.cols(), cols);
        let back = planar_to_interleaved(&planar);
        assert_eq!(back.len(), interleaved.len());
        for (a, b) in interleaved.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_matches_host_transpose() {
        let m = HostComplexMatrix::from_fn(4, 7, |r, c| Complex::new(r as f32, c as f32));
        let t = transpose(&m);
        assert_eq!(t.rows(), 7);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.get(6, 3), Complex::new(3.0, 6.0));
    }

    #[test]
    fn tiling_covers_all_elements_with_padding() {
        let m = HostComplexMatrix::from_fn(5, 3, |r, c| Complex::new((r * 3 + c) as f32, 0.0));
        let tiled = tile_elements(&m, 4, 2);
        // 2 row tiles × 2 col tiles × 4×2 elements.
        assert_eq!(tiled.len(), 2 * 2 * 8);
        // First tile starts with element (0,0), (0,1), (1,0)…
        assert_eq!(tiled[0], m.get(0, 0));
        assert_eq!(tiled[1], m.get(0, 1));
        assert_eq!(tiled[2], m.get(1, 0));
        // Padded positions are zero.
        let non_zero: usize = tiled.iter().filter(|c| **c != Complex32::ZERO).count();
        assert_eq!(non_zero, 14); // 15 elements, one of which is 0 itself
    }

    #[test]
    fn exact_tiling_needs_no_padding() {
        let m =
            HostComplexMatrix::from_fn(4, 4, |r, c| Complex::new(1.0 + (r * 4 + c) as f32, 0.0));
        let tiled = tile_elements(&m, 2, 2);
        assert_eq!(tiled.len(), 16);
        assert!(tiled.iter().all(|c| *c != Complex32::ZERO));
    }

    #[test]
    fn transpose_profile_reads_and_writes_once() {
        let spec = Gpu::Mi210.spec();
        let p = transpose_profile(&spec, 1024, 2048, 16);
        assert_eq!(p.global_bytes, 2.0 * 1024.0 * 2048.0 * 4.0);
        let model = ExecutionModel::new(spec);
        assert!(model.time(&p).is_memory_bound());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn interleaved_length_is_checked() {
        interleaved_to_planar(2, 2, &[0.0; 7]);
    }
}
