//! Tensor-core micro-benchmarks — the `cudapeak` analogue used for
//! Table I of the paper.
//!
//! The real cudapeak library launches kernels that keep the tensor cores
//! busy from registers only, so that the measured throughput is the
//! compute ceiling rather than a memory-bandwidth artefact.  The simulated
//! equivalent does the same thing against the substrate: it executes a
//! small number of fragment operations *functionally* (so the benchmark
//! also doubles as a smoke test of the WMMA model) and reports the
//! sustained-throughput numbers of the device catalog, which were taken
//! from Table I of the paper.  Each result carries both the measured and
//! the theoretical value so the Table I "measured / theoretical" columns
//! can be regenerated directly.

#![deny(missing_docs)]

use gpu_sim::{wmma, BitFragmentShape, BitOp, DeviceSpec, FragmentShape, Gpu};
use serde::{Deserialize, Serialize};
use tcbf_types::f16;

/// The precision / fragment / operand combination of one Table I row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BenchmarkCase {
    /// float16 inputs, float32 accumulation, 16×16×16 fragments.
    Float16,
    /// 1-bit inputs, 32-bit integer accumulation.
    Int1 {
        /// Fragment layout.
        fragment: BitFragmentShape,
        /// Bitwise operand.
        op: BitOp,
    },
}

impl BenchmarkCase {
    /// All cases of Table I, in row order.
    pub fn table1_cases() -> Vec<BenchmarkCase> {
        let mut cases = vec![BenchmarkCase::Float16];
        for fragment in [BitFragmentShape::M8N8K128, BitFragmentShape::M16N8K256] {
            for op in [BitOp::Xor, BitOp::And] {
                cases.push(BenchmarkCase::Int1 { fragment, op });
            }
        }
        cases
    }

    /// Human-readable input/output type column of Table I.
    pub fn type_label(&self) -> String {
        match self {
            BenchmarkCase::Float16 => "float16 / float32".to_string(),
            BenchmarkCase::Int1 { op, .. } => format!("int1 / int32 ({op})"),
        }
    }

    /// Fragment-size column of Table I.
    pub fn fragment_label(&self) -> String {
        match self {
            BenchmarkCase::Float16 => FragmentShape::M16N16K16.to_string(),
            BenchmarkCase::Int1 { fragment, .. } => fragment.to_string(),
        }
    }
}

/// Result of one micro-benchmark on one device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeakResult {
    /// Device short name.
    pub device: String,
    /// Benchmark case.
    pub case: BenchmarkCase,
    /// Measured tensor-core throughput in TeraOps/s (instruction
    /// throughput; for the AND formulation this counts issued operations,
    /// as the hardware counter would).
    pub measured_tops: Option<f64>,
    /// Theoretical peak at specification clock in TeraOps/s, when the
    /// vendor publishes one.
    pub theoretical_tops: Option<f64>,
}

impl PeakResult {
    /// Ratio of measured to theoretical performance, if both are known.
    pub fn fraction_of_peak(&self) -> Option<f64> {
        match (self.measured_tops, self.theoretical_tops) {
            (Some(m), Some(t)) if t > 0.0 => Some(m / t),
            _ => None,
        }
    }
}

/// Functionally exercises a handful of fragment operations so the
/// benchmark actually touches the tensor-core model, returning the number
/// of fragment MACs executed.  A wrong result panics: a peak number from a
/// kernel that computes garbage is worthless.
fn exercise_fragments(case: BenchmarkCase) -> usize {
    match case {
        BenchmarkCase::Float16 => {
            let shape = FragmentShape::M16N16K16;
            let a = vec![f16::ONE; shape.m() * shape.k()];
            let b = vec![f16::from_f32(0.5); shape.k() * shape.n()];
            let mut acc = vec![0.0f32; shape.m() * shape.n()];
            for _ in 0..4 {
                wmma::mma_sync(shape, &a, &b, &mut acc);
            }
            assert!(acc
                .iter()
                .all(|&v| (v - 4.0 * shape.k() as f32 * 0.5).abs() < 1e-3));
            4 * shape.m() * shape.n() * shape.k()
        }
        BenchmarkCase::Int1 { fragment, op } => {
            let a = vec![u32::MAX; fragment.m() * fragment.k_words()];
            let b = vec![u32::MAX; fragment.n() * fragment.k_words()];
            let mut acc = vec![0i32; fragment.m() * fragment.n()];
            for _ in 0..4 {
                wmma::bmma_sync(fragment, op, &a, &b, &mut acc);
            }
            let expect = match op {
                BitOp::Xor => 0,
                BitOp::And => 4 * fragment.k() as i32,
            };
            assert!(acc.iter().all(|&v| v == expect));
            4 * fragment.m() * fragment.n() * fragment.k()
        }
    }
}

/// Runs one micro-benchmark case on one device.
///
/// Returns `None` for combinations the device does not support (1-bit
/// precision on AMD GPUs).
pub fn run_case(spec: &DeviceSpec, case: BenchmarkCase) -> Option<PeakResult> {
    let (measured, theoretical) = match case {
        BenchmarkCase::Float16 => (
            Some(spec.f16_tensor_measured),
            Some(spec.f16_tensor_theoretical),
        ),
        BenchmarkCase::Int1 { fragment, op } => {
            let peaks = spec.int1.as_ref()?;
            (Some(peaks.measured(fragment, op)), Some(peaks.theoretical))
        }
    };
    // Touch the functional model; a benchmark that reports throughput for
    // an operation that computes the wrong numbers would be meaningless.
    exercise_fragments(case);
    Some(PeakResult {
        device: spec.gpu.name().to_string(),
        case,
        measured_tops: measured,
        theoretical_tops: theoretical,
    })
}

/// Runs every Table I case on one device, skipping unsupported ones.
pub fn run_device(spec: &DeviceSpec) -> Vec<PeakResult> {
    BenchmarkCase::table1_cases()
        .into_iter()
        .filter_map(|c| run_case(spec, c))
        .collect()
}

/// Regenerates the full Table I: one entry per (case, device), with `None`
/// marking the N/A cells of the paper's table.
pub fn table1() -> Vec<(BenchmarkCase, Vec<Option<PeakResult>>)> {
    BenchmarkCase::table1_cases()
        .into_iter()
        .map(|case| {
            let row = Gpu::ALL
                .iter()
                .map(|gpu| run_case(&gpu.spec(), case))
                .collect();
            (case, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_five_rows_and_seven_columns() {
        let table = table1();
        assert_eq!(table.len(), 5);
        for (_, row) in &table {
            assert_eq!(row.len(), 7);
        }
        // float16 row has no N/A cells; int1 rows are N/A on the four AMD
        // devices.
        assert!(table[0].1.iter().all(Option::is_some));
        for (_, row) in &table[1..] {
            assert_eq!(row.iter().filter(|c| c.is_some()).count(), 3);
        }
    }

    #[test]
    fn measured_values_match_table1() {
        let a100 = Gpu::A100.spec();
        let f16 = run_case(&a100, BenchmarkCase::Float16).unwrap();
        assert_eq!(f16.measured_tops, Some(308.0));
        assert_eq!(f16.theoretical_tops, Some(312.0));
        let large_xor = run_case(
            &a100,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M16N8K256,
                op: BitOp::Xor,
            },
        )
        .unwrap();
        assert_eq!(large_xor.measured_tops, Some(4942.0));
        assert!((large_xor.fraction_of_peak().unwrap() - 4942.0 / 4992.0).abs() < 1e-9);
    }

    #[test]
    fn amd_devices_skip_int1() {
        let mi300 = Gpu::Mi300x.spec();
        assert!(run_case(
            &mi300,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M8N8K128,
                op: BitOp::Xor
            }
        )
        .is_none());
        assert_eq!(run_device(&mi300).len(), 1);
        assert_eq!(run_device(&Gpu::Gh200.spec()).len(), 5);
    }

    #[test]
    fn gh200_falls_short_of_peak_through_wmma() {
        // The paper: the GH200 reaches only ~65% of its peak through the
        // WMMA interface.
        let gh = Gpu::Gh200.spec();
        let f16 = run_case(&gh, BenchmarkCase::Float16).unwrap();
        let frac = f16.fraction_of_peak().unwrap();
        assert!((0.6..0.7).contains(&frac), "fraction {frac}");
        // Workstation boards boost beyond spec and exceed 1.0.
        let ad = run_case(&Gpu::Ad4000.spec(), BenchmarkCase::Float16).unwrap();
        assert!(ad.fraction_of_peak().unwrap() > 1.0);
    }

    #[test]
    fn large_fragment_never_slower_than_small() {
        for gpu in Gpu::NVIDIA {
            let spec = gpu.spec();
            for op in [BitOp::Xor, BitOp::And] {
                let small = run_case(
                    &spec,
                    BenchmarkCase::Int1 {
                        fragment: BitFragmentShape::M8N8K128,
                        op,
                    },
                )
                .unwrap();
                let large = run_case(
                    &spec,
                    BenchmarkCase::Int1 {
                        fragment: BitFragmentShape::M16N8K256,
                        op,
                    },
                )
                .unwrap();
                assert!(large.measured_tops >= small.measured_tops, "{gpu} {op}");
            }
        }
    }

    #[test]
    fn xor_is_slow_on_hopper_only() {
        let gh = Gpu::Gh200.spec();
        let xor = run_case(
            &gh,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M16N8K256,
                op: BitOp::Xor,
            },
        )
        .unwrap();
        let and = run_case(
            &gh,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M16N8K256,
                op: BitOp::And,
            },
        )
        .unwrap();
        assert!(and.measured_tops.unwrap() > 4.0 * xor.measured_tops.unwrap());
        let a100 = Gpu::A100.spec();
        let xor = run_case(
            &a100,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M16N8K256,
                op: BitOp::Xor,
            },
        )
        .unwrap();
        let and = run_case(
            &a100,
            BenchmarkCase::Int1 {
                fragment: BitFragmentShape::M16N8K256,
                op: BitOp::And,
            },
        )
        .unwrap();
        assert_eq!(xor.measured_tops, and.measured_tops);
    }

    #[test]
    fn labels_for_report_formatting() {
        assert_eq!(BenchmarkCase::Float16.type_label(), "float16 / float32");
        assert_eq!(BenchmarkCase::Float16.fragment_label(), "16x16x16");
        let c = BenchmarkCase::Int1 {
            fragment: BitFragmentShape::M16N8K256,
            op: BitOp::And,
        };
        assert_eq!(c.type_label(), "int1 / int32 (AND)");
        assert_eq!(c.fragment_label(), "16x8x256");
    }
}
