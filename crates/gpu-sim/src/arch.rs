//! GPU vendors, architecture generations and architectural features.
//!
//! The behavioural differences the paper relies on are encoded here as
//! queryable predicates rather than scattered `if name == "GH200"` checks:
//!
//! * 1-bit tensor-core support is NVIDIA-only (Section II);
//! * the XOR bit operation is *deprecated* from Hopper on and emulated in
//!   software, making it up to five times slower than AND (Section III-A/E);
//! * the 16×8×256 1-bit fragment is only reachable through inline PTX, not
//!   WMMA, and is at least twice as fast as 8×8×128 on A100/GH200;
//! * asynchronous global→shared copies exist on NVIDIA Ampere and later
//!   only, which is why the number of pipeline buffers is forced to one on
//!   AMD devices (Section III-C);
//! * on Hopper the WMMA interface reaches only ~65 % of the peak that the
//!   newer WGMMA interface would reach (Section III-A, ref. \[5\]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU vendor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA GPUs, programmed through CUDA / WMMA.
    Nvidia,
    /// AMD GPUs, programmed through HIP / rocWMMA.
    Amd,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// GPU architecture generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// NVIDIA Ampere (A100).
    Ampere,
    /// NVIDIA Ada Lovelace (RTX 4000 Ada).
    Ada,
    /// NVIDIA Hopper (GH200).
    Hopper,
    /// NVIDIA Blackwell (not evaluated in the paper; listed as future work).
    Blackwell,
    /// AMD RDNA3 workstation parts (Radeon Pro W7700).
    Rdna3,
    /// AMD CDNA2 (Instinct MI210).
    Cdna2,
    /// AMD CDNA3 (Instinct MI300X / MI300A).
    Cdna3,
}

impl Architecture {
    /// Vendor of this architecture.
    pub fn vendor(self) -> Vendor {
        match self {
            Architecture::Ampere
            | Architecture::Ada
            | Architecture::Hopper
            | Architecture::Blackwell => Vendor::Nvidia,
            Architecture::Rdna3 | Architecture::Cdna2 | Architecture::Cdna3 => Vendor::Amd,
        }
    }

    /// Whether 1-bit tensor-core matrix operations are available.
    /// "1-bit precision … is only supported on NVIDIA GPUs."
    pub fn supports_int1(self) -> bool {
        self.vendor() == Vendor::Nvidia
    }

    /// Whether the XOR binary tensor-core operation is implemented in
    /// hardware.  From Hopper on it is deprecated: still exposed at the
    /// WMMA/PTX level but lowered to several AND operations plus boolean
    /// logic, which is why it is up to five times slower there.
    pub fn xor_in_hardware(self) -> bool {
        matches!(self, Architecture::Ampere | Architecture::Ada)
    }

    /// Whether the AND binary tensor-core operation exists (introduced with
    /// Ampere).
    pub fn supports_and_bmma(self) -> bool {
        self.supports_int1()
    }

    /// Whether the 16×8×256 1-bit fragment layout is available (via inline
    /// PTX; it is not exposed through the WMMA API).
    pub fn supports_large_bit_fragment(self) -> bool {
        self.supports_int1()
    }

    /// Whether asynchronous copies from global to shared memory exist
    /// (`cp.async`, NVIDIA Ampere and later).  On AMD devices ccglib forces
    /// the number of pipeline buffers to one.
    pub fn supports_async_copies(self) -> bool {
        self.vendor() == Vendor::Nvidia
    }

    /// Efficiency of the WMMA interface relative to the architecture's true
    /// tensor-core peak.  On Hopper (and Blackwell) the newer WGMMA
    /// interface is required to reach full throughput; WMMA tops out at
    /// roughly 65 % (ref. \[5\] of the paper, confirmed by the paper's own
    /// micro-benchmarks).
    pub fn wmma_interface_efficiency(self) -> f64 {
        match self {
            Architecture::Hopper | Architecture::Blackwell => 0.65,
            _ => 1.0,
        }
    }

    /// Relative slowdown of the XOR bit operation compared to AND on this
    /// architecture (1.0 where XOR is native).  On Hopper the emulation
    /// makes XOR up to ~5× slower; the measured Table I ratio for the
    /// 8×8×128 fragment is 3894 / 979 ≈ 4.0 and for 16×8×256 it is
    /// 10276 / 2361 ≈ 4.35, so we model a factor of 4.2.
    pub fn xor_emulation_slowdown(self) -> f64 {
        if self.supports_int1() && !self.xor_in_hardware() {
            4.2
        } else {
            1.0
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Ampere => "Ampere",
            Architecture::Ada => "Ada Lovelace",
            Architecture::Hopper => "Hopper",
            Architecture::Blackwell => "Blackwell",
            Architecture::Rdna3 => "RDNA3",
            Architecture::Cdna2 => "CDNA2",
            Architecture::Cdna3 => "CDNA3",
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The bitwise operation used by 1-bit tensor-core instructions.
///
/// XOR detects *differing* bits (native up to Ada, emulated from Hopper);
/// AND detects *equal* bits when combined with a second AND on the negated
/// inputs (Eq. 6), at the cost of twice the instruction count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitOp {
    /// Element-wise exclusive-or followed by population count.
    Xor,
    /// Element-wise and followed by population count.
    And,
}

impl BitOp {
    /// Number of binary MMA instructions needed per logical multiply:
    /// the AND formulation needs two (one on the inputs, one on their
    /// complements), XOR needs one.
    pub fn instructions_per_multiply(self) -> usize {
        match self {
            BitOp::Xor => 1,
            BitOp::And => 2,
        }
    }

    /// The operation ccglib automatically selects on a given architecture:
    /// AND on Hopper and newer (where XOR is emulated), XOR elsewhere.
    pub fn preferred_for(arch: Architecture) -> BitOp {
        if arch.xor_in_hardware() {
            BitOp::Xor
        } else {
            BitOp::And
        }
    }
}

impl fmt::Display for BitOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitOp::Xor => write!(f, "XOR"),
            BitOp::And => write!(f, "AND"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_mapping() {
        assert_eq!(Architecture::Ampere.vendor(), Vendor::Nvidia);
        assert_eq!(Architecture::Ada.vendor(), Vendor::Nvidia);
        assert_eq!(Architecture::Hopper.vendor(), Vendor::Nvidia);
        assert_eq!(Architecture::Rdna3.vendor(), Vendor::Amd);
        assert_eq!(Architecture::Cdna2.vendor(), Vendor::Amd);
        assert_eq!(Architecture::Cdna3.vendor(), Vendor::Amd);
    }

    #[test]
    fn int1_is_nvidia_only() {
        for arch in [
            Architecture::Ampere,
            Architecture::Ada,
            Architecture::Hopper,
        ] {
            assert!(arch.supports_int1());
        }
        for arch in [
            Architecture::Rdna3,
            Architecture::Cdna2,
            Architecture::Cdna3,
        ] {
            assert!(!arch.supports_int1());
            assert!(!arch.supports_large_bit_fragment());
        }
    }

    #[test]
    fn xor_deprecated_from_hopper() {
        assert!(Architecture::Ampere.xor_in_hardware());
        assert!(Architecture::Ada.xor_in_hardware());
        assert!(!Architecture::Hopper.xor_in_hardware());
        assert!(Architecture::Hopper.xor_emulation_slowdown() > 3.0);
        assert_eq!(Architecture::Ampere.xor_emulation_slowdown(), 1.0);
    }

    #[test]
    fn preferred_bit_op_switches_on_hopper() {
        assert_eq!(BitOp::preferred_for(Architecture::Ampere), BitOp::Xor);
        assert_eq!(BitOp::preferred_for(Architecture::Ada), BitOp::Xor);
        assert_eq!(BitOp::preferred_for(Architecture::Hopper), BitOp::And);
        assert_eq!(BitOp::preferred_for(Architecture::Blackwell), BitOp::And);
    }

    #[test]
    fn and_needs_twice_the_instructions() {
        assert_eq!(BitOp::Xor.instructions_per_multiply(), 1);
        assert_eq!(BitOp::And.instructions_per_multiply(), 2);
    }

    #[test]
    fn async_copies_nvidia_only() {
        assert!(Architecture::Ampere.supports_async_copies());
        assert!(!Architecture::Cdna3.supports_async_copies());
    }

    #[test]
    fn wmma_efficiency_penalty_on_hopper_only() {
        assert!((Architecture::Hopper.wmma_interface_efficiency() - 0.65).abs() < 1e-9);
        assert_eq!(Architecture::Ampere.wmma_interface_efficiency(), 1.0);
        assert_eq!(Architecture::Cdna3.wmma_interface_efficiency(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Architecture::Hopper.to_string(), "Hopper");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
        assert_eq!(BitOp::Xor.to_string(), "XOR");
    }
}
