//! Catalog of the GPUs evaluated in the paper.
//!
//! Each [`DeviceSpec`] records the architectural parameters the execution
//! and power models need: compute-unit counts, clocks, theoretical and
//! *measured* tensor-core peaks (Table I of the paper), FP32 peak, memory
//! bandwidth, shared-memory capacity and power envelope.  Two calibration
//! fields (`gemm_efficiency_*`, `gemm_power_*`) anchor the analytic model
//! to the end-to-end GEMM throughput and power the paper reports in
//! Table III, so the regenerated tables and figures are directly comparable
//! in shape to the published ones.  All other behaviour (occupancy ramps,
//! padding sawtooth, memory-bound regimes, XOR-vs-AND penalties) emerges
//! from the model itself.

use crate::arch::{Architecture, BitOp, Vendor};
use crate::wmma::BitFragmentShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the GPUs evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gpu {
    /// NVIDIA RTX 4000 Ada (workstation).
    Ad4000,
    /// NVIDIA Tesla A100 (server).
    A100,
    /// NVIDIA Grace Hopper GH200 (server).
    Gh200,
    /// AMD Radeon Pro W7700 (workstation).
    W7700,
    /// AMD Instinct MI210 (server).
    Mi210,
    /// AMD Instinct MI300X (server).
    Mi300x,
    /// AMD Instinct MI300A (server APU).
    Mi300a,
}

impl Gpu {
    /// All GPUs evaluated in the paper, in the order used by its tables.
    pub const ALL: [Gpu; 7] = [
        Gpu::Ad4000,
        Gpu::A100,
        Gpu::Gh200,
        Gpu::W7700,
        Gpu::Mi210,
        Gpu::Mi300x,
        Gpu::Mi300a,
    ];

    /// The NVIDIA subset, the only devices with 1-bit tensor-core support.
    pub const NVIDIA: [Gpu; 3] = [Gpu::Ad4000, Gpu::A100, Gpu::Gh200];

    /// Short display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Gpu::Ad4000 => "AD4000",
            Gpu::A100 => "A100",
            Gpu::Gh200 => "GH200",
            Gpu::W7700 => "W7700",
            Gpu::Mi210 => "MI210",
            Gpu::Mi300x => "MI300X",
            Gpu::Mi300a => "MI300A",
        }
    }

    /// Full specification of this device.
    pub fn spec(self) -> DeviceSpec {
        DeviceSpec::of(self)
    }

    /// Convenience constructor for a simulated device instance.
    pub fn device(self) -> Device {
        Device::new(self.spec())
    }
}

impl fmt::Display for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Measured 1-bit micro-benchmark results for one NVIDIA device
/// (Table I): TOPs/s for both fragment layouts and both bit operations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Int1Peaks {
    /// Theoretical 1-bit peak at spec clock (TOPs/s).
    pub theoretical: f64,
    /// Measured peak, 8×8×128 fragment, XOR operand.
    pub small_xor: f64,
    /// Measured peak, 8×8×128 fragment, AND operand.
    pub small_and: f64,
    /// Measured peak, 16×8×256 fragment, XOR operand.
    pub large_xor: f64,
    /// Measured peak, 16×8×256 fragment, AND operand.
    pub large_and: f64,
}

impl Int1Peaks {
    /// Measured peak for a given fragment layout and bit operation.
    pub fn measured(&self, fragment: BitFragmentShape, op: BitOp) -> f64 {
        match (fragment, op) {
            (BitFragmentShape::M8N8K128, BitOp::Xor) => self.small_xor,
            (BitFragmentShape::M8N8K128, BitOp::And) => self.small_and,
            (BitFragmentShape::M16N8K256, BitOp::Xor) => self.large_xor,
            (BitFragmentShape::M16N8K256, BitOp::And) => self.large_and,
        }
    }

    /// The best measured 1-bit throughput across fragments and operands.
    pub fn best(&self) -> f64 {
        self.small_xor
            .max(self.small_and)
            .max(self.large_xor)
            .max(self.large_and)
    }
}

/// Static description of a GPU: everything the simulator needs to model
/// execution time, memory behaviour and power draw.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Which catalog entry this is.
    pub gpu: Gpu,
    /// Marketing name.
    pub name: &'static str,
    /// Architecture generation.
    pub arch: Architecture,
    /// Number of streaming multiprocessors (NVIDIA) or compute units (AMD).
    pub compute_units: usize,
    /// Vendor-specified boost clock in GHz.
    pub spec_clock_ghz: f64,
    /// Clock actually sustained during tensor-core micro-benchmarks, in
    /// GHz.  Workstation parts boost above spec (AD4000, W7700); the
    /// MI300X/A cannot sustain their maximum clock under synthetic load.
    pub sustained_clock_ghz: f64,
    /// Theoretical FP32 (regular core) peak in TFLOP/s — the "float32"
    /// roofline ceiling of Fig. 3 and the baseline the reference
    /// beamformers run on.
    pub fp32_peak_tflops: f64,
    /// Theoretical float16 tensor-core peak in TOP/s at spec clock
    /// (Table I, "theoretical").
    pub f16_tensor_theoretical: f64,
    /// Measured float16 tensor-core peak in TOP/s (Table I, "measured").
    pub f16_tensor_measured: f64,
    /// 1-bit tensor-core peaks; `None` on AMD devices.
    pub int1: Option<Int1Peaks>,
    /// Theoretical device-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in GiB.
    pub mem_size_gib: f64,
    /// Maximum shared memory (LDS) available to a thread block, in KiB.
    pub shared_mem_per_block_kib: usize,
    /// 32-bit registers available per thread block.
    pub registers_per_block: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// Warp (NVIDIA) or wavefront (AMD) width.
    pub warp_size: usize,
    /// Board power limit in watts.
    pub tdp_watts: f64,
    /// Idle power in watts.
    pub idle_watts: f64,
    /// Fraction of the *measured* f16 tensor peak that the best tuned
    /// ccglib kernel sustains on large matrices (calibrated to Table III).
    pub gemm_efficiency_f16: f64,
    /// Fraction of the usable 1-bit instruction throughput the best tuned
    /// kernel sustains (calibrated to Table III); `None` on AMD.
    pub gemm_efficiency_int1: Option<f64>,
    /// Average board power while running the tuned f16 GEMM at full
    /// utilisation, in watts (calibrated to Table III TOPs/J).
    pub gemm_power_f16_watts: f64,
    /// Average board power while running the tuned 1-bit GEMM, in watts.
    pub gemm_power_int1_watts: Option<f64>,
}

impl DeviceSpec {
    /// Returns the catalog entry for `gpu`.
    ///
    /// Sources: vendor datasheets for clocks, bandwidth, FP32 peaks and
    /// power limits; Table I of the paper for tensor-core peaks; Table III
    /// for the calibration fields.
    pub fn of(gpu: Gpu) -> DeviceSpec {
        match gpu {
            Gpu::Ad4000 => DeviceSpec {
                gpu,
                name: "NVIDIA RTX 4000 Ada",
                arch: Architecture::Ada,
                compute_units: 48,
                spec_clock_ghz: 2.175,
                sustained_clock_ghz: 2.38, // boosts beyond spec (Table I note a)
                fp32_peak_tflops: 26.7,
                f16_tensor_theoretical: 107.0,
                f16_tensor_measured: 117.0,
                int1: Some(Int1Peaks {
                    theoretical: 1710.0,
                    small_xor: 1847.0,
                    small_and: 1804.0,
                    large_xor: 1865.0,
                    large_and: 1865.0,
                }),
                mem_bandwidth_gbs: 360.0,
                mem_size_gib: 20.0,
                shared_mem_per_block_kib: 100,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 32,
                tdp_watts: 130.0,
                idle_watts: 14.0,
                gemm_efficiency_f16: 0.795,
                gemm_efficiency_int1: Some(0.751),
                gemm_power_f16_watts: 133.0,
                gemm_power_int1_watts: Some(131.0),
            },
            Gpu::A100 => DeviceSpec {
                gpu,
                name: "NVIDIA Tesla A100 80GB",
                arch: Architecture::Ampere,
                compute_units: 108,
                spec_clock_ghz: 1.41,
                sustained_clock_ghz: 1.40,
                fp32_peak_tflops: 19.5,
                f16_tensor_theoretical: 312.0,
                f16_tensor_measured: 308.0,
                int1: Some(Int1Peaks {
                    theoretical: 4992.0,
                    small_xor: 2465.0,
                    small_and: 2408.0,
                    large_xor: 4942.0,
                    large_and: 4942.0,
                }),
                mem_bandwidth_gbs: 1935.0,
                mem_size_gib: 80.0,
                shared_mem_per_block_kib: 164,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 32,
                tdp_watts: 300.0,
                idle_watts: 45.0,
                gemm_efficiency_f16: 0.562,
                gemm_efficiency_int1: Some(0.623),
                gemm_power_f16_watts: 216.0,
                gemm_power_int1_watts: Some(250.0),
            },
            Gpu::Gh200 => DeviceSpec {
                gpu,
                name: "NVIDIA GH200 Grace Hopper",
                arch: Architecture::Hopper,
                compute_units: 132,
                spec_clock_ghz: 1.98,
                sustained_clock_ghz: 1.83,
                fp32_peak_tflops: 67.0,
                f16_tensor_theoretical: 990.0,
                f16_tensor_measured: 646.0,
                int1: Some(Int1Peaks {
                    // NVIDIA does not publish a 1-bit figure for Hopper;
                    // the paper assumes it scales from float16 like on
                    // Ampere/Ada.
                    theoretical: 15_800.0,
                    small_xor: 979.0,
                    small_and: 3894.0,
                    large_xor: 2361.0,
                    large_and: 10_276.0,
                }),
                mem_bandwidth_gbs: 4000.0,
                mem_size_gib: 96.0,
                shared_mem_per_block_kib: 228,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 32,
                tdp_watts: 700.0,
                idle_watts: 90.0,
                gemm_efficiency_f16: 0.519,
                // Best tuned kernel sustains 3780 TOPs/s of *useful* work;
                // the AND formulation issues twice as many instructions, so
                // relative to the usable 10276/2 instruction throughput the
                // efficiency is 0.736.
                gemm_efficiency_int1: Some(0.736),
                gemm_power_f16_watts: 419.0,
                gemm_power_int1_watts: Some(630.0),
            },
            Gpu::W7700 => DeviceSpec {
                gpu,
                name: "AMD Radeon Pro W7700",
                arch: Architecture::Rdna3,
                compute_units: 48,
                spec_clock_ghz: 2.36,
                sustained_clock_ghz: 2.44, // boosts beyond spec (Table I note a)
                fp32_peak_tflops: 28.3,
                f16_tensor_theoretical: 57.0,
                f16_tensor_measured: 59.0,
                int1: None,
                mem_bandwidth_gbs: 576.0,
                mem_size_gib: 16.0,
                shared_mem_per_block_kib: 64,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 32,
                tdp_watts: 190.0,
                idle_watts: 18.0,
                gemm_efficiency_f16: 0.763,
                gemm_efficiency_int1: None,
                gemm_power_f16_watts: 150.0,
                gemm_power_int1_watts: None,
            },
            Gpu::Mi210 => DeviceSpec {
                gpu,
                name: "AMD Instinct MI210",
                arch: Architecture::Cdna2,
                compute_units: 104,
                spec_clock_ghz: 1.7,
                sustained_clock_ghz: 1.66,
                fp32_peak_tflops: 22.6,
                f16_tensor_theoretical: 181.0,
                f16_tensor_measured: 174.0,
                int1: None,
                mem_bandwidth_gbs: 1638.0,
                mem_size_gib: 64.0,
                shared_mem_per_block_kib: 64,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 64,
                tdp_watts: 300.0,
                idle_watts: 40.0,
                gemm_efficiency_f16: 0.845,
                gemm_efficiency_int1: None,
                gemm_power_f16_watts: 113.0,
                gemm_power_int1_watts: None,
            },
            Gpu::Mi300x => DeviceSpec {
                gpu,
                name: "AMD Instinct MI300X",
                arch: Architecture::Cdna3,
                compute_units: 304,
                spec_clock_ghz: 2.1,
                sustained_clock_ghz: 1.94, // cannot sustain max clock (Table I note b)
                fp32_peak_tflops: 163.4,
                f16_tensor_theoretical: 1307.0,
                f16_tensor_measured: 1205.0,
                int1: None,
                mem_bandwidth_gbs: 5300.0,
                mem_size_gib: 192.0,
                shared_mem_per_block_kib: 64,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 64,
                tdp_watts: 750.0,
                idle_watts: 140.0,
                gemm_efficiency_f16: 0.500,
                gemm_efficiency_int1: None,
                gemm_power_f16_watts: 670.0,
                gemm_power_int1_watts: None,
            },
            Gpu::Mi300a => DeviceSpec {
                gpu,
                name: "AMD Instinct MI300A",
                arch: Architecture::Cdna3,
                compute_units: 228,
                spec_clock_ghz: 2.1,
                sustained_clock_ghz: 2.03, // cannot sustain max clock (Table I note b)
                fp32_peak_tflops: 122.6,
                f16_tensor_theoretical: 981.0,
                f16_tensor_measured: 949.0,
                int1: None,
                mem_bandwidth_gbs: 5300.0,
                mem_size_gib: 128.0,
                shared_mem_per_block_kib: 64,
                registers_per_block: 65_536,
                max_threads_per_block: 1024,
                warp_size: 64,
                // Configurable up to 760 W; the default 550 W limit is below
                // the ~648 W average the Table III numbers imply, so the
                // evaluated system ran with the raised limit.
                tdp_watts: 760.0,
                idle_watts: 120.0,
                gemm_efficiency_f16: 0.546,
                gemm_efficiency_int1: None,
                gemm_power_f16_watts: 648.0,
                gemm_power_int1_watts: None,
            },
        }
    }

    /// The full catalog, in the paper's ordering.
    pub fn catalog() -> Vec<DeviceSpec> {
        Gpu::ALL.iter().map(|&g| DeviceSpec::of(g)).collect()
    }

    /// Vendor of this device.
    pub fn vendor(&self) -> Vendor {
        self.arch.vendor()
    }

    /// Whether the device supports 1-bit tensor-core operations.
    pub fn supports_int1(&self) -> bool {
        self.int1.is_some()
    }

    /// Measured float16 tensor-core peak in TOP/s (Table I).  This is the
    /// ceiling the GEMM kernels are compared against.
    pub fn f16_peak_tops(&self) -> f64 {
        self.f16_tensor_measured
    }

    /// Measured 1-bit tensor-core *instruction* throughput in TOP/s for a
    /// given fragment and bit operation (Table I), or `None` if the device
    /// has no 1-bit support.
    pub fn int1_peak_tops(&self, fragment: BitFragmentShape, op: BitOp) -> Option<f64> {
        self.int1.as_ref().map(|p| p.measured(fragment, op))
    }

    /// The usable 1-bit throughput in *useful* operations per second for a
    /// given fragment and operand, i.e. the instruction throughput divided
    /// by the number of instructions each logical multiply needs (two for
    /// the AND formulation, Section III-E).
    pub fn int1_useful_peak_tops(&self, fragment: BitFragmentShape, op: BitOp) -> Option<f64> {
        self.int1_peak_tops(fragment, op)
            .map(|t| t / op.instructions_per_multiply() as f64)
    }

    /// The best usable 1-bit throughput over all fragments with the bit
    /// operation ccglib would select on this architecture.
    pub fn int1_best_useful_peak_tops(&self) -> Option<f64> {
        let op = BitOp::preferred_for(self.arch);
        let small = self.int1_useful_peak_tops(BitFragmentShape::M8N8K128, op)?;
        let large = self.int1_useful_peak_tops(BitFragmentShape::M16N8K256, op)?;
        Some(small.max(large))
    }

    /// Theoretical FP32 peak in TOP/s counting each FMA as two operations —
    /// the "normal cores" ceiling of Fig. 3 that the reference beamformers
    /// are bound by.
    pub fn fp32_peak_tops(&self) -> f64 {
        self.fp32_peak_tflops
    }

    /// Ratio of sustained to specified clock; above 1.0 for the
    /// workstation parts that boost beyond spec, below 1.0 for the MI300
    /// parts that throttle under synthetic load.
    pub fn clock_ratio(&self) -> f64 {
        self.sustained_clock_ghz / self.spec_clock_ghz
    }

    /// Shared memory per block in bytes.
    pub fn shared_mem_per_block_bytes(&self) -> usize {
        self.shared_mem_per_block_kib * 1024
    }
}

/// A simulated GPU instance.
///
/// In the real library this would wrap a CUDA/HIP device handle; here it
/// owns the static spec plus the derived models.  It is cheap to clone and
/// thread-safe to share.
#[derive(Clone, Debug)]
pub struct Device {
    spec: DeviceSpec,
}

impl Device {
    /// Creates a device instance from its specification.
    pub fn new(spec: DeviceSpec) -> Self {
        Device { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Shorthand for the catalog identifier.
    pub fn gpu(&self) -> Gpu {
        self.spec.gpu
    }

    /// The device's architecture.
    pub fn arch(&self) -> Architecture {
        self.spec.arch
    }

    /// The execution model for this device.
    pub fn execution_model(&self) -> crate::exec::ExecutionModel {
        crate::exec::ExecutionModel::new(self.spec.clone())
    }

    /// The power model for this device.
    pub fn power_model(&self) -> crate::power::PowerModel {
        crate::power::PowerModel::new(self.spec.clone())
    }

    /// The memory model for this device.
    pub fn memory_model(&self) -> crate::memory::MemoryModel {
        crate::memory::MemoryModel::new(self.spec.clone())
    }

    /// Roofline ceilings for this device.
    pub fn roofline(&self) -> crate::roofline::Roofline {
        crate::roofline::Roofline::for_device(&self.spec)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.spec.name, self.spec.arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_seven_devices() {
        let catalog = DeviceSpec::catalog();
        assert_eq!(catalog.len(), 7);
        let names: Vec<_> = catalog.iter().map(|d| d.gpu.name()).collect();
        assert_eq!(
            names,
            vec!["AD4000", "A100", "GH200", "W7700", "MI210", "MI300X", "MI300A"]
        );
    }

    #[test]
    fn int1_support_matches_vendor() {
        for spec in DeviceSpec::catalog() {
            assert_eq!(spec.supports_int1(), spec.vendor() == Vendor::Nvidia);
        }
    }

    #[test]
    fn table1_f16_values() {
        // Spot-check Table I measured / theoretical float16 numbers.
        assert_eq!(Gpu::Ad4000.spec().f16_tensor_measured, 117.0);
        assert_eq!(Gpu::Ad4000.spec().f16_tensor_theoretical, 107.0);
        assert_eq!(Gpu::A100.spec().f16_tensor_measured, 308.0);
        assert_eq!(Gpu::Gh200.spec().f16_tensor_measured, 646.0);
        assert_eq!(Gpu::Mi300x.spec().f16_tensor_measured, 1205.0);
        assert_eq!(Gpu::Mi300a.spec().f16_tensor_measured, 949.0);
    }

    #[test]
    fn table1_int1_values() {
        let a100 = Gpu::A100.spec();
        let p = a100.int1.unwrap();
        assert_eq!(p.small_xor, 2465.0);
        assert_eq!(p.large_xor, 4942.0);
        assert_eq!(
            a100.int1_peak_tops(BitFragmentShape::M16N8K256, BitOp::And),
            Some(4942.0)
        );
        let gh = Gpu::Gh200.spec();
        // On Hopper AND is much faster than XOR for both fragments.
        assert!(
            gh.int1_peak_tops(BitFragmentShape::M8N8K128, BitOp::And)
                .unwrap()
                > 3.0
                    * gh.int1_peak_tops(BitFragmentShape::M8N8K128, BitOp::Xor)
                        .unwrap()
        );
        assert_eq!(
            Gpu::W7700
                .spec()
                .int1_peak_tops(BitFragmentShape::M8N8K128, BitOp::Xor),
            None
        );
    }

    #[test]
    fn useful_peak_accounts_for_and_instruction_doubling() {
        let gh = Gpu::Gh200.spec();
        let instr = gh
            .int1_peak_tops(BitFragmentShape::M16N8K256, BitOp::And)
            .unwrap();
        let useful = gh
            .int1_useful_peak_tops(BitFragmentShape::M16N8K256, BitOp::And)
            .unwrap();
        assert_eq!(useful, instr / 2.0);
        // On Ampere XOR needs no doubling.
        let a100 = Gpu::A100.spec();
        assert_eq!(
            a100.int1_useful_peak_tops(BitFragmentShape::M16N8K256, BitOp::Xor)
                .unwrap(),
            a100.int1_peak_tops(BitFragmentShape::M16N8K256, BitOp::Xor)
                .unwrap()
        );
    }

    #[test]
    fn best_useful_int1_peak_picks_large_fragment() {
        // "the larger layout is never slower than the smaller one".
        for gpu in Gpu::NVIDIA {
            let spec = gpu.spec();
            let op = BitOp::preferred_for(spec.arch);
            let large = spec
                .int1_useful_peak_tops(BitFragmentShape::M16N8K256, op)
                .unwrap();
            assert_eq!(spec.int1_best_useful_peak_tops().unwrap(), large);
        }
    }

    #[test]
    fn workstation_parts_boost_beyond_spec() {
        assert!(Gpu::Ad4000.spec().clock_ratio() > 1.0);
        assert!(Gpu::W7700.spec().clock_ratio() > 1.0);
        assert!(Gpu::Mi300x.spec().clock_ratio() < 1.0);
        assert!(Gpu::Mi300a.spec().clock_ratio() < 1.0);
    }

    #[test]
    fn tensor_peak_exceeds_fp32_peak_everywhere() {
        // The whole premise of the paper: tensor cores beat the normal
        // cores by a wide margin.
        for spec in DeviceSpec::catalog() {
            assert!(
                spec.f16_peak_tops() > 2.0 * spec.fp32_peak_tops(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn calibration_fields_reproduce_table3_throughput() {
        // gemm_efficiency × measured peak ≈ Table III TOPs/s (±2%).
        let expected = [
            (Gpu::Ad4000, 93.0),
            (Gpu::A100, 173.0),
            (Gpu::Gh200, 335.0),
            (Gpu::W7700, 45.0),
            (Gpu::Mi210, 147.0),
            (Gpu::Mi300x, 603.0),
            (Gpu::Mi300a, 518.0),
        ];
        for (gpu, tops) in expected {
            let spec = gpu.spec();
            let achieved = spec.gemm_efficiency_f16 * spec.f16_tensor_measured;
            assert!(
                (achieved - tops).abs() / tops < 0.02,
                "{}: {achieved} vs {tops}",
                spec.name
            );
        }
    }

    #[test]
    fn device_wrappers() {
        let dev = Gpu::A100.device();
        assert_eq!(dev.gpu(), Gpu::A100);
        assert_eq!(dev.arch(), Architecture::Ampere);
        assert!(dev.to_string().contains("A100"));
    }
}
