//! Analytic kernel execution model.
//!
//! Real GPU timings in the paper come from running kernels on hardware.
//! Here, functional results are computed on the CPU and *timing* comes from
//! this model: a roofline-style estimate extended with the effects the
//! paper's evaluation depends on —
//!
//! * the kernel is limited either by tensor-core throughput or by device
//!   memory bandwidth, whichever bound is tighter (Fig. 3);
//! * small problems do not fill the GPU: performance ramps with the number
//!   of thread blocks relative to the number of compute units (left-hand
//!   side of Fig. 4, small receiver counts in Fig. 7);
//! * the last "wave" of thread blocks may leave compute units idle (wave
//!   quantisation), producing the characteristic tail-off;
//! * each kernel launch pays a fixed host-side overhead;
//! * the per-configuration efficiency supplied by the kernel (tile padding,
//!   pipeline depth, per-warp work) scales the achievable compute
//!   throughput — this is where the sawtooth of Figs. 4 and 7 and the
//!   spread of the auto-tuning scatter (Fig. 2) come from.

use crate::device::DeviceSpec;
use crate::memory::MemoryModel;
use serde::{Deserialize, Serialize};

/// Fixed host-side launch overhead per kernel, in seconds.
pub const LAUNCH_OVERHEAD_S: f64 = 5e-6;

/// Number of resident warps per compute unit needed to hide pipeline
/// latency; below this the tensor cores starve.
pub const WARPS_PER_CU_FOR_FULL_THROUGHPUT: f64 = 8.0;

/// What a kernel does — determines which throughput ceiling applies and
/// which power calibration point is used.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum KernelKind {
    /// Complex GEMM on the float16 tensor cores.
    GemmF16,
    /// Complex GEMM on the 1-bit tensor cores.
    GemmInt1,
    /// Complex GEMM on the regular float32 cores (the reference/baseline
    /// implementations).
    GemmF32,
    /// 1-bit packing / unpacking kernel (memory bound).
    Pack,
    /// Transpose / tiling kernel (memory bound).
    Transpose,
    /// Plain device-to-device copy.
    Memcpy,
}

impl KernelKind {
    /// Whether this kernel kind performs arithmetic on a compute ceiling
    /// (as opposed to being a pure data-movement kernel).
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            KernelKind::GemmF16 | KernelKind::GemmInt1 | KernelKind::GemmF32
        )
    }
}

/// Grid/block launch configuration of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks launched.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    pub fn new(blocks: usize, threads_per_block: usize) -> Self {
        LaunchConfig {
            blocks,
            threads_per_block,
        }
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }
}

/// Everything the execution model needs to know about one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kind of kernel.
    pub kind: KernelKind,
    /// Useful operations performed (the paper's `8·M·N·K` convention for
    /// complex GEMM; zero for data-movement kernels).
    pub useful_ops: f64,
    /// Peak throughput of the relevant execution units for this kernel in
    /// useful TeraOps/s (already accounting for instruction doubling of the
    /// AND formulation and for the WMMA interface efficiency).
    pub peak_tops: f64,
    /// Fraction of `peak_tops` the kernel configuration can reach on an
    /// otherwise idle, fully occupied device (tile padding × pipeline ×
    /// per-warp work efficiency, as computed by the kernel planner).
    pub config_efficiency: f64,
    /// Bytes moved across the device-memory interface.
    pub global_bytes: f64,
    /// Launch configuration.
    pub launch: LaunchConfig,
}

impl KernelProfile {
    /// Profile of a pure data-movement kernel (pack, transpose, memcpy).
    pub fn data_movement(kind: KernelKind, global_bytes: f64, launch: LaunchConfig) -> Self {
        KernelProfile {
            kind,
            useful_ops: 0.0,
            peak_tops: 0.0,
            config_efficiency: 1.0,
            global_bytes,
            launch,
        }
    }
}

/// Timing prediction for one kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelTimings {
    /// Time the compute units need, in seconds (zero for data movement).
    pub compute_time_s: f64,
    /// Time the memory system needs, in seconds.
    pub memory_time_s: f64,
    /// Predicted elapsed time including launch overhead, in seconds.
    pub elapsed_s: f64,
    /// Fraction of the elapsed time the compute units are busy.
    pub compute_utilization: f64,
    /// Fraction of the elapsed time the memory interface is busy.
    pub memory_utilization: f64,
    /// Achieved useful throughput in TeraOps/s.
    pub achieved_tops: f64,
}

impl KernelTimings {
    /// Whether the kernel is memory-bound (memory time exceeds compute
    /// time).
    pub fn is_memory_bound(&self) -> bool {
        self.memory_time_s > self.compute_time_s
    }
}

/// The analytic execution model for one device.
#[derive(Clone, Debug)]
pub struct ExecutionModel {
    spec: DeviceSpec,
    memory: MemoryModel,
}

impl ExecutionModel {
    /// Creates the execution model for a device.
    pub fn new(spec: DeviceSpec) -> Self {
        let memory = MemoryModel::new(spec.clone());
        ExecutionModel { spec, memory }
    }

    /// The device specification this model was built from.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Occupancy factor: how close the launch comes to filling the device.
    ///
    /// Two effects are combined: (1) a launch needs roughly
    /// [`WARPS_PER_CU_FOR_FULL_THROUGHPUT`] resident warps per compute unit
    /// to hide instruction latency, and (2) the final wave of blocks may
    /// occupy only part of the device (wave quantisation).
    pub fn occupancy(&self, launch: LaunchConfig) -> f64 {
        if launch.blocks == 0 || launch.threads_per_block == 0 {
            return 0.0;
        }
        let cus = self.spec.compute_units as f64;
        let warps_per_block =
            (launch.threads_per_block as f64 / self.spec.warp_size as f64).max(1.0);
        let total_warps = launch.blocks as f64 * warps_per_block;
        let latency_hiding = total_warps / (cus * WARPS_PER_CU_FOR_FULL_THROUGHPUT);
        if latency_hiding < 1.0 {
            // Not enough resident warps to hide instruction latency.
            return latency_hiding;
        }
        // Device is full; the only remaining loss is wave quantisation —
        // the last, partially filled wave of blocks leaves some compute
        // units idle.  Blocks do not finish in lockstep, so the tail wave
        // overlaps with the previous one; model it as costing half a wave.
        let blocks = launch.blocks as f64;
        let full_waves = (blocks / cus).floor();
        let has_tail = blocks > full_waves * cus;
        let effective_waves = if has_tail {
            full_waves + 0.5
        } else {
            full_waves
        };
        (blocks / (effective_waves * cus)).min(1.0)
    }

    /// Predicts the timing of one kernel launch.
    pub fn time(&self, profile: &KernelProfile) -> KernelTimings {
        let memory_time_s = if profile.global_bytes > 0.0 {
            self.memory.streaming_time_s(profile.global_bytes)
        } else {
            0.0
        };

        let compute_time_s = if profile.kind.is_compute() && profile.useful_ops > 0.0 {
            let occupancy = self.occupancy(profile.launch).max(1e-3);
            let sustained =
                profile.peak_tops * 1e12 * profile.config_efficiency.clamp(0.0, 1.0) * occupancy;
            profile.useful_ops / sustained.max(1.0)
        } else {
            0.0
        };

        // Compute and memory overlap; the kernel takes the longer of the
        // two plus the launch overhead.
        let busy = compute_time_s.max(memory_time_s);
        let elapsed_s = busy + LAUNCH_OVERHEAD_S;
        let achieved_tops = if elapsed_s > 0.0 {
            profile.useful_ops / elapsed_s / 1e12
        } else {
            0.0
        };

        KernelTimings {
            compute_time_s,
            memory_time_s,
            elapsed_s,
            compute_utilization: if elapsed_s > 0.0 {
                compute_time_s / elapsed_s
            } else {
                0.0
            },
            memory_utilization: if elapsed_s > 0.0 {
                memory_time_s / elapsed_s
            } else {
                0.0
            },
            achieved_tops,
        }
    }

    /// Convenience: predicted elapsed time of a sequence of kernels run
    /// back-to-back on the same stream.
    pub fn time_sequence(&self, profiles: &[KernelProfile]) -> f64 {
        profiles.iter().map(|p| self.time(p).elapsed_s).sum()
    }

    /// The memory model used by this execution model.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use proptest::prelude::*;

    fn big_launch(spec: &DeviceSpec) -> LaunchConfig {
        LaunchConfig::new(spec.compute_units * 64, 256)
    }

    #[test]
    fn compute_bound_large_gemm_reaches_calibrated_throughput() {
        let spec = Gpu::A100.spec();
        let model = ExecutionModel::new(spec.clone());
        let ops = 8.0 * 8192f64.powi(3);
        let profile = KernelProfile {
            kind: KernelKind::GemmF16,
            useful_ops: ops,
            peak_tops: spec.f16_tensor_measured,
            config_efficiency: spec.gemm_efficiency_f16,
            global_bytes: 3.0 * 8192.0 * 8192.0 * 4.0,
            launch: big_launch(&spec),
        };
        let t = model.time(&profile);
        assert!(!t.is_memory_bound());
        // Achieved throughput within 5% of the Table III value (173 TOPs/s).
        assert!(
            (t.achieved_tops - 173.0).abs() / 173.0 < 0.05,
            "{}",
            t.achieved_tops
        );
    }

    #[test]
    fn small_gemm_is_memory_bound() {
        let spec = Gpu::Gh200.spec();
        let model = ExecutionModel::new(spec.clone());
        // The paper's "float16 small" roofline point: 256×1024×1024×64.
        let shape = tcbf_types::GemmShape::batched(256, 1024, 1024, 64);
        let profile = KernelProfile {
            kind: KernelKind::GemmF16,
            useful_ops: shape.complex_ops() as f64,
            peak_tops: spec.f16_tensor_measured,
            config_efficiency: spec.gemm_efficiency_f16,
            global_bytes: shape.io_bytes(16) as f64,
            launch: big_launch(&spec),
        };
        let t = model.time(&profile);
        assert!(t.is_memory_bound());
        assert!(t.achieved_tops < spec.f16_tensor_measured * 0.5);
    }

    #[test]
    fn occupancy_ramps_with_block_count() {
        let spec = Gpu::Mi300x.spec();
        let model = ExecutionModel::new(spec.clone());
        let small = model.occupancy(LaunchConfig::new(8, 256));
        let medium = model.occupancy(LaunchConfig::new(spec.compute_units, 256));
        let large = model.occupancy(LaunchConfig::new(spec.compute_units * 32, 256));
        assert!(small < medium);
        assert!(medium <= large);
        assert!(large <= 1.0);
        assert_eq!(model.occupancy(LaunchConfig::new(0, 256)), 0.0);
    }

    #[test]
    fn low_occupancy_slows_execution() {
        let spec = Gpu::A100.spec();
        let model = ExecutionModel::new(spec.clone());
        let ops = 8.0 * 1024f64.powi(3);
        let mk_profile = |blocks| KernelProfile {
            kind: KernelKind::GemmF16,
            useful_ops: ops,
            peak_tops: spec.f16_tensor_measured,
            config_efficiency: 1.0,
            global_bytes: 0.0,
            launch: LaunchConfig::new(blocks, 256),
        };
        let slow = model.time(&mk_profile(4));
        let fast = model.time(&mk_profile(4096));
        assert!(slow.elapsed_s > fast.elapsed_s);
    }

    #[test]
    fn data_movement_kernels_are_bandwidth_limited() {
        let spec = Gpu::A100.spec();
        let model = ExecutionModel::new(spec.clone());
        let bytes = 8e9;
        let profile = KernelProfile::data_movement(
            KernelKind::Transpose,
            bytes,
            LaunchConfig::new(2048, 256),
        );
        let t = model.time(&profile);
        let expected = bytes / (spec.mem_bandwidth_gbs * 1e9 * 0.85) + LAUNCH_OVERHEAD_S;
        assert!((t.elapsed_s - expected).abs() / expected < 1e-9);
        assert_eq!(t.compute_time_s, 0.0);
        assert!(t.is_memory_bound());
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let spec = Gpu::Gh200.spec();
        let model = ExecutionModel::new(spec.clone());
        let profile =
            KernelProfile::data_movement(KernelKind::Memcpy, 1024.0, LaunchConfig::new(1, 32));
        let t = model.time(&profile);
        assert!(t.elapsed_s >= LAUNCH_OVERHEAD_S);
        assert!(t.elapsed_s < 2.0 * LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn sequence_time_adds_up() {
        let spec = Gpu::Ad4000.spec();
        let model = ExecutionModel::new(spec.clone());
        let p = KernelProfile::data_movement(KernelKind::Pack, 1e6, LaunchConfig::new(64, 256));
        let single = model.time(&p).elapsed_s;
        let triple = model.time_sequence(&[p, p, p]);
        assert!((triple - 3.0 * single).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn occupancy_is_within_unit_interval(blocks in 0usize..100_000, tpb in 1usize..1025) {
            for gpu in [Gpu::A100, Gpu::Mi300x, Gpu::W7700] {
                let model = ExecutionModel::new(gpu.spec());
                let o = model.occupancy(LaunchConfig::new(blocks, tpb));
                prop_assert!((0.0..=1.0).contains(&o));
            }
        }

        #[test]
        fn more_efficient_configs_are_never_slower(
            eff_lo in 0.05f64..0.5, eff_delta in 0.0f64..0.5,
        ) {
            let spec = Gpu::A100.spec();
            let model = ExecutionModel::new(spec.clone());
            let mk = |eff| KernelProfile {
                kind: KernelKind::GemmF16,
                useful_ops: 1e12,
                peak_tops: spec.f16_tensor_measured,
                config_efficiency: eff,
                global_bytes: 1e9,
                launch: LaunchConfig::new(4096, 256),
            };
            let slow = model.time(&mk(eff_lo));
            let fast = model.time(&mk(eff_lo + eff_delta));
            prop_assert!(fast.elapsed_s <= slow.elapsed_s + 1e-12);
        }
    }
}
