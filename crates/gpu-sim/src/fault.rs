//! Deterministic fault injection for simulated device pools.
//!
//! Real multi-GPU deployments lose devices: ECC double-bit errors, Xid
//! resets, thermal throttling, a node draining for maintenance.  The paper's
//! pipelines assume every device survives the whole observation; the
//! fault-tolerance layers above this crate (`beamform` re-apportionment,
//! `tcbf-serve` quarantine and replay) need a way to *provoke* those losses
//! reproducibly so recovery can be tested bit-for-bit.
//!
//! A [`FaultPlan`] is a declarative list of faults — "device 2 dies
//! permanently after completing 5 blocks", "device 0 drops exactly one block
//! then recovers", "device 1 becomes an 8× straggler from block 10 on".
//! A [`FaultInjector`] arms a plan over a pool: before executing a block on
//! a device, callers ask [`FaultInjector::on_block`] for a
//! [`BlockVerdict`].  The injector is fully deterministic (per-device
//! attempt counters, no clocks, no ambient randomness) so a recovered run
//! is exactly reproducible, and [`FaultPlan::seeded`] derives a plan from a
//! `u64` seed with a splitmix64 hash for randomized-but-replayable testing.
//!
//! Faults are purely a *scheduling* concern: they never corrupt data.  A
//! device either executes a block exactly (possibly slower) or refuses it,
//! which is what keeps recovered output bit-identical to the no-fault
//! reference.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What a fault does to its device once it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device refuses exactly one block, then recovers.  Models a
    /// retryable launch failure (a spurious Xid, a watchdog preemption).
    Transient,
    /// The device is lost for good: every block from the trigger point on
    /// is refused.  Models a hardware failure or a drained node.
    Permanent,
    /// The device keeps producing correct output but every block from the
    /// trigger point on takes `factor`× as long.  Models thermal
    /// throttling; exercises straggler accounting without changing results.
    LatencySpike {
        /// Multiplier applied to the block's modelled elapsed time (> 1.0
        /// slows the device down).
        factor: f64,
    },
}

/// One fault in a [`FaultPlan`]: a device, a trigger point, and a kind.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Pool index of the device the fault applies to.
    pub device: usize,
    /// The fault triggers after the device has *completed* this many
    /// blocks; the next attempt is the first affected one.
    pub after_blocks: u64,
    /// What happens once the fault triggers.
    pub kind: FaultKind,
}

/// A declarative, serializable list of faults to inject into a pool.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults ever trigger).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a permanent loss of `device` after it completes `after_blocks`
    /// blocks.
    pub fn kill_device(self, device: usize, after_blocks: u64) -> Self {
        self.with(Fault {
            device,
            after_blocks,
            kind: FaultKind::Permanent,
        })
    }

    /// Adds a transient refusal: `device` drops exactly the block attempted
    /// after completing `after_blocks` blocks, then recovers.
    pub fn drop_block(self, device: usize, after_blocks: u64) -> Self {
        self.with(Fault {
            device,
            after_blocks,
            kind: FaultKind::Transient,
        })
    }

    /// Adds a latency spike: every block on `device` after the first
    /// `after_blocks` completed ones takes `factor`× as long.
    pub fn slow_device(self, device: usize, after_blocks: u64, factor: f64) -> Self {
        self.with(Fault {
            device,
            after_blocks,
            kind: FaultKind::LatencySpike { factor },
        })
    }

    /// Derives a reproducible plan from a seed.
    ///
    /// Each of the `devices` pool members independently draws (via a
    /// splitmix64 hash of the seed and its index) whether it faults within
    /// the first `horizon_blocks` blocks, at what point, and with which
    /// kind.  Roughly half the devices fault.  The same `(seed, devices,
    /// horizon_blocks)` triple always yields the same plan.
    ///
    /// Seeded plans are **survivable by construction**: should the hash
    /// happen to doom every device permanently, the last permanent fault
    /// is downgraded to a transient one, so a pool under a seeded plan
    /// can always finish its stream.
    pub fn seeded(seed: u64, devices: usize, horizon_blocks: u64) -> Self {
        let horizon = horizon_blocks.max(1);
        let mut plan = Self::new();
        for device in 0..devices {
            let h = splitmix64(seed ^ (device as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if !h.is_multiple_of(2) {
                continue;
            }
            let after_blocks = (h >> 8) % horizon;
            let kind = match (h >> 40) % 3 {
                0 => FaultKind::Transient,
                1 => FaultKind::Permanent,
                _ => FaultKind::LatencySpike {
                    factor: 2.0 + ((h >> 48) % 7) as f64,
                },
            };
            plan = plan.with(Fault {
                device,
                after_blocks,
                kind,
            });
        }
        let mut doomed = vec![false; devices];
        for fault in &plan.faults {
            if fault.kind == FaultKind::Permanent {
                doomed[fault.device] = true;
            }
        }
        if devices > 0 && doomed.iter().all(|&d| d) {
            if let Some(fault) = plan
                .faults
                .iter_mut()
                .rev()
                .find(|f| f.kind == FaultKind::Permanent)
            {
                fault.kind = FaultKind::Transient;
            }
        }
        plan
    }

    /// The faults in the plan, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A fault report attached to a refused block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceFault {
    /// Pool index of the faulted device.
    pub device: usize,
    /// True when the device is lost for good; false for a retryable,
    /// one-shot refusal.
    pub permanent: bool,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.permanent {
            write!(f, "device {} lost (permanent fault)", self.device)
        } else {
            write!(
                f,
                "device {} refused a block (transient fault)",
                self.device
            )
        }
    }
}

/// The injector's ruling on one block attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockVerdict {
    /// Execute the block normally.
    Proceed,
    /// Execute the block, but scale its modelled elapsed time by the given
    /// factor (a latency-spike fault is active on the device).
    Slow(f64),
    /// Refuse the block; the caller must reschedule it elsewhere (or retry,
    /// for a transient fault).
    Fail(DeviceFault),
}

/// Arms a [`FaultPlan`] over a pool of `devices` members.
///
/// The injector is the single source of truth for per-device attempt
/// counts and liveness.  It is safe to share behind an `Arc` and query from
/// parallel workers: all state is atomic, and the verdict for a given
/// attempt number on a given device is a pure function of the plan, so
/// concurrent callers cannot observe contradictory rulings for the same
/// attempt.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Blocks *attempted* per device (refused attempts count too).
    attempts: Vec<AtomicU64>,
    /// Set once a permanent fault triggers; dead devices stay dead.
    dead: Vec<AtomicBool>,
    /// One latch per plan fault; transient faults fire exactly once.
    fired: Vec<AtomicBool>,
}

impl FaultInjector {
    /// Arms `plan` over a pool of `devices` members.  Faults naming devices
    /// outside `0..devices` never trigger.
    pub fn new(plan: FaultPlan, devices: usize) -> Self {
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        Self {
            plan,
            attempts: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..devices).map(|_| AtomicBool::new(false)).collect(),
            fired,
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of pool members the injector was armed over.
    pub fn num_devices(&self) -> usize {
        self.attempts.len()
    }

    /// Rules on the next block attempt for `device`.
    ///
    /// Every call counts as one attempt.  Check order: a dead device always
    /// refuses; then permanent faults (which kill the device), then
    /// transient faults (which fire once), then latency spikes (which
    /// compound if several are active).
    pub fn on_block(&self, device: usize) -> BlockVerdict {
        if device >= self.attempts.len() {
            return BlockVerdict::Proceed;
        }
        if self.dead[device].load(Ordering::SeqCst) {
            return BlockVerdict::Fail(DeviceFault {
                device,
                permanent: true,
            });
        }
        let attempt = self.attempts[device].fetch_add(1, Ordering::SeqCst) + 1;
        let mut slow = 1.0f64;
        for (idx, fault) in self.plan.faults.iter().enumerate() {
            if fault.device != device || attempt <= fault.after_blocks {
                continue;
            }
            match fault.kind {
                FaultKind::Permanent => {
                    self.dead[device].store(true, Ordering::SeqCst);
                    return BlockVerdict::Fail(DeviceFault {
                        device,
                        permanent: true,
                    });
                }
                FaultKind::Transient => {
                    if !self.fired[idx].swap(true, Ordering::SeqCst) {
                        return BlockVerdict::Fail(DeviceFault {
                            device,
                            permanent: false,
                        });
                    }
                }
                FaultKind::LatencySpike { factor } => slow *= factor,
            }
        }
        if slow != 1.0 {
            BlockVerdict::Slow(slow)
        } else {
            BlockVerdict::Proceed
        }
    }

    /// True while `device` has not hit a permanent fault.
    pub fn is_alive(&self, device: usize) -> bool {
        device < self.dead.len() && !self.dead[device].load(Ordering::SeqCst)
    }

    /// Number of pool members still alive.
    pub fn live_devices(&self) -> usize {
        self.dead
            .iter()
            .filter(|d| !d.load(Ordering::SeqCst))
            .count()
    }

    /// Blocks attempted so far on `device` (including refused attempts).
    pub fn attempts(&self, device: usize) -> u64 {
        self.attempts
            .get(device)
            .map_or(0, |a| a.load(Ordering::SeqCst))
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("devices", &self.attempts.len())
            .field("live_devices", &self.live_devices())
            .finish()
    }
}

/// splitmix64: a tiny, high-quality 64-bit mixer.  Used here so seeded
/// plans and jittered schedules stay deterministic without pulling a PRNG
/// dependency into the simulator.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_proceeds() {
        let injector = FaultInjector::new(FaultPlan::new(), 2);
        for _ in 0..10 {
            assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
            assert_eq!(injector.on_block(1), BlockVerdict::Proceed);
        }
        assert_eq!(injector.live_devices(), 2);
        assert_eq!(injector.attempts(0), 10);
    }

    #[test]
    fn permanent_fault_kills_after_threshold_and_stays_dead() {
        let injector = FaultInjector::new(FaultPlan::new().kill_device(1, 3), 2);
        for _ in 0..3 {
            assert_eq!(injector.on_block(1), BlockVerdict::Proceed);
        }
        let verdict = injector.on_block(1);
        assert_eq!(
            verdict,
            BlockVerdict::Fail(DeviceFault {
                device: 1,
                permanent: true
            })
        );
        assert!(!injector.is_alive(1));
        assert_eq!(injector.live_devices(), 1);
        // Dead devices refuse everything, forever.
        for _ in 0..5 {
            assert!(matches!(injector.on_block(1), BlockVerdict::Fail(f) if f.permanent));
        }
        // The other device is unaffected.
        assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
    }

    #[test]
    fn transient_fault_fires_exactly_once() {
        let injector = FaultInjector::new(FaultPlan::new().drop_block(0, 2), 1);
        assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
        assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
        assert_eq!(
            injector.on_block(0),
            BlockVerdict::Fail(DeviceFault {
                device: 0,
                permanent: false
            })
        );
        assert!(injector.is_alive(0));
        for _ in 0..5 {
            assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
        }
    }

    #[test]
    fn latency_spike_slows_every_block_after_threshold() {
        let injector = FaultInjector::new(FaultPlan::new().slow_device(0, 1, 4.0), 1);
        assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
        for _ in 0..3 {
            assert_eq!(injector.on_block(0), BlockVerdict::Slow(4.0));
        }
        assert!(injector.is_alive(0));
    }

    #[test]
    fn stacked_latency_spikes_compound() {
        let plan = FaultPlan::new()
            .slow_device(0, 0, 2.0)
            .slow_device(0, 0, 3.0);
        let injector = FaultInjector::new(plan, 1);
        assert_eq!(injector.on_block(0), BlockVerdict::Slow(6.0));
    }

    #[test]
    fn out_of_range_faults_never_trigger() {
        let injector = FaultInjector::new(FaultPlan::new().kill_device(7, 0), 2);
        assert_eq!(injector.on_block(0), BlockVerdict::Proceed);
        assert_eq!(injector.on_block(7), BlockVerdict::Proceed);
        assert_eq!(injector.live_devices(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(42, 8, 100);
        let b = FaultPlan::seeded(42, 8, 100);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 8, 100);
        assert_ne!(a, c, "different seeds should give different plans");
        for fault in a.faults() {
            assert!(fault.device < 8);
            assert!(fault.after_blocks < 100);
        }
    }

    #[test]
    fn seeded_plans_always_leave_a_survivor() {
        for seed in 0..512u64 {
            for devices in 1..5usize {
                let plan = FaultPlan::seeded(seed, devices, 16);
                let mut doomed = vec![false; devices];
                for fault in plan.faults() {
                    if fault.kind == FaultKind::Permanent {
                        doomed[fault.device] = true;
                    }
                }
                assert!(
                    doomed.iter().any(|&d| !d),
                    "seed {seed} with {devices} devices permanently kills the whole pool"
                );
            }
        }
    }

    #[test]
    fn plan_builders_record_faults_in_order() {
        let plan = FaultPlan::new()
            .kill_device(1, 5)
            .drop_block(0, 2)
            .slow_device(2, 0, 8.0);
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(
            plan.faults()[0],
            Fault {
                device: 1,
                after_blocks: 5,
                kind: FaultKind::Permanent
            }
        );
        assert_eq!(
            plan.faults()[1],
            Fault {
                device: 0,
                after_blocks: 2,
                kind: FaultKind::Transient
            }
        );
        assert_eq!(
            plan.faults()[2],
            Fault {
                device: 2,
                after_blocks: 0,
                kind: FaultKind::LatencySpike { factor: 8.0 }
            }
        );
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
