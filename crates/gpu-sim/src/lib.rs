//! Software GPU substrate for the Tensor-Core Beamformer reproduction.
//!
//! The paper evaluates ccglib on seven NVIDIA and AMD GPUs.  This
//! environment has no GPU, so — following the substitution rule documented
//! in `DESIGN.md` — this crate provides the pieces of the GPU stack the
//! library and its evaluation actually depend on:
//!
//! * [`arch`] / [`device`] — a catalog of the seven evaluated devices
//!   (AD4000, A100, GH200, W7700, MI210, MI300X, MI300A) with their
//!   architectural features (tensor-core fragment support, async copies,
//!   XOR deprecation on Hopper, WMMA-vs-WGMMA interface efficiency),
//!   clocks, peak throughputs, memory bandwidth and power envelope.
//! * [`wmma`] — *functional* fragment-level matrix-multiply-accumulate:
//!   `mma_sync` for half-precision fragments and `bmma_sync` for 1-bit
//!   fragments with XOR or AND + popcount, executed bit-exactly on the CPU.
//!   These are the primitives the ccglib kernels are written against.
//! * [`exec`] — an analytic execution model: given a kernel profile
//!   (operations, bytes moved, launch configuration, tuning parameters) it
//!   predicts execution time the way a roofline-plus-occupancy model does.
//!   All timing numbers reported by the benchmark harness come from this
//!   model, calibrated against the paper's published peaks.
//! * [`memory`] — shared-memory capacity and asynchronous-copy pipeline
//!   modelling used by the execution model and by the kernel planner to
//!   reject invalid tuning configurations.
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]): permanent device loss, transient refusals and
//!   latency spikes, used by the fault-tolerance layers above to prove
//!   recovery stays bit-identical.
//! * [`pool`] — multi-device hosts: a [`DevicePool`] of simulated GPUs
//!   (heterogeneous mixes allowed) with the per-member peak throughputs the
//!   sharding layer weights work by.
//! * [`power`] — a simple utilisation-based power model sampled by the
//!   `pmt` crate to produce energy-efficiency numbers.
//! * [`roofline`] — roofline ceilings and attainable-performance queries
//!   used for Fig. 3.
//!
//! Functional correctness (the numbers in output matrices) never depends on
//! the performance model; the two are deliberately separated so tests can
//! validate them independently.

#![deny(missing_docs)]

pub mod arch;
pub mod device;
pub mod exec;
pub mod fault;
pub mod memory;
pub mod pool;
pub mod power;
pub mod roofline;
pub mod wmma;

pub use arch::{Architecture, BitOp, Vendor};
pub use device::{Device, DeviceSpec, Gpu};
pub use exec::{ExecutionModel, KernelKind, KernelProfile, KernelTimings, LaunchConfig};
pub use fault::{BlockVerdict, DeviceFault, Fault, FaultInjector, FaultKind, FaultPlan};
pub use memory::{MemoryModel, SharedMemoryPlan};
pub use pool::DevicePool;
pub use power::{PowerModel, PowerSample};
pub use roofline::{Roofline, RooflinePoint};
pub use wmma::{BitFragmentShape, FragmentShape};
