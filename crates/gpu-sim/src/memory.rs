//! Memory-hierarchy modelling: shared-memory capacity, data reuse and the
//! multi-stage asynchronous-copy pipeline of Section III-C.
//!
//! "To achieve good performance on tensor cores, it is of utmost importance
//! to ensure the data are efficiently reused throughout the GPU memory
//! hierarchy."  The kernels tile the GEMM per thread block; each block
//! loads an `m_block × k` slice of `A` and a `k × n_block` slice of `B`
//! through shared memory, so the global-memory traffic of the whole GEMM
//! shrinks by the tile sizes.  This module computes:
//!
//! * whether a tile configuration *fits* in shared memory (used by the
//!   planner and tuner to reject invalid configurations);
//! * how many bytes actually cross the device-memory interface for a tiled
//!   GEMM (used by the execution model to decide whether a kernel is
//!   memory-bound);
//! * how much of the copy latency a multi-stage buffer pipeline hides.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};
use tcbf_types::GemmShape;

/// Shared-memory footprint of one thread block for a given tile
/// configuration and input precision.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SharedMemoryPlan {
    /// Bytes for one stage of the `A` tile (complex: both planes).
    pub a_stage_bytes: usize,
    /// Bytes for one stage of the `B` tile.
    pub b_stage_bytes: usize,
    /// Number of pipeline stages (buffers).
    pub stages: usize,
}

impl SharedMemoryPlan {
    /// Computes the footprint for a block tile of `m_block × n_block`
    /// output elements, staged over `k_slice` elements of the reduction
    /// dimension at a time, with `stages` pipeline buffers and
    /// `input_bits_per_component` bits per real scalar.
    pub fn new(
        m_block: usize,
        n_block: usize,
        k_slice: usize,
        stages: usize,
        input_bits_per_component: usize,
    ) -> Self {
        // Complex data: two planes (real + imaginary).
        let bits_per_element = 2 * input_bits_per_component;
        let a_stage_bytes = (m_block * k_slice * bits_per_element).div_ceil(8);
        let b_stage_bytes = (n_block * k_slice * bits_per_element).div_ceil(8);
        SharedMemoryPlan {
            a_stage_bytes,
            b_stage_bytes,
            stages,
        }
    }

    /// Total shared-memory bytes required by the block.
    pub fn total_bytes(&self) -> usize {
        (self.a_stage_bytes + self.b_stage_bytes) * self.stages
    }

    /// Whether the plan fits in the device's per-block shared memory.
    pub fn fits(&self, spec: &DeviceSpec) -> bool {
        self.total_bytes() <= spec.shared_mem_per_block_bytes()
    }
}

/// Device-memory behaviour model.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    spec: DeviceSpec,
}

impl MemoryModel {
    /// Creates a memory model for a device.
    pub fn new(spec: DeviceSpec) -> Self {
        MemoryModel { spec }
    }

    /// Fraction of the theoretical bandwidth that streaming kernels
    /// achieve in practice.  The packing and transpose kernels of ccglib
    /// are "bound by memory bandwidth as they only move data around"; a
    /// well-written streaming kernel typically sustains 80–90 % of the
    /// theoretical number.
    pub const ACHIEVABLE_BANDWIDTH_FRACTION: f64 = 0.85;

    /// Achievable device-memory bandwidth in bytes per second.
    pub fn achievable_bandwidth_bytes_per_s(&self) -> f64 {
        self.spec.mem_bandwidth_gbs * 1e9 * Self::ACHIEVABLE_BANDWIDTH_FRACTION
    }

    /// Bytes that cross the device-memory interface for a tiled complex
    /// GEMM.
    ///
    /// Each thread block re-reads the `A` and `B` slices for its tile, but
    /// the blocks of one *wave* (roughly one block per compute unit) run
    /// concurrently and share those slices through the L2 cache, so the
    /// effective reuse tile seen by device memory is the block tile scaled
    /// by the wave extent (√CU along each output dimension).  The output
    /// (complex float32) is written once.
    pub fn gemm_global_bytes(
        &self,
        shape: &GemmShape,
        m_block: usize,
        n_block: usize,
        input_bits_per_component: usize,
    ) -> f64 {
        let bytes_per_input = 2.0 * input_bits_per_component as f64 / 8.0;
        let wave_extent = (self.spec.compute_units as f64).sqrt();
        let m_reuse = ((m_block as f64 * wave_extent) as usize)
            .max(m_block)
            .min(shape.m.max(1));
        let n_reuse = ((n_block as f64 * wave_extent) as usize)
            .max(n_block)
            .min(shape.n.max(1));
        let n_tiles = shape.n.div_ceil(n_reuse) as f64;
        let m_tiles = shape.m.div_ceil(m_reuse) as f64;
        let batch = shape.batch as f64;
        let a_bytes = batch * (shape.m * shape.k) as f64 * bytes_per_input * n_tiles;
        let b_bytes = batch * (shape.k * shape.n) as f64 * bytes_per_input * m_tiles;
        let c_bytes = batch * (shape.m * shape.n) as f64 * 8.0;
        a_bytes + b_bytes + c_bytes
    }

    /// Minimum bytes for a GEMM when every operand is touched exactly once
    /// (the denominator of the roofline arithmetic intensity).
    pub fn gemm_minimum_bytes(&self, shape: &GemmShape, input_bits_per_component: usize) -> f64 {
        shape.io_bytes(input_bits_per_component) as f64
    }

    /// Time in seconds to stream `bytes` through device memory.
    pub fn streaming_time_s(&self, bytes: f64) -> f64 {
        bytes / self.achievable_bandwidth_bytes_per_s()
    }

    /// Fraction of the global→shared copy latency hidden by a pipeline
    /// with the given number of stages.
    ///
    /// On NVIDIA Ampere and later, asynchronous copies let computation on
    /// one buffer overlap the fill of another: with a single buffer nothing
    /// overlaps, with two buffers roughly half the copy latency is hidden,
    /// and deeper pipelines approach full overlap.  AMD devices have no
    /// `cp.async` equivalent; ccglib forces a single buffer there and the
    /// hardware's wide memory system is modelled as hiding half the
    /// latency through regular latency hiding across warps.
    pub fn copy_overlap_fraction(&self, stages: usize) -> f64 {
        if self.spec.arch.supports_async_copies() {
            match stages {
                0 | 1 => 0.0,
                s => 1.0 - 1.0 / s as f64,
            }
        } else {
            0.5
        }
    }

    /// Effective number of pipeline stages after applying the device
    /// constraints (AMD devices are forced to a single stage because they
    /// lack asynchronous copies).
    pub fn effective_stages(&self, requested: usize) -> usize {
        if self.spec.arch.supports_async_copies() {
            requested.max(1)
        } else {
            1
        }
    }

    /// Whether a buffer of `bytes` fits in device memory.
    pub fn fits_in_device_memory(&self, bytes: u128) -> bool {
        bytes <= (self.spec.mem_size_gib * 1024.0 * 1024.0 * 1024.0) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use proptest::prelude::*;

    #[test]
    fn shared_memory_plan_sizes() {
        // f16 complex: 4 bytes per element.
        let plan = SharedMemoryPlan::new(256, 32, 16, 2, 16);
        assert_eq!(plan.a_stage_bytes, 256 * 16 * 4);
        assert_eq!(plan.b_stage_bytes, 32 * 16 * 4);
        assert_eq!(plan.total_bytes(), 2 * (256 * 16 * 4 + 32 * 16 * 4));
        // 1-bit complex: 2 bits per element.
        let plan1 = SharedMemoryPlan::new(128, 64, 256, 4, 1);
        assert_eq!(plan1.a_stage_bytes, 128 * 256 * 2 / 8);
        assert_eq!(plan1.b_stage_bytes, 64 * 256 * 2 / 8);
    }

    #[test]
    fn fits_respects_device_limit() {
        let a100 = Gpu::A100.spec();
        let w7700 = Gpu::W7700.spec();
        // A big double-buffered f16 tile fits on the A100 (164 KiB) but not
        // within the 64 KiB LDS of the W7700.
        let plan = SharedMemoryPlan::new(256, 128, 32, 2, 16);
        assert!(plan.fits(&a100));
        assert!(!plan.fits(&w7700));
    }

    #[test]
    fn gemm_traffic_shrinks_with_bigger_tiles() {
        let model = MemoryModel::new(Gpu::A100.spec());
        let shape = GemmShape::new(8192, 8192, 8192);
        let small = model.gemm_global_bytes(&shape, 64, 64, 16);
        let large = model.gemm_global_bytes(&shape, 256, 128, 16);
        assert!(large < small);
        // Never below the touch-once minimum.
        assert!(large >= model.gemm_minimum_bytes(&shape, 16));
    }

    #[test]
    fn copy_overlap_behaviour() {
        let nv = MemoryModel::new(Gpu::A100.spec());
        assert_eq!(nv.copy_overlap_fraction(1), 0.0);
        assert_eq!(nv.copy_overlap_fraction(2), 0.5);
        assert!(nv.copy_overlap_fraction(4) > nv.copy_overlap_fraction(2));
        assert_eq!(nv.effective_stages(4), 4);
        let amd = MemoryModel::new(Gpu::Mi300x.spec());
        assert_eq!(amd.effective_stages(4), 1);
        assert_eq!(amd.copy_overlap_fraction(1), 0.5);
    }

    #[test]
    fn streaming_time_matches_bandwidth() {
        let model = MemoryModel::new(Gpu::Gh200.spec());
        let one_gb = 1e9;
        let t = model.streaming_time_s(one_gb);
        let expected = 1.0 / (4000.0 * 0.85);
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn device_memory_capacity() {
        let model = MemoryModel::new(Gpu::W7700.spec());
        assert!(model.fits_in_device_memory(8 * 1024 * 1024 * 1024));
        assert!(!model.fits_in_device_memory(64 * 1024 * 1024 * 1024));
    }

    proptest! {
        #[test]
        fn traffic_is_monotone_in_tile_size(
            mb_exp in 5usize..9, nb_exp in 5usize..9,
        ) {
            let model = MemoryModel::new(Gpu::A100.spec());
            let shape = GemmShape::new(4096, 4096, 1024);
            let mb = 1 << mb_exp;
            let nb = 1 << nb_exp;
            let t = model.gemm_global_bytes(&shape, mb, nb, 16);
            let t_bigger = model.gemm_global_bytes(&shape, mb * 2, nb * 2, 16);
            prop_assert!(t_bigger <= t);
            prop_assert!(t >= model.gemm_minimum_bytes(&shape, 16));
        }

        #[test]
        fn overlap_fraction_is_bounded(stages in 0usize..16) {
            for gpu in Gpu::ALL {
                let model = MemoryModel::new(gpu.spec());
                let f = model.copy_overlap_fraction(stages);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }
    }
}
