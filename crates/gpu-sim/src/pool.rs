//! Multi-device pools.
//!
//! The paper's scale targets (LOFAR's central processor, volumetric
//! ultrasound) need more than one accelerator; a [`DevicePool`] models a
//! host with several simulated GPUs attached.  Pools may be heterogeneous —
//! any mix of catalog entries, e.g. an A100 next to an MI300X — and expose
//! the per-member peak throughputs the sharding layer uses to weight work
//! by capacity.

use crate::device::{Device, DeviceSpec, Gpu};
use std::fmt;

/// A pool of simulated GPUs attached to one host.
///
/// Pools are never empty, are cheap to clone, and may mix vendors and
/// generations freely.  Member order is significant: shard plans address
/// devices by their index in the pool.
///
/// ```
/// use gpu_sim::{DevicePool, Gpu};
///
/// let pool = DevicePool::from_gpus(&[Gpu::A100, Gpu::Mi300x]);
/// assert_eq!(pool.len(), 2);
/// assert!(pool.is_heterogeneous());
/// assert!(pool.total_f16_peak_tops() > Gpu::A100.spec().f16_peak_tops());
/// ```
#[derive(Clone, Debug)]
pub struct DevicePool {
    devices: Vec<Device>,
}

impl DevicePool {
    /// Creates a pool from device instances.
    ///
    /// # Panics
    /// Panics if `devices` is empty: a pool models at least one attached
    /// accelerator.
    pub fn new(devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "a device pool cannot be empty");
        DevicePool { devices }
    }

    /// Creates a pool of catalog devices, one per entry of `gpus` (repeats
    /// allowed: `&[Gpu::A100, Gpu::A100]` is a dual-A100 host).
    ///
    /// # Panics
    /// Panics if `gpus` is empty.
    pub fn from_gpus(gpus: &[Gpu]) -> Self {
        Self::new(gpus.iter().map(|g| g.device()).collect())
    }

    /// Creates a homogeneous pool of `count` identical devices.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn homogeneous(gpu: Gpu, count: usize) -> Self {
        Self::new((0..count).map(|_| gpu.device()).collect())
    }

    /// Number of devices in the pool.
    #[allow(clippy::len_without_is_empty)] // pools are never empty
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// The pool members, in index order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The device at `index`.
    pub fn get(&self, index: usize) -> &Device {
        &self.devices[index]
    }

    /// Iterates over the members in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, Device> {
        self.devices.iter()
    }

    /// The catalog identifiers of the members, in index order.
    pub fn gpus(&self) -> Vec<Gpu> {
        self.devices.iter().map(|d| d.gpu()).collect()
    }

    /// Whether the pool mixes different catalog entries.
    pub fn is_heterogeneous(&self) -> bool {
        self.devices
            .iter()
            .any(|d| d.gpu() != self.devices[0].gpu())
    }

    /// Whether every member supports 1-bit tensor-core operations.
    pub fn supports_int1(&self) -> bool {
        self.devices.iter().all(|d| d.spec().supports_int1())
    }

    /// Per-member measured float16 tensor-core peaks in TOP/s — a
    /// convenient capacity summary of the pool.  (The sharding layer
    /// computes its own weights from each member's peak at the *session
    /// precision*, which for 1-bit mode differs from these values.)
    pub fn f16_capacity_weights(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| d.spec().f16_peak_tops())
            .collect()
    }

    /// Sum of the members' measured float16 peaks in TOP/s: the theoretical
    /// aggregate ceiling of the pool.
    pub fn total_f16_peak_tops(&self) -> f64 {
        self.f16_capacity_weights().iter().sum()
    }

    /// The specifications of the members, in index order.
    pub fn specs(&self) -> Vec<DeviceSpec> {
        self.devices.iter().map(|d| d.spec().clone()).collect()
    }
}

impl fmt::Display for DevicePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.devices.iter().map(|d| d.spec().gpu.name()).collect();
        write!(f, "pool[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_pool_replicates_one_device() {
        let pool = DevicePool::homogeneous(Gpu::A100, 4);
        assert_eq!(pool.len(), 4);
        assert!(!pool.is_heterogeneous());
        assert!(pool.supports_int1());
        assert_eq!(
            pool.total_f16_peak_tops(),
            4.0 * Gpu::A100.spec().f16_peak_tops()
        );
        assert_eq!(pool.gpus(), vec![Gpu::A100; 4]);
    }

    #[test]
    fn heterogeneous_pool_mixes_vendors() {
        let pool = DevicePool::from_gpus(&[Gpu::Gh200, Gpu::Mi300x, Gpu::A100]);
        assert!(pool.is_heterogeneous());
        // The AMD member has no 1-bit support, so the pool does not either.
        assert!(!pool.supports_int1());
        let weights = pool.f16_capacity_weights();
        assert_eq!(weights.len(), 3);
        assert_eq!(weights[1], Gpu::Mi300x.spec().f16_peak_tops());
        assert_eq!(pool.get(2).gpu(), Gpu::A100);
        assert!(pool.to_string().contains("MI300X"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pools_are_rejected() {
        DevicePool::new(Vec::new());
    }
}
