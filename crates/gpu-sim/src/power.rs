//! Power and energy model of the simulated devices.
//!
//! The paper reports energy efficiency (TeraOps/J) next to every
//! performance number; power is measured with the Power Measurement
//! Toolkit through NVML / rocm-smi.  The simulated equivalent models board
//! power as an idle floor plus a dynamic component proportional to how busy
//! the kernel keeps the compute units and the memory interface, anchored to
//! the average GEMM power the paper reports in Table III.

use crate::device::DeviceSpec;
use crate::exec::{KernelKind, KernelProfile, KernelTimings};
use serde::{Deserialize, Serialize};

/// One instantaneous power reading, as a sampling power meter (NVML,
/// rocm-smi) would return it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time of the sample relative to the start of the measurement, in
    /// seconds.
    pub timestamp_s: f64,
    /// Instantaneous board power in watts.
    pub watts: f64,
}

/// Utilisation-based board power model for one device.
#[derive(Clone, Debug)]
pub struct PowerModel {
    spec: DeviceSpec,
}

impl PowerModel {
    /// Creates the power model for a device.
    pub fn new(spec: DeviceSpec) -> Self {
        PowerModel { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Idle board power in watts.
    pub fn idle_watts(&self) -> f64 {
        self.spec.idle_watts
    }

    /// Board power at full utilisation for a given kernel kind, in watts.
    ///
    /// GEMM kernels use the calibration points from Table III of the paper;
    /// data-movement kernels draw roughly 60 % of TDP, which is typical for
    /// bandwidth-bound streaming kernels.
    pub fn full_load_watts(&self, kind: KernelKind) -> f64 {
        match kind {
            KernelKind::GemmF16 => self.spec.gemm_power_f16_watts,
            KernelKind::GemmInt1 => self
                .spec
                .gemm_power_int1_watts
                .unwrap_or(self.spec.gemm_power_f16_watts),
            KernelKind::GemmF32 => (0.9 * self.spec.tdp_watts).max(self.spec.idle_watts),
            KernelKind::Pack | KernelKind::Transpose | KernelKind::Memcpy => {
                (0.6 * self.spec.tdp_watts).max(self.spec.idle_watts)
            }
        }
    }

    /// Average board power during a kernel with the given timings.
    ///
    /// The dynamic component scales with the busiest of the two resources
    /// (compute or memory); a kernel that keeps the device only half busy
    /// draws roughly half the dynamic power.
    pub fn average_watts(&self, kind: KernelKind, timings: &KernelTimings) -> f64 {
        let activity = timings
            .compute_utilization
            .max(timings.memory_utilization)
            .clamp(0.0, 1.0);
        let full = self.full_load_watts(kind);
        self.spec.idle_watts + (full - self.spec.idle_watts) * activity
    }

    /// Energy in joules consumed by a kernel with the given timings.
    pub fn energy_joules(&self, kind: KernelKind, timings: &KernelTimings) -> f64 {
        self.average_watts(kind, timings) * timings.elapsed_s
    }

    /// Energy efficiency in TeraOps per joule for a kernel launch.
    pub fn tops_per_joule(&self, profile: &KernelProfile, timings: &KernelTimings) -> f64 {
        let joules = self.energy_joules(profile.kind, timings);
        if joules <= 0.0 {
            return 0.0;
        }
        profile.useful_ops / joules / 1e12
    }

    /// Generates evenly spaced power samples over a kernel's execution, as
    /// the PMT sampling thread would observe them.
    pub fn sample_kernel(
        &self,
        kind: KernelKind,
        timings: &KernelTimings,
        interval_s: f64,
    ) -> Vec<PowerSample> {
        assert!(interval_s > 0.0, "sampling interval must be positive");
        let watts = self.average_watts(kind, timings);
        let count = (timings.elapsed_s / interval_s).ceil().max(1.0) as usize;
        (0..=count)
            .map(|i| PowerSample {
                timestamp_s: i as f64 * interval_s,
                watts,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use crate::exec::{ExecutionModel, LaunchConfig};
    use proptest::prelude::*;

    fn full_util_timings() -> KernelTimings {
        KernelTimings {
            compute_time_s: 1.0,
            memory_time_s: 0.2,
            elapsed_s: 1.0,
            compute_utilization: 1.0,
            memory_utilization: 0.2,
            achieved_tops: 100.0,
        }
    }

    #[test]
    fn full_load_power_matches_table3_calibration() {
        let a100 = PowerModel::new(Gpu::A100.spec());
        assert_eq!(a100.full_load_watts(KernelKind::GemmF16), 216.0);
        assert_eq!(a100.full_load_watts(KernelKind::GemmInt1), 250.0);
        let mi210 = PowerModel::new(Gpu::Mi210.spec());
        // AMD devices have no 1-bit mode: falls back to the f16 point.
        assert_eq!(mi210.full_load_watts(KernelKind::GemmInt1), 113.0);
    }

    #[test]
    fn average_power_interpolates_with_activity() {
        let model = PowerModel::new(Gpu::Gh200.spec());
        let idle = KernelTimings {
            compute_time_s: 0.0,
            memory_time_s: 0.0,
            elapsed_s: 1.0,
            compute_utilization: 0.0,
            memory_utilization: 0.0,
            achieved_tops: 0.0,
        };
        assert_eq!(
            model.average_watts(KernelKind::GemmF16, &idle),
            model.idle_watts()
        );
        let busy = full_util_timings();
        assert_eq!(model.average_watts(KernelKind::GemmF16, &busy), 419.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let model = PowerModel::new(Gpu::Ad4000.spec());
        let t = full_util_timings();
        let e = model.energy_joules(KernelKind::GemmF16, &t);
        assert!((e - 133.0).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_efficiency_close_to_table3() {
        // Run the calibrated large-GEMM profile through the execution and
        // power models and compare TOPs/J to Table III.
        for (gpu, expect) in [(Gpu::A100, 0.8), (Gpu::Mi210, 1.3), (Gpu::Mi300x, 0.9)] {
            let spec = gpu.spec();
            let exec = ExecutionModel::new(spec.clone());
            let power = PowerModel::new(spec.clone());
            let ops = 8.0 * 8192f64.powi(3);
            let profile = KernelProfile {
                kind: KernelKind::GemmF16,
                useful_ops: ops,
                peak_tops: spec.f16_tensor_measured,
                config_efficiency: spec.gemm_efficiency_f16,
                global_bytes: 3.0 * 8192.0 * 8192.0 * 4.0,
                launch: LaunchConfig::new(spec.compute_units * 64, 256),
            };
            let timings = exec.time(&profile);
            let tpj = power.tops_per_joule(&profile, &timings);
            assert!(
                (tpj - expect).abs() / expect < 0.15,
                "{}: {tpj} vs {expect}",
                spec.name
            );
        }
    }

    #[test]
    fn sampling_produces_monotonic_timestamps() {
        let model = PowerModel::new(Gpu::W7700.spec());
        let samples = model.sample_kernel(KernelKind::Transpose, &full_util_timings(), 0.1);
        assert!(samples.len() >= 11);
        for pair in samples.windows(2) {
            assert!(pair[1].timestamp_s > pair[0].timestamp_s);
        }
    }

    proptest! {
        #[test]
        fn power_is_between_idle_and_full_load(cu in 0.0f64..1.0, mu in 0.0f64..1.0) {
            for gpu in Gpu::ALL {
                let model = PowerModel::new(gpu.spec());
                let t = KernelTimings {
                    compute_time_s: cu,
                    memory_time_s: mu,
                    elapsed_s: 1.0,
                    compute_utilization: cu,
                    memory_utilization: mu,
                    achieved_tops: 0.0,
                };
                for kind in [KernelKind::GemmF16, KernelKind::GemmInt1, KernelKind::Pack] {
                    let w = model.average_watts(kind, &t);
                    prop_assert!(w >= model.idle_watts() - 1e-9);
                    prop_assert!(w <= model.spec().tdp_watts.max(model.full_load_watts(kind)) + 1e-9);
                }
            }
        }
    }
}
