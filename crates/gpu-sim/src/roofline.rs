//! Roofline model (Fig. 3 of the paper).
//!
//! The roofline plots attainable performance against arithmetic intensity
//! (useful operations per byte of device-memory traffic).  The ceiling is
//! the minimum of the memory roof (bandwidth × intensity) and the compute
//! roof (the measured peak throughput of the execution units in use).  For
//! each GPU the paper draws three compute ceilings: the float16 tensor
//! cores, the 1-bit tensor cores (NVIDIA only) and the regular float32
//! cores for comparison.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};
use tcbf_types::GemmShape;

/// A labelled compute ceiling of the roofline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ceiling {
    /// Human-readable label ("float16 tensor", "int1 tensor", "float32").
    pub label: String,
    /// Peak throughput in TeraOps/s.
    pub peak_tops: f64,
}

/// A measured or predicted point in roofline space.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label of the point ("float16 small", "int1 big", …).
    pub label: String,
    /// Arithmetic intensity in operations per byte.
    pub arithmetic_intensity: f64,
    /// Achieved performance in TeraOps/s.
    pub achieved_tops: f64,
}

/// Roofline ceilings for one device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Device name.
    pub device: String,
    /// Theoretical memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Compute ceilings, ordered from highest to lowest.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Builds the roofline for a device: float16 tensor ceiling, 1-bit
    /// tensor ceiling (NVIDIA only, using the operand ccglib would select),
    /// and the float32 regular-core ceiling.
    pub fn for_device(spec: &DeviceSpec) -> Roofline {
        let mut ceilings = vec![Ceiling {
            label: "float16 tensor".to_string(),
            peak_tops: spec.f16_peak_tops(),
        }];
        if let Some(peak) = spec.int1_best_useful_peak_tops() {
            ceilings.push(Ceiling {
                label: "int1 tensor".to_string(),
                peak_tops: peak,
            });
        }
        ceilings.push(Ceiling {
            label: "float32".to_string(),
            peak_tops: spec.fp32_peak_tops(),
        });
        ceilings.sort_by(|a, b| b.peak_tops.total_cmp(&a.peak_tops));
        Roofline {
            device: spec.gpu.name().to_string(),
            mem_bandwidth_gbs: spec.mem_bandwidth_gbs,
            ceilings,
        }
    }

    /// The memory-bound performance limit at a given arithmetic intensity,
    /// in TeraOps/s.
    pub fn memory_roof_tops(&self, arithmetic_intensity: f64) -> f64 {
        self.mem_bandwidth_gbs * 1e9 * arithmetic_intensity / 1e12
    }

    /// Attainable performance under a named ceiling at a given intensity.
    pub fn attainable_tops(&self, ceiling_label: &str, arithmetic_intensity: f64) -> Option<f64> {
        self.ceilings
            .iter()
            .find(|c| c.label == ceiling_label)
            .map(|c| c.peak_tops.min(self.memory_roof_tops(arithmetic_intensity)))
    }

    /// The intensity at which a ceiling transitions from memory- to
    /// compute-bound (the "ridge point").
    pub fn ridge_point(&self, ceiling_label: &str) -> Option<f64> {
        self.ceilings
            .iter()
            .find(|c| c.label == ceiling_label)
            .map(|c| c.peak_tops * 1e12 / (self.mem_bandwidth_gbs * 1e9))
    }

    /// Whether a GEMM of the given shape and precision is memory-bound
    /// under a ceiling.
    pub fn is_memory_bound(
        &self,
        ceiling_label: &str,
        shape: &GemmShape,
        input_bits_per_component: usize,
    ) -> Option<bool> {
        let ai = shape.arithmetic_intensity(input_bits_per_component);
        self.ridge_point(ceiling_label).map(|ridge| ai < ridge)
    }
}

/// The four roofline evaluation shapes used in Section IV-B of the paper.
pub mod eval_shapes {
    use tcbf_types::GemmShape;

    /// float16, small: batch 256, 1024×1024×64 — memory bound everywhere.
    pub fn f16_small() -> GemmShape {
        GemmShape::batched(256, 1024, 1024, 64)
    }

    /// float16, big: 8192×8192×8192 — compute bound everywhere.
    pub fn f16_big() -> GemmShape {
        GemmShape::new(8192, 8192, 8192)
    }

    /// int1, small: batch 256, 1024×1024×256.
    pub fn int1_small() -> GemmShape {
        GemmShape::batched(256, 1024, 1024, 256)
    }

    /// int1, big: 32768×8192×524288.
    pub fn int1_big() -> GemmShape {
        GemmShape::new(32_768, 8192, 524_288)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;

    #[test]
    fn ceilings_per_vendor() {
        let nv = Roofline::for_device(&Gpu::A100.spec());
        assert_eq!(nv.ceilings.len(), 3);
        assert_eq!(nv.ceilings[0].label, "int1 tensor");
        let amd = Roofline::for_device(&Gpu::Mi300x.spec());
        assert_eq!(amd.ceilings.len(), 2);
        assert_eq!(amd.ceilings[0].label, "float16 tensor");
        assert_eq!(amd.ceilings[1].label, "float32");
    }

    #[test]
    fn tensor_ceiling_above_fp32_ceiling() {
        for gpu in Gpu::ALL {
            let roofline = Roofline::for_device(&gpu.spec());
            let f16 = roofline.attainable_tops("float16 tensor", 1e9).unwrap();
            let f32c = roofline.attainable_tops("float32", 1e9).unwrap();
            assert!(f16 > f32c, "{gpu}");
        }
    }

    #[test]
    fn small_shapes_are_memory_bound_big_shapes_compute_bound() {
        // "For all GPUs, the small matrix size is memory-bound … the larger
        // matrix size is compute bound."
        for gpu in Gpu::ALL {
            let roofline = Roofline::for_device(&gpu.spec());
            assert_eq!(
                roofline.is_memory_bound("float16 tensor", &eval_shapes::f16_small(), 16),
                Some(true),
                "{gpu} small should be memory bound"
            );
            assert_eq!(
                roofline.is_memory_bound("float16 tensor", &eval_shapes::f16_big(), 16),
                Some(false),
                "{gpu} big should be compute bound"
            );
        }
        for gpu in Gpu::NVIDIA {
            let roofline = Roofline::for_device(&gpu.spec());
            assert_eq!(
                roofline.is_memory_bound("int1 tensor", &eval_shapes::int1_small(), 1),
                Some(true)
            );
            assert_eq!(
                roofline.is_memory_bound("int1 tensor", &eval_shapes::int1_big(), 1),
                Some(false)
            );
        }
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let roofline = Roofline::for_device(&Gpu::Gh200.spec());
        let ridge = roofline.ridge_point("float16 tensor").unwrap();
        // Below the ridge: limited by memory.
        let low = roofline
            .attainable_tops("float16 tensor", ridge / 10.0)
            .unwrap();
        assert!(low < 646.0 * 0.2);
        // Above the ridge: limited by compute.
        let high = roofline
            .attainable_tops("float16 tensor", ridge * 10.0)
            .unwrap();
        assert_eq!(high, 646.0);
        assert_eq!(roofline.attainable_tops("no such ceiling", 1.0), None);
    }
}
