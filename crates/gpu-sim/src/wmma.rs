//! Functional model of the Warp Matrix Multiply-Accumulate (WMMA)
//! interface.
//!
//! Tensor cores execute small fixed-size matrix multiplications called
//! *fragments*.  ccglib is written against this fragment interface, so the
//! simulator reproduces it functionally:
//!
//! * [`mma_sync`] — the half-precision fragment multiply-accumulate
//!   (`D = A·B + C` with `A`, `B` in binary16 and `C`, `D` in binary32),
//!   fragment shape 16×16×16 on every evaluated architecture;
//! * [`bmma_sync`] — the 1-bit ("binary") fragment operation: a bitwise
//!   XOR or AND between 128/256-bit rows and columns followed by a
//!   population count accumulated into 32-bit integers.  This is exactly
//!   the `popc`-accumulation semantics of the hardware; converting the
//!   popcount into a signed ±1 dot product (Table II / Eqs. 5–6) is the
//!   responsibility of the caller (ccglib), as it is on real hardware.
//!
//! Inputs use the same conventions as CUDA WMMA: the `A` fragment is
//! row-major `m×k`, the `B` fragment column-major `k×n` (i.e. stored as
//! `n` rows of `k` values), and the accumulator row-major `m×n`.

use crate::arch::{Architecture, BitOp};
use serde::{Deserialize, Serialize};
use std::fmt;
use tcbf_types::f16;

/// Shape of a half-precision tensor-core fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FragmentShape {
    /// The 16×16×16 fragment available on every evaluated architecture
    /// (NVIDIA WMMA and AMD MFMA/rocWMMA).
    M16N16K16,
}

impl FragmentShape {
    /// Fragment rows (M).
    pub const fn m(self) -> usize {
        16
    }
    /// Fragment columns (N).
    pub const fn n(self) -> usize {
        16
    }
    /// Fragment depth (K).
    pub const fn k(self) -> usize {
        16
    }

    /// Fragment shapes supported by an architecture for float16 inputs.
    pub fn supported(_arch: Architecture) -> Vec<FragmentShape> {
        vec![FragmentShape::M16N16K16]
    }
}

impl fmt::Display for FragmentShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m(), self.n(), self.k())
    }
}

/// Shape of a 1-bit ("binary") tensor-core fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitFragmentShape {
    /// 8×8×128: the layout exposed through the WMMA API.
    M8N8K128,
    /// 16×8×256: only reachable through inline PTX; at least as fast as the
    /// small layout everywhere and more than twice as fast on A100/GH200.
    M16N8K256,
}

impl BitFragmentShape {
    /// Fragment rows (M).
    pub const fn m(self) -> usize {
        match self {
            BitFragmentShape::M8N8K128 => 8,
            BitFragmentShape::M16N8K256 => 16,
        }
    }
    /// Fragment columns (N).
    pub const fn n(self) -> usize {
        8
    }
    /// Fragment depth in bits (K).
    pub const fn k(self) -> usize {
        match self {
            BitFragmentShape::M8N8K128 => 128,
            BitFragmentShape::M16N8K256 => 256,
        }
    }
    /// Fragment depth in 32-bit words.
    pub const fn k_words(self) -> usize {
        self.k() / 32
    }

    /// Whether this layout is available through the portable WMMA API (the
    /// larger layout requires inline PTX, which ccglib ships as an
    /// extension).
    pub const fn available_via_wmma(self) -> bool {
        matches!(self, BitFragmentShape::M8N8K128)
    }

    /// Both layouts, small first.
    pub const ALL: [BitFragmentShape; 2] =
        [BitFragmentShape::M8N8K128, BitFragmentShape::M16N8K256];

    /// Layouts supported by an architecture (empty on AMD).
    pub fn supported(arch: Architecture) -> Vec<BitFragmentShape> {
        if arch.supports_int1() {
            BitFragmentShape::ALL.to_vec()
        } else {
            Vec::new()
        }
    }
}

impl fmt::Display for BitFragmentShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m(), self.n(), self.k())
    }
}

/// Half-precision fragment multiply-accumulate: `acc += A · B`.
///
/// * `a` — row-major `m×k` half-precision fragment;
/// * `b` — column-major `k×n` fragment, stored as `n` contiguous columns of
///   `k` values (index `col * k + kk`);
/// * `acc` — row-major `m×n` single-precision accumulator, updated in
///   place.
///
/// Products are formed in single precision (the hardware multiplies
/// half-precision inputs exactly — every product of two binary16 values is
/// representable in binary32) and accumulated in single precision.
pub fn mma_sync(shape: FragmentShape, a: &[f16], b: &[f16], acc: &mut [f32]) {
    let (m, n, k) = (shape.m(), shape.n(), shape.k());
    assert_eq!(a.len(), m * k, "A fragment has wrong size");
    assert_eq!(b.len(), k * n, "B fragment has wrong size");
    assert_eq!(acc.len(), m * n, "accumulator fragment has wrong size");
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for kk in 0..k {
                sum += a[i * k + kk].to_f32() * b[j * k + kk].to_f32();
            }
            acc[i * n + j] += sum;
        }
    }
}

/// 1-bit fragment multiply-accumulate with popcount accumulation:
/// `acc[i][j] += popc(op(A_row_i, B_col_j))`.
///
/// * `a` — row-major `m × k/32` packed words;
/// * `b` — column-major `n × k/32` packed words (one packed row per output
///   column);
/// * `acc` — row-major `m×n` 32-bit integer accumulator.
///
/// The AND variant accumulates only `popc(A ∧ B)`; the caller issues a
/// second `bmma_sync` on the complemented inputs to complete Eq. 6, exactly
/// as the real kernel does (which is why the AND formulation costs twice
/// the instructions).
pub fn bmma_sync(shape: BitFragmentShape, op: BitOp, a: &[u32], b: &[u32], acc: &mut [i32]) {
    let (m, n, kw) = (shape.m(), shape.n(), shape.k_words());
    assert_eq!(a.len(), m * kw, "A fragment has wrong size");
    assert_eq!(b.len(), n * kw, "B fragment has wrong size");
    assert_eq!(acc.len(), m * n, "accumulator fragment has wrong size");
    for i in 0..m {
        for j in 0..n {
            let mut popc = 0u32;
            for w in 0..kw {
                let aw = a[i * kw + w];
                let bw = b[j * kw + w];
                let combined = match op {
                    BitOp::Xor => aw ^ bw,
                    BitOp::And => aw & bw,
                };
                popc += combined.count_ones();
            }
            acc[i * n + j] += popc as i32;
        }
    }
}

/// Reference ±1 dot-product fragment used by tests: decodes every bit and
/// multiplies, bypassing the popcount identities.
pub fn bmma_reference_signed(shape: BitFragmentShape, a: &[u32], b: &[u32]) -> Vec<i32> {
    let (m, n, kw) = (shape.m(), shape.n(), shape.k_words());
    let decode = |word: u32, bit: usize| -> i32 {
        if (word >> bit) & 1 == 1 {
            1
        } else {
            -1
        }
    };
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0i32;
            for w in 0..kw {
                for bit in 0..32 {
                    sum += decode(a[i * kw + w], bit) * decode(b[j * kw + w], bit);
                }
            }
            out[i * n + j] = sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn f16_vec(values: &[f32]) -> Vec<f16> {
        values.iter().map(|&v| f16::from_f32(v)).collect()
    }

    #[test]
    fn fragment_shapes() {
        assert_eq!(FragmentShape::M16N16K16.to_string(), "16x16x16");
        assert_eq!(BitFragmentShape::M8N8K128.k_words(), 4);
        assert_eq!(BitFragmentShape::M16N8K256.k_words(), 8);
        assert!(BitFragmentShape::M8N8K128.available_via_wmma());
        assert!(!BitFragmentShape::M16N8K256.available_via_wmma());
        assert!(BitFragmentShape::supported(Architecture::Cdna3).is_empty());
        assert_eq!(BitFragmentShape::supported(Architecture::Ampere).len(), 2);
    }

    #[test]
    fn mma_identity_times_matrix() {
        let shape = FragmentShape::M16N16K16;
        let (m, n, k) = (shape.m(), shape.n(), shape.k());
        // A = identity, B = arbitrary -> C = B (transposed into row-major).
        let mut a = vec![f16::ZERO; m * k];
        for i in 0..m {
            a[i * k + i] = f16::ONE;
        }
        let mut b = vec![f16::ZERO; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[j * k + kk] = f16::from_f32((kk * n + j) as f32 * 0.25);
            }
        }
        let mut acc = vec![0.0f32; m * n];
        mma_sync(shape, &a, &b, &mut acc);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(acc[i * n + j], (i * n + j) as f32 * 0.25);
            }
        }
    }

    #[test]
    fn mma_accumulates_into_existing_values() {
        let shape = FragmentShape::M16N16K16;
        let a = f16_vec(&vec![1.0; 16 * 16]);
        let b = f16_vec(&vec![1.0; 16 * 16]);
        let mut acc = vec![5.0f32; 16 * 16];
        mma_sync(shape, &a, &b, &mut acc);
        // Each output is 5 + sum of 16 ones = 21.
        assert!(acc.iter().all(|&v| v == 21.0));
    }

    #[test]
    fn bmma_xor_all_equal_bits_gives_zero_popcount() {
        let shape = BitFragmentShape::M8N8K128;
        let a = vec![0xFFFF_FFFFu32; 8 * 4];
        let b = vec![0xFFFF_FFFFu32; 8 * 4];
        let mut acc = vec![0i32; 8 * 8];
        bmma_sync(shape, BitOp::Xor, &a, &b, &mut acc);
        assert!(acc.iter().all(|&v| v == 0));
        // AND of all ones gives K.
        let mut acc_and = vec![0i32; 8 * 8];
        bmma_sync(shape, BitOp::And, &a, &b, &mut acc_and);
        assert!(acc_and.iter().all(|&v| v == 128));
    }

    #[test]
    fn xor_popcount_maps_to_signed_dot_product() {
        // K − 2·popc(A⊕B) must equal the decoded ±1 dot product.
        let shape = BitFragmentShape::M16N8K256;
        let kw = shape.k_words();
        let a: Vec<u32> = (0..shape.m() * kw)
            .map(|i| (i as u32).wrapping_mul(0x9E37_79B9))
            .collect();
        let b: Vec<u32> = (0..shape.n() * kw)
            .map(|i| (i as u32).wrapping_mul(0x85EB_CA6B) ^ 0xDEAD)
            .collect();
        let mut popc = vec![0i32; shape.m() * shape.n()];
        bmma_sync(shape, BitOp::Xor, &a, &b, &mut popc);
        let reference = bmma_reference_signed(shape, &a, &b);
        for idx in 0..popc.len() {
            assert_eq!(shape.k() as i32 - 2 * popc[idx], reference[idx]);
        }
    }

    #[test]
    fn and_double_pass_maps_to_signed_dot_product() {
        // 2·(popc(A∧B) + popc(Ā∧B̄)) − K must equal the ±1 dot product.
        let shape = BitFragmentShape::M8N8K128;
        let kw = shape.k_words();
        let a: Vec<u32> = (0..shape.m() * kw)
            .map(|i| (i as u32).wrapping_mul(0x1234_5678) ^ 0xF0F0)
            .collect();
        let b: Vec<u32> = (0..shape.n() * kw)
            .map(|i| (i as u32).wrapping_mul(0x0BAD_F00D))
            .collect();
        let not_a: Vec<u32> = a.iter().map(|&w| !w).collect();
        let not_b: Vec<u32> = b.iter().map(|&w| !w).collect();
        let mut popc = vec![0i32; shape.m() * shape.n()];
        bmma_sync(shape, BitOp::And, &a, &b, &mut popc);
        bmma_sync(shape, BitOp::And, &not_a, &not_b, &mut popc);
        let reference = bmma_reference_signed(shape, &a, &b);
        for idx in 0..popc.len() {
            assert_eq!(2 * popc[idx] - shape.k() as i32, reference[idx]);
        }
    }

    #[test]
    #[should_panic(expected = "A fragment has wrong size")]
    fn wrong_fragment_size_panics() {
        let mut acc = vec![0.0f32; 256];
        mma_sync(
            FragmentShape::M16N16K16,
            &[f16::ONE; 8],
            &[f16::ONE; 256],
            &mut acc,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mma_matches_f64_reference(seed in any::<u64>()) {
            // Compare fragment MMA against a double-precision reference;
            // inputs are small integers scaled so all products are exact.
            let shape = FragmentShape::M16N16K16;
            let (m, n, k) = (shape.m(), shape.n(), shape.k());
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) % 17) as f32 - 8.0
            };
            let a: Vec<f16> = (0..m * k).map(|_| f16::from_f32(next())).collect();
            let b: Vec<f16> = (0..k * n).map(|_| f16::from_f32(next())).collect();
            let mut acc = vec![0.0f32; m * n];
            mma_sync(shape, &a, &b, &mut acc);
            for i in 0..m {
                for j in 0..n {
                    let expect: f64 = (0..k)
                        .map(|kk| f64::from(a[i * k + kk].to_f32()) * f64::from(b[j * k + kk].to_f32()))
                        .sum();
                    prop_assert!((f64::from(acc[i * n + j]) - expect).abs() < 1e-3);
                }
            }
        }

        #[test]
        fn xor_and_formulations_agree(seed in any::<u64>()) {
            let shape = BitFragmentShape::M8N8K128;
            let kw = shape.k_words();
            let mut state = seed | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u32
            };
            let a: Vec<u32> = (0..shape.m() * kw).map(|_| next()).collect();
            let b: Vec<u32> = (0..shape.n() * kw).map(|_| next()).collect();
            let not_a: Vec<u32> = a.iter().map(|&w| !w).collect();
            let not_b: Vec<u32> = b.iter().map(|&w| !w).collect();

            let mut popc_xor = vec![0i32; shape.m() * shape.n()];
            bmma_sync(shape, BitOp::Xor, &a, &b, &mut popc_xor);
            let mut popc_and = vec![0i32; shape.m() * shape.n()];
            bmma_sync(shape, BitOp::And, &a, &b, &mut popc_and);
            bmma_sync(shape, BitOp::And, &not_a, &not_b, &mut popc_and);

            for idx in 0..popc_xor.len() {
                let via_xor = shape.k() as i32 - 2 * popc_xor[idx];
                let via_and = 2 * popc_and[idx] - shape.k() as i32;
                prop_assert_eq!(via_xor, via_and);
            }
        }
    }
}
