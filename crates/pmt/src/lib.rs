//! Power Measurement Toolkit (PMT) analogue.
//!
//! The paper measures GPU energy with PMT [Corda et al. 2022], which reads
//! NVIDIA boards through NVML and AMD boards through rocm-smi and exposes a
//! simple begin/end interface: read a cumulative state before and after a
//! kernel, subtract, and obtain joules and seconds.
//!
//! The simulated equivalent keeps the same shape of API.  Because kernels
//! here execute against an analytic timing model rather than wall-clock
//! hardware, the meter advances a *virtual clock*: every kernel that the
//! ccglib simulator "runs" is recorded with its predicted timings and the
//! power model's average draw, and measurements integrate those records.
//! The sensor interface (`PowerSensor`) is kept separate from the meter so
//! other backends (e.g. a constant-power dummy sensor for tests, or a real
//! host RAPL reader in the future) can be slotted in, mirroring PMT's
//! plug-in design.

#![deny(missing_docs)]

use gpu_sim::{DeviceSpec, KernelKind, KernelTimings, PowerModel, PowerSample};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Cumulative meter state, as returned by [`PowerMeter::read`]: the analogue
/// of PMT's `State` (timestamp + cumulative joules).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeterState {
    /// Virtual time since meter creation, in seconds.
    pub timestamp_s: f64,
    /// Cumulative energy since meter creation, in joules.
    pub joules: f64,
}

/// Result of measuring a region between two [`MeterState`]s.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeasurement {
    /// Elapsed virtual time in seconds.
    pub seconds: f64,
    /// Energy consumed in joules.
    pub joules: f64,
}

impl EnergyMeasurement {
    /// Average power over the measured region, in watts.
    pub fn average_watts(&self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }

    /// Energy efficiency for a region that performed `useful_ops`
    /// operations, in TeraOps per joule — the metric of Table III and of
    /// every energy panel in the paper's figures.
    pub fn tops_per_joule(&self, useful_ops: f64) -> f64 {
        if self.joules > 0.0 {
            useful_ops / self.joules / 1e12
        } else {
            0.0
        }
    }
}

/// A power sensor: anything that can report instantaneous board power.
pub trait PowerSensor: Send + Sync {
    /// Name of the sensor backend ("nvml", "rocm-smi", "dummy", …).
    fn name(&self) -> &str;
    /// Instantaneous power for a given activity level in `[0, 1]` and
    /// kernel kind.
    fn power_watts(&self, kind: KernelKind, activity: f64) -> f64;
    /// Idle power of the measured device.
    fn idle_watts(&self) -> f64;
}

/// Sensor backed by the simulated device power model — the equivalent of
/// PMT's NVML backend on NVIDIA boards and rocm-smi backend on AMD boards.
#[derive(Clone, Debug)]
pub struct DevicePowerSensor {
    model: PowerModel,
    backend: &'static str,
}

impl DevicePowerSensor {
    /// Creates the appropriate sensor for a device (NVML for NVIDIA,
    /// rocm-smi for AMD), mirroring how PMT chooses its backend.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        let backend = match spec.vendor() {
            gpu_sim::Vendor::Nvidia => "nvml",
            gpu_sim::Vendor::Amd => "rocm-smi",
        };
        DevicePowerSensor {
            model: PowerModel::new(spec.clone()),
            backend,
        }
    }
}

impl PowerSensor for DevicePowerSensor {
    fn name(&self) -> &str {
        self.backend
    }

    fn power_watts(&self, kind: KernelKind, activity: f64) -> f64 {
        let idle = self.model.idle_watts();
        let full = self.model.full_load_watts(kind);
        idle + (full - idle) * activity.clamp(0.0, 1.0)
    }

    fn idle_watts(&self) -> f64 {
        self.model.idle_watts()
    }
}

/// A constant-power sensor, useful for tests and for modelling host-side
/// components with a fixed draw.
#[derive(Clone, Debug)]
pub struct ConstantPowerSensor {
    watts: f64,
}

impl ConstantPowerSensor {
    /// Creates a sensor that always reports `watts`.
    pub fn new(watts: f64) -> Self {
        ConstantPowerSensor { watts }
    }
}

impl PowerSensor for ConstantPowerSensor {
    fn name(&self) -> &str {
        "constant"
    }
    fn power_watts(&self, _kind: KernelKind, _activity: f64) -> f64 {
        self.watts
    }
    fn idle_watts(&self) -> f64 {
        self.watts
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    virtual_time_s: f64,
    joules: f64,
    trace: Vec<PowerSample>,
}

/// The power meter: accumulates energy over recorded kernel executions and
/// idle periods on a virtual clock.
///
/// Thread-safe: the simulator records kernels from wherever it runs them
/// (including Rayon worker threads); measurements read a consistent
/// snapshot.
#[derive(Clone)]
pub struct PowerMeter {
    sensor: Arc<dyn PowerSensor>,
    inner: Arc<Mutex<MeterInner>>,
}

impl PowerMeter {
    /// Creates a meter from a sensor.
    pub fn new(sensor: Arc<dyn PowerSensor>) -> Self {
        PowerMeter {
            sensor,
            inner: Arc::new(Mutex::new(MeterInner::default())),
        }
    }

    /// Creates a meter for a simulated device, choosing the NVML or
    /// rocm-smi style backend automatically.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        PowerMeter::new(Arc::new(DevicePowerSensor::for_device(spec)))
    }

    /// Name of the underlying sensor backend.
    pub fn backend(&self) -> String {
        self.sensor.name().to_string()
    }

    /// Reads the cumulative meter state (the PMT `read()` analogue).
    pub fn read(&self) -> MeterState {
        let inner = self.inner.lock();
        MeterState {
            timestamp_s: inner.virtual_time_s,
            joules: inner.joules,
        }
    }

    /// Records the execution of one simulated kernel: advances the virtual
    /// clock by its elapsed time and integrates its energy.
    pub fn record_kernel(&self, kind: KernelKind, timings: &KernelTimings) -> EnergyMeasurement {
        let activity = timings.compute_utilization.max(timings.memory_utilization);
        let watts = self.sensor.power_watts(kind, activity);
        let joules = watts * timings.elapsed_s;
        let mut inner = self.inner.lock();
        inner.virtual_time_s += timings.elapsed_s;
        inner.joules += joules;
        let t = inner.virtual_time_s;
        inner.trace.push(PowerSample {
            timestamp_s: t,
            watts,
        });
        EnergyMeasurement {
            seconds: timings.elapsed_s,
            joules,
        }
    }

    /// Records an idle period (host-side work between kernels).
    pub fn record_idle(&self, seconds: f64) {
        assert!(seconds >= 0.0, "idle period must be non-negative");
        let watts = self.sensor.idle_watts();
        let mut inner = self.inner.lock();
        inner.virtual_time_s += seconds;
        inner.joules += watts * seconds;
        let t = inner.virtual_time_s;
        inner.trace.push(PowerSample {
            timestamp_s: t,
            watts,
        });
    }

    /// Measures the region between two previously read states.
    pub fn measure(&self, start: MeterState, end: MeterState) -> EnergyMeasurement {
        EnergyMeasurement {
            seconds: (end.timestamp_s - start.timestamp_s).max(0.0),
            joules: (end.joules - start.joules).max(0.0),
        }
    }

    /// Convenience: measure a closure that records kernels on this meter.
    pub fn measure_region<R>(&self, f: impl FnOnce() -> R) -> (R, EnergyMeasurement) {
        let start = self.read();
        let result = f();
        let end = self.read();
        (result, self.measure(start, end))
    }

    /// The power trace recorded so far (one sample per recorded event), for
    /// plotting and for the auto-tuner's energy objective.
    pub fn trace(&self) -> Vec<PowerSample> {
        self.inner.lock().trace.clone()
    }

    /// Resets the meter to zero time and zero energy.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = MeterInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{ExecutionModel, Gpu, KernelProfile, LaunchConfig};

    fn timings(elapsed: f64, cu: f64, mu: f64) -> KernelTimings {
        KernelTimings {
            compute_time_s: cu * elapsed,
            memory_time_s: mu * elapsed,
            elapsed_s: elapsed,
            compute_utilization: cu,
            memory_utilization: mu,
            achieved_tops: 0.0,
        }
    }

    #[test]
    fn backend_selection_follows_vendor() {
        assert_eq!(PowerMeter::for_device(&Gpu::A100.spec()).backend(), "nvml");
        assert_eq!(
            PowerMeter::for_device(&Gpu::Mi300x.spec()).backend(),
            "rocm-smi"
        );
    }

    #[test]
    fn constant_sensor_integrates_linearly() {
        let meter = PowerMeter::new(Arc::new(ConstantPowerSensor::new(100.0)));
        let start = meter.read();
        meter.record_kernel(KernelKind::GemmF16, &timings(2.0, 1.0, 0.5));
        meter.record_idle(1.0);
        let end = meter.read();
        let m = meter.measure(start, end);
        assert_eq!(m.seconds, 3.0);
        assert_eq!(m.joules, 300.0);
        assert_eq!(m.average_watts(), 100.0);
    }

    #[test]
    fn device_sensor_matches_power_model_calibration() {
        let spec = Gpu::A100.spec();
        let meter = PowerMeter::for_device(&spec);
        let m = meter.record_kernel(KernelKind::GemmF16, &timings(1.0, 1.0, 0.3));
        // Full activity → the Table III calibration point (216 W).
        assert!((m.joules - 216.0).abs() < 1e-9);
        let idle_state = meter.read();
        meter.record_idle(2.0);
        let m2 = meter.measure(idle_state, meter.read());
        assert!((m2.average_watts() - spec.idle_watts).abs() < 1e-9);
    }

    #[test]
    fn tops_per_joule_matches_table3_for_calibrated_gemm() {
        let spec = Gpu::Gh200.spec();
        let exec = ExecutionModel::new(spec.clone());
        let meter = PowerMeter::for_device(&spec);
        let ops = 8.0 * 8192f64.powi(3);
        let profile = KernelProfile {
            kind: KernelKind::GemmF16,
            useful_ops: ops,
            peak_tops: spec.f16_tensor_measured,
            config_efficiency: spec.gemm_efficiency_f16,
            global_bytes: 3.0 * 8192.0 * 8192.0 * 4.0,
            launch: LaunchConfig::new(spec.compute_units * 64, 256),
        };
        let t = exec.time(&profile);
        let (_, m) = meter.measure_region(|| {
            meter.record_kernel(KernelKind::GemmF16, &t);
        });
        let tpj = m.tops_per_joule(ops);
        // Table III: 0.8 TOPs/J on the GH200 in float16.
        assert!((tpj - 0.8).abs() < 0.15, "tops/J = {tpj}");
    }

    #[test]
    fn trace_is_monotonic_and_reset_clears() {
        let meter = PowerMeter::new(Arc::new(ConstantPowerSensor::new(50.0)));
        for _ in 0..5 {
            meter.record_kernel(KernelKind::Pack, &timings(0.1, 0.0, 1.0));
        }
        let trace = meter.trace();
        assert_eq!(trace.len(), 5);
        for pair in trace.windows(2) {
            assert!(pair[1].timestamp_s > pair[0].timestamp_s);
        }
        meter.reset();
        assert!(meter.trace().is_empty());
        assert_eq!(meter.read().joules, 0.0);
    }

    #[test]
    fn measurement_from_unordered_states_is_clamped() {
        let meter = PowerMeter::new(Arc::new(ConstantPowerSensor::new(10.0)));
        let s0 = meter.read();
        meter.record_idle(1.0);
        let s1 = meter.read();
        let backwards = meter.measure(s1, s0);
        assert_eq!(backwards.seconds, 0.0);
        assert_eq!(backwards.joules, 0.0);
        assert_eq!(backwards.tops_per_joule(1e12), 0.0);
    }

    #[test]
    fn meter_is_shareable_across_threads() {
        let meter = PowerMeter::new(Arc::new(ConstantPowerSensor::new(1.0)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = meter.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.record_idle(0.001);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let state = meter.read();
        assert!((state.timestamp_s - 0.4).abs() < 1e-9);
        assert!((state.joules - 0.4).abs() < 1e-9);
    }
}
