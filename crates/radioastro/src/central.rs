//! The central (second-stage) beamformer.
//!
//! The central processor combines the beamlet streams of all stations.
//! *Coherent* beamforming preserves phase: every tied-array beam is a
//! weighted sum over stations, so forming `M` beams over `N` samples and
//! `K` stations is the ccglib GEMM (with the product of polarisations and
//! channels as the batch size).  *Incoherent* beamforming adds station
//! powers instead: computationally cheap, wide field of view, no ccglib
//! involvement.  The float32 [`ReferenceBeamformer`] stands in for the
//! existing LOFAR GPU beamformer the paper compares against (with the
//! weight *computation* excluded, as the paper does for fairness).

use crate::station::StationBeamlets;
use beamform::geometry::SPEED_OF_LIGHT;
use beamform::{
    Beamformer, BeamformerConfig, Engine, Report, SessionReport, ShardPolicy, ShardedBeamformer,
    SingleEngine, WeightMatrix,
};
use ccglib::matrix::HostComplexMatrix;
use ccglib::{reference_gemm, RunReport};
use gpu_sim::{Device, DevicePool};
use serde::{Deserialize, Serialize};
use tcbf_types::Complex;

/// Mode of the central beamformer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CentralMode {
    /// Phase-preserving tied-array beamforming (runs on tensor cores).
    Coherent,
    /// Power addition across stations (no phase information retained).
    Incoherent,
}

/// Output of the central beamformer.
#[derive(Clone, Debug)]
pub struct CentralOutput {
    /// Beam power per (beam, sample): `M × N`, real valued.
    pub power: Vec<Vec<f64>>,
    /// Complex beamformed data (`M × N`) for the coherent mode.
    pub complex_beams: Option<HostComplexMatrix>,
    /// Performance report of the tensor-core GEMM (coherent mode only).
    pub report: Option<RunReport>,
}

/// The central tensor-core beamformer: a thin LOFAR-specific wrapper
/// around the 16-bit mode of ccglib.
pub struct CentralBeamformer {
    device: Device,
    beam_azimuths: Vec<f64>,
}

impl CentralBeamformer {
    /// Creates a central beamformer forming one tied-array beam per entry
    /// of `beam_azimuths` (radians from the pointing centre).
    pub fn new(device: &Device, beam_azimuths: Vec<f64>) -> Self {
        assert!(!beam_azimuths.is_empty(), "at least one beam is required");
        CentralBeamformer {
            device: device.clone(),
            beam_azimuths,
        }
    }

    /// Number of tied-array beams (`M`).
    pub fn num_beams(&self) -> usize {
        self.beam_azimuths.len()
    }

    /// Station weights for all beams: `M × K`, the phase conjugate of each
    /// station's geometric delay towards each beam direction.
    pub fn weights(&self, beamlets: &StationBeamlets) -> HostComplexMatrix {
        let k = beamlets.num_stations();
        let positions = beamlets.station_positions_m();
        let frequency = beamlets.frequency();
        HostComplexMatrix::from_fn(self.num_beams(), k, |beam, station| {
            let delay = positions[station] * self.beam_azimuths[beam].sin() / SPEED_OF_LIGHT;
            let phi = std::f64::consts::TAU * frequency * delay;
            Complex::from_polar(1.0 / k as f32, phi as f32)
        })
    }

    /// Runs the central beamformer in the requested mode.
    pub fn beamform(
        &self,
        beamlets: &StationBeamlets,
        mode: CentralMode,
    ) -> ccglib::Result<CentralOutput> {
        match mode {
            CentralMode::Incoherent => Ok(self.incoherent(beamlets)),
            CentralMode::Coherent => self.coherent(beamlets),
        }
    }

    fn incoherent(&self, beamlets: &StationBeamlets) -> CentralOutput {
        // Incoherent beamforming discards phase: one wide beam whose power
        // is the sum of station powers.  Every "beam" sees the same power.
        let n = beamlets.num_samples();
        let k = beamlets.num_stations();
        let mut per_sample = vec![0.0f64; n];
        for (sample, power) in per_sample.iter_mut().enumerate() {
            for station in 0..k {
                *power += f64::from(beamlets.matrix().get(station, sample).norm_sqr());
            }
            *power /= k as f64;
        }
        CentralOutput {
            power: vec![per_sample; self.num_beams()],
            complex_beams: None,
            report: None,
        }
    }

    /// Builds the tensor-core beamformer for one beamlet-block shape: the
    /// per-station weights are the `M × K` weight matrix, one block of
    /// beamlet samples is one `K × N` input.
    fn beamformer(&self, beamlets: &StationBeamlets) -> ccglib::Result<Beamformer> {
        Beamformer::new(
            &self.device,
            WeightMatrix::from_matrix(self.weights(beamlets)),
            beamlets.num_samples(),
            BeamformerConfig::float16(),
        )
    }

    fn output_from(&self, beams: HostComplexMatrix, report: RunReport) -> CentralOutput {
        let power = (0..self.num_beams())
            .map(|b| {
                (0..beams.cols())
                    .map(|s| f64::from(beams.get(b, s).norm_sqr()))
                    .collect()
            })
            .collect();
        CentralOutput {
            power,
            complex_beams: Some(beams),
            report: Some(report),
        }
    }

    fn coherent(&self, beamlets: &StationBeamlets) -> ccglib::Result<CentralOutput> {
        let output = self.beamformer(beamlets)?.beamform(beamlets.matrix())?;
        Ok(self.output_from(output.beams, output.report))
    }

    /// The first block of a non-empty observation.
    fn first_block(blocks: &[StationBeamlets]) -> ccglib::Result<&StationBeamlets> {
        blocks
            .first()
            .ok_or_else(|| ccglib::CcglibError::ShapeMismatch {
                expected: "at least one beamlet block".to_string(),
                actual: "0 blocks".to_string(),
            })
    }

    /// Streams a whole observation — consecutive beamlet blocks from the
    /// same station array — through **any streaming [`Engine`]**: a single
    /// device and a multi-GPU pool run the exact same code; only the
    /// engine construction differs.  This is the one streaming
    /// implementation; the topology-specific entry points are thin shims
    /// over it.
    ///
    /// The station count and block length must stay constant over the
    /// stream, and the engine must currently hold the station weights of
    /// the first block (as the shims build it).  Retunes — frequency or
    /// station-layout changes — recompute the weights and hot-swap them on
    /// every device of the engine, so the stream is processed as
    /// consecutive constant-tuning segments, each fanned out across the
    /// engine's whole topology.  Returns one [`CentralOutput`] per block,
    /// in observation order, plus a [`Report`] covering exactly this
    /// observation: the engine's accumulation is reset on entry (any
    /// report left on it from earlier use is discarded) and
    /// [`Engine::finish`] is called on return, so a reused engine starts
    /// its next run fresh.
    pub fn stream_coherent_with<E: Engine>(
        &self,
        engine: &mut E,
        blocks: &[StationBeamlets],
    ) -> ccglib::Result<(Vec<CentralOutput>, Report)> {
        let first = Self::first_block(blocks)?;
        let _ = engine.finish();
        // The weights depend only on the observing frequency and the
        // station layout, so a retune is detected from that metadata — no
        // per-block weight recomputation while the observation is stable.
        let mut tuning = (first.frequency(), first.station_positions_m().to_vec());
        let mut outputs = Vec::with_capacity(blocks.len());
        let mut segment: Vec<&HostComplexMatrix> = Vec::new();
        let drain = |engine: &mut E,
                     segment: &mut Vec<&HostComplexMatrix>,
                     outputs: &mut Vec<CentralOutput>|
         -> ccglib::Result<()> {
            for output in engine.process_batch(segment)? {
                outputs.push(self.output_from(output.beams, output.report));
            }
            segment.clear();
            Ok(())
        };
        for block in blocks {
            if block.frequency() != tuning.0 || block.station_positions_m() != tuning.1 {
                drain(engine, &mut segment, &mut outputs)?;
                engine.swap_weights(WeightMatrix::from_matrix(self.weights(block)))?;
                tuning = (block.frequency(), block.station_positions_m().to_vec());
            }
            segment.push(block.matrix());
        }
        drain(engine, &mut segment, &mut outputs)?;
        Ok((outputs, engine.finish()))
    }

    /// Single-device shim over
    /// [`CentralBeamformer::stream_coherent_with`]: builds a
    /// [`SingleEngine`] on this beamformer's device and returns the
    /// serial-equivalent [`SessionReport`] (retunes counted in
    /// [`SessionReport::weight_swaps`]).
    pub fn stream_coherent(
        &self,
        blocks: &[StationBeamlets],
    ) -> ccglib::Result<(Vec<CentralOutput>, SessionReport)> {
        let first = Self::first_block(blocks)?;
        let mut engine = SingleEngine::new(self.beamformer(first)?)?;
        let (outputs, report) = self.stream_coherent_with(&mut engine, blocks)?;
        Ok((outputs, report.merged_serial()))
    }

    /// Multi-GPU shim over [`CentralBeamformer::stream_coherent_with`]:
    /// builds a [`ShardedBeamformer`] over `pool` under `policy`.
    /// Functionally identical to [`CentralBeamformer::stream_coherent`]:
    /// the per-block outputs do not depend on which device computed them.
    pub fn stream_coherent_sharded(
        &self,
        pool: &DevicePool,
        policy: ShardPolicy,
        blocks: &[StationBeamlets],
    ) -> ccglib::Result<(Vec<CentralOutput>, Report)> {
        let first = Self::first_block(blocks)?;
        let mut engine = ShardedBeamformer::new(
            pool,
            WeightMatrix::from_matrix(self.weights(first)),
            first.num_samples(),
            BeamformerConfig::float16(),
            policy,
        )?;
        self.stream_coherent_with(&mut engine, blocks)
    }

    /// Mean power of one beam over all samples.
    pub fn mean_beam_power(output: &CentralOutput, beam: usize) -> f64 {
        let series = &output.power[beam];
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// The float32 reference beamformer: the "current LOFAR beamformer kernel
/// (without Tensor Cores) running in float32 precision" of Fig. 7.
pub struct ReferenceBeamformer;

impl ReferenceBeamformer {
    /// Coherently beamforms in full float32 precision on the host — the
    /// functional ground truth for the tensor-core output.
    pub fn beamform(
        weights: &HostComplexMatrix,
        beamlets: &StationBeamlets,
    ) -> ccglib::Result<HostComplexMatrix> {
        reference_gemm(weights, &beamlets.matrix().transposed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::SkySource;
    use gpu_sim::Gpu;

    const FREQ: f64 = 150e6;

    fn beamlets_with_source(azimuth: f64, stations: usize) -> StationBeamlets {
        StationBeamlets::synthesise(
            stations,
            32,
            FREQ,
            &[SkySource {
                azimuth,
                amplitude: 1.0,
            }],
            0.0,
            64,
            0.05,
            17,
        )
    }

    fn beam_grid() -> Vec<f64> {
        // Tied-array beams a few hundred micro-radians apart: the narrow
        // beams a kilometre-scale array synthesises.
        (0..7).map(|i| (i as f64 - 3.0) * 2e-4).collect()
    }

    #[test]
    fn coherent_beamformer_localises_the_source() {
        let beamlets = beamlets_with_source(2e-4, 24);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let output = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
        let powers: Vec<f64> = (0..bf.num_beams())
            .map(|b| CentralBeamformer::mean_beam_power(&output, b))
            .collect();
        let best = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Beam index 4 looks at +2e-4 rad.
        assert_eq!(best, 4, "powers {powers:?}");
        assert!(output.report.is_some());
        assert!(output.complex_beams.is_some());
    }

    #[test]
    fn coherent_matches_float32_reference() {
        let beamlets = beamlets_with_source(0.0, 16);
        let bf = CentralBeamformer::new(&Gpu::Gh200.device(), beam_grid());
        let weights = bf.weights(&beamlets);
        let tensor = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
        let reference = ReferenceBeamformer::beamform(&weights, &beamlets).unwrap();
        let diff = tensor.complex_beams.unwrap().max_abs_diff(&reference);
        assert!(diff < 0.02, "difference {diff}");
    }

    #[test]
    fn streamed_observation_aggregates_and_hot_swaps_on_retune() {
        // Two blocks at one frequency, then the observation retunes: the
        // session recomputes and hot-swaps the station weights mid-stream.
        let make = |frequency: f64, seed: u64| {
            StationBeamlets::synthesise(
                16,
                32,
                frequency,
                &[SkySource {
                    azimuth: 1e-4,
                    amplitude: 1.0,
                }],
                0.0,
                32,
                0.05,
                seed,
            )
        };
        let blocks = vec![make(FREQ, 1), make(FREQ, 2), make(1.2 * FREQ, 3)];
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let (outputs, report) = bf.stream_coherent(&blocks).unwrap();
        assert_eq!(outputs.len(), 3);
        assert_eq!(report.blocks, 3);
        assert_eq!(report.weight_swaps, 1, "retune must swap weights once");
        // Session totals equal the sums over the per-block reports.
        let elapsed: f64 = outputs
            .iter()
            .map(|o| o.report.unwrap().predicted.elapsed_s)
            .sum();
        assert!((report.total_elapsed_s - elapsed).abs() < 1e-15);
        // A streamed block equals the one-shot path on the same data.
        let one_shot = bf.beamform(&blocks[0], CentralMode::Coherent).unwrap();
        assert_eq!(
            outputs[0].complex_beams.as_ref().unwrap(),
            one_shot.complex_beams.as_ref().unwrap()
        );
        // Empty observations are rejected.
        assert!(bf.stream_coherent(&[]).is_err());
    }

    #[test]
    fn sharded_observation_matches_the_single_device_stream() {
        let make = |frequency: f64, seed: u64| {
            StationBeamlets::synthesise(
                16,
                32,
                frequency,
                &[SkySource {
                    azimuth: 1e-4,
                    amplitude: 1.0,
                }],
                0.0,
                32,
                0.05,
                seed,
            )
        };
        // Five blocks with a retune after the third: the sharded session
        // must hot-swap weights on every member and keep outputs identical
        // to the single-device stream.
        let blocks = vec![
            make(FREQ, 1),
            make(FREQ, 2),
            make(FREQ, 3),
            make(1.1 * FREQ, 4),
            make(1.1 * FREQ, 5),
        ];
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let (single, _) = bf.stream_coherent(&blocks).unwrap();
        let pool = DevicePool::from_gpus(&[Gpu::A100, Gpu::Gh200, Gpu::Mi300x]);
        let (sharded, report) = bf
            .stream_coherent_sharded(&pool, ShardPolicy::CapacityWeighted, &blocks)
            .unwrap();
        assert_eq!(sharded.len(), single.len());
        for (s, r) in sharded.iter().zip(&single) {
            assert_eq!(
                s.complex_beams.as_ref().unwrap(),
                r.complex_beams.as_ref().unwrap()
            );
        }
        assert_eq!(report.total_blocks(), 5);
        assert_eq!(report.weight_swaps(), 1);
        assert_eq!(report.per_device().len(), 3);
        assert!(report.aggregate_tops() > 0.0);
        // Empty observations are rejected, like the single-device path.
        assert!(bf
            .stream_coherent_sharded(&pool, ShardPolicy::RoundRobin, &[])
            .is_err());
    }

    #[test]
    fn generic_engine_path_drives_any_topology_with_retunes() {
        // One generic implementation behind both shims: drive it directly
        // with a single-device engine and a pooled engine and compare to
        // the shim outputs, retune included.
        let make = |frequency: f64, seed: u64| {
            StationBeamlets::synthesise(
                12,
                24,
                frequency,
                &[SkySource {
                    azimuth: 1e-4,
                    amplitude: 1.0,
                }],
                0.0,
                32,
                0.05,
                seed,
            )
        };
        let blocks = vec![make(FREQ, 1), make(FREQ, 2), make(1.05 * FREQ, 3)];
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let (reference, _) = bf.stream_coherent(&blocks).unwrap();

        let mut engines: Vec<Box<dyn Engine>> = vec![
            Box::new(SingleEngine::new(bf.beamformer(&blocks[0]).unwrap()).unwrap()),
            Box::new(
                ShardedBeamformer::new(
                    &DevicePool::from_gpus(&[Gpu::A100, Gpu::Gh200]),
                    WeightMatrix::from_matrix(bf.weights(&blocks[0])),
                    blocks[0].num_samples(),
                    BeamformerConfig::float16(),
                    ShardPolicy::RoundRobin,
                )
                .unwrap(),
            ),
        ];
        for engine in &mut engines {
            let (outputs, report) = bf.stream_coherent_with(engine, &blocks).unwrap();
            assert_eq!(outputs.len(), reference.len());
            for (o, r) in outputs.iter().zip(&reference) {
                assert_eq!(
                    o.complex_beams.as_ref().unwrap(),
                    r.complex_beams.as_ref().unwrap()
                );
            }
            assert_eq!(report.total_blocks(), 3);
            assert_eq!(report.weight_swaps(), 1);
        }
    }

    #[test]
    fn incoherent_beamformer_is_direction_insensitive_but_cheap() {
        let beamlets = beamlets_with_source(3e-4, 24);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let output = bf.beamform(&beamlets, CentralMode::Incoherent).unwrap();
        // Every beam has the same power: no localisation.
        let p0 = CentralBeamformer::mean_beam_power(&output, 0);
        let p6 = CentralBeamformer::mean_beam_power(&output, 6);
        assert!((p0 - p6).abs() < 1e-9);
        assert!(output.report.is_none());
    }

    #[test]
    fn coherent_beam_is_narrower_with_more_stations() {
        // Higher angular resolution with more stations: the power ratio
        // between the on-source beam and a neighbouring beam grows.
        let ratio = |stations: usize| -> f64 {
            let beamlets = beamlets_with_source(0.0, stations);
            let bf = CentralBeamformer::new(&Gpu::A100.device(), vec![0.0, 4e-4]);
            let output = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
            CentralBeamformer::mean_beam_power(&output, 0)
                / CentralBeamformer::mean_beam_power(&output, 1)
        };
        assert!(ratio(32) > ratio(8));
    }

    #[test]
    fn weights_have_unit_sum_magnitude() {
        let beamlets = beamlets_with_source(0.0, 12);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), vec![0.0]);
        let weights = bf.weights(&beamlets);
        let sum: f32 = (0..12).map(|k| weights.get(0, k).abs()).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
