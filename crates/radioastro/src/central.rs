//! The central (second-stage) beamformer.
//!
//! The central processor combines the beamlet streams of all stations.
//! *Coherent* beamforming preserves phase: every tied-array beam is a
//! weighted sum over stations, so forming `M` beams over `N` samples and
//! `K` stations is the ccglib GEMM (with the product of polarisations and
//! channels as the batch size).  *Incoherent* beamforming adds station
//! powers instead: computationally cheap, wide field of view, no ccglib
//! involvement.  The float32 [`ReferenceBeamformer`] stands in for the
//! existing LOFAR GPU beamformer the paper compares against (with the
//! weight *computation* excluded, as the paper does for fairness).

use crate::station::StationBeamlets;
use beamform::geometry::SPEED_OF_LIGHT;
use ccglib::matrix::HostComplexMatrix;
use ccglib::{reference_gemm, Gemm, GemmInput, Precision, RunReport};
use gpu_sim::Device;
use serde::{Deserialize, Serialize};
use tcbf_types::{Complex, GemmShape};

/// Mode of the central beamformer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CentralMode {
    /// Phase-preserving tied-array beamforming (runs on tensor cores).
    Coherent,
    /// Power addition across stations (no phase information retained).
    Incoherent,
}

/// Output of the central beamformer.
#[derive(Clone, Debug)]
pub struct CentralOutput {
    /// Beam power per (beam, sample): `M × N`, real valued.
    pub power: Vec<Vec<f64>>,
    /// Complex beamformed data (`M × N`) for the coherent mode.
    pub complex_beams: Option<HostComplexMatrix>,
    /// Performance report of the tensor-core GEMM (coherent mode only).
    pub report: Option<RunReport>,
}

/// The central tensor-core beamformer: a thin LOFAR-specific wrapper
/// around the 16-bit mode of ccglib.
pub struct CentralBeamformer {
    device: Device,
    beam_azimuths: Vec<f64>,
}

impl CentralBeamformer {
    /// Creates a central beamformer forming one tied-array beam per entry
    /// of `beam_azimuths` (radians from the pointing centre).
    pub fn new(device: &Device, beam_azimuths: Vec<f64>) -> Self {
        assert!(!beam_azimuths.is_empty(), "at least one beam is required");
        CentralBeamformer {
            device: device.clone(),
            beam_azimuths,
        }
    }

    /// Number of tied-array beams (`M`).
    pub fn num_beams(&self) -> usize {
        self.beam_azimuths.len()
    }

    /// Station weights for all beams: `M × K`, the phase conjugate of each
    /// station's geometric delay towards each beam direction.
    pub fn weights(&self, beamlets: &StationBeamlets) -> HostComplexMatrix {
        let k = beamlets.num_stations();
        let positions = beamlets.station_positions_m();
        let frequency = beamlets.frequency();
        HostComplexMatrix::from_fn(self.num_beams(), k, |beam, station| {
            let delay = positions[station] * self.beam_azimuths[beam].sin() / SPEED_OF_LIGHT;
            let phi = std::f64::consts::TAU * frequency * delay;
            Complex::from_polar(1.0 / k as f32, phi as f32)
        })
    }

    /// Runs the central beamformer in the requested mode.
    pub fn beamform(
        &self,
        beamlets: &StationBeamlets,
        mode: CentralMode,
    ) -> ccglib::Result<CentralOutput> {
        match mode {
            CentralMode::Incoherent => Ok(self.incoherent(beamlets)),
            CentralMode::Coherent => self.coherent(beamlets),
        }
    }

    fn incoherent(&self, beamlets: &StationBeamlets) -> CentralOutput {
        // Incoherent beamforming discards phase: one wide beam whose power
        // is the sum of station powers.  Every "beam" sees the same power.
        let n = beamlets.num_samples();
        let k = beamlets.num_stations();
        let mut per_sample = vec![0.0f64; n];
        for (sample, power) in per_sample.iter_mut().enumerate() {
            for station in 0..k {
                *power += f64::from(beamlets.matrix().get(station, sample).norm_sqr());
            }
            *power /= k as f64;
        }
        CentralOutput {
            power: vec![per_sample; self.num_beams()],
            complex_beams: None,
            report: None,
        }
    }

    fn coherent(&self, beamlets: &StationBeamlets) -> ccglib::Result<CentralOutput> {
        let weights = self.weights(beamlets);
        let shape = GemmShape::new(
            self.num_beams(),
            beamlets.num_samples(),
            beamlets.num_stations(),
        );
        let gemm = Gemm::new(&self.device, shape, Precision::Float16)?;
        let samples_t = beamlets.matrix().transposed();
        let (beams, report) = gemm.run(
            &GemmInput::quantise_f16(&weights),
            &GemmInput::quantise_f16(&samples_t),
        )?;
        let power = (0..self.num_beams())
            .map(|b| {
                (0..beamlets.num_samples())
                    .map(|s| f64::from(beams.get(b, s).norm_sqr()))
                    .collect()
            })
            .collect();
        Ok(CentralOutput {
            power,
            complex_beams: Some(beams),
            report: Some(report),
        })
    }

    /// Mean power of one beam over all samples.
    pub fn mean_beam_power(output: &CentralOutput, beam: usize) -> f64 {
        let series = &output.power[beam];
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// The float32 reference beamformer: the "current LOFAR beamformer kernel
/// (without Tensor Cores) running in float32 precision" of Fig. 7.
pub struct ReferenceBeamformer;

impl ReferenceBeamformer {
    /// Coherently beamforms in full float32 precision on the host — the
    /// functional ground truth for the tensor-core output.
    pub fn beamform(
        weights: &HostComplexMatrix,
        beamlets: &StationBeamlets,
    ) -> ccglib::Result<HostComplexMatrix> {
        reference_gemm(weights, &beamlets.matrix().transposed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::SkySource;
    use gpu_sim::Gpu;

    const FREQ: f64 = 150e6;

    fn beamlets_with_source(azimuth: f64, stations: usize) -> StationBeamlets {
        StationBeamlets::synthesise(
            stations,
            32,
            FREQ,
            &[SkySource {
                azimuth,
                amplitude: 1.0,
            }],
            0.0,
            64,
            0.05,
            17,
        )
    }

    fn beam_grid() -> Vec<f64> {
        // Tied-array beams a few hundred micro-radians apart: the narrow
        // beams a kilometre-scale array synthesises.
        (0..7).map(|i| (i as f64 - 3.0) * 2e-4).collect()
    }

    #[test]
    fn coherent_beamformer_localises_the_source() {
        let beamlets = beamlets_with_source(2e-4, 24);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let output = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
        let powers: Vec<f64> = (0..bf.num_beams())
            .map(|b| CentralBeamformer::mean_beam_power(&output, b))
            .collect();
        let best = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // Beam index 4 looks at +2e-4 rad.
        assert_eq!(best, 4, "powers {powers:?}");
        assert!(output.report.is_some());
        assert!(output.complex_beams.is_some());
    }

    #[test]
    fn coherent_matches_float32_reference() {
        let beamlets = beamlets_with_source(0.0, 16);
        let bf = CentralBeamformer::new(&Gpu::Gh200.device(), beam_grid());
        let weights = bf.weights(&beamlets);
        let tensor = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
        let reference = ReferenceBeamformer::beamform(&weights, &beamlets).unwrap();
        let diff = tensor.complex_beams.unwrap().max_abs_diff(&reference);
        assert!(diff < 0.02, "difference {diff}");
    }

    #[test]
    fn incoherent_beamformer_is_direction_insensitive_but_cheap() {
        let beamlets = beamlets_with_source(3e-4, 24);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), beam_grid());
        let output = bf.beamform(&beamlets, CentralMode::Incoherent).unwrap();
        // Every beam has the same power: no localisation.
        let p0 = CentralBeamformer::mean_beam_power(&output, 0);
        let p6 = CentralBeamformer::mean_beam_power(&output, 6);
        assert!((p0 - p6).abs() < 1e-9);
        assert!(output.report.is_none());
    }

    #[test]
    fn coherent_beam_is_narrower_with_more_stations() {
        // Higher angular resolution with more stations: the power ratio
        // between the on-source beam and a neighbouring beam grows.
        let ratio = |stations: usize| -> f64 {
            let beamlets = beamlets_with_source(0.0, stations);
            let bf = CentralBeamformer::new(&Gpu::A100.device(), vec![0.0, 4e-4]);
            let output = bf.beamform(&beamlets, CentralMode::Coherent).unwrap();
            CentralBeamformer::mean_beam_power(&output, 0)
                / CentralBeamformer::mean_beam_power(&output, 1)
        };
        assert!(ratio(32) > ratio(8));
    }

    #[test]
    fn weights_have_unit_sum_magnitude() {
        let beamlets = beamlets_with_source(0.0, 12);
        let bf = CentralBeamformer::new(&Gpu::A100.device(), vec![0.0]);
        let weights = bf.weights(&beamlets);
        let sum: f32 = (0..12).map(|k| weights.get(0, k).abs()).sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
