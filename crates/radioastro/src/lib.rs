//! LOFAR-style radio-astronomy beamforming on the Tensor-Core Beamformer
//! (Section V-B of the paper).
//!
//! LOFAR is a distributed low-frequency radio telescope: each *station*
//! beamforms its own antennas on FPGAs into *beamlet* data, which is
//! shipped to a central processor where a second beamforming stage combines
//! the stations — either *coherently* (phase-preserving, narrow tied-array
//! beams, the compute-heavy mode mapped onto ccglib) or *incoherently*
//! (power addition, wide field of view).
//!
//! This crate models both stages with synthetic sky data:
//!
//! * [`station`] — stations, antennas, the first-stage station beamformer
//!   and synthetic beamlet generation;
//! * [`central`] — the central tensor-core beamformer (16-bit mode of
//!   ccglib), the incoherent beamformer and the float32 reference
//!   beamformer the paper compares against;
//! * [`performance`] — the Fig. 7 sweep: throughput and energy efficiency
//!   versus the number of combined receivers, with the reference
//!   beamformer lines on the A100 and GH200.

#![deny(missing_docs)]

pub mod central;
pub mod performance;
pub mod station;

pub use central::{CentralBeamformer, CentralMode, CentralOutput, ReferenceBeamformer};
pub use performance::{lofar_sweep, LofarConfig, SweepPoint};
pub use station::{SkySource, Station, StationBeamlets};
