//! The Fig. 7 performance sweep: LOFAR tensor-core beamformer throughput
//! and energy efficiency versus the number of combined receivers.
//!
//! Configuration from the paper: 1024 beams, 1024 time samples, 8 to 512
//! stations, batch size 256 (polarisations × channels); only the
//! matrix-multiplication component is timed because the data are already
//! GPU-resident.  The reference lines are the existing LOFAR float32
//! beamformer kernel on the A100 and GH200, with the weight computation
//! removed for a fair comparison.

use ccglib::{benchmark, reference, Precision};
use gpu_sim::{Device, ExecutionModel, PowerModel};
use serde::{Deserialize, Serialize};
use tcbf_types::GemmShape;

/// Configuration of the LOFAR sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LofarConfig {
    /// Number of tied-array beams (`M`).
    pub beams: usize,
    /// Number of time samples per block (`N`).
    pub samples: usize,
    /// Batch size: polarisations × channels.
    pub batch: usize,
}

impl LofarConfig {
    /// The configuration used for Fig. 7.
    pub fn paper() -> Self {
        LofarConfig {
            beams: 1024,
            samples: 1024,
            batch: 256,
        }
    }

    /// The GEMM shape for a given number of stations.
    pub fn shape(&self, stations: usize) -> GemmShape {
        GemmShape::batched(self.batch, self.beams, self.samples, stations)
    }

    /// The typical LOFAR configuration combines 48 stations.
    pub const TYPICAL_STATIONS: usize = 48;
}

/// One point of the Fig. 7 curves.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of receivers (stations) combined.
    pub receivers: usize,
    /// Achieved throughput in TeraFLOP/s (the paper labels the float16
    /// axis TFLOPs/s).
    pub tflops: f64,
    /// Energy efficiency in TeraFLOP/J.
    pub tflops_per_joule: f64,
}

/// Runs the tensor-core sweep for one device over a list of receiver
/// counts.
pub fn lofar_sweep(device: &Device, config: &LofarConfig, receivers: &[usize]) -> Vec<SweepPoint> {
    receivers
        .iter()
        .map(|&k| {
            let result = benchmark::measure(device, config.shape(k), Precision::Float16)
                .expect("LOFAR shapes fit on every evaluated device");
            SweepPoint {
                receivers: k,
                tflops: result.tops,
                tflops_per_joule: result.tops_per_joule,
            }
        })
        .collect()
}

/// Runs the float32 reference beamformer sweep (the non-tensor-core LOFAR
/// kernel) for one device.
pub fn reference_sweep(
    device: &Device,
    config: &LofarConfig,
    receivers: &[usize],
) -> Vec<SweepPoint> {
    let spec = device.spec();
    let exec = ExecutionModel::new(spec.clone());
    let power = PowerModel::new(spec.clone());
    receivers
        .iter()
        .map(|&k| {
            let shape = config.shape(k);
            let profile =
                reference::reference_profile(spec, &shape, reference::DEFAULT_REFERENCE_EFFICIENCY);
            let timings = exec.time(&profile);
            let joules = power.energy_joules(profile.kind, &timings);
            SweepPoint {
                receivers: k,
                tflops: timings.achieved_tops,
                tflops_per_joule: shape.complex_ops() as f64 / joules / 1e12,
            }
        })
        .collect()
}

/// The receiver counts swept in Fig. 7 (8 to 512 in steps of 8).
pub fn paper_receiver_counts() -> Vec<usize> {
    (8..=512).step_by(8).collect()
}

/// Speed-up of the tensor-core beamformer over the reference beamformer on
/// the same device at a given receiver count.
pub fn speedup_over_reference(device: &Device, config: &LofarConfig, receivers: usize) -> f64 {
    let tc = lofar_sweep(device, config, &[receivers])[0];
    let reference = reference_sweep(device, config, &[receivers])[0];
    tc.tflops / reference.tflops
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Gpu;

    #[test]
    fn paper_config_shapes() {
        let config = LofarConfig::paper();
        let shape = config.shape(48);
        assert_eq!(shape, GemmShape::batched(256, 1024, 1024, 48));
        assert_eq!(paper_receiver_counts().len(), 64);
        assert_eq!(paper_receiver_counts()[0], 8);
        assert_eq!(*paper_receiver_counts().last().unwrap(), 512);
    }

    #[test]
    fn throughput_grows_with_receivers() {
        let config = LofarConfig::paper();
        let points = lofar_sweep(&Gpu::A100.device(), &config, &[8, 64, 256, 512]);
        assert_eq!(points.len(), 4);
        assert!(points[0].tflops < points[1].tflops);
        assert!(points[1].tflops < points[3].tflops);
    }

    #[test]
    fn tcbf_beats_reference_except_for_tiny_receiver_counts() {
        // Fig. 7 / conclusions: "Except for very small numbers of
        // receivers, the TCBF outperforms the reference beamformer …  On
        // the A100, the TCBF is up to 20 times faster and 10 times more
        // energy efficient."
        let config = LofarConfig::paper();
        let device = Gpu::A100.device();
        let receivers = [8usize, 48, 256, 512];
        let tc = lofar_sweep(&device, &config, &receivers);
        let reference = reference_sweep(&device, &config, &receivers);
        // At 48 stations (the typical configuration) and above, the TCBF
        // is several times faster.
        for i in 1..receivers.len() {
            assert!(
                tc[i].tflops > 2.0 * reference[i].tflops,
                "receivers {}: {} vs {}",
                receivers[i],
                tc[i].tflops,
                reference[i].tflops
            );
            assert!(tc[i].tflops_per_joule > reference[i].tflops_per_joule);
        }
        // The maximum speed-up over the sweep reaches order 10-20x.
        let max_speedup = receivers
            .iter()
            .map(|&k| speedup_over_reference(&device, &config, k))
            .fold(0.0, f64::max);
        assert!(max_speedup > 8.0, "max speedup {max_speedup}");
        assert!(
            max_speedup < 100.0,
            "max speedup {max_speedup} implausibly high"
        );
    }

    #[test]
    fn mi300x_outperforms_gh200_on_this_application() {
        // "The MI300X outperforms the GH200 on this application, achieving
        // up to 50% higher performance" — but does not reach its own peak
        // because 512 receivers is still too small a workload.
        let config = LofarConfig::paper();
        let receivers = [512usize];
        let mi300x = lofar_sweep(&Gpu::Mi300x.device(), &config, &receivers)[0];
        let gh200 = lofar_sweep(&Gpu::Gh200.device(), &config, &receivers)[0];
        assert!(mi300x.tflops > gh200.tflops);
        assert!(
            mi300x.tflops < 0.9 * 603.0,
            "MI300X should not reach its large-matrix throughput"
        );
    }

    #[test]
    fn sawtooth_from_receiver_padding() {
        // "The sawtooth pattern stems from padding that happens when the
        // number of receivers is not a multiple of the amount of work per
        // GPU thread block": a receiver count just above a fragment
        // boundary is less efficient than the boundary itself.
        let config = LofarConfig::paper();
        let device = Gpu::A100.device();
        let at = |k: usize| lofar_sweep(&device, &config, &[k])[0].tflops;
        assert!(at(256) > at(264) || at(128) > at(136));
    }

    #[test]
    fn energy_efficiency_advantage_of_the_tcbf() {
        // The radio-astronomical TCBF is several times more energy
        // efficient than the reference beamformer.
        let config = LofarConfig::paper();
        let device = Gpu::A100.device();
        let tc = lofar_sweep(&device, &config, &[512])[0];
        let reference = reference_sweep(&device, &config, &[512])[0];
        let gain = tc.tflops_per_joule / reference.tflops_per_joule;
        assert!(gain > 4.0, "energy gain {gain}");
    }
}
