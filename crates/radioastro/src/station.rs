//! LOFAR stations, the first-stage (FPGA) station beamformer and
//! synthetic beamlet generation.
//!
//! Each station consists of many individual antennas whose signals are
//! combined on FPGAs into a single *station beam* pointed at the target
//! region of the sky; the resulting time–frequency "beamlet" data streams
//! to the central processor.  For the reproduction the station beamformer
//! is implemented directly (a weighted sum over antennas, just like the
//! generic beamformer) and the sky is synthetic: a set of point sources
//! with known directions plus receiver noise.

use beamform::geometry::{ArrayGeometry, SPEED_OF_LIGHT};
use beamform::signal::{PlaneWaveSource, SignalGenerator};
use beamform::weights::steering_vector;
use ccglib::matrix::HostComplexMatrix;
use serde::{Deserialize, Serialize};
use tcbf_types::Complex32;

/// A point source on the (one-dimensional, for simplicity) synthetic sky.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SkySource {
    /// Direction of the source in radians from the pointing centre.
    pub azimuth: f64,
    /// Flux (amplitude) of the source.
    pub amplitude: f64,
}

/// One LOFAR-like station.
#[derive(Clone, Debug)]
pub struct Station {
    /// Station index within the array.
    pub index: usize,
    /// Geographic position of the station along the baseline axis, in
    /// metres from the array centre.
    pub position_m: f64,
    /// Antenna layout within the station.
    geometry: ArrayGeometry,
    /// Observing frequency in Hz.
    frequency: f64,
}

impl Station {
    /// Creates a station with `num_antennas` antennas at half-wavelength
    /// spacing, located `position_m` metres from the array centre.
    pub fn new(index: usize, position_m: f64, num_antennas: usize, frequency: f64) -> Self {
        let wavelength = SPEED_OF_LIGHT / frequency;
        Station {
            index,
            position_m,
            geometry: ArrayGeometry::uniform_linear(num_antennas, wavelength / 2.0, SPEED_OF_LIGHT),
            frequency,
        }
    }

    /// Number of antennas in the station.
    pub fn num_antennas(&self) -> usize {
        self.geometry.num_sensors()
    }

    /// Observing frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// Runs the FPGA station beamformer: points the station at
    /// `pointing` (radians) and produces one beamlet sample per time
    /// sample, given the per-antenna samples of synthetic sky sources.
    ///
    /// The station-level geometric delay (from the station's position in
    /// the array) is *not* removed here — that is precisely the job of the
    /// central beamformer's per-station weights.
    pub fn beamform_station(
        &self,
        sources: &[SkySource],
        pointing: f64,
        num_samples: usize,
        noise_sigma: f64,
        seed: u64,
    ) -> Vec<Complex32> {
        // Antenna-level samples of the sources as seen by this station.
        let plane_waves: Vec<PlaneWaveSource> = sources
            .iter()
            .map(|s| PlaneWaveSource {
                azimuth: s.azimuth,
                amplitude: s.amplitude,
                baseband_frequency: 0.0,
            })
            .collect();
        let mut generator = SignalGenerator::new(
            self.geometry.clone(),
            self.frequency,
            200e3,
            noise_sigma,
            seed ^ (self.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let antenna_samples = generator.sensor_samples(&plane_waves, num_samples);

        // Station weights: steer the antenna array towards the pointing.
        let weights = steering_vector(&self.geometry, self.frequency, pointing, true);

        // Station-level phase from the station's position in the array for
        // each source is applied on top, so the central beamformer has a
        // real phase gradient to undo.
        (0..num_samples)
            .map(|n| {
                let mut beamlet = Complex32::ZERO;
                for (a, w) in weights.iter().enumerate() {
                    beamlet += *w * antenna_samples.get(a, n);
                }
                // Apply the array-level geometric phase of the dominant
                // pointing direction mix: each source contributes a phase
                // according to the station position.
                let mut station_phase = Complex32::ZERO;
                for s in sources {
                    let delay = self.position_m * s.azimuth.sin() / SPEED_OF_LIGHT;
                    let phi = -std::f64::consts::TAU * self.frequency * delay;
                    station_phase += tcbf_types::Complex::from_polar(
                        (s.amplitude / sources.iter().map(|x| x.amplitude).sum::<f64>()) as f32,
                        phi as f32,
                    );
                }
                if sources.is_empty() {
                    beamlet
                } else {
                    beamlet * station_phase.scale(1.0 / station_phase.abs().max(1e-6))
                }
            })
            .collect()
    }
}

/// Beamlet data from a set of stations: the `K × N` input of the central
/// beamformer (one row per station).
#[derive(Clone, Debug, PartialEq)]
pub struct StationBeamlets {
    data: HostComplexMatrix,
    station_positions_m: Vec<f64>,
    frequency: f64,
}

impl StationBeamlets {
    /// Generates synthetic beamlets for a regularly spaced array of
    /// `num_stations` stations observing the given sources.
    #[allow(clippy::too_many_arguments)] // mirrors the observation-setup parameter list of the paper's Fig. 7 runs
    pub fn synthesise(
        num_stations: usize,
        antennas_per_station: usize,
        frequency: f64,
        sources: &[SkySource],
        pointing: f64,
        num_samples: usize,
        noise_sigma: f64,
        seed: u64,
    ) -> Self {
        assert!(num_stations > 0);
        let spacing = 1000.0; // 1 km between stations: a compact LOFAR core.
        let centre = (num_stations as f64 - 1.0) / 2.0;
        let stations: Vec<Station> = (0..num_stations)
            .map(|i| {
                Station::new(
                    i,
                    (i as f64 - centre) * spacing,
                    antennas_per_station,
                    frequency,
                )
            })
            .collect();
        let mut data = HostComplexMatrix::zeros(num_stations, num_samples);
        for (s_idx, station) in stations.iter().enumerate() {
            let beamlets =
                station.beamform_station(sources, pointing, num_samples, noise_sigma, seed);
            for (n, v) in beamlets.into_iter().enumerate() {
                data.set(s_idx, n, v);
            }
        }
        StationBeamlets {
            data,
            station_positions_m: stations.iter().map(|s| s.position_m).collect(),
            frequency,
        }
    }

    /// Number of stations (`K` of the central GEMM).
    pub fn num_stations(&self) -> usize {
        self.data.rows()
    }

    /// Number of time samples (`N`).
    pub fn num_samples(&self) -> usize {
        self.data.cols()
    }

    /// The `K × N` beamlet matrix.
    pub fn matrix(&self) -> &HostComplexMatrix {
        &self.data
    }

    /// Station positions along the baseline axis, in metres.
    pub fn station_positions_m(&self) -> &[f64] {
        &self.station_positions_m
    }

    /// Observing frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQ: f64 = 150e6;

    #[test]
    fn station_construction() {
        let station = Station::new(3, 2000.0, 48, FREQ);
        assert_eq!(station.index, 3);
        assert_eq!(station.num_antennas(), 48);
        assert_eq!(station.frequency(), FREQ);
    }

    #[test]
    fn station_beam_suppresses_off_pointing_sources() {
        let station = Station::new(0, 0.0, 96, FREQ);
        let on_source = vec![SkySource {
            azimuth: 0.0,
            amplitude: 1.0,
        }];
        let off_source = vec![SkySource {
            azimuth: 0.4,
            amplitude: 1.0,
        }];
        let power = |sources: &[SkySource]| -> f64 {
            station
                .beamform_station(sources, 0.0, 32, 0.0, 1)
                .iter()
                .map(|v| f64::from(v.norm_sqr()))
                .sum::<f64>()
                / 32.0
        };
        let on = power(&on_source);
        let off = power(&off_source);
        assert!(on > 20.0 * off, "on {on} vs off {off}");
    }

    #[test]
    fn beamlets_have_station_by_sample_shape() {
        let sources = [SkySource {
            azimuth: 0.01,
            amplitude: 1.0,
        }];
        let beamlets = StationBeamlets::synthesise(12, 16, FREQ, &sources, 0.0, 24, 0.1, 5);
        assert_eq!(beamlets.num_stations(), 12);
        assert_eq!(beamlets.num_samples(), 24);
        assert_eq!(beamlets.station_positions_m().len(), 12);
        // Positions are centred on zero.
        let mean: f64 =
            beamlets.station_positions_m().iter().sum::<f64>() / beamlets.num_stations() as f64;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn synthesis_is_reproducible() {
        let sources = [SkySource {
            azimuth: 0.02,
            amplitude: 2.0,
        }];
        let a = StationBeamlets::synthesise(4, 8, FREQ, &sources, 0.0, 16, 0.2, 9);
        let b = StationBeamlets::synthesise(4, 8, FREQ, &sources, 0.0, 16, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn stations_see_phase_gradients_from_off_centre_sources() {
        // A source away from the pointing centre produces different phases
        // at different stations — the information the coherent central
        // beamformer exploits.
        let sources = [SkySource {
            azimuth: 1e-4,
            amplitude: 1.0,
        }];
        let beamlets = StationBeamlets::synthesise(8, 32, FREQ, &sources, 0.0, 4, 0.0, 3);
        let first = beamlets.matrix().get(0, 0);
        let last = beamlets.matrix().get(7, 0);
        assert!((first.arg() - last.arg()).abs() > 1e-3);
    }
}
