//! `lint-allow.toml` — the single, annotated suppression file.
//!
//! Format (a deliberately small TOML subset, parsed by hand so the
//! linter stays dependency-free):
//!
//! ```toml
//! # Comments explain the policy; each entry carries its own reason.
//! [[allow]]
//! rule = "TCBF-D002"
//! path = "crates/beamform/src/engine.rs"
//! pattern = ".sum::<f32>()"          # optional: substring of the line
//! reason = "sequential fold in fixed plan order — deterministic"
//! ```
//!
//! - `rule` and `path` are exact matches; `path` may end in `/` to
//!   cover a directory prefix.
//! - `pattern`, when present, must be a substring of the flagged line.
//! - `reason` is **mandatory and non-empty**: a suppression without a
//!   justification is a configuration error (exit code 2), which is what
//!   keeps the allowlist reviewable instead of a mute button.
//! - Entries that match nothing are reported as stale so the file
//!   cannot silently rot.

use crate::diagnostics::Finding;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID the entry suppresses.
    pub rule: String,
    /// Exact path, or a `/`-terminated directory prefix.
    pub path: String,
    /// Optional substring that must appear on the flagged line.
    pub pattern: Option<String>,
    /// Mandatory human justification.
    pub reason: String,
    /// 1-based line in lint-allow.toml, for error reporting.
    pub defined_at: u32,
}

/// Parsed allowlist plus match bookkeeping.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A fatal problem in the allowlist file itself.
#[derive(Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line where the problem was detected.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-allow.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the TOML-subset allowlist. Returns every structural error
    /// at once rather than bailing on the first.
    pub fn parse(text: &str) -> Result<Allowlist, Vec<AllowlistError>> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut errors: Vec<AllowlistError> = Vec::new();
        let mut current: Option<AllowEntry> = None;

        let mut finish = |entry: Option<AllowEntry>, errors: &mut Vec<AllowlistError>| {
            if let Some(e) = entry {
                if e.rule.is_empty() {
                    errors.push(AllowlistError {
                        line: e.defined_at,
                        message: "entry is missing `rule`".into(),
                    });
                } else if e.path.is_empty() {
                    errors.push(AllowlistError {
                        line: e.defined_at,
                        message: "entry is missing `path`".into(),
                    });
                } else if e.reason.trim().is_empty() {
                    errors.push(AllowlistError {
                        line: e.defined_at,
                        message: format!(
                            "entry for {} on {} has no `reason` — every suppression must be justified",
                            e.rule, e.path
                        ),
                    });
                } else {
                    entries.push(e);
                }
            }
        };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(current.take(), &mut errors);
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    pattern: None,
                    reason: String::new(),
                    defined_at: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                errors.push(AllowlistError {
                    line: lineno,
                    message: format!(
                        "unsupported table `{line}` (only [[allow]] entries are allowed)"
                    ),
                });
                current = None;
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                errors.push(AllowlistError {
                    line: lineno,
                    message: format!("cannot parse line `{line}` (expected `key = \"value\"`)"),
                });
                continue;
            };
            let Some(entry) = current.as_mut() else {
                errors.push(AllowlistError {
                    line: lineno,
                    message: format!("`{key}` outside any [[allow]] entry"),
                });
                continue;
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "pattern" => entry.pattern = Some(value),
                "reason" => entry.reason = value,
                other => errors.push(AllowlistError {
                    line: lineno,
                    message: format!("unknown key `{other}` (expected rule/path/pattern/reason)"),
                }),
            }
        }
        finish(current.take(), &mut errors);

        if errors.is_empty() {
            Ok(Allowlist { entries })
        } else {
            Err(errors)
        }
    }

    /// Marks every finding covered by an entry as suppressed and returns
    /// the (1-based) indices of entries that matched nothing.
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<&AllowEntry> {
        let mut used = vec![false; self.entries.len()];
        for finding in findings.iter_mut() {
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.matches(finding) {
                    finding.suppressed_by = Some(entry.reason.clone());
                    used[i] = true;
                    break;
                }
            }
        }
        self.entries
            .iter()
            .zip(used)
            .filter(|(_, u)| !u)
            .map(|(e, _)| e)
            .collect()
    }
}

impl AllowEntry {
    /// True when this entry covers the finding.
    pub fn matches(&self, finding: &Finding) -> bool {
        if self.rule != finding.rule {
            return false;
        }
        let path_ok = if self.path.ends_with('/') {
            finding.path.starts_with(&self.path)
        } else {
            finding.path == self.path
        };
        if !path_ok {
            return false;
        }
        match &self.pattern {
            Some(p) => finding.line_text.contains(p.as_str()),
            None => true,
        }
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"`; returns None on anything else.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    if !rest.starts_with('"') || !rest.ends_with('"') || rest.len() < 2 {
        return None;
    }
    let body = &rest[1..rest.len() - 1];
    // Minimal escape handling: \" and \\.
    let mut value = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some(other) => {
                    value.push('\\');
                    value.push(other);
                }
                None => value.push('\\'),
            }
        } else {
            value.push(c);
        }
    }
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line_text: &str) -> Finding {
        Finding::new(rule, path, 1, 1, "msg".into(), line_text)
    }

    #[test]
    fn parses_entries_and_matches() {
        let toml = r#"
# policy header comment
[[allow]]
rule = "TCBF-D002"
path = "crates/beamform/src/engine.rs"
pattern = ".sum::<f32>()"  # trailing comment
reason = "fixed plan order"
"#;
        let allow = Allowlist::parse(toml).unwrap();
        assert_eq!(allow.entries.len(), 1);
        let mut fs = vec![finding(
            "TCBF-D002",
            "crates/beamform/src/engine.rs",
            "let x: f32 = v.iter().sum::<f32>();",
        )];
        let stale = allow.apply(&mut fs);
        assert!(stale.is_empty());
        assert_eq!(fs[0].suppressed_by.as_deref(), Some("fixed plan order"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let toml = "[[allow]]\nrule = \"TCBF-P001\"\npath = \"a.rs\"\n";
        let errs = Allowlist::parse(toml).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("reason"));
    }

    #[test]
    fn directory_prefix_paths() {
        let toml = "[[allow]]\nrule = \"R\"\npath = \"crates/x/\"\nreason = \"y\"\n";
        let allow = Allowlist::parse(toml).unwrap();
        assert!(allow.entries[0].matches(&finding("R", "crates/x/src/a.rs", "")));
        assert!(!allow.entries[0].matches(&finding("R", "crates/y/src/a.rs", "")));
    }

    #[test]
    fn stale_entries_are_reported() {
        let toml = "[[allow]]\nrule = \"R\"\npath = \"never.rs\"\nreason = \"y\"\n";
        let allow = Allowlist::parse(toml).unwrap();
        let mut fs: Vec<Finding> = Vec::new();
        let stale = allow.apply(&mut fs);
        assert_eq!(stale.len(), 1);
    }

    #[test]
    fn pattern_must_match_the_line() {
        let toml =
            "[[allow]]\nrule = \"R\"\npath = \"a.rs\"\npattern = \"needle\"\nreason = \"y\"\n";
        let allow = Allowlist::parse(toml).unwrap();
        assert!(allow.entries[0].matches(&finding("R", "a.rs", "has needle here")));
        assert!(!allow.entries[0].matches(&finding("R", "a.rs", "nothing")));
    }

    #[test]
    fn bad_syntax_collects_errors() {
        let toml = "rule = \"orphan\"\n[garbage]\n[[allow]]\nnot a kv line\n";
        let errs = Allowlist::parse(toml).unwrap_err();
        assert!(errs.len() >= 3);
    }
}
