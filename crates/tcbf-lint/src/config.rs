//! Lint scope configuration.
//!
//! The default configuration IS the project policy (the scopes named in
//! docs/LINTS.md).  Fixture tests build custom configs so each rule can
//! be exercised against a synthetic file without dragging the real
//! workspace layout along.
//!
//! Path lists use one convention throughout: an entry ending in `/` is a
//! directory prefix, anything else is an exact workspace-relative path.

/// Scope configuration for all rules.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Files under the serve-path panic-freedom contract
    /// (TCBF-P001/P002/P003): no panics outside test code.
    pub serve_path: Vec<String>,
    /// Files where float reductions are checked (TCBF-D002)…
    pub float_scope: Vec<String>,
    /// …minus the approved micro-kernel modules, whose summation order
    /// is the pinned reference semantics itself.
    pub float_approved: Vec<String>,
    /// Timing modules allowed to call `Instant::now` (TCBF-D004).
    pub instant_allowed: Vec<String>,
    /// Zero-argument guard-returning methods treated as lock
    /// acquisitions by the static lock-order analysis (TCBF-L001/L002).
    /// `read`/`write` are omitted by default because too many non-lock
    /// APIs share those names; the dynamic checker still covers RwLock.
    pub lock_methods: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            serve_path: vec![
                "crates/tcbf-serve/src/".into(),
                "crates/beamform/src/engine.rs".into(),
                "crates/beamform/src/shard.rs".into(),
            ],
            float_scope: vec![
                "crates/ccglib/src/".into(),
                "crates/beamform/src/".into(),
                "crates/tcbf-serve/src/".into(),
            ],
            float_approved: vec![
                "crates/ccglib/src/micro.rs".into(),
                "crates/ccglib/src/gemm.rs".into(),
                "crates/ccglib/src/reference.rs".into(),
            ],
            instant_allowed: vec![
                "crates/tcbf-serve/src/".into(),
                "crates/tuner/src/micro.rs".into(),
                "crates/bench/src/".into(),
            ],
            lock_methods: vec!["lock".into()],
        }
    }
}

impl LintConfig {
    /// True when `path` matches an entry of `list` (prefix or exact).
    pub fn path_in(path: &str, list: &[String]) -> bool {
        list.iter().any(|entry| {
            if entry.ends_with('/') {
                path.starts_with(entry.as_str())
            } else {
                path == entry
            }
        })
    }

    /// Is the file under the serve-path panic-freedom contract?
    pub fn in_serve_path(&self, path: &str) -> bool {
        Self::path_in(path, &self.serve_path)
    }

    /// Is the file in scope for float-reduction checks?
    pub fn in_float_scope(&self, path: &str) -> bool {
        Self::path_in(path, &self.float_scope) && !Self::path_in(path, &self.float_approved)
    }

    /// May the file call `Instant::now`?
    pub fn instant_allowed(&self, path: &str) -> bool {
        Self::path_in(path, &self.instant_allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_exact_matching() {
        let cfg = LintConfig::default();
        assert!(cfg.in_serve_path("crates/tcbf-serve/src/pool.rs"));
        assert!(cfg.in_serve_path("crates/tcbf-serve/src/bin/tcbf_serve.rs"));
        assert!(cfg.in_serve_path("crates/beamform/src/engine.rs"));
        assert!(!cfg.in_serve_path("crates/beamform/src/session.rs"));
        assert!(cfg.in_float_scope("crates/beamform/src/session.rs"));
        assert!(!cfg.in_float_scope("crates/ccglib/src/micro.rs"));
        assert!(cfg.instant_allowed("crates/tuner/src/micro.rs"));
        assert!(!cfg.instant_allowed("crates/tuner/src/lib.rs"));
    }
}
