//! Finding model and rustc-style rendering.

use std::fmt;

/// One rule violation at a specific source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier, e.g. `TCBF-P001`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// The full source line, for context and allowlist `pattern` matching.
    pub line_text: String,
    /// Set by the allowlist pass when a `lint-allow.toml` entry covers
    /// this finding; carries the entry's justification.
    pub suppressed_by: Option<String>,
}

impl Finding {
    /// Builds an unsuppressed finding.
    pub fn new(
        rule: &'static str,
        path: &str,
        line: u32,
        col: u32,
        message: String,
        line_text: &str,
    ) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
            line_text: line_text.to_string(),
            suppressed_by: None,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        let trimmed = self.line_text.trim_end();
        if !trimmed.is_empty() {
            writeln!(f, "   | {trimmed}")?;
        }
        if let Some(reason) = &self.suppressed_by {
            writeln!(f, "   = allowed: {reason}")?;
        }
        Ok(())
    }
}

/// Deterministic ordering for reports: path, then line, then rule.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}
