//! A hand-rolled token-level Rust lexer.
//!
//! The linter's rules are all expressible over a flat token stream —
//! no parse tree is built.  The lexer's contract is therefore modest but
//! strict:
//!
//! 1. **Total**: it never panics, on any input (proptested).
//! 2. **Lossless**: the concatenation of every token's text is exactly
//!    the input (`tests/lexer_roundtrip.rs` round-trips arbitrary
//!    strings), so byte offsets, lines and columns are always exact.
//! 3. **Comment/string-safe**: rule patterns never fire inside comments,
//!    strings (including raw strings with any number of `#`s) or char
//!    literals, because those regions lex into single opaque tokens.
//!
//! Classification is deliberately approximate where precision does not
//! matter for the rules (keywords are plain [`TokenKind::Ident`]s,
//! multi-character operators are consecutive [`TokenKind::Punct`]s).

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// ...` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* ... */`, nesting honoured; unterminated comments extend to EOF.
    BlockComment,
    /// An identifier or keyword: `[_a-zA-Z][_a-zA-Z0-9]*` (plus any
    /// alphabetic unicode start, so exotic input cannot derail the lexer).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A character or byte literal: `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// A string literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."` etc.
    StrLit,
    /// A numeric literal, including suffixes: `42`, `0xff_u8`, `1.5e-3`.
    NumLit,
    /// One punctuation character that is not a delimiter.
    Punct(char),
    /// An opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// A closing delimiter: `)`, `]` or `}`.
    Close(char),
    /// Any other character (stray unicode, invalid bytes): one per token.
    Unknown,
}

/// One lexed token: classification plus its exact span in the source.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for tokens rules should skip: whitespace and comments.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.pos..).and_then(|s| s.chars().next())
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.src.get(self.pos..).and_then(|s| s.chars().nth(offset))
    }

    /// Advances one char, maintaining line/col bookkeeping.
    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(s))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a lossless token stream.  Never panics.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cursor = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while cursor.pos < cursor.bytes.len() {
        let start = cursor.pos;
        let line = cursor.line;
        let col = cursor.col;
        let kind = next_kind(&mut cursor);
        // Defensive: every branch of `next_kind` advances, but if one ever
        // failed to, emit the char as Unknown rather than looping forever.
        if cursor.pos == start {
            cursor.bump();
            tokens.push(Token {
                kind: TokenKind::Unknown,
                start,
                end: cursor.pos,
                line,
                col,
            });
            continue;
        }
        tokens.push(Token {
            kind,
            start,
            end: cursor.pos,
            line,
            col,
        });
    }
    tokens
}

fn next_kind(c: &mut Cursor) -> TokenKind {
    let Some(first) = c.peek() else {
        return TokenKind::Unknown;
    };

    if first.is_whitespace() {
        while c.peek().is_some_and(char::is_whitespace) {
            c.bump();
        }
        return TokenKind::Whitespace;
    }

    if c.starts_with("//") {
        while c.peek().is_some_and(|ch| ch != '\n') {
            c.bump();
        }
        return TokenKind::LineComment;
    }

    if c.starts_with("/*") {
        c.bump();
        c.bump();
        let mut depth = 1usize;
        while depth > 0 {
            if c.starts_with("/*") {
                depth += 1;
                c.bump();
                c.bump();
            } else if c.starts_with("*/") {
                depth -= 1;
                c.bump();
                c.bump();
            } else if c.peek().is_some() {
                c.bump();
            } else {
                break; // unterminated: extend to EOF
            }
        }
        return TokenKind::BlockComment;
    }

    // Raw strings and byte literals: r"...", r#"..."#, br"...", b"...", b'x'.
    if first == 'r' || first == 'b' {
        if let Some(kind) = try_string_prefix(c) {
            return kind;
        }
    }

    if is_ident_start(first) {
        while c.peek().is_some_and(is_ident_continue) {
            c.bump();
        }
        return TokenKind::Ident;
    }

    if first == '\'' {
        return lex_quote(c);
    }

    if first == '"' {
        lex_string_body(c);
        return TokenKind::StrLit;
    }

    if first.is_ascii_digit() {
        lex_number(c);
        return TokenKind::NumLit;
    }

    match first {
        '(' | '[' | '{' => {
            c.bump();
            TokenKind::Open(first)
        }
        ')' | ']' | '}' => {
            c.bump();
            TokenKind::Close(first)
        }
        _ if first.is_ascii_punctuation() => {
            c.bump();
            TokenKind::Punct(first)
        }
        _ => {
            c.bump();
            TokenKind::Unknown
        }
    }
}

/// Handles `r`/`b`-prefixed literals; returns `None` when the prefix is
/// just the start of a plain identifier (`radius`, `block`).
fn try_string_prefix(c: &mut Cursor) -> Option<TokenKind> {
    let rest = c.src.get(c.pos..)?;
    let prefix_len = if rest.starts_with("br") || rest.starts_with("rb") {
        2
    } else {
        1
    };
    let after: &str = rest.get(prefix_len..)?;
    if after.starts_with('\'') && prefix_len == 1 && rest.starts_with('b') {
        // b'x' byte literal.
        c.bump(); // b
        return Some(lex_quote_as_char(c));
    }
    if after.starts_with('"') {
        for _ in 0..prefix_len {
            c.bump();
        }
        lex_string_body(c);
        return Some(TokenKind::StrLit);
    }
    if after.starts_with('#') {
        // Possible raw string: count the #s, require a quote after them.
        let hashes = after.chars().take_while(|&ch| ch == '#').count();
        if after.get(hashes..)?.starts_with('"') {
            for _ in 0..prefix_len + hashes {
                c.bump();
            }
            c.bump(); // opening quote
            let closer: String = std::iter::once('"')
                .chain("#".repeat(hashes).chars())
                .collect();
            while c.peek().is_some() && !c.starts_with(&closer) {
                c.bump();
            }
            for _ in 0..closer.len() {
                if c.peek().is_some() {
                    c.bump();
                }
            }
            return Some(TokenKind::StrLit);
        }
    }
    None
}

/// Lexes a `"`-delimited string body (cursor on the opening quote).
fn lex_string_body(c: &mut Cursor) {
    c.bump(); // opening quote
    loop {
        match c.peek() {
            None => break,
            Some('\\') => {
                c.bump();
                if c.peek().is_some() {
                    c.bump();
                }
            }
            Some('"') => {
                c.bump();
                break;
            }
            Some(_) => c.bump(),
        }
    }
}

/// Disambiguates lifetimes from char literals (cursor on the `'`).
fn lex_quote(c: &mut Cursor) -> TokenKind {
    match c.peek_at(1) {
        Some(next) if is_ident_start(next) => {
            // 'a could open 'a' (char) or 'a (lifetime): scan the ident,
            // then check for a closing quote.
            let mut lookahead = 2;
            while c.peek_at(lookahead).is_some_and(is_ident_continue) {
                lookahead += 1;
            }
            if c.peek_at(lookahead) == Some('\'') {
                lex_quote_as_char(c)
            } else {
                c.bump(); // '
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokenKind::Lifetime
            }
        }
        _ => lex_quote_as_char(c),
    }
}

/// Lexes a char literal (cursor on the `'`), tolerant of malformed input:
/// scans to the closing quote or end of line.
fn lex_quote_as_char(c: &mut Cursor) -> TokenKind {
    c.bump(); // opening '
    loop {
        match c.peek() {
            None | Some('\n') => break,
            Some('\\') => {
                c.bump();
                if c.peek().is_some() {
                    c.bump();
                }
            }
            Some('\'') => {
                c.bump();
                break;
            }
            Some(_) => c.bump(),
        }
    }
    TokenKind::CharLit
}

/// Lexes a numeric literal (cursor on the first digit).
fn lex_number(c: &mut Cursor) {
    // Integer part (covers 0x/0b/0o digits and `_` separators).
    let radix_chars = |ch: char| ch.is_ascii_alphanumeric() || ch == '_';
    while c.peek().is_some_and(radix_chars) {
        c.bump();
    }
    // Fractional part: only consume `.` when a digit follows, so `1.max()`
    // keeps its method call and ranges like `0..n` stay punctuation.
    if c.peek() == Some('.') && c.peek_at(1).is_some_and(|ch| ch.is_ascii_digit()) {
        c.bump();
        while c.peek().is_some_and(radix_chars) {
            c.bump();
        }
    }
    // Exponent sign (the `e`/`E` itself was consumed by radix_chars).
    if c.src[..c.pos].ends_with(['e', 'E'])
        && c.peek().is_some_and(|ch| ch == '+' || ch == '-')
        && c.peek_at(1).is_some_and(|ch| ch.is_ascii_digit())
    {
        c.bump();
        while c.peek().is_some_and(radix_chars) {
            c.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        tokens
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_keywords_and_calls() {
        let k = kinds("fn main() { foo.unwrap(); }");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Open('('),
                TokenKind::Close(')'),
                TokenKind::Open('{'),
                TokenKind::Ident,
                TokenKind::Punct('.'),
                TokenKind::Ident,
                TokenKind::Open('('),
                TokenKind::Close(')'),
                TokenKind::Punct(';'),
                TokenKind::Close('}'),
            ]
        );
    }

    #[test]
    fn comments_are_opaque() {
        let k = kinds("// foo.unwrap()\n/* panic!() /* nested */ */ x");
        assert_eq!(k, vec![TokenKind::Ident]);
    }

    #[test]
    fn strings_are_opaque() {
        let k = kinds(r##"let s = "a.unwrap()"; let r = r#"panic!()"#;"##);
        assert!(k.contains(&TokenKind::StrLit));
        let src = r##"let s = "a.unwrap()"; let r = r#"panic!()"#;"##;
        let unwraps = roundtrip(src)
            .iter()
            .filter(|t| t.text(src) == "unwrap")
            .count();
        assert_eq!(unwraps, 0);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(k.contains(&TokenKind::Lifetime));
        assert!(k.contains(&TokenKind::CharLit));
        assert_eq!(kinds("'\\n'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        assert_eq!(kinds("1_000"), vec![TokenKind::NumLit]);
        assert_eq!(kinds("0xff_u8"), vec![TokenKind::NumLit]);
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::NumLit]);
        // A range must stay three tokens: num, two dots, num.
        let k = kinds("0..7");
        assert_eq!(
            k,
            vec![
                TokenKind::NumLit,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::NumLit,
            ]
        );
    }

    #[test]
    fn byte_and_raw_literals() {
        assert_eq!(kinds("b'x'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds(r#"b"bytes""#), vec![TokenKind::StrLit]);
        assert_eq!(kinds(r###"r##"raw "# inner"##"###), vec![TokenKind::StrLit]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        roundtrip("\"unterminated");
        roundtrip("/* unterminated");
        roundtrip("'u");
        roundtrip("r#\"unterminated");
        roundtrip("b");
        roundtrip("r");
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\nbb ccc";
        let toks = roundtrip(src);
        let sig: Vec<&Token> = toks.iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!((sig[0].line, sig[0].col), (1, 1));
        assert_eq!((sig[1].line, sig[1].col), (2, 1));
        assert_eq!((sig[2].line, sig[2].col), (2, 4));
    }
}
