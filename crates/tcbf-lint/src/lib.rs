//! tcbf-lint: the workspace-native invariant checker.
//!
//! Statically analyzes the workspace's own source with a hand-rolled
//! token-level lexer (zero dependencies) and enforces the contracts the
//! test suite can only spot-check:
//!
//! - **serve-path panic freedom** (TCBF-P001..P003),
//! - **determinism** (TCBF-D001..D004),
//! - **error-code stability** (TCBF-E001..E002),
//! - **lock-order consistency** (TCBF-L001..L002), the static half of
//!   the dynamic held-lock tracker in the vendored `parking_lot`
//!   (armed with `TCBF_LOCK_ORDER=1` at test time).
//!
//! Suppressions live in a single annotated `lint-allow.toml` at the
//! workspace root; every entry must carry a `reason`.  The rule
//! catalogue is docs/LINTS.md.

pub mod allowlist;
pub mod config;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod source;

use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use config::LintConfig;
use diagnostics::Finding;
use source::SourceFile;

/// Result of linting a whole workspace tree.
pub struct Report {
    /// All findings, deterministically ordered, suppressions marked.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched no finding (stale suppressions).
    pub stale_allows: Vec<allowlist::AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by the allowlist.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed_by.is_none())
    }
}

/// Fatal configuration problems (unreadable tree, malformed allowlist).
#[derive(Debug)]
pub enum LintError {
    /// The workspace root could not be walked.
    Io(String),
    /// lint-allow.toml is malformed; every problem listed.
    Allowlist(Vec<allowlist::AllowlistError>),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(msg) => write!(f, "{msg}"),
            LintError::Allowlist(errs) => {
                for e in errs {
                    writeln!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

/// Lints a single in-memory file with the given config: all per-file
/// rules plus single-file lock analysis.  This is the fixture-test entry
/// point; [`lint_workspace`] is the production one.
pub fn lint_source(path_label: &str, text: &str, cfg: &LintConfig) -> Vec<Finding> {
    let file = SourceFile::new(path_label.to_string(), text.to_string());
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    rules::check_file(&file, cfg, &mut findings, &mut edges);
    rules::locks::check_order_comment(&file, &edges, &mut findings);
    rules::locks::check_cycles(&edges, &mut findings);
    diagnostics::sort_findings(&mut findings);
    findings
}

/// Walks the workspace at `root`, runs every rule, applies the
/// allowlist at `root/lint-allow.toml` (if present).
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Result<Report, LintError> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let mut edges = Vec::new();
    let mut sources = Vec::new();
    for rel in &files {
        let abs = root.join(rel);
        let text = std::fs::read_to_string(&abs)
            .map_err(|e| LintError::Io(format!("cannot read {}: {e}", abs.display())))?;
        sources.push(SourceFile::new(rel.clone(), text));
    }
    for file in &sources {
        rules::check_file(file, cfg, &mut findings, &mut edges);
        rules::locks::check_order_comment(file, &edges, &mut findings);
    }
    rules::locks::check_cycles(&edges, &mut findings);

    // Error-code stability runs against the two pinned artifacts.
    if let Some(error_file) = sources
        .iter()
        .find(|f| f.path == "crates/tcbf/src/error.rs")
    {
        let protocol = std::fs::read_to_string(root.join("docs/PROTOCOL.md")).ok();
        rules::error_codes::check(error_file, protocol.as_deref(), &mut findings);
    }

    diagnostics::sort_findings(&mut findings);

    let allow_path = root.join("lint-allow.toml");
    let mut stale_allows = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&allow_path) {
        let allow = Allowlist::parse(&text).map_err(LintError::Allowlist)?;
        stale_allows = allow.apply(&mut findings).into_iter().cloned().collect();
    }

    Ok(Report {
        findings,
        stale_allows,
        files_scanned: sources.len(),
    })
}

/// Directory names never descended into: vendored stand-ins, build
/// output, and test/bench/example code (rules target shipped source).
const SKIP_DIRS: &[&str] = &[
    "vendor", "target", "tests", "benches", "examples", "fixtures", ".git", ".github",
];

/// Collects the workspace-relative paths of every `.rs` file under
/// `crates/*/src` and the umbrella `src/`, sorted for determinism.
fn workspace_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError::Io(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(format!("walk error: {e}")))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Stable path->PathBuf helper for the CLI.
pub fn default_root() -> PathBuf {
    // Compiled into the binary: the crate lives at crates/tcbf-lint,
    // so the workspace root is two levels up.
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
