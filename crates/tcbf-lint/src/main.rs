//! CLI driver: `cargo run -p tcbf-lint [-- flags]`.
//!
//! Exit codes:
//! - `0` — no unsuppressed findings (or advisory mode without `--deny-all`)
//! - `1` — unsuppressed findings under `--deny-all`
//! - `2` — configuration error (malformed lint-allow.toml, stale
//!   suppressions under `--deny-all`, unreadable tree, bad flags)

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use tcbf_lint::config::LintConfig;
use tcbf_lint::{default_root, lint_workspace, LintError, Report};

struct Options {
    root: PathBuf,
    deny_all: bool,
    summary_md: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        deny_all: false,
        summary_md: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => opts.deny_all = true,
            "--summary-md" => opts.summary_md = true,
            "--quiet" => opts.quiet = true,
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
tcbf-lint: workspace invariant checker (see docs/LINTS.md)

USAGE: tcbf-lint [--root PATH] [--deny-all] [--summary-md] [--quiet]

  --root PATH    workspace root to lint (default: this workspace)
  --deny-all     exit 1 on any unsuppressed finding, exit 2 on stale
                 lint-allow.toml entries (the CI mode)
  --summary-md   print the per-rule summary as a markdown table
  --quiet        suppress per-finding output, keep the summary";

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&opts.root, &LintConfig::default()) {
        Ok(r) => r,
        Err(LintError::Allowlist(errs)) => {
            eprintln!("error: lint-allow.toml is malformed:");
            for e in errs {
                eprintln!("  {e}");
            }
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for finding in report.unsuppressed() {
            println!("{finding}");
        }
    }

    print_summary(&report, opts.summary_md);

    for stale in &report.stale_allows {
        eprintln!(
            "warning: stale lint-allow.toml entry (line {}): {} on {} matches nothing",
            stale.defined_at, stale.rule, stale.path
        );
    }

    let unsuppressed = report.unsuppressed().count();
    if opts.deny_all {
        if !report.stale_allows.is_empty() {
            eprintln!("error: stale suppressions are rejected under --deny-all");
            return ExitCode::from(2);
        }
        if unsuppressed > 0 {
            eprintln!("error: {unsuppressed} unsuppressed finding(s) under --deny-all");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn print_summary(report: &Report, markdown: bool) {
    let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for rule in tcbf_lint::rules::ALL_RULES {
        by_rule.insert(rule, (0, 0));
    }
    for f in &report.findings {
        let slot = by_rule.entry(f.rule).or_insert((0, 0));
        if f.suppressed_by.is_some() {
            slot.1 += 1;
        } else {
            slot.0 += 1;
        }
    }
    let total_open: usize = by_rule.values().map(|v| v.0).sum();
    let total_allowed: usize = by_rule.values().map(|v| v.1).sum();

    if markdown {
        println!("| rule | open | allowed |");
        println!("| --- | ---: | ---: |");
        for (rule, (open, allowed)) in &by_rule {
            println!("| {rule} | {open} | {allowed} |");
        }
        println!("| **total** | **{total_open}** | **{total_allowed}** |");
        println!();
        println!("{} files scanned.", report.files_scanned);
    } else {
        println!("rule        open  allowed");
        for (rule, (open, allowed)) in &by_rule {
            println!("{rule:<12}{open:>4}{allowed:>9}");
        }
        println!(
            "total       {total_open:>4}{total_allowed:>9}   ({} files scanned)",
            report.files_scanned
        );
    }
}
