//! Determinism lints: TCBF-D001 … TCBF-D004.
//!
//! The conformance suite pins bit-identical reports across runs and
//! across the serve path (ROADMAP: determinism is a tier-1 contract).
//! These rules flag the classic ways that contract erodes: iterating
//! unordered containers, reassociating float reductions, and ambient
//! time/entropy.

use std::collections::BTreeSet;

use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Iteration over a `HashMap`/`HashSet` — order is unspecified, so any
/// result that escapes (reports, merges, wire encoding) is
/// nondeterministic.  Use `BTreeMap`/`BTreeSet` or sort first.
pub const D001: &str = "TCBF-D001";
/// Float reduction (`.sum::<f32>()`, float `.fold(...)`) outside the
/// approved micro-kernel modules — addition order is semantics here.
pub const D002: &str = "TCBF-D002";
/// Ambient nondeterminism: `SystemTime`, `thread_rng`, `from_entropy`.
/// All randomness must come from the seeded splitmix64 generators.
pub const D003: &str = "TCBF-D003";
/// `Instant::now()` outside the timing-module allowlist.
pub const D004: &str = "TCBF-D004";

/// Runs all four determinism rules over one file.
pub fn check(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    check_hash_iteration(file, out);
    if cfg.in_float_scope(&file.path) {
        check_float_reductions(file, out);
    }
    check_ambient_entropy(file, out);
    if !cfg.instant_allowed(&file.path) {
        check_instant_now(file, out);
    }
}

/// Collects identifiers this file binds to a `HashMap`/`HashSet`:
/// `name: ...HashMap...` type ascriptions (fields, params, lets) and
/// `let name = ...HashMap...;` initialisations.  A bounded forward scan
/// keeps this a heuristic, not a type checker — see docs/LINTS.md for
/// the documented misses.
fn map_typed_idents(file: &SourceFile) -> BTreeSet<String> {
    const WINDOW: usize = 24;
    let mut set = BTreeSet::new();
    let is_map = |t: &str| t == "HashMap" || t == "HashSet";
    for i in 0..file.sig_len() {
        // Pattern A: `name :` (single colon, not part of a `::` path).
        if file.sig_kind(i) == Some(TokenKind::Ident)
            && file.sig_kind(i + 1) == Some(TokenKind::Punct(':'))
            && file.sig_kind(i + 2) != Some(TokenKind::Punct(':'))
            && (i == 0 || file.sig_kind(i - 1) != Some(TokenKind::Punct(':')))
        {
            for j in i + 2..(i + 2 + WINDOW).min(file.sig_len()) {
                match file.sig_kind(j) {
                    Some(TokenKind::Ident) if is_map(file.sig_text(j)) => {
                        set.insert(file.sig_text(i).to_string());
                        break;
                    }
                    Some(
                        TokenKind::Punct(';')
                        | TokenKind::Punct(',')
                        | TokenKind::Punct('=')
                        | TokenKind::Open('{')
                        | TokenKind::Close(')'),
                    ) => break,
                    _ => {}
                }
            }
        }
        // Pattern B: `let [mut] name = ...HashMap...;`
        if file.sig_text(i) == "let" {
            let mut n = i + 1;
            if file.sig_text(n) == "mut" {
                n += 1;
            }
            if file.sig_kind(n) == Some(TokenKind::Ident)
                && file.sig_kind(n + 1) == Some(TokenKind::Punct('='))
            {
                for j in n + 2..(n + 2 + WINDOW).min(file.sig_len()) {
                    match file.sig_kind(j) {
                        Some(TokenKind::Ident) if is_map(file.sig_text(j)) => {
                            set.insert(file.sig_text(n).to_string());
                            break;
                        }
                        Some(TokenKind::Punct(';')) => break,
                        _ => {}
                    }
                }
            }
        }
    }
    set
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "par_iter",
];

fn check_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    let maps = map_typed_idents(file);
    if maps.is_empty() {
        return;
    }
    for i in 0..file.sig_len() {
        let Some(tok) = file.sig_token(i) else {
            continue;
        };
        if file.in_test_code(tok.start) {
            continue;
        }
        let text = file.sig_text(i);
        // `name.iter()` and friends.
        if maps.contains(text)
            && file.sig_kind(i + 1) == Some(TokenKind::Punct('.'))
            && ITER_METHODS.contains(&file.sig_text(i + 2))
            && file.sig_kind(i + 3) == Some(TokenKind::Open('('))
        {
            out.push(Finding::new(
                D001,
                &file.path,
                tok.line,
                tok.col,
                format!(
                    "iteration over unordered container `{text}` ({}), order is unspecified — use a BTree container or sort",
                    file.sig_text(i + 2)
                ),
                file.line_text(tok.start),
            ));
        }
        // `for pat in [&][mut] name {`.
        if text == "for" {
            // Find the `in` within a short window (patterns are small).
            for j in i + 1..(i + 10).min(file.sig_len()) {
                if file.sig_text(j) == "in" {
                    let mut k = j + 1;
                    if file.sig_kind(k) == Some(TokenKind::Punct('&')) {
                        k += 1;
                    }
                    if file.sig_text(k) == "mut" {
                        k += 1;
                    }
                    if maps.contains(file.sig_text(k))
                        && file.sig_kind(k + 1) == Some(TokenKind::Open('{'))
                    {
                        let (line, col) = file.sig_pos(k);
                        out.push(Finding::new(
                            D001,
                            &file.path,
                            line,
                            col,
                            format!(
                                "for-loop over unordered container `{}` — iteration order is unspecified",
                                file.sig_text(k)
                            ),
                            file.line_text(file.sig_token(k).map(|t| t.start).unwrap_or(0)),
                        ));
                    }
                    break;
                }
            }
        }
    }
}

fn check_float_reductions(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.sig_len() {
        let Some(tok) = file.sig_token(i) else {
            continue;
        };
        if file.in_test_code(tok.start) {
            continue;
        }
        if file.sig_kind(i) != Some(TokenKind::Punct('.')) {
            continue;
        }
        let method = file.sig_text(i + 1);
        // `.sum::<f32>()` / `.product::<f64>()`.
        if (method == "sum" || method == "product")
            && file.sig_kind(i + 2) == Some(TokenKind::Punct(':'))
            && file.sig_kind(i + 3) == Some(TokenKind::Punct(':'))
            && file.sig_kind(i + 4) == Some(TokenKind::Punct('<'))
            && matches!(file.sig_text(i + 5), "f32" | "f64")
        {
            let (line, col) = file.sig_pos(i + 1);
            out.push(Finding::new(
                D002,
                &file.path,
                line,
                col,
                format!(
                    ".{method}::<{}>() outside the approved micro-kernel modules — float reduction order is semantics",
                    file.sig_text(i + 5)
                ),
                file.line_text(tok.start),
            ));
            continue;
        }
        // `.fold(init, ...)` with a float-ish init.
        if method == "fold" && file.sig_kind(i + 2) == Some(TokenKind::Open('(')) {
            if let Some(close) = matching_paren(file, i + 2) {
                let first_arg_end = first_comma(file, i + 2, close).unwrap_or(close);
                let init_is_float = (i + 3..first_arg_end).any(|j| {
                    let t = file.sig_text(j);
                    t == "f32"
                        || t == "f64"
                        || (file.sig_kind(j) == Some(TokenKind::NumLit) && t.contains('.'))
                });
                // `fold(f32::NEG_INFINITY, f32::max)` is order-insensitive:
                // skip folds whose combiner is a min/max.
                let is_min_max = (first_arg_end..close)
                    .any(|j| matches!(file.sig_text(j), "max" | "min" | "maximum" | "minimum"));
                if init_is_float && !is_min_max {
                    let (line, col) = file.sig_pos(i + 1);
                    out.push(Finding::new(
                        D002,
                        &file.path,
                        line,
                        col,
                        "float .fold(...) outside the approved micro-kernel modules — reduction order is semantics"
                            .into(),
                        file.line_text(tok.start),
                    ));
                }
            }
        }
    }
}

fn check_ambient_entropy(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.sig_len() {
        let Some(tok) = file.sig_token(i) else {
            continue;
        };
        if file.in_test_code(tok.start) || tok.kind != TokenKind::Ident {
            continue;
        }
        let text = file.sig_text(i);
        if matches!(text, "SystemTime" | "thread_rng" | "from_entropy") {
            out.push(Finding::new(
                D003,
                &file.path,
                tok.line,
                tok.col,
                format!(
                    "`{text}` is ambient nondeterminism — use the seeded splitmix64 generators"
                ),
                file.line_text(tok.start),
            ));
        }
    }
}

fn check_instant_now(file: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..file.sig_len() {
        let Some(tok) = file.sig_token(i) else {
            continue;
        };
        if file.in_test_code(tok.start) {
            continue;
        }
        if file.sig_text(i) == "Instant"
            && file.sig_kind(i + 1) == Some(TokenKind::Punct(':'))
            && file.sig_kind(i + 2) == Some(TokenKind::Punct(':'))
            && file.sig_text(i + 3) == "now"
        {
            out.push(Finding::new(
                D004,
                &file.path,
                tok.line,
                tok.col,
                "Instant::now() outside the timing-module allowlist — plumb timestamps in from the caller".into(),
                file.line_text(tok.start),
            ));
        }
    }
}

/// Given the sig-index of a `(`, returns the sig-index of its match.
fn matching_paren(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in open..file.sig_len() {
        match file.sig_kind(j) {
            Some(TokenKind::Open('(')) => depth += 1,
            Some(TokenKind::Close(')')) => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// First `,` at paren depth 1 between `open` and `close` (sig indices).
fn first_comma(file: &SourceFile, open: usize, close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in open..close {
        match file.sig_kind(j) {
            Some(TokenKind::Open('(') | TokenKind::Open('[') | TokenKind::Open('{')) => depth += 1,
            Some(TokenKind::Close(')') | TokenKind::Close(']') | TokenKind::Close('}')) => {
                depth = depth.saturating_sub(1)
            }
            Some(TokenKind::Punct(',')) if depth == 1 => return Some(j),
            _ => {}
        }
    }
    None
}
