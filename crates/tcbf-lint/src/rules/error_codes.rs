//! Error-code stability: TCBF-E001, TCBF-E002.
//!
//! `TcbfError::code()` values are wire protocol (clients match on them,
//! docs/PROTOCOL.md pins them), so the error enum is append-only: every
//! variant must have an explicit arm in `code()` (no `_ =>` catch-all
//! that would silently absorb a new variant) and a mention in the
//! protocol document.

use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// A `TcbfError` variant lacks an explicit arm in `fn code()`, or the
/// match hides behind a wildcard.
pub const E001: &str = "TCBF-E001";
/// A `TcbfError` variant is not documented in `docs/PROTOCOL.md`.
pub const E002: &str = "TCBF-E002";

/// One enum variant with its location.
#[derive(Debug)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant in the error file.
    pub line: u32,
    /// Column of the variant name.
    pub col: u32,
    /// Full source line, for diagnostics/allowlist patterns.
    pub line_text: String,
}

/// Checks `error_file` (crates/tcbf/src/error.rs) against
/// `protocol_text` (docs/PROTOCOL.md contents, `None` when missing).
pub fn check(error_file: &SourceFile, protocol_text: Option<&str>, out: &mut Vec<Finding>) {
    let variants = enum_variants(error_file, "TcbfError");
    if variants.is_empty() {
        out.push(Finding::new(
            E001,
            &error_file.path,
            1,
            1,
            "could not locate `enum TcbfError` — the error-code stability rules have nothing to check".into(),
            "",
        ));
        return;
    }

    match fn_body_range(error_file, "code") {
        None => out.push(Finding::new(
            E001,
            &error_file.path,
            1,
            1,
            "could not locate `fn code` — every TcbfError variant must have a pinned wire code"
                .into(),
            "",
        )),
        Some((body_start, body_end)) => {
            for v in &variants {
                let mentioned = (body_start..body_end).any(|j| {
                    error_file.sig_kind(j) == Some(TokenKind::Ident)
                        && error_file.sig_text(j) == v.name
                });
                if !mentioned {
                    out.push(Finding::new(
                        E001,
                        &error_file.path,
                        v.line,
                        v.col,
                        format!(
                            "variant `{}` has no explicit arm in `fn code()` — wire codes are append-only",
                            v.name
                        ),
                        &v.line_text,
                    ));
                }
            }
            // A wildcard arm would let a future variant silently reuse a
            // code; require full enumeration.
            for j in body_start..body_end {
                if error_file.sig_kind(j) == Some(TokenKind::Ident)
                    && error_file.sig_text(j) == "_"
                    && error_file.sig_kind(j + 1) == Some(TokenKind::Punct('='))
                    && error_file.sig_kind(j + 2) == Some(TokenKind::Punct('>'))
                {
                    let (line, col) = error_file.sig_pos(j);
                    out.push(Finding::new(
                        E001,
                        &error_file.path,
                        line,
                        col,
                        "`fn code()` contains a wildcard arm — each variant must be matched explicitly".into(),
                        error_file.line_text(error_file.sig_token(j).map(|t| t.start).unwrap_or(0)),
                    ));
                }
            }
        }
    }

    match protocol_text {
        None => out.push(Finding::new(
            E002,
            &error_file.path,
            1,
            1,
            "docs/PROTOCOL.md is missing — error codes must be documented".into(),
            "",
        )),
        Some(doc) => {
            for v in &variants {
                if !contains_word(doc, &v.name) {
                    out.push(Finding::new(
                        E002,
                        &error_file.path,
                        v.line,
                        v.col,
                        format!("variant `{}` is not mentioned in docs/PROTOCOL.md", v.name),
                        &v.line_text,
                    ));
                }
            }
        }
    }
}

/// Extracts the variant names of `enum <name> { ... }`.
pub fn enum_variants(file: &SourceFile, name: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    // Find `enum <name> {`.
    let mut open = None;
    for i in 0..file.sig_len() {
        if file.sig_text(i) == "enum" && file.sig_text(i + 1) == name {
            let mut j = i + 2;
            // Skip generics if any, then find the `{`.
            while j < file.sig_len() {
                if file.sig_kind(j) == Some(TokenKind::Open('{')) {
                    open = Some(j);
                    break;
                }
                if file.sig_kind(j) == Some(TokenKind::Punct(';')) {
                    break;
                }
                j += 1;
            }
            break;
        }
    }
    let Some(open) = open else {
        return variants;
    };

    // Walk the enum body at relative depth 0, collecting variant names
    // and skipping attributes and payloads.
    let mut j = open + 1;
    let mut depth = 0isize; // nesting relative to the enum body
    let mut at_variant_start = true;
    while j < file.sig_len() {
        match file.sig_kind(j) {
            Some(TokenKind::Open(_)) => depth += 1,
            Some(TokenKind::Close('}')) if depth == 0 => break,
            Some(TokenKind::Close(_)) => depth -= 1,
            // Skip a `#[...]` attribute group before a variant.
            Some(TokenKind::Punct('#'))
                if depth == 0
                    && at_variant_start
                    && file.sig_kind(j + 1) == Some(TokenKind::Open('[')) =>
            {
                let mut d = 0isize;
                j += 1;
                while j < file.sig_len() {
                    match file.sig_kind(j) {
                        Some(TokenKind::Open('[')) => d += 1,
                        Some(TokenKind::Close(']')) => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            Some(TokenKind::Ident) if depth == 0 && at_variant_start => {
                let (line, col) = file.sig_pos(j);
                let start = file.sig_token(j).map(|t| t.start).unwrap_or(0);
                variants.push(Variant {
                    name: file.sig_text(j).to_string(),
                    line,
                    col,
                    line_text: file.line_text(start).to_string(),
                });
                at_variant_start = false;
            }
            Some(TokenKind::Punct(',')) if depth == 0 => at_variant_start = true,
            _ => {}
        }
        j += 1;
    }
    variants
}

/// Sig-index range (exclusive end) of the body of `fn <name>`.
fn fn_body_range(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    for i in 0..file.sig_len() {
        if file.sig_text(i) == "fn" && file.sig_text(i + 1) == name {
            // Find the body `{` (skipping the signature).
            let mut j = i + 2;
            while j < file.sig_len() && file.sig_kind(j) != Some(TokenKind::Open('{')) {
                if file.sig_kind(j) == Some(TokenKind::Punct(';')) {
                    return None; // trait method without body
                }
                j += 1;
            }
            let open = j;
            let mut depth = 0isize;
            while j < file.sig_len() {
                match file.sig_kind(j) {
                    Some(TokenKind::Open('{')) => depth += 1,
                    Some(TokenKind::Close('}')) => {
                        depth -= 1;
                        if depth == 0 {
                            return Some((open + 1, j));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return Some((open + 1, file.sig_len()));
        }
    }
    None
}

/// Word-boundary substring search, so variant `Internal` is not
/// satisfied by the word "internally".
fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = haystack[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric());
        let after_ok = haystack[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric());
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("code 14: Internal error", "Internal"));
        assert!(!contains_word("handled internally", "Internal"));
        assert!(!contains_word("InternalFrobnicator", "Internal"));
    }

    #[test]
    fn variant_extraction_with_payloads_and_attributes() {
        let src = r#"
pub enum E {
    /// Doc comment.
    Unit,
    Tuple(u32, String),
    #[allow(dead_code)]
    Struct { field: Vec<u8>, nested: Option<(u8, u8)> },
    Last,
}
"#;
        let f = SourceFile::new("e.rs".into(), src.into());
        let names: Vec<String> = enum_variants(&f, "E").into_iter().map(|v| v.name).collect();
        assert_eq!(names, vec!["Unit", "Tuple", "Struct", "Last"]);
    }
}
