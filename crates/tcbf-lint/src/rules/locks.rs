//! Static lock-order analysis: TCBF-L001, TCBF-L002.
//!
//! A token-level, intraprocedural approximation of the dynamic
//! held-lock tracker that lives in the vendored `parking_lot`
//! (`TCBF_LOCK_ORDER=1` at test time).  The static side catches
//! inversions in paths no test exercises; the dynamic side catches
//! aliasing the token analysis cannot see.  They share one vocabulary:
//! a *lock class* is the field name a guard is taken from (`slots` in
//! `fleet.slots.lock()`), and the canonical order is the `Lock order:
//! a -> b` comment the owning module must carry.
//!
//! How a guard's extent is approximated:
//! - `let guard = x.lock();` — held until `drop(guard)` or the end of
//!   the enclosing block;
//! - `x.lock().method()` as a temporary — held until the `;` that ends
//!   the enclosing statement (matching Rust's temporary-lifetime rule,
//!   including the `match x.lock().y { ... }` extension);
//! - `cv.wait(guard)` — not an acquisition (it releases and reacquires
//!   an already-counted guard).
//!
//! Nested acquisitions produce directed edges `held -> acquired`; the
//! workspace-level pass unions every file's edges and rejects cycles
//! (TCBF-L001).  Any file that *contributes* edges must declare the
//! canonical order in a `Lock order:` comment, and its edges must agree
//! with that declaration (TCBF-L002).

use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Lock-acquisition cycle across the workspace's static lock graph.
pub const L001: &str = "TCBF-L001";
/// Missing or violated canonical `Lock order:` declaration.
pub const L002: &str = "TCBF-L002";

/// One `held -> acquired` edge observed in a file.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Class already held.
    pub from: String,
    /// Class acquired while `from` is held.
    pub to: String,
    /// File the nested acquisition lives in.
    pub path: String,
    /// Line/column of the inner acquisition.
    pub line: u32,
    /// Column of the inner acquisition.
    pub col: u32,
    /// Source line of the inner acquisition.
    pub line_text: String,
}

struct Acquisition {
    class: String,
    /// Sig-index of the receiver ident (diagnostic anchor).
    site: usize,
    /// Sig-index range during which the guard is considered held.
    live_from: usize,
    live_to: usize,
}

/// Extracts this file's lock-acquisition edges (deduplicated by
/// class pair).  Test code is skipped: tests may intentionally
/// construct inversions (the dynamic checker's own fixtures do).
pub fn file_edges(file: &SourceFile, cfg: &LintConfig) -> Vec<LockEdge> {
    let depths = brace_depths(file);
    let mut acquisitions: Vec<Acquisition> = Vec::new();

    for i in 0..file.sig_len() {
        // Pattern: `<recv-ident> . <lock-method> ( )`.
        if file.sig_kind(i) != Some(TokenKind::Punct('.')) {
            continue;
        }
        let method = file.sig_text(i + 1);
        if !cfg.lock_methods.iter().any(|m| m == method)
            || file.sig_kind(i + 2) != Some(TokenKind::Open('('))
            || file.sig_kind(i + 3) != Some(TokenKind::Close(')'))
        {
            continue;
        }
        if i == 0 || file.sig_kind(i - 1) != Some(TokenKind::Ident) {
            continue; // receiver is not a simple field/static — class unknown
        }
        let Some(tok) = file.sig_token(i - 1) else {
            continue;
        };
        if file.in_test_code(tok.start) {
            continue;
        }
        let class = file.sig_text(i - 1).to_string();
        let depth = depths.get(i).copied().unwrap_or(0);
        // A guard is let-bound only when the lock call IS the whole
        // initializer (`let g = x.lock();`); a trailing method call
        // (`let n = x.lock().len();`) makes the guard a temporary.
        let bound = if file.sig_kind(i + 4) == Some(TokenKind::Punct(';')) {
            binding_name(file, i - 1)
        } else {
            None
        };
        let live_to = match bound {
            Some(name) => {
                // Bound guard: held until drop(name) or the end of the
                // enclosing block.
                let scope_end = enclosing_close(file, &depths, i, depth);
                drop_site(file, i + 3, scope_end, &name).unwrap_or(scope_end)
            }
            // Temporary: held until the `;` that ends the statement
            // (first `;` at or below the acquisition's brace depth).
            None => statement_end(file, &depths, i + 3, depth),
        };
        acquisitions.push(Acquisition {
            class,
            site: i - 1,
            live_from: i + 3,
            live_to,
        });
    }

    let mut edges: Vec<LockEdge> = Vec::new();
    for outer in &acquisitions {
        for inner in &acquisitions {
            if inner.site <= outer.site
                || inner.site >= outer.live_to
                || inner.site < outer.live_from
                || inner.class == outer.class
            {
                continue;
            }
            if edges
                .iter()
                .any(|e| e.from == outer.class && e.to == inner.class)
            {
                continue;
            }
            let (line, col) = file.sig_pos(inner.site);
            let start = file.sig_token(inner.site).map(|t| t.start).unwrap_or(0);
            edges.push(LockEdge {
                from: outer.class.clone(),
                to: inner.class.clone(),
                path: file.path.clone(),
                line,
                col,
                line_text: file.line_text(start).to_string(),
            });
        }
    }
    edges
}

/// TCBF-L001 over the union of every file's edges: flags each edge that
/// participates in a cycle.
pub fn check_cycles(edges: &[LockEdge], out: &mut Vec<Finding>) {
    for edge in edges {
        if let Some(path_back) = reaches(edges, &edge.to, &edge.from) {
            let chain: Vec<&str> = std::iter::once(edge.from.as_str())
                .chain(path_back.iter().map(String::as_str))
                .collect();
            out.push(Finding::new(
                L001,
                &edge.path,
                edge.line,
                edge.col,
                format!(
                    "lock-order cycle: `{}` is acquired while `{}` is held, but the graph also orders {}",
                    edge.to,
                    edge.from,
                    chain.join(" -> "),
                ),
                &edge.line_text,
            ));
        }
    }
}

/// TCBF-L002 for one file: a file contributing edges must declare a
/// canonical `Lock order:` chain that covers and agrees with them.
pub fn check_order_comment(file: &SourceFile, edges: &[LockEdge], out: &mut Vec<Finding>) {
    let ours: Vec<&LockEdge> = edges.iter().filter(|e| e.path == file.path).collect();
    if ours.is_empty() {
        return;
    }
    let Some(chain) = order_comment(&file.text) else {
        let classes: Vec<&str> = ours
            .iter()
            .flat_map(|e| [e.from.as_str(), e.to.as_str()])
            .collect();
        out.push(Finding::new(
            L002,
            &file.path,
            1,
            1,
            format!(
                "file acquires nested locks ({}) but declares no canonical `Lock order: a -> b` comment",
                dedup_join(&classes),
            ),
            "",
        ));
        return;
    };
    for edge in ours {
        let from_at = chain.iter().position(|c| c == &edge.from);
        let to_at = chain.iter().position(|c| c == &edge.to);
        match (from_at, to_at) {
            (Some(f), Some(t)) if f < t => {}
            (Some(_), Some(_)) => out.push(Finding::new(
                L002,
                &file.path,
                edge.line,
                edge.col,
                format!(
                    "acquiring `{}` while holding `{}` contradicts the declared order `{}`",
                    edge.to,
                    edge.from,
                    chain.join(" -> "),
                ),
                &edge.line_text,
            )),
            _ => out.push(Finding::new(
                L002,
                &file.path,
                edge.line,
                edge.col,
                format!(
                    "edge `{} -> {}` involves a lock class missing from the declared order `{}`",
                    edge.from,
                    edge.to,
                    chain.join(" -> "),
                ),
                &edge.line_text,
            )),
        }
    }
}

/// Parses the first `Lock order: a -> b [-> c ...]` comment in a file.
pub fn order_comment(text: &str) -> Option<Vec<String>> {
    for line in text.lines() {
        if let Some(rest) = line.split_once("Lock order:").map(|(_, r)| r) {
            let chain: Vec<String> = rest
                .split("->")
                .map(|part| part.trim().trim_end_matches('.').to_string())
                .filter(|part| {
                    !part.is_empty() && part.chars().all(|c| c == '_' || c.is_alphanumeric())
                })
                .collect();
            if chain.len() >= 2 {
                return Some(chain);
            }
        }
    }
    None
}

/// BFS from `from` to `to` over the class graph; returns the node path
/// (excluding `from`) when reachable.
fn reaches(edges: &[LockEdge], from: &str, to: &str) -> Option<Vec<String>> {
    let mut queue: Vec<(String, Vec<String>)> = vec![(from.to_string(), vec![from.to_string()])];
    let mut visited: Vec<String> = vec![from.to_string()];
    while let Some((node, path)) = queue.pop() {
        if node == to {
            return Some(path);
        }
        for e in edges.iter().filter(|e| e.from == node) {
            if !visited.iter().any(|v| v == &e.to) {
                visited.push(e.to.clone());
                let mut next = path.clone();
                next.push(e.to.clone());
                queue.push((e.to.clone(), next));
            }
        }
    }
    None
}

/// Brace depth *before* each significant token.
fn brace_depths(file: &SourceFile) -> Vec<usize> {
    let mut depths = Vec::with_capacity(file.sig_len());
    let mut depth = 0usize;
    for i in 0..file.sig_len() {
        match file.sig_kind(i) {
            Some(TokenKind::Close('}')) => {
                depth = depth.saturating_sub(1);
                depths.push(depth);
            }
            Some(TokenKind::Open('{')) => {
                depths.push(depth);
                depth += 1;
            }
            _ => depths.push(depth),
        }
    }
    depths
}

/// If the lock call whose receiver starts near sig-index `recv` is the
/// RHS of `[let [mut]] name = ...`, returns `name`.
fn binding_name(file: &SourceFile, recv: usize) -> Option<String> {
    // Walk back over the receiver chain: idents, `.`, `::`, `?`, `&`.
    let mut k = recv;
    while k > 0 {
        match file.sig_kind(k - 1) {
            Some(TokenKind::Ident)
            | Some(TokenKind::Punct('.'))
            | Some(TokenKind::Punct(':'))
            | Some(TokenKind::Punct('?'))
            | Some(TokenKind::Punct('&')) => k -= 1,
            _ => break,
        }
    }
    if k == 0 || file.sig_kind(k - 1) != Some(TokenKind::Punct('=')) {
        return None;
    }
    // `=` must not be part of `==`, `=>`, `+=` etc.
    if matches!(
        file.sig_kind(k.checked_sub(2)?),
        Some(TokenKind::Punct('=') | TokenKind::Punct('>') | TokenKind::Punct('<'))
    ) {
        return None;
    }
    if file.sig_kind(k - 2) == Some(TokenKind::Ident) {
        let name = file.sig_text(k - 2);
        if name != "mut" && name != "let" {
            return Some(name.to_string());
        }
    }
    None
}

/// Finds `drop ( name )` between sig-indices `from` and `until`.
fn drop_site(file: &SourceFile, from: usize, until: usize, name: &str) -> Option<usize> {
    (from..until.min(file.sig_len())).find(|&j| {
        file.sig_text(j) == "drop"
            && file.sig_kind(j + 1) == Some(TokenKind::Open('('))
            && file.sig_text(j + 2) == name
            && file.sig_kind(j + 3) == Some(TokenKind::Close(')'))
    })
}

/// Sig-index of the `}` closing the block containing sig-index `i`
/// (whose interior depth is `depth`).
fn enclosing_close(file: &SourceFile, depths: &[usize], i: usize, depth: usize) -> usize {
    for j in i + 1..file.sig_len() {
        if file.sig_kind(j) == Some(TokenKind::Close('}'))
            && depths.get(j) == Some(&depth.saturating_sub(1))
        {
            return j;
        }
    }
    file.sig_len()
}

/// First `;` at or below `depth` after sig-index `from` — the end of
/// the enclosing statement, which is how long a temporary guard lives.
fn statement_end(file: &SourceFile, depths: &[usize], from: usize, depth: usize) -> usize {
    for j in from..file.sig_len() {
        if file.sig_kind(j) == Some(TokenKind::Punct(';'))
            && depths.get(j).copied().unwrap_or(0) <= depth
        {
            return j;
        }
        // A `}` that closes past the acquisition's block also ends the
        // statement (tail expressions have no `;`).
        if file.sig_kind(j) == Some(TokenKind::Close('}'))
            && depths.get(j).copied().unwrap_or(0) < depth
        {
            return j;
        }
    }
    file.sig_len()
}

fn dedup_join(items: &[&str]) -> String {
    let mut seen: Vec<&str> = Vec::new();
    for it in items {
        if !seen.contains(it) {
            seen.push(it);
        }
    }
    seen.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_of(src: &str) -> Vec<(String, String)> {
        let cfg = LintConfig::default();
        let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
        file_edges(&f, &cfg)
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect()
    }

    #[test]
    fn nested_let_bound_guards_form_an_edge() {
        let src = r#"
fn f(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    use_both(&a, &b);
}
"#;
        assert_eq!(edges_of(src), vec![("alpha".into(), "beta".into())]);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = r#"
fn f(s: &S) {
    let a = s.alpha.lock();
    drop(a);
    let b = s.beta.lock();
}
"#;
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn temporary_guard_ends_at_the_statement() {
        let src = r#"
fn f(s: &S) {
    let n = s.alpha.lock().len();
    let b = s.beta.lock();
}
"#;
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn temporary_held_across_a_statement_is_seen() {
        let src = r#"
fn f(s: &S) {
    combine(s.alpha.lock().len(), s.beta.lock().len());
}
"#;
        assert_eq!(edges_of(src), vec![("alpha".into(), "beta".into())]);
    }

    #[test]
    fn scope_end_releases_let_bound_guards() {
        let src = r#"
fn f(s: &S) {
    {
        let a = s.alpha.lock();
    }
    let b = s.beta.lock();
}
"#;
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn wait_is_not_an_acquisition() {
        let src = r#"
fn f(s: &S) {
    let mut a = s.alpha.lock();
    a = s.cv.wait(a);
}
"#;
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(s: &S) {
        let b = s.beta.lock();
        let a = s.alpha.lock();
    }
}
"#;
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn cycle_detection_across_edges() {
        let mk = |from: &str, to: &str| LockEdge {
            from: from.into(),
            to: to.into(),
            path: "a.rs".into(),
            line: 1,
            col: 1,
            line_text: String::new(),
        };
        let mut out = Vec::new();
        check_cycles(&[mk("a", "b"), mk("b", "a")], &mut out);
        assert_eq!(out.len(), 2, "both edges of the inversion are flagged");
        out.clear();
        check_cycles(&[mk("a", "b"), mk("b", "c")], &mut out);
        assert!(out.is_empty());
        out.clear();
        check_cycles(&[mk("a", "b"), mk("b", "c"), mk("c", "a")], &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn order_comment_parsing() {
        assert_eq!(
            order_comment("//! Lock order: slots -> quarantined\n"),
            Some(vec!["slots".to_string(), "quarantined".to_string()])
        );
        assert_eq!(order_comment("// no declaration here\n"), None);
    }

    #[test]
    fn order_comment_enforcement() {
        let cfg = LintConfig::default();
        let src = r#"//! Lock order: beta -> alpha
fn f(s: &S) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
}
"#;
        let f = SourceFile::new("crates/x/src/a.rs".into(), src.into());
        let edges = file_edges(&f, &cfg);
        let mut out = Vec::new();
        check_order_comment(&f, &edges, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("contradicts"));
    }
}
