//! Rule modules, grouped by contract.
//!
//! | IDs                   | Module          | Contract                          |
//! |-----------------------|-----------------|-----------------------------------|
//! | TCBF-P001..P003       | [`panic_rules`] | serve-path panic freedom          |
//! | TCBF-D001..D004       | [`determinism`] | bit-identical reports             |
//! | TCBF-E001..E002       | [`error_codes`] | append-only wire error codes      |
//! | TCBF-L001..L002       | [`locks`]       | canonical lock-acquisition order  |

pub mod determinism;
pub mod error_codes;
pub mod locks;
pub mod panic_rules;

use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::source::SourceFile;

/// Every rule ID, for the summary table (kept sorted).
pub const ALL_RULES: &[&str] = &[
    panic_rules::P001,
    panic_rules::P002,
    panic_rules::P003,
    determinism::D001,
    determinism::D002,
    determinism::D003,
    determinism::D004,
    error_codes::E001,
    error_codes::E002,
    locks::L001,
    locks::L002,
];

/// Runs every per-file rule over `file`, collecting findings into `out`
/// and this file's lock edges into `edges` (cycle detection needs the
/// whole workspace's edges, so it runs later).
pub fn check_file(
    file: &SourceFile,
    cfg: &LintConfig,
    out: &mut Vec<Finding>,
    edges: &mut Vec<locks::LockEdge>,
) {
    panic_rules::check(file, cfg, out);
    determinism::check(file, cfg, out);
    edges.extend(locks::file_edges(file, cfg));
}
