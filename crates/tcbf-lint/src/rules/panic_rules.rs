//! Serve-path panic freedom: TCBF-P001, TCBF-P002, TCBF-P003.
//!
//! The serving stack's contract (ROADMAP: failover without process
//! death) is that a malformed request, a quarantined engine or a
//! protocol hiccup becomes a typed `TcbfError`, never a panic.  These
//! rules enforce that contract textually over the serve-path scope
//! ([`LintConfig::serve_path`]), skipping `#[cfg(test)]`/`#[test]`
//! regions where assertions are the point.

use crate::config::LintConfig;
use crate::diagnostics::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// `.unwrap()` / `.expect(...)` in serve-path non-test code.
pub const P001: &str = "TCBF-P001";
/// Panicking macro (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
/// `assert!`-family) in serve-path non-test code.
pub const P002: &str = "TCBF-P002";
/// Slice/array indexing (`x[i]`) in serve-path non-test code — use
/// `.get()`/`.get_mut()` and surface a typed error instead.
pub const P003: &str = "TCBF-P003";

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs the three panic-freedom rules over one file.
pub fn check(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if !cfg.in_serve_path(&file.path) {
        return;
    }
    for i in 0..file.sig_len() {
        let Some(tok) = file.sig_token(i) else {
            continue;
        };
        if file.in_test_code(tok.start) {
            continue;
        }
        let text = file.sig_text(i);
        let (line, col) = (tok.line, tok.col);
        let snippet = file.line_text(tok.start);

        // TCBF-P001: `.unwrap()` / `.expect(` method calls, and the
        // path form passed as a function value (`.map(Option::unwrap)`).
        if text == "unwrap" || text == "expect" {
            let method_call = i > 0
                && file.sig_kind(i - 1) == Some(TokenKind::Punct('.'))
                && file.sig_kind(i + 1) == Some(TokenKind::Open('('));
            let path_form = i > 1
                && file.sig_kind(i - 1) == Some(TokenKind::Punct(':'))
                && file.sig_kind(i - 2) == Some(TokenKind::Punct(':'));
            if method_call || path_form {
                out.push(Finding::new(
                    P001,
                    &file.path,
                    line,
                    col,
                    format!("{text} on the serve path — return a typed error instead of panicking"),
                    snippet,
                ));
                continue;
            }
        }

        // TCBF-P002: panicking macros.
        if PANIC_MACROS.contains(&text) && file.sig_kind(i + 1) == Some(TokenKind::Punct('!')) {
            out.push(Finding::new(
                P002,
                &file.path,
                line,
                col,
                format!("{text}! on the serve path — panics must not cross the request boundary"),
                snippet,
            ));
            continue;
        }

        // TCBF-P003: indexing.  An `[` counts as an index expression when
        // it follows an identifier or a closing `)`/`]` (a value), which
        // keeps `vec![`, attributes `#[...]`, slice types `[f32; 4]` and
        // slice patterns out of scope.  A keyword before the bracket
        // (`&mut [u8]`, `for x in [..]`, `return [..]`) is not a value.
        const NON_VALUE_KEYWORDS: &[&str] = &[
            "mut", "dyn", "in", "as", "return", "break", "else", "match", "if", "while", "loop",
            "move", "ref", "const", "static", "impl",
        ];
        if tok.kind == TokenKind::Open('[')
            && i > 0
            && matches!(
                file.sig_kind(i - 1),
                Some(TokenKind::Ident) | Some(TokenKind::Close(')')) | Some(TokenKind::Close(']'))
            )
            && !(file.sig_kind(i - 1) == Some(TokenKind::Ident)
                && NON_VALUE_KEYWORDS.contains(&file.sig_text(i - 1)))
        {
            out.push(Finding::new(
                P003,
                &file.path,
                line,
                col,
                "indexing on the serve path can panic — use .get()/.get_mut() and surface a typed error".into(),
                snippet,
            ));
        }
    }
}
