//! Per-file source model shared by all rules.
//!
//! Wraps the raw token stream from [`crate::lexer`] with the derived
//! views every rule needs: the significant (non-trivia) token sequence,
//! and a map of which byte ranges belong to test code (`#[cfg(test)]
//! mod ...` bodies and `#[test]` functions), so serve-path rules can
//! skip assertions that are legitimate in tests.

use crate::lexer::{self, Token, TokenKind};

/// A lexed source file plus derived lookup structures.
pub struct SourceFile {
    /// Workspace-relative path, used verbatim in diagnostics and as the
    /// key matched by allowlist entries.
    pub path: String,
    /// The full file contents.
    pub text: String,
    /// Every token, including whitespace and comments (lossless).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Byte ranges covered by test-only code.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` and computes the derived views.
    pub fn new(path: String, text: String) -> Self {
        let tokens = lexer::lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut file = SourceFile {
            path,
            text,
            tokens,
            sig,
            test_regions: Vec::new(),
        };
        file.test_regions = file.find_test_regions();
        file
    }

    /// The text of the significant token at sig-index `i`.
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.text(&self.text))
            .unwrap_or("")
    }

    /// The kind of the significant token at sig-index `i`.
    pub fn sig_kind(&self, i: usize) -> Option<TokenKind> {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.kind)
    }

    /// The token behind sig-index `i`.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).and_then(|&ti| self.tokens.get(ti))
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// True when the byte offset falls inside test-only code.
    pub fn in_test_code(&self, byte: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| byte >= start && byte < end)
    }

    /// The 1-based (line, col) of the significant token at sig-index `i`.
    pub fn sig_pos(&self, i: usize) -> (u32, u32) {
        self.sig_token(i).map(|t| (t.line, t.col)).unwrap_or((0, 0))
    }

    /// Finds `#[cfg(test)] mod`/`#[test] fn` regions by walking the
    /// significant tokens and brace-matching the bodies that follow.
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut i = 0;
        while i < self.sig.len() {
            if let Some(attr_end) = self.match_test_attribute(i) {
                // Scan forward from the attribute for the item's opening
                // brace, then brace-match to its close.
                if let Some((open, close)) = self.body_after(attr_end) {
                    let start = self.sig_token(i).map(|t| t.start).unwrap_or(open);
                    regions.push((start, close));
                    i = attr_end;
                    continue;
                }
            }
            i += 1;
        }
        regions
    }

    /// If sig-index `i` starts `#[cfg(test)]` or `#[test]`, returns the
    /// sig-index one past the closing `]`.
    fn match_test_attribute(&self, i: usize) -> Option<usize> {
        if self.sig_kind(i) != Some(TokenKind::Punct('#'))
            || self.sig_kind(i + 1) != Some(TokenKind::Open('['))
        {
            return None;
        }
        let is_test = match self.sig_text(i + 2) {
            "test" => self.sig_kind(i + 3) == Some(TokenKind::Close(']')),
            "cfg" => {
                self.sig_kind(i + 3) == Some(TokenKind::Open('('))
                    && self.sig_text(i + 4) == "test"
                    && self.sig_kind(i + 5) == Some(TokenKind::Close(')'))
                    && self.sig_kind(i + 6) == Some(TokenKind::Close(']'))
            }
            _ => false,
        };
        if !is_test {
            return None;
        }
        // Walk to the closing `]` (depth-matched; the checks above already
        // pinned the shape, this just finds the index).
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < self.sig.len() {
            match self.sig_kind(j) {
                Some(TokenKind::Open('[')) => depth += 1,
                Some(TokenKind::Close(']')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// From sig-index `from`, finds the next `{` at statement level
    /// (skipping further attributes, visibility, the item header) and
    /// returns the byte range (open_brace_start, close_brace_end).
    fn body_after(&self, from: usize) -> Option<(usize, usize)> {
        let mut j = from;
        // Skip any further attributes between the test attribute and the item.
        while self.sig_kind(j) == Some(TokenKind::Punct('#'))
            && self.sig_kind(j + 1) == Some(TokenKind::Open('['))
        {
            let mut depth = 0usize;
            let mut k = j + 1;
            loop {
                match self.sig_kind(k) {
                    Some(TokenKind::Open('[')) => depth += 1,
                    Some(TokenKind::Close(']')) => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    None => return None,
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        // Find the opening brace of the item body; stop at `;` (e.g. a
        // `#[cfg(test)] use ...;` has no body worth marking).
        while j < self.sig.len() {
            match self.sig_kind(j) {
                Some(TokenKind::Open('{')) => {
                    let open = self.sig_token(j)?.start;
                    let close = self.matching_close(j)?;
                    return Some((open, close));
                }
                Some(TokenKind::Punct(';')) => return None,
                _ => j += 1,
            }
        }
        None
    }

    /// Given the sig-index of an `{`, returns the byte offset one past its
    /// matching `}` (or EOF when unbalanced).
    fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.sig.len() {
            match self.sig_kind(j) {
                Some(TokenKind::Open('{')) => depth += 1,
                Some(TokenKind::Close('}')) => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return self.sig_token(j).map(|t| t.end);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        Some(self.text.len())
    }

    /// The full text of the line containing byte offset `at` (for
    /// diagnostic snippets and allowlist `pattern` matching).
    pub fn line_text(&self, at: usize) -> &str {
        let start = self.text[..at.min(self.text.len())]
            .rfind('\n')
            .map(|p| p + 1)
            .unwrap_or(0);
        let end = self.text[start..]
            .find('\n')
            .map(|p| start + p)
            .unwrap_or(self.text.len());
        self.text.get(start..end).unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::new("a.rs".into(), src.into());
        let live = src.find("x.unwrap").unwrap();
        let test = src.find("y.unwrap").unwrap();
        assert!(!f.in_test_code(live));
        assert!(f.in_test_code(test));
    }

    #[test]
    fn test_fn_is_a_test_region() {
        let src = "#[test]\nfn check() { z.unwrap(); }\nfn live() { w.unwrap(); }\n";
        let f = SourceFile::new("a.rs".into(), src.into());
        assert!(f.in_test_code(src.find("z.unwrap").unwrap()));
        assert!(!f.in_test_code(src.find("w.unwrap").unwrap()));
    }

    #[test]
    fn attribute_stacking_is_handled() {
        let src = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\"); }\nfn live() {}\n";
        let f = SourceFile::new("a.rs".into(), src.into());
        assert!(f.in_test_code(src.find("panic!").unwrap()));
        assert!(!f.in_test_code(src.find("fn live").unwrap()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"x\")]\nmod m { fn f() { a.unwrap(); } }\n";
        let f = SourceFile::new("a.rs".into(), src.into());
        assert!(!f.in_test_code(src.find("a.unwrap").unwrap()));
    }

    #[test]
    fn line_text_extraction() {
        let src = "first\nsecond line\nthird";
        let f = SourceFile::new("a.rs".into(), src.into());
        assert_eq!(f.line_text(src.find("second").unwrap() + 3), "second line");
    }
}
