//! Fixture: error-code stability rules.  `Forgotten` has no arm in
//! `code()` and the match carries a wildcard — both TCBF-E001 — and the
//! protocol text passed by the test omits `Undocumented` (TCBF-E002).
//! Read by tests/rules.rs; never compiled.

pub enum TcbfError {
    MissingWeights,
    Degraded { lost: usize },
    Forgotten,
    Undocumented,
}

impl TcbfError {
    pub fn code(&self) -> u16 {
        match self {
            TcbfError::MissingWeights => 1,
            TcbfError::Degraded { .. } => 13,
            TcbfError::Undocumented => 15,
            _ => 99,
        }
    }
}
