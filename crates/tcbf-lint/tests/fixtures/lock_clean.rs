//! Fixture: consistent lock nesting with a matching declaration —
//! zero lock findings expected.  Read by tests/rules.rs; never compiled.
//!
//! Lock order: slots -> quarantined

fn checkout(fleet: &Fleet) -> usize {
    let mut slots = fleet.slots.lock();
    let lost = fleet.quarantined.lock().len();
    slots.pop();
    lost
}

fn sequential_not_nested(fleet: &Fleet) {
    let held = fleet.quarantined.lock();
    drop(held);
    let slots = fleet.slots.lock();
    drop(slots);
}
