//! Fixture: lock-order rules.  Declares `alpha -> beta` but acquires
//! both orders, so TCBF-L001 flags the cycle and TCBF-L002 flags the
//! edge contradicting the declaration.  Read by tests/rules.rs; never
//! compiled.
//!
//! Lock order: alpha -> beta

fn respects_declared_order(state: &State) {
    let a = state.alpha.lock();
    let b = state.beta.lock();
    drop(b);
    drop(a);
}

fn inverts_declared_order(state: &State) {
    let b = state.beta.lock();
    let a = state.alpha.lock();
    drop(a);
    drop(b);
}
