//! Fixture: determinism rules TCBF-D001..D004.  Read by tests/rules.rs;
//! never compiled.

use std::collections::{HashMap, HashSet};

struct Metrics {
    tenants: HashMap<String, u64>,
}

fn d001_sites(metrics: &Metrics, seen: HashSet<u64>) -> Vec<String> {
    let mut rotating = HashMap::new();
    rotating.insert("a", 1);
    let mut names: Vec<String> = metrics.tenants.keys().cloned().collect();
    for (name, count) in rotating {
        names.push(format!("{name}:{count}"));
    }
    for value in seen {
        names.push(value.to_string());
    }
    names
}

fn d001_quiet(metrics: &Metrics) -> Option<u64> {
    // Point lookups on unordered containers are fine — only iteration
    // leaks the unspecified order.
    metrics.tenants.get("alice").copied()
}

fn d002_sites(samples: &[f32], weights: &[f64]) -> (f32, f64, f32) {
    let energy = samples.iter().map(|s| s * s).sum::<f32>();
    let mass: f64 = weights.iter().fold(0.0f64, |acc, w| acc + w);
    // A min/max fold is order-insensitive and must NOT fire.
    let peak = samples.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    (energy, mass, peak)
}

fn d003_sites() -> u64 {
    let now = std::time::SystemTime::now();
    let mut rng = thread_rng();
    let seeded = StdRng::from_entropy();
    0
}

fn d004_site() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
        let _ = std::time::SystemTime::now();
    }
}
