//! Fixture: every serve-path panic-freedom rule fires here exactly
//! where expected, and only in non-test code.  Read by tests/rules.rs;
//! never compiled.

fn p001_sites(input: Option<u32>, fallible: Result<u32, String>) -> u32 {
    let a = input.unwrap();
    let b = fallible.expect("serve path must not expect");
    let c: Vec<u32> = vec![Some(1)].into_iter().map(Option::unwrap).collect();
    a + b + c.len() as u32
}

fn p002_sites(flag: bool) {
    if !flag {
        panic!("boom");
    }
    assert!(flag, "asserted on the serve path");
    unreachable!();
}

fn p003_sites(values: &[u32], table: &Vec<u32>) -> u32 {
    let head = values[0];
    let tail = table[values.len() - 1];
    head + tail
}

fn quiet_sites(values: &[u32]) -> Option<u32> {
    // None of these may fire: unwrap_or is total, vec![...] is a macro,
    // attributes and slice types use brackets without indexing, and the
    // string below only *names* a panic.
    let safe = values.first().copied().unwrap_or(0);
    let built: Vec<u32> = vec![1, 2, 3];
    let label = "do not .unwrap() strings or panic!()";
    let _: &[u8] = &[1, 2];
    Some(safe + built.len() as u32 + label.len() as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn assertions_are_fine_in_tests() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        assert!(v.first().copied().unwrap() == 1);
        let _ = v.get(9).ok_or("x").expect("tests may expect");
        panic!("tests may panic");
    }
}
