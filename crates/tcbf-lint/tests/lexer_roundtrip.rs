//! Property tests for the lexer's two hard guarantees: it never panics,
//! and the concatenated token texts reproduce the input byte-for-byte.

use proptest::collection::vec;
use proptest::prelude::*;
use tcbf_lint::lexer::lex;

/// Rebuilds the source from its tokens and asserts exact equality.
fn assert_roundtrip(src: &str) {
    let tokens = lex(src);
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "lexer dropped or duplicated bytes");
    // Spans must tile the input: contiguous and in order.
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos}");
        assert!(t.end > t.start, "empty token at byte {pos}");
        pos = t.end;
    }
    assert_eq!(pos, src.len());
}

/// Maps a byte to a character from a Rust-flavored alphabet, weighted
/// toward the characters that drive the lexer's tricky states: quotes,
/// escapes, comment openers, raw-string hashes, and some multibyte
/// unicode for good measure.
fn flavored_char(b: u8) -> char {
    const ALPHABET: &[char] = &[
        '"', '\'', '\\', '/', '*', '#', 'r', 'b', '_', 'a', 'z', 'A', '0', '9', '.', ':', ';', '(',
        ')', '[', ']', '{', '}', '<', '>', '!', '&', '=', ' ', '\n', '\t', 'é', '入', '🦀', 'e',
        '-', '+', 'x', 'f',
    ];
    ALPHABET[b as usize % ALPHABET.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes pushed through lossy UTF-8: the lexer must accept
    /// whatever text arrives and reproduce it exactly.
    #[test]
    fn roundtrips_arbitrary_text(bytes in vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_roundtrip(&src);
    }

    /// Rust-flavored soup: dense in quote/comment/raw-string state
    /// transitions, where a lossless lexer is hardest to get right.
    #[test]
    fn roundtrips_rust_flavored_soup(bytes in vec(any::<u8>(), 0..200)) {
        let src: String = bytes.iter().map(|&b| flavored_char(b)).collect();
        assert_roundtrip(&src);
    }
}

#[test]
fn roundtrips_this_crate_itself() {
    // The most realistic corpus available offline: every source file of
    // the linter itself.
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/src")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path).unwrap();
            assert_roundtrip(&src);
        }
    }
}
