//! Fixture tests: for every rule, one case where it FIRES on a
//! purpose-built fixture and one where the same findings are fully
//! SUPPRESSED by an allowlist — proving both halves of the contract
//! (detection and reviewable waiver) end to end.

use tcbf_lint::allowlist::Allowlist;
use tcbf_lint::config::LintConfig;
use tcbf_lint::diagnostics::Finding;
use tcbf_lint::rules::error_codes;
use tcbf_lint::source::SourceFile;

/// Scope config that puts the fixtures under every rule.
fn fixture_config() -> LintConfig {
    LintConfig {
        serve_path: vec!["fixtures/".into()],
        float_scope: vec!["fixtures/".into()],
        float_approved: vec![],
        instant_allowed: vec![],
        lock_methods: vec!["lock".into()],
    }
}

fn lint_fixture(name: &str, text: &str) -> Vec<Finding> {
    tcbf_lint::lint_source(&format!("fixtures/{name}"), text, &fixture_config())
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

fn lines(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// Suppresses every finding with a blanket per-rule allowlist and
/// asserts nothing is left unsuppressed and nothing is stale.
fn assert_fully_suppressible(name: &str, findings: &mut [Finding]) {
    let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    let toml: String = rules
        .iter()
        .map(|rule| {
            format!(
                "[[allow]]\nrule = \"{rule}\"\npath = \"fixtures/{name}\"\nreason = \"fixture: suppression half of the contract\"\n\n"
            )
        })
        .collect();
    let allow = Allowlist::parse(&toml).expect("generated allowlist parses");
    let stale = allow.apply(findings);
    assert!(stale.is_empty(), "no generated entry may be stale");
    let open: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.suppressed_by.is_none())
        .collect();
    assert!(open.is_empty(), "still unsuppressed: {open:?}");
}

const SERVE_PANICS: &str = include_str!("fixtures/serve_panics.rs");
const NONDETERMINISM: &str = include_str!("fixtures/nondeterminism.rs");
const LOCK_INVERSION: &str = include_str!("fixtures/lock_inversion.rs");
const LOCK_CLEAN: &str = include_str!("fixtures/lock_clean.rs");
const ERRORS_ENUM: &str = include_str!("fixtures/errors_enum.rs");

#[test]
fn p001_fires_on_unwrap_expect_and_path_form() {
    let findings = lint_fixture("serve_panics.rs", SERVE_PANICS);
    assert_eq!(lines(&findings, "TCBF-P001"), vec![6, 7, 8]);
}

#[test]
fn p002_fires_on_panicking_macros() {
    let findings = lint_fixture("serve_panics.rs", SERVE_PANICS);
    // panic!, assert!, unreachable! — one each.
    assert_eq!(count(&findings, "TCBF-P002"), 3);
}

#[test]
fn p003_fires_on_indexing_only() {
    let findings = lint_fixture("serve_panics.rs", SERVE_PANICS);
    assert_eq!(lines(&findings, "TCBF-P003"), vec![21, 22]);
}

#[test]
fn panic_rules_skip_test_code_and_safe_constructs() {
    let findings = lint_fixture("serve_panics.rs", SERVE_PANICS);
    // Everything in `quiet_sites` and `mod tests` stays silent: the
    // fixture's only findings are the 8 deliberate ones above.
    assert_eq!(findings.len(), 8, "unexpected findings: {findings:?}");
    assert!(
        findings.iter().all(|f| f.line < 36),
        "fired inside mod tests"
    );
}

#[test]
fn panic_rules_are_scoped_to_the_serve_path() {
    let cfg = LintConfig::default(); // real policy: fixtures are out of scope
    let findings = tcbf_lint::lint_source("fixtures/serve_panics.rs", SERVE_PANICS, &cfg);
    assert_eq!(count(&findings, "TCBF-P001"), 0);
    assert_eq!(count(&findings, "TCBF-P002"), 0);
    assert_eq!(count(&findings, "TCBF-P003"), 0);
}

#[test]
fn panic_findings_are_suppressible() {
    let mut findings = lint_fixture("serve_panics.rs", SERVE_PANICS);
    assert!(!findings.is_empty());
    assert_fully_suppressible("serve_panics.rs", &mut findings);
}

#[test]
fn d001_fires_on_hash_iteration_not_lookup() {
    let findings = lint_fixture("nondeterminism.rs", NONDETERMINISM);
    // keys() on a HashMap field, for over a local HashMap, for over a
    // HashSet parameter.
    assert_eq!(count(&findings, "TCBF-D001"), 3);
    assert!(
        !lines(&findings, "TCBF-D001").contains(&27),
        "point lookup must not fire"
    );
}

#[test]
fn d002_fires_on_float_reductions_but_not_min_max() {
    let findings = lint_fixture("nondeterminism.rs", NONDETERMINISM);
    assert_eq!(lines(&findings, "TCBF-D002"), vec![30, 31]);
}

#[test]
fn d003_and_d004_fire_outside_test_code() {
    let findings = lint_fixture("nondeterminism.rs", NONDETERMINISM);
    assert_eq!(count(&findings, "TCBF-D003"), 3); // SystemTime, thread_rng, from_entropy
    assert_eq!(count(&findings, "TCBF-D004"), 1);
    assert!(
        findings.iter().all(|f| f.line < 48),
        "fired inside mod tests"
    );
}

#[test]
fn d004_respects_the_timing_allowlist() {
    let mut cfg = fixture_config();
    cfg.instant_allowed = vec!["fixtures/".into()];
    let findings = tcbf_lint::lint_source("fixtures/nondeterminism.rs", NONDETERMINISM, &cfg);
    assert_eq!(count(&findings, "TCBF-D004"), 0);
}

#[test]
fn determinism_findings_are_suppressible() {
    let mut findings = lint_fixture("nondeterminism.rs", NONDETERMINISM);
    assert!(!findings.is_empty());
    assert_fully_suppressible("nondeterminism.rs", &mut findings);
}

#[test]
fn l001_and_l002_fire_on_an_inversion() {
    let findings = lint_fixture("lock_inversion.rs", LOCK_INVERSION);
    // Both edges of the alpha/beta cycle are flagged…
    assert_eq!(count(&findings, "TCBF-L001"), 2);
    // …and the beta -> alpha edge also contradicts the declared order.
    assert_eq!(count(&findings, "TCBF-L002"), 1);
    assert!(findings
        .iter()
        .any(|f| f.rule == "TCBF-L002" && f.message.contains("contradicts")));
}

#[test]
fn lock_rules_accept_consistent_nesting() {
    let findings = lint_fixture("lock_clean.rs", LOCK_CLEAN);
    assert_eq!(count(&findings, "TCBF-L001"), 0);
    assert_eq!(count(&findings, "TCBF-L002"), 0);
}

#[test]
fn l002_requires_a_declaration() {
    // Strip the declaration from the clean fixture: its single edge now
    // has no canonical order to check against.
    let undeclared = LOCK_CLEAN.replace("//! Lock order: slots -> quarantined", "//!");
    let findings = lint_fixture("lock_clean.rs", &undeclared);
    assert_eq!(count(&findings, "TCBF-L002"), 1);
    assert!(findings[0].message.contains("declares no canonical"));
}

#[test]
fn lock_findings_are_suppressible() {
    let mut findings = lint_fixture("lock_inversion.rs", LOCK_INVERSION);
    assert!(!findings.is_empty());
    assert_fully_suppressible("lock_inversion.rs", &mut findings);
}

#[test]
fn e001_fires_on_missing_arm_and_wildcard() {
    let file = SourceFile::new("fixtures/errors_enum.rs".into(), ERRORS_ENUM.into());
    let mut findings = Vec::new();
    error_codes::check(
        &file,
        Some("MissingWeights Degraded Forgotten Undocumented"),
        &mut findings,
    );
    let e001: Vec<&Finding> = findings.iter().filter(|f| f.rule == "TCBF-E001").collect();
    assert_eq!(e001.len(), 2);
    assert!(e001.iter().any(|f| f.message.contains("`Forgotten`")));
    assert!(e001.iter().any(|f| f.message.contains("wildcard")));
    assert_eq!(count(&findings, "TCBF-E002"), 0);
}

#[test]
fn e002_fires_on_undocumented_variants() {
    let file = SourceFile::new("fixtures/errors_enum.rs".into(), ERRORS_ENUM.into());
    let mut findings = Vec::new();
    error_codes::check(
        &file,
        Some("MissingWeights Degraded Forgotten"),
        &mut findings,
    );
    let e002: Vec<&Finding> = findings.iter().filter(|f| f.rule == "TCBF-E002").collect();
    assert_eq!(e002.len(), 1);
    assert!(e002[0].message.contains("`Undocumented`"));
    // A missing protocol document is itself a finding.
    let mut none = Vec::new();
    error_codes::check(&file, None, &mut none);
    assert!(none
        .iter()
        .any(|f| f.rule == "TCBF-E002" && f.message.contains("missing")));
}

#[test]
fn e_findings_are_suppressible() {
    let file = SourceFile::new("fixtures/errors_enum.rs".into(), ERRORS_ENUM.into());
    let mut findings = Vec::new();
    error_codes::check(&file, Some("MissingWeights Degraded"), &mut findings);
    assert!(!findings.is_empty());
    assert_fully_suppressible("errors_enum.rs", &mut findings);
}

#[test]
fn allowlist_reason_is_mandatory_end_to_end() {
    let toml =
        "[[allow]]\nrule = \"TCBF-P001\"\npath = \"fixtures/serve_panics.rs\"\nreason = \"\"\n";
    let errs = Allowlist::parse(toml).unwrap_err();
    assert!(errs[0].message.contains("must be justified"));
}
