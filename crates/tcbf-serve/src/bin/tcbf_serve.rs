//! The `tcbf-serve` binary: run a serving worker or benchmark one.
//!
//! ```text
//! tcbf-serve serve --port 31934 --gpus A100,A100 --beams 16 \
//!     --receivers 64 --samples 256 --engines 2 --workers 4
//! tcbf-serve bench-client --addr 127.0.0.1:31934 --clients 4 --blocks 32
//! tcbf-serve discover --timeout-ms 1500
//! ```
//!
//! `serve` prints `listening on <addr>` once ready and a greppable
//! `fleet-report …` line on Ctrl-less shutdown is not available offline,
//! so the serve loop runs until the process is killed; `bench-client`
//! prints per-tenant lines plus its own aggregate for CI to grep.

use ccglib::Precision;
use gpu_sim::{FaultPlan, Gpu};
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use tcbf_serve::{discover_workers, example_weights, serve, BeaconConfig, Client, ServeConfig};
use tcbf_types::Complex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = args.get(1..).unwrap_or_default();
    let result = match args.first().map(String::as_str) {
        Some("serve") => run_serve(rest),
        Some("bench-client") => run_bench_client(rest),
        Some("discover") => run_discover(rest),
        Some("fault-smoke") => run_fault_smoke(rest),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        print_usage();
        std::process::exit(1);
    }
}

fn print_usage() {
    eprintln!(
        "usage:\n  \
         tcbf-serve serve [--port N] [--gpus A100,A100] [--precisions float16,int1]\n    \
         [--beams N] [--receivers N] [--samples N] [--engines N] [--workers N]\n    \
         [--max-sessions N] [--queue-depth N] [--tenant-streams N] [--tenant-rate F]\n    \
         [--announce ADDR] [--beacon-interval-ms N] [--run-for-ms N]\n  \
         tcbf-serve bench-client --addr HOST:PORT [--clients N] [--blocks N]\n    \
         [--precision float16] [--receivers N] [--samples N] [--tenant-prefix S]\n  \
         tcbf-serve discover [--listen ADDR] [--timeout-ms N]\n  \
         tcbf-serve fault-smoke [--blocks N] [--kill-after N]"
    );
}

/// A minimal `--key value` argument scanner.
struct Flags<'a> {
    args: &'a [String],
}

impl<'a> Flags<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for {key}")),
        }
    }
}

fn parse_precision(name: &str) -> Result<Precision, String> {
    match name {
        "float16" => Ok(Precision::Float16),
        "int1" => Ok(Precision::Int1),
        "float32" => Ok(Precision::Float32Reference),
        other => Err(format!(
            "unknown precision `{other}` (expected float16, int1 or float32)"
        )),
    }
}

fn parse_gpu(name: &str) -> Result<Gpu, String> {
    Gpu::ALL
        .iter()
        .copied()
        .find(|g| g.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown GPU `{name}` (known: {})",
                Gpu::ALL
                    .iter()
                    .map(|g| g.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
}

fn run_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let port: u16 = flags.parse("--port", 0)?;
    let gpus = flags
        .get("--gpus")
        .unwrap_or("A100")
        .split(',')
        .map(parse_gpu)
        .collect::<Result<Vec<_>, _>>()?;
    let precisions = flags
        .get("--precisions")
        .unwrap_or("float16,int1")
        .split(',')
        .map(parse_precision)
        .collect::<Result<Vec<_>, _>>()?;
    let beams: usize = flags.parse("--beams", 16)?;
    let receivers: usize = flags.parse("--receivers", 64)?;
    let samples: usize = flags.parse("--samples", 256)?;
    let tenant_rate: f64 = flags.parse("--tenant-rate", 0.0)?;
    let run_for_ms: u64 = flags.parse("--run-for-ms", 0)?;

    let config = ServeConfig {
        gpus,
        precisions,
        engines_per_precision: flags.parse("--engines", 2)?,
        weights: example_weights(beams, receivers),
        samples_per_block: samples,
        max_sessions: flags.parse("--max-sessions", 16)?,
        queue_depth: flags.parse("--queue-depth", 4)?,
        tenant_max_streams: flags.parse("--tenant-streams", 8)?,
        tenant_blocks_per_sec: (tenant_rate > 0.0).then_some(tenant_rate),
        workers: flags.parse("--workers", 4)?,
        fault_plan: None,
    };

    let mut handle =
        serve(("127.0.0.1", port), config).map_err(|e| format!("cannot start server: {e}"))?;
    if let Some(target) = flags.get("--announce") {
        let target: SocketAddr = target
            .parse()
            .map_err(|_| format!("invalid --announce address `{target}`"))?;
        let interval_ms: u64 = flags.parse("--beacon-interval-ms", 1000)?;
        handle.announce(BeaconConfig {
            target,
            interval: Duration::from_millis(interval_ms.max(10)),
        });
    }
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if run_for_ms > 0 {
        std::thread::sleep(Duration::from_millis(run_for_ms));
        let report = handle.shutdown();
        for line in report.tenant_lines() {
            println!("{line}");
        }
        println!("{}", report.summary_line());
    } else {
        // Serve until killed; a periodic fleet line keeps operators
        // informed without any signal handling.
        loop {
            std::thread::sleep(Duration::from_secs(10));
            println!("{}", handle.fleet_report().summary_line());
            let _ = std::io::stdout().flush();
        }
    }
    Ok(())
}

fn run_bench_client(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let addr = flags
        .get("--addr")
        .ok_or("bench-client needs --addr HOST:PORT")?
        .to_owned();
    let clients: usize = flags.parse("--clients", 2)?;
    let blocks: usize = flags.parse("--blocks", 16)?;
    let precision = parse_precision(flags.get("--precision").unwrap_or("float16"))?;
    let receivers: usize = flags.parse("--receivers", 64)?;
    let samples: usize = flags.parse("--samples", 256)?;
    let tenant_prefix = flags.get("--tenant-prefix").unwrap_or("bench").to_owned();

    // Wait for the server to come up (CI starts it in the background).
    let connect_deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match std::net::TcpStream::connect(&addr) {
            Ok(_) => break,
            Err(e) if Instant::now() >= connect_deadline => {
                return Err(format!("server at {addr} never came up: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let tenant = format!("{tenant_prefix}-{c}");
            std::thread::spawn(move || -> Result<(String, u64, f64, f64), String> {
                let mut client = Client::connect(&addr, &tenant, precision, receivers, samples)
                    .map_err(|e| format!("{tenant}: connect failed: {e}"))?;
                let stream: Vec<_> = (0..blocks)
                    .map(|b| {
                        ccglib::matrix::HostComplexMatrix::from_fn(receivers, samples, |r, s| {
                            Complex::new(
                                ((r * 13 + s * 7 + b * 3 + c) % 17) as f32 * 0.11 - 0.8,
                                ((s * 11 + r * 5 + b) % 19) as f32 * 0.09 - 0.7,
                            )
                        })
                    })
                    .collect();
                let outputs = client
                    .stream_blocks(&stream)
                    .map_err(|e| format!("{tenant}: stream failed: {e}"))?;
                if outputs.len() != blocks {
                    return Err(format!(
                        "{tenant}: expected {blocks} outputs, got {}",
                        outputs.len()
                    ));
                }
                let retries = client.throttle_retries();
                let summary = client
                    .finish()
                    .map_err(|e| format!("{tenant}: finish failed: {e}"))?;
                Ok((
                    tenant,
                    retries,
                    summary.p99_latency_s,
                    summary.aggregate_tops,
                ))
            })
        })
        .collect();

    let mut total_blocks = 0u64;
    let mut total_retries = 0u64;
    let mut worst_p99 = 0.0f64;
    let mut errors = 0u64;
    for handle in handles {
        match handle.join().map_err(|_| "client thread panicked")? {
            Ok((tenant, retries, p99, tops)) => {
                println!(
                    "client tenant={tenant} blocks={blocks} retries={retries} \
                     p99_us={:.1} aggregate_tops={tops:.2}",
                    p99 * 1e6
                );
                total_blocks += blocks as u64;
                total_retries += retries;
                worst_p99 = worst_p99.max(p99);
            }
            Err(message) => {
                eprintln!("client error: {message}");
                errors += 1;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "bench-report clients={clients} blocks={total_blocks} retries={total_retries} \
         errors={errors} p99_us={:.1} wall_s={elapsed:.2}",
        worst_p99 * 1e6
    );
    if errors > 0 {
        return Err(format!("{errors} of {clients} clients failed"));
    }
    Ok(())
}

/// Self-contained fault-tolerance smoke test for CI: serve over loopback
/// with a fault plan that permanently kills one of the two pool engines
/// mid-stream, stream blocks through a single client, and compare the
/// served beams bit-for-bit against a direct no-fault engine.
fn run_fault_smoke(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let blocks: usize = flags.parse("--blocks", 24)?;
    let kill_after: u64 = flags.parse("--kill-after", 5)?;

    const BEAMS: usize = 8;
    const RECEIVERS: usize = 16;
    const SAMPLES: usize = 32;
    let config = ServeConfig {
        gpus: vec![Gpu::A100],
        precisions: vec![Precision::Float16],
        engines_per_precision: 2,
        weights: example_weights(BEAMS, RECEIVERS),
        samples_per_block: SAMPLES,
        max_sessions: 4,
        queue_depth: 4,
        tenant_max_streams: 4,
        tenant_blocks_per_sec: None,
        workers: 2,
        // Slot 0 of the float16 fleet dies permanently after serving
        // `kill_after` blocks; the stream must finish on slot 1.
        fault_plan: Some(FaultPlan::new().kill_device(0, kill_after)),
    };

    let handle = serve("127.0.0.1:0", config).map_err(|e| format!("cannot start server: {e}"))?;
    let stream: Vec<_> = (0..blocks)
        .map(|b| {
            ccglib::matrix::HostComplexMatrix::from_fn(RECEIVERS, SAMPLES, |r, s| {
                Complex::new(
                    ((r * 13 + s * 7 + b * 3) % 17) as f32 * 0.11 - 0.8,
                    ((s * 11 + r * 5 + b) % 19) as f32 * 0.09 - 0.7,
                )
            })
        })
        .collect();

    let mut client = Client::connect(
        handle.addr(),
        "smoke",
        Precision::Float16,
        RECEIVERS,
        SAMPLES,
    )
    .map_err(|e| format!("connect failed: {e}"))?;
    let served = client
        .stream_blocks(&stream)
        .map_err(|e| format!("stream failed: {e}"))?;
    let summary = client.finish().map_err(|e| format!("finish failed: {e}"))?;
    let report = handle.shutdown();

    // The no-fault ground truth: the same engine the server builds,
    // driven directly.
    let mut reference = tcbf::BeamformerBuilder::new(Gpu::A100)
        .weights(example_weights(BEAMS, RECEIVERS))
        .samples_per_block(SAMPLES)
        .precision(Precision::Float16)
        .build_engine()
        .map_err(|e| format!("cannot build reference engine: {e}"))?;
    let mut bit_identical = true;
    for (block, beams) in stream.iter().zip(&served) {
        let mut outputs = reference
            .process_batch(&[block])
            .map_err(|e| format!("reference engine failed: {e}"))?;
        bit_identical &= outputs.pop().map(|o| o.beams) == Some(beams.clone());
    }

    println!(
        "fault-smoke blocks={} client_errors={} recovered_jobs={} bit_identical={}",
        served.len(),
        summary.errors,
        report.total_recovered(),
        bit_identical,
    );
    println!("{}", report.summary_line());

    if !bit_identical {
        return Err("served beams diverge from the no-fault reference".into());
    }
    if summary.errors > 0 {
        return Err(format!("{} client-visible errors", summary.errors));
    }
    if report.total_recovered() == 0 {
        return Err("the fault never fired: no job was recovered".into());
    }
    if !report.is_degraded() {
        return Err("the pool never degraded: quarantine did not engage".into());
    }
    Ok(())
}

fn run_discover(args: &[String]) -> Result<(), String> {
    let flags = Flags { args };
    let listen = flags.get("--listen").unwrap_or("0.0.0.0:31935").to_owned();
    let timeout_ms: u64 = flags.parse("--timeout-ms", 1500)?;
    let fleet = discover_workers(listen.as_str(), Duration::from_millis(timeout_ms))
        .map_err(|e| format!("discovery failed: {e}"))?;
    for worker in &fleet {
        println!(
            "worker addr={} gpus={} precisions={} engines={} sessions={}/{}",
            worker.addr,
            worker.gpus.join(","),
            worker
                .precisions
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            worker.engines_per_precision,
            worker.active_sessions,
            worker.max_sessions,
        );
    }
    println!("discovered {} workers", fleet.len());
    Ok(())
}
