//! A blocking client for the serve protocol.
//!
//! [`Client::connect`] performs the `Hello`/`Welcome` handshake,
//! [`Client::stream_blocks`] pipelines sample blocks up to the session's
//! advertised queue depth (transparently retrying `Throttled` refusals
//! with capped exponential backoff and deterministic jitter — see
//! [`retry_backoff`]), [`Client::swap_weights`] hot-swaps the session's
//! beam weights and [`Client::finish`] closes the session and returns the
//! server's [`SessionSummary`].  Outputs come back in input order
//! regardless of how server workers interleave, re-ordered by sequence
//! number client side.  [`Client::connect_with_retry`] additionally rides
//! out transient connect failures and `ServerFull` rejections — the
//! degraded-admission states a recovering fleet goes through.

use crate::wire::{
    read_frame_polling, write_frame, ClientMsg, RejectReason, ServerMsg, SessionSummary,
    PROTO_VERSION,
};
use ccglib::matrix::HostComplexMatrix;
use ccglib::Precision;
use gpu_sim::fault::splitmix64;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How long the client waits for any single server reply.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);
/// Socket read timeout, used as the polling interval for the deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// First-retry nominal backoff in microseconds (2 ms); doubles per
/// attempt up to [`BACKOFF_CAP_SHIFT`] doublings (256 ms).
const BACKOFF_BASE_US: u64 = 2_000;
/// Maximum number of doublings of [`BACKOFF_BASE_US`].
const BACKOFF_CAP_SHIFT: u32 = 7;

/// The backoff before retry number `attempt` (0-based) of one logical
/// operation: capped exponential with deterministic jitter.
///
/// The nominal delay is `2 ms << min(attempt, 7)` — 2 ms, 4 ms, … capped
/// at 256 ms — and the returned delay lands in `[0.75, 1.25)` of nominal,
/// positioned by hashing `key` and `attempt` (splitmix64).  Same `(attempt,
/// key)` in, same delay out: retry schedules are reproducible, while
/// distinct keys (sessions, block indices) spread their retries instead of
/// stampeding the server in lockstep.
pub fn retry_backoff(attempt: u32, key: u64) -> Duration {
    let nominal = BACKOFF_BASE_US << attempt.min(BACKOFF_CAP_SHIFT);
    let hash = splitmix64(key ^ ((u64::from(attempt) << 32) | 0x9e37_79b9));
    let jitter = hash % (nominal / 2).max(1);
    Duration::from_micros(nominal - nominal / 4 + jitter)
}

/// Everything that can go wrong on the client side of a session.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server refused the session at `Hello` time.
    Rejected(RejectReason),
    /// The server reported a typed failure; `code` round-trips
    /// [`tcbf::TcbfError::code`].
    Remote {
        /// The stable numeric error code.
        code: u16,
        /// The server's human-readable description.
        message: String,
    },
    /// The peer violated the protocol (unexpected or malformed message).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Rejected(reason) => write!(f, "session rejected: {reason}"),
            ServeError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            ServeError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl ServeError {
    /// Whether retrying the same operation may succeed: transport errors
    /// (the server may be restarting) and `ServerFull` rejections (a
    /// degraded pool recovering its admission headroom) are retryable;
    /// quota and version rejections, typed remote errors and protocol
    /// violations are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Io(_) | ServeError::Rejected(RejectReason::ServerFull { .. })
        )
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A blocking session with a serving worker.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    session_id: u64,
    beams: u32,
    queue_depth: u32,
    window: usize,
    next_seq: u64,
    throttle_retries: u64,
}

impl Client {
    /// Connects, handshakes and returns an admitted session.
    ///
    /// `receivers`/`samples_per_block` declare the block shape this
    /// session will stream; the server validates them against its
    /// configuration up front so shape errors surface here, not mid-stream.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        precision: Precision,
        receivers: usize,
        samples_per_block: usize,
    ) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: stream,
            session_id: 0,
            beams: 0,
            queue_depth: 0,
            window: 0,
            next_seq: 0,
            throttle_retries: 0,
        };
        client.send(&ClientMsg::Hello {
            version: PROTO_VERSION,
            tenant: tenant.to_owned(),
            precision,
            receivers: receivers as u32,
            samples_per_block: samples_per_block as u32,
        })?;
        match client.recv()? {
            ServerMsg::Welcome {
                session_id,
                beams,
                queue_depth,
            } => {
                client.session_id = session_id;
                client.beams = beams;
                client.queue_depth = queue_depth;
                client.window = (queue_depth as usize).clamp(1, 8);
                Ok(client)
            }
            ServerMsg::Rejected { reason } => Err(ServeError::Rejected(reason)),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// Like [`Client::connect`], but rides out retryable failures —
    /// refused TCP connects and `ServerFull` rejections — with up to
    /// `max_attempts` tries under the [`retry_backoff`] schedule (keyed by
    /// the tenant name so concurrent tenants don't stampede in lockstep).
    /// The last error is returned once the budget is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        tenant: &str,
        precision: Precision,
        receivers: usize,
        samples_per_block: usize,
        max_attempts: u32,
    ) -> Result<Client, ServeError> {
        let key = tenant.bytes().fold(0x6a09_e667_f3bc_c908u64, |acc, b| {
            splitmix64(acc ^ u64::from(b))
        });
        let mut attempt = 0u32;
        loop {
            match Client::connect(
                addr.clone(),
                tenant,
                precision,
                receivers,
                samples_per_block,
            ) {
                Ok(client) => return Ok(client),
                Err(e) if e.is_retryable() && attempt + 1 < max_attempts.max(1) => {
                    std::thread::sleep(retry_backoff(attempt, key));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Beams per output block, from the server's `Welcome`.
    pub fn beams(&self) -> usize {
        self.beams as usize
    }

    /// The session's queue depth, from the server's `Welcome`.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth as usize
    }

    /// Overrides the pipelining window (clamped to at least 1).  A window
    /// larger than the queue depth deliberately provokes `Throttled`
    /// refusals — useful for testing backpressure.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Throttled refusals retried so far (both queue-full and
    /// rate-limited).  Backpressure is invisible in the outputs — every
    /// refused block is retried until accepted — so this counter is how
    /// callers observe it.
    pub fn throttle_retries(&self) -> u64 {
        self.throttle_retries
    }

    /// Streams `blocks` through the session, pipelined up to the window,
    /// and returns the beamformed outputs **in input order**.
    ///
    /// `Throttled` refusals are retried until accepted under the
    /// [`retry_backoff`] schedule — capped exponential per block, with
    /// jitter keyed by session id and block index so pipelined retries
    /// spread out instead of hammering the server in phase.  A block that
    /// is eventually accepted resets nothing: its attempt count keeps
    /// growing until the server takes it.  Typed server errors abort the
    /// stream.
    pub fn stream_blocks(
        &mut self,
        blocks: &[HostComplexMatrix],
    ) -> Result<Vec<HostComplexMatrix>, ServeError> {
        let mut results: Vec<Option<HostComplexMatrix>> = vec![None; blocks.len()];
        // seq -> index into `blocks`, for in-flight requests.
        let mut pending: Vec<(u64, usize)> = Vec::new();
        // Per-block throttle count, driving that block's backoff schedule.
        let mut attempts: Vec<u32> = vec![0; blocks.len()];
        let mut next_block = 0usize;
        let mut done = 0usize;

        while done < blocks.len() {
            // Fill the window.
            while pending.len() < self.window && next_block < blocks.len() {
                let seq = self.next_seq;
                self.next_seq += 1;
                let samples = blocks
                    .get(next_block)
                    .ok_or_else(|| {
                        ServeError::Protocol(format!("block {next_block} out of range"))
                    })?
                    .clone();
                self.send(&ClientMsg::Block { seq, samples })?;
                pending.push((seq, next_block));
                next_block += 1;
            }
            match self.recv()? {
                ServerMsg::Beams { seq, beams, .. } => {
                    let slot = pending
                        .iter()
                        .position(|&(s, _)| s == seq)
                        .ok_or_else(|| ServeError::Protocol(format!("unknown seq {seq}")))?;
                    let (_, index) = pending.swap_remove(slot);
                    *results.get_mut(index).ok_or_else(|| {
                        ServeError::Protocol(format!("result slot {index} out of range"))
                    })? = Some(beams);
                    done += 1;
                }
                ServerMsg::Throttled { seq, .. } => {
                    // Refused, not failed: back off and re-send that block
                    // under a fresh sequence number.
                    let slot = pending
                        .iter()
                        .position(|&(s, _)| s == seq)
                        .ok_or_else(|| ServeError::Protocol(format!("unknown seq {seq}")))?;
                    let (_, index) = pending.swap_remove(slot);
                    self.throttle_retries += 1;
                    std::thread::sleep(retry_backoff(
                        attempts.get(index).copied().unwrap_or(0),
                        self.session_id ^ index as u64,
                    ));
                    if let Some(count) = attempts.get_mut(index) {
                        *count = count.saturating_add(1);
                    }
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let samples = blocks
                        .get(index)
                        .ok_or_else(|| ServeError::Protocol(format!("block {index} out of range")))?
                        .clone();
                    self.send(&ClientMsg::Block { seq, samples })?;
                    pending.push((seq, index));
                }
                ServerMsg::Error { code, message, .. } => {
                    return Err(ServeError::Remote { code, message });
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected Beams/Throttled, got {other:?}"
                    )));
                }
            }
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.ok_or_else(|| {
                    ServeError::Protocol(format!("stream finished but block {i} has no output"))
                })
            })
            .collect()
    }

    /// Hot-swaps the session's beam weights; blocks streamed afterwards
    /// use the new weights.
    pub fn swap_weights(&mut self, weights: &HostComplexMatrix) -> Result<(), ServeError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(&ClientMsg::SwapWeights {
            seq,
            weights: weights.clone(),
        })?;
        match self.recv()? {
            ServerMsg::SwapOk { .. } => Ok(()),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected SwapOk, got {other:?}"
            ))),
        }
    }

    /// Ends the session cleanly and returns the server's summary.
    pub fn finish(mut self) -> Result<SessionSummary, ServeError> {
        self.send(&ClientMsg::Finish)?;
        match self.recv()? {
            ServerMsg::Goodbye { summary } => Ok(summary),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Goodbye, got {other:?}"
            ))),
        }
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ServeError> {
        write_frame(&mut self.writer, &msg.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMsg, ServeError> {
        let deadline = Instant::now() + RESPONSE_TIMEOUT;
        match read_frame_polling(&mut self.reader, || Instant::now() >= deadline) {
            Ok(Some(payload)) => {
                ServerMsg::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
            }
            Ok(None) => Err(ServeError::Protocol(
                "server closed the connection".to_owned(),
            )),
            Err(e) => Err(ServeError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_attempt_and_key() {
        for attempt in 0..12 {
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(
                    retry_backoff(attempt, key),
                    retry_backoff(attempt, key),
                    "same (attempt, key) must give the same delay"
                );
            }
        }
        // Distinct keys de-phase: at least one attempt must differ.
        assert!(
            (0..12).any(|a| retry_backoff(a, 1) != retry_backoff(a, 2)),
            "jitter must depend on the key"
        );
    }

    #[test]
    fn backoff_doubles_until_the_cap() {
        // The jittered delay lands in [0.75, 1.25) of nominal, so the
        // schedule's growth is visible through the bounds.
        for attempt in 0..16u32 {
            let nominal = BACKOFF_BASE_US << attempt.min(BACKOFF_CAP_SHIFT);
            for key in [7u64, 1234, 99_999] {
                let us = retry_backoff(attempt, key).as_micros() as u64;
                assert!(
                    us >= nominal - nominal / 4 && us < nominal + nominal / 4,
                    "attempt {attempt} key {key}: {us} µs outside \
                     [0.75, 1.25) of {nominal} µs"
                );
            }
        }
        // Capped: attempts past the shift limit share the same nominal.
        let cap = BACKOFF_BASE_US << BACKOFF_CAP_SHIFT;
        assert_eq!(cap, 256_000, "cap is 256 ms");
        let deep = retry_backoff(40, 5).as_micros() as u64;
        assert!(deep < cap + cap / 4, "backoff must not grow past the cap");
    }

    #[test]
    fn backoff_lower_bound_keeps_retries_from_spinning() {
        // Even attempt 0 with the most favourable jitter waits >= 1.5 ms.
        for key in 0..64u64 {
            assert!(retry_backoff(0, key) >= Duration::from_micros(1_500));
        }
    }

    #[test]
    fn retryability_is_typed() {
        use std::io::{Error, ErrorKind};
        assert!(ServeError::Io(Error::from(ErrorKind::ConnectionRefused)).is_retryable());
        assert!(
            ServeError::Rejected(RejectReason::ServerFull { active: 2, max: 2 }).is_retryable()
        );
        assert!(!ServeError::Rejected(RejectReason::TenantQuota { max: 4 }).is_retryable());
        assert!(!ServeError::Remote {
            code: 12,
            message: String::new()
        }
        .is_retryable());
        assert!(!ServeError::Protocol(String::new()).is_retryable());
    }
}
