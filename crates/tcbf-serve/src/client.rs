//! A blocking client for the serve protocol.
//!
//! [`Client::connect`] performs the `Hello`/`Welcome` handshake,
//! [`Client::stream_blocks`] pipelines sample blocks up to the session's
//! advertised queue depth (transparently retrying `Throttled` refusals
//! with a small backoff), [`Client::swap_weights`] hot-swaps the session's
//! beam weights and [`Client::finish`] closes the session and returns the
//! server's [`SessionSummary`].  Outputs come back in input order
//! regardless of how server workers interleave, re-ordered by sequence
//! number client side.

use crate::wire::{
    read_frame_polling, write_frame, ClientMsg, RejectReason, ServerMsg, SessionSummary,
    PROTO_VERSION,
};
use ccglib::matrix::HostComplexMatrix;
use ccglib::Precision;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// How long the client waits for any single server reply.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);
/// Socket read timeout, used as the polling interval for the deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Backoff before re-sending a throttled block.
const RETRY_BACKOFF: Duration = Duration::from_millis(25);

/// Everything that can go wrong on the client side of a session.
#[derive(Debug)]
pub enum ServeError {
    /// The transport failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server refused the session at `Hello` time.
    Rejected(RejectReason),
    /// The server reported a typed failure; `code` round-trips
    /// [`tcbf::TcbfError::code`].
    Remote {
        /// The stable numeric error code.
        code: u16,
        /// The server's human-readable description.
        message: String,
    },
    /// The peer violated the protocol (unexpected or malformed message).
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Rejected(reason) => write!(f, "session rejected: {reason}"),
            ServeError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            ServeError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A blocking session with a serving worker.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    session_id: u64,
    beams: u32,
    queue_depth: u32,
    window: usize,
    next_seq: u64,
    throttle_retries: u64,
}

impl Client {
    /// Connects, handshakes and returns an admitted session.
    ///
    /// `receivers`/`samples_per_block` declare the block shape this
    /// session will stream; the server validates them against its
    /// configuration up front so shape errors surface here, not mid-stream.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        precision: Precision,
        receivers: usize,
        samples_per_block: usize,
    ) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let reader = stream.try_clone()?;
        let mut client = Client {
            reader,
            writer: stream,
            session_id: 0,
            beams: 0,
            queue_depth: 0,
            window: 0,
            next_seq: 0,
            throttle_retries: 0,
        };
        client.send(&ClientMsg::Hello {
            version: PROTO_VERSION,
            tenant: tenant.to_owned(),
            precision,
            receivers: receivers as u32,
            samples_per_block: samples_per_block as u32,
        })?;
        match client.recv()? {
            ServerMsg::Welcome {
                session_id,
                beams,
                queue_depth,
            } => {
                client.session_id = session_id;
                client.beams = beams;
                client.queue_depth = queue_depth;
                client.window = (queue_depth as usize).clamp(1, 8);
                Ok(client)
            }
            ServerMsg::Rejected { reason } => Err(ServeError::Rejected(reason)),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Beams per output block, from the server's `Welcome`.
    pub fn beams(&self) -> usize {
        self.beams as usize
    }

    /// The session's queue depth, from the server's `Welcome`.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth as usize
    }

    /// Overrides the pipelining window (clamped to at least 1).  A window
    /// larger than the queue depth deliberately provokes `Throttled`
    /// refusals — useful for testing backpressure.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Throttled refusals retried so far (both queue-full and
    /// rate-limited).  Backpressure is invisible in the outputs — every
    /// refused block is retried until accepted — so this counter is how
    /// callers observe it.
    pub fn throttle_retries(&self) -> u64 {
        self.throttle_retries
    }

    /// Streams `blocks` through the session, pipelined up to the window,
    /// and returns the beamformed outputs **in input order**.
    ///
    /// `Throttled` refusals are retried with a small backoff until
    /// accepted; typed server errors abort the stream.
    pub fn stream_blocks(
        &mut self,
        blocks: &[HostComplexMatrix],
    ) -> Result<Vec<HostComplexMatrix>, ServeError> {
        let mut results: Vec<Option<HostComplexMatrix>> = vec![None; blocks.len()];
        // seq -> index into `blocks`, for in-flight requests.
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut next_block = 0usize;
        let mut done = 0usize;

        while done < blocks.len() {
            // Fill the window.
            while pending.len() < self.window && next_block < blocks.len() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.send(&ClientMsg::Block {
                    seq,
                    samples: blocks[next_block].clone(),
                })?;
                pending.push((seq, next_block));
                next_block += 1;
            }
            match self.recv()? {
                ServerMsg::Beams { seq, beams, .. } => {
                    let slot = pending
                        .iter()
                        .position(|&(s, _)| s == seq)
                        .ok_or_else(|| ServeError::Protocol(format!("unknown seq {seq}")))?;
                    let (_, index) = pending.swap_remove(slot);
                    results[index] = Some(beams);
                    done += 1;
                }
                ServerMsg::Throttled { seq, .. } => {
                    // Refused, not failed: back off and re-send that block
                    // under a fresh sequence number.
                    let slot = pending
                        .iter()
                        .position(|&(s, _)| s == seq)
                        .ok_or_else(|| ServeError::Protocol(format!("unknown seq {seq}")))?;
                    let (_, index) = pending.swap_remove(slot);
                    self.throttle_retries += 1;
                    std::thread::sleep(RETRY_BACKOFF);
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.send(&ClientMsg::Block {
                        seq,
                        samples: blocks[index].clone(),
                    })?;
                    pending.push((seq, index));
                }
                ServerMsg::Error { code, message, .. } => {
                    return Err(ServeError::Remote { code, message });
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "expected Beams/Throttled, got {other:?}"
                    )));
                }
            }
        }
        Ok(results.into_iter().map(Option::unwrap).collect())
    }

    /// Hot-swaps the session's beam weights; blocks streamed afterwards
    /// use the new weights.
    pub fn swap_weights(&mut self, weights: &HostComplexMatrix) -> Result<(), ServeError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(&ClientMsg::SwapWeights {
            seq,
            weights: weights.clone(),
        })?;
        match self.recv()? {
            ServerMsg::SwapOk { .. } => Ok(()),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected SwapOk, got {other:?}"
            ))),
        }
    }

    /// Ends the session cleanly and returns the server's summary.
    pub fn finish(mut self) -> Result<SessionSummary, ServeError> {
        self.send(&ClientMsg::Finish)?;
        match self.recv()? {
            ServerMsg::Goodbye { summary } => Ok(summary),
            ServerMsg::Error { code, message, .. } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::Protocol(format!(
                "expected Goodbye, got {other:?}"
            ))),
        }
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ServeError> {
        write_frame(&mut self.writer, &msg.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMsg, ServeError> {
        let deadline = Instant::now() + RESPONSE_TIMEOUT;
        match read_frame_polling(&mut self.reader, || Instant::now() >= deadline) {
            Ok(Some(payload)) => {
                ServerMsg::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
            }
            Ok(None) => Err(ServeError::Protocol(
                "server closed the connection".to_owned(),
            )),
            Err(e) => Err(ServeError::Io(e)),
        }
    }
}
