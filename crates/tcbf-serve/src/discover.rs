//! UDP beacon discovery: workers announce themselves, clients collect the
//! live fleet.
//!
//! Each serving worker periodically broadcasts a small datagram —
//! `{address, engine topology, precision menu, capacity}` — to a beacon
//! target (a broadcast address in production, a concrete discoverer
//! address in tests).  [`Discovery`] binds a UDP socket and
//! [`Discovery::collect`]s beacons for a timeout, deduplicating by worker
//! address (latest beacon wins), so a load balancer or client can find the
//! fleet without configuration.

use ccglib::Precision;
use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

use crate::wire::{precision_code, precision_from_code};

/// Magic bytes opening every beacon datagram.
const BEACON_MAGIC: &[u8; 4] = b"TCBF";
/// Beacon format version.
const BEACON_VERSION: u8 = 1;
/// Beacons larger than this are ignored (a beacon is a few hundred bytes).
const MAX_BEACON_BYTES: usize = 2048;

/// What one worker announces about itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerInfo {
    /// The TCP address the worker serves on.
    pub addr: String,
    /// Device names of the engine topology (e.g. `["A100", "A100"]`).
    pub gpus: Vec<String>,
    /// The precision menu the worker serves.
    pub precisions: Vec<Precision>,
    /// Engines built per precision.
    pub engines_per_precision: u32,
    /// Session capacity.
    pub max_sessions: u32,
    /// Sessions active when the beacon was sent.
    pub active_sessions: u32,
}

impl WorkerInfo {
    /// Encodes the beacon datagram.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        buf.extend_from_slice(BEACON_MAGIC);
        buf.push(BEACON_VERSION);
        push_string(&mut buf, &self.addr);
        buf.push(self.gpus.len() as u8);
        for gpu in &self.gpus {
            push_string(&mut buf, gpu);
        }
        buf.push(self.precisions.len() as u8);
        for &precision in &self.precisions {
            buf.push(precision_code(precision));
        }
        buf.extend_from_slice(&self.engines_per_precision.to_le_bytes());
        buf.extend_from_slice(&self.max_sessions.to_le_bytes());
        buf.extend_from_slice(&self.active_sessions.to_le_bytes());
        buf
    }

    /// Decodes a beacon datagram; `None` for foreign or malformed
    /// datagrams (discovery shares the network with other traffic, so
    /// garbage is ignored, not an error).
    pub fn decode(datagram: &[u8]) -> Option<WorkerInfo> {
        if datagram.len() > MAX_BEACON_BYTES {
            return None;
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = datagram.get(*pos..pos.saturating_add(n))?;
            *pos += n;
            Some(slice)
        };
        let take_u8 = |pos: &mut usize| -> Option<u8> { take(pos, 1)?.first().copied() };
        if take(&mut pos, 4)? != BEACON_MAGIC {
            return None;
        }
        if take_u8(&mut pos)? != BEACON_VERSION {
            return None;
        }
        let addr = take_string(datagram, &mut pos)?;
        let num_gpus = take_u8(&mut pos)? as usize;
        let mut gpus = Vec::with_capacity(num_gpus);
        for _ in 0..num_gpus {
            gpus.push(take_string(datagram, &mut pos)?);
        }
        let num_precisions = take_u8(&mut pos)? as usize;
        let mut precisions = Vec::with_capacity(num_precisions);
        for _ in 0..num_precisions {
            precisions.push(precision_from_code(take_u8(&mut pos)?)?);
        }
        let engines_per_precision = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let max_sessions = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        let active_sessions = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
        if pos != datagram.len() {
            return None;
        }
        Some(WorkerInfo {
            addr,
            gpus,
            precisions,
            engines_per_precision,
            max_sessions,
            active_sessions,
        })
    }
}

fn push_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn take_string(datagram: &[u8], pos: &mut usize) -> Option<String> {
    let len_bytes = datagram.get(*pos..pos.saturating_add(2))?;
    let len = u16::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    *pos += 2;
    let body = datagram.get(*pos..pos.saturating_add(len))?;
    let s = String::from_utf8(body.to_vec()).ok()?;
    *pos += len;
    Some(s)
}

/// Where and how often a server announces itself.
#[derive(Clone, Debug)]
pub struct BeaconConfig {
    /// The UDP address beacons are sent to (a broadcast address in
    /// production; a concrete discoverer address in tests).
    pub target: SocketAddr,
    /// Time between beacons.  The first beacon is sent immediately.
    pub interval: Duration,
}

/// Sends one beacon datagram for `info` to `target`.
pub fn announce_once(info: &WorkerInfo, target: SocketAddr) -> std::io::Result<()> {
    let socket = UdpSocket::bind(("0.0.0.0", 0))?;
    socket.set_broadcast(true)?;
    socket.send_to(&info.encode(), target)?;
    Ok(())
}

/// A bound UDP socket collecting worker beacons.
#[derive(Debug)]
pub struct Discovery {
    socket: UdpSocket,
}

impl Discovery {
    /// Binds the discovery socket (use port 0 for an ephemeral port and
    /// read it back with [`Discovery::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Discovery> {
        Ok(Discovery {
            socket: UdpSocket::bind(addr)?,
        })
    }

    /// The bound address (the beacon target for tests).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Collects beacons until `timeout` elapses, deduplicating by worker
    /// address — the latest beacon for an address wins, so `active_sessions`
    /// reflects each worker's most recent announcement.
    pub fn collect(&self, timeout: Duration) -> std::io::Result<Vec<WorkerInfo>> {
        let deadline = Instant::now() + timeout;
        let mut workers: BTreeMap<String, WorkerInfo> = BTreeMap::new();
        let mut buf = [0u8; MAX_BEACON_BYTES];
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            self.socket.set_read_timeout(Some(deadline - now))?;
            match self.socket.recv_from(&mut buf) {
                Ok((len, _)) => {
                    if let Some(info) = buf.get(..len).and_then(WorkerInfo::decode) {
                        workers.insert(info.addr.clone(), info);
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(workers.into_values().collect())
    }
}

/// One-shot convenience: bind `listen`, collect beacons for `timeout`,
/// return the deduplicated fleet.
pub fn discover_workers(
    listen: impl ToSocketAddrs,
    timeout: Duration,
) -> std::io::Result<Vec<WorkerInfo>> {
    Discovery::bind(listen)?.collect(timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(addr: &str, active: u32) -> WorkerInfo {
        WorkerInfo {
            addr: addr.into(),
            gpus: vec!["A100".into(), "A100".into()],
            precisions: vec![Precision::Float16, Precision::Int1],
            engines_per_precision: 2,
            max_sessions: 8,
            active_sessions: active,
        }
    }

    #[test]
    fn beacons_round_trip() {
        let original = info("127.0.0.1:31934", 3);
        let decoded = WorkerInfo::decode(&original.encode()).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn foreign_datagrams_are_ignored() {
        assert_eq!(WorkerInfo::decode(b""), None);
        assert_eq!(WorkerInfo::decode(b"HTTP/1.1 200 OK"), None);
        let mut truncated = info("x", 0).encode();
        truncated.pop();
        assert_eq!(WorkerInfo::decode(&truncated), None);
        let mut trailing = info("x", 0).encode();
        trailing.push(0);
        assert_eq!(WorkerInfo::decode(&trailing), None);
    }

    #[test]
    fn discovery_dedups_by_address_latest_wins() {
        let discovery = Discovery::bind("127.0.0.1:0").unwrap();
        let target = discovery.local_addr().unwrap();
        announce_once(&info("10.0.0.1:31934", 1), target).unwrap();
        announce_once(&info("10.0.0.2:31934", 0), target).unwrap();
        announce_once(&info("10.0.0.1:31934", 5), target).unwrap();

        let fleet = discovery.collect(Duration::from_millis(300)).unwrap();
        assert_eq!(fleet.len(), 2);
        let first = fleet.iter().find(|w| w.addr == "10.0.0.1:31934").unwrap();
        assert_eq!(first.active_sessions, 5, "latest beacon wins");
        assert!(fleet.iter().any(|w| w.addr == "10.0.0.2:31934"));
    }
}
