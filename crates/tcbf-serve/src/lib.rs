//! # tcbf-serve — the beamformer as a multi-tenant network service
//!
//! Everything below `tcbf::BeamformerBuilder::build_engine()` treats the
//! beamformer as a library embedded in one process.  This crate turns any
//! [`beamform::Engine`] into a shared **service**: many tenants stream
//! sample blocks over TCP to a fixed engine fleet, with admission control,
//! per-tenant quotas, bounded queues and fleet-wide tail-latency metrics —
//! the deployment shape the paper's telescope and ultrasound pipelines
//! imply (one accelerator pool, many observers/probes), built here from
//! `std::net` alone.
//!
//! The layers, bottom up:
//!
//! - [`wire`]: a hand-rolled length-prefixed binary protocol
//!   (`Hello`/`Block`/`SwapWeights`/`Finish` up, typed replies down).
//!   `f32` samples travel as raw little-endian bits, so served outputs are
//!   **bit-identical** to local execution.
//! - [`pool`]: [`ServeConfig`] builds a fixed [`EnginePool`] once; workers
//!   check engines out per block, and *lazy weight swaps* keyed on
//!   `(session, weights_version)` keep multi-tenant sharing deterministic.
//!   An optional [`gpu_sim::FaultPlan`] arms a fault injector over the
//!   pool; faulted engines are **quarantined** and [`PoolHealth`] tracks
//!   the survivors.
//! - [`server`]: [`serve`] binds a listener and runs admission (typed
//!   `Rejected` past [`ServeConfig::max_sessions`] or a tenant's stream
//!   quota — the ceiling shrinks proportionally while the pool is
//!   degraded), per-tenant rate limiting and bounded-queue backpressure
//!   (typed, retryable `Throttled` — never unbounded memory).  A job that
//!   hits an engine fault is **replayed on a healthy engine**; the client
//!   never sees it.
//! - [`metrics`]: per-tenant block/throttle/error/recovery counts and
//!   wall-clock latency histograms, merged with the engine fleet's
//!   [`beamform::Report`] and the pool's health into one [`FleetReport`]
//!   with p50/p95/p99.
//! - [`discover`]: UDP beacons (`{addr, topology, precision menu}`) and
//!   [`discover_workers`] to find the live fleet without configuration.
//! - [`client`]: a blocking [`Client`] that pipelines blocks up to the
//!   advertised queue depth, retries throttles under capped exponential
//!   backoff with deterministic jitter ([`retry_backoff`]), re-orders
//!   replies and returns the server's end-of-session [`SessionSummary`].
//!
//! ```no_run
//! use tcbf_serve::{serve, Client, ServeConfig};
//! use ccglib::Precision;
//!
//! let config = ServeConfig::example(8, 32, 64);
//! let handle = serve("127.0.0.1:0", config).unwrap();
//!
//! let mut client = Client::connect(
//!     handle.addr(), "tenant-a", Precision::Float16, 32, 64,
//! ).unwrap();
//! let blocks = vec![/* 32 x 64 sample blocks */];
//! let beams = client.stream_blocks(&blocks).unwrap();
//! let summary = client.finish().unwrap();
//! println!("p99 = {:.1} us", summary.p99_latency_s * 1e6);
//! println!("{}", handle.shutdown().summary_line());
//! # let _ = beams;
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod discover;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod wire;

pub use client::{retry_backoff, Client, ServeError};
pub use discover::{announce_once, discover_workers, BeaconConfig, Discovery, WorkerInfo};
pub use metrics::{FleetMetrics, FleetReport, TenantReport};
pub use pool::{example_weights, EnginePool, EngineSlot, PoolHealth, ServeConfig};
pub use server::{serve, ServerHandle};
pub use wire::{ClientMsg, RejectReason, ServerMsg, SessionSummary, ThrottleReason, PROTO_VERSION};
