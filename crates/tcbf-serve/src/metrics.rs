//! Fleet metrics: per-tenant accounting merged into one fleet-wide report.
//!
//! Every admitted block contributes a wall-clock latency sample
//! (admission to reply, measured server side) to its tenant's
//! [`LatencyHistogram`]; throttles and typed errors are counted per
//! tenant.  [`FleetMetrics::fleet_report`] folds all tenants together and
//! attaches the merged engine-side [`beamform::Report`], so one call
//! answers both "how is the service behaving" (tail latency,
//! backpressure, error rate, per-tenant throughput) and "how is the fleet
//! performing" (aggregate TeraOps/s, energy) — the serving counterpart of
//! the paper's single-run metric surface.

use crate::pool::PoolHealth;
use beamform::LatencyHistogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// One tenant's accumulated service-side statistics.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant identifier.
    pub tenant: String,
    /// Sessions this tenant opened (admitted `Hello`s).
    pub sessions: u64,
    /// Blocks beamformed for this tenant.
    pub blocks: u64,
    /// Blocks refused with `Throttled` (queue-full or rate-limited).
    pub throttled: u64,
    /// Blocks that failed with a typed error.
    pub errors: u64,
    /// Blocks replayed on a healthy engine after an engine fault.  These
    /// blocks still complete (and count under [`TenantReport::blocks`]);
    /// this counter records how often failover saved one.
    pub recovered: u64,
    /// Wall-clock histogram of block latency (admission to reply).
    pub latency: LatencyHistogram,
    /// Seconds between this tenant's first and last completed block.
    pub active_s: f64,
}

impl TenantReport {
    fn new(tenant: &str) -> Self {
        TenantReport {
            tenant: tenant.to_owned(),
            sessions: 0,
            blocks: 0,
            throttled: 0,
            errors: 0,
            recovered: 0,
            latency: LatencyHistogram::new(),
            active_s: 0.0,
        }
    }

    /// Observed throughput in blocks per second over the tenant's active
    /// window (0.0 before the second block completes).
    pub fn blocks_per_sec(&self) -> f64 {
        if self.active_s > 0.0 {
            self.blocks as f64 / self.active_s
        } else {
            0.0
        }
    }
}

/// The merged fleet-wide report: every tenant plus the engine fleet.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-tenant breakdown, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
    /// The merged service-side latency histogram across all tenants.
    pub latency: LatencyHistogram,
    /// The merged engine-side report of the whole engine fleet.
    pub engines: beamform::Report,
    /// Pool health at snapshot time: healthy vs provisioned engine slots.
    pub health: PoolHealth,
}

impl FleetReport {
    /// Total blocks beamformed across all tenants.
    pub fn total_blocks(&self) -> u64 {
        self.tenants.iter().map(|t| t.blocks).sum()
    }

    /// Total throttled blocks across all tenants.
    pub fn total_throttled(&self) -> u64 {
        self.tenants.iter().map(|t| t.throttled).sum()
    }

    /// Total errored blocks across all tenants.
    pub fn total_errors(&self) -> u64 {
        self.tenants.iter().map(|t| t.errors).sum()
    }

    /// Total blocks recovered by failover across all tenants.
    pub fn total_recovered(&self) -> u64 {
        self.tenants.iter().map(|t| t.recovered).sum()
    }

    /// Whether the pool had lost at least one engine at snapshot time.
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
    }

    /// The one-line greppable summary emitted by the server binary and
    /// grepped by CI: stable `key=value` pairs, errors before the
    /// percentiles, fault-tolerance counters at the end.
    pub fn summary_line(&self) -> String {
        format!(
            "fleet-report tenants={} blocks={} throttled={} errors={} \
             p50_us={:.1} p95_us={:.1} p99_us={:.1} aggregate_tops={:.2} joules={:.3} \
             recovered={} quarantined={} degraded={}",
            self.tenants.len(),
            self.total_blocks(),
            self.total_throttled(),
            self.total_errors(),
            self.latency.p50_s() * 1e6,
            self.latency.p95_s() * 1e6,
            self.latency.p99_s() * 1e6,
            self.engines.aggregate_tops(),
            self.engines.total_joules(),
            self.total_recovered(),
            self.health.total - self.health.healthy,
            u8::from(self.is_degraded()),
        )
    }

    /// One greppable line per tenant: blocks, backpressure, errors, tail
    /// latency and throughput.
    pub fn tenant_lines(&self) -> Vec<String> {
        self.tenants
            .iter()
            .map(|t| {
                format!(
                    "tenant={} sessions={} blocks={} throttled={} errors={} \
                     p50_us={:.1} p95_us={:.1} p99_us={:.1} blocks_per_sec={:.1}",
                    t.tenant,
                    t.sessions,
                    t.blocks,
                    t.throttled,
                    t.errors,
                    t.latency.p50_s() * 1e6,
                    t.latency.p95_s() * 1e6,
                    t.latency.p99_s() * 1e6,
                    t.blocks_per_sec(),
                )
            })
            .collect()
    }
}

struct TenantState {
    report: TenantReport,
    first_block: Option<Instant>,
}

/// Thread-safe accumulator the server threads record into.
#[derive(Default)]
pub struct FleetMetrics {
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

impl FleetMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_tenant(&self, tenant: &str, f: impl FnOnce(&mut TenantState)) {
        let mut tenants = self.tenants.lock();
        let state = tenants
            .entry(tenant.to_owned())
            .or_insert_with(|| TenantState {
                report: TenantReport::new(tenant),
                first_block: None,
            });
        f(state);
    }

    /// Records an admitted session for `tenant`.
    pub fn record_session(&self, tenant: &str) {
        self.with_tenant(tenant, |state| state.report.sessions += 1);
    }

    /// Records one completed block: wall latency from admission to reply.
    pub fn record_block(&self, tenant: &str, latency_s: f64, completed_at: Instant) {
        self.with_tenant(tenant, |state| {
            state.report.blocks += 1;
            state.report.latency.record_s(latency_s);
            match state.first_block {
                None => state.first_block = Some(completed_at),
                Some(first) => {
                    state.report.active_s = completed_at.duration_since(first).as_secs_f64();
                }
            }
        });
    }

    /// Records one throttled (refused, retryable) block.
    pub fn record_throttle(&self, tenant: &str) {
        self.with_tenant(tenant, |state| state.report.throttled += 1);
    }

    /// Records one block that failed with a typed error.
    pub fn record_error(&self, tenant: &str) {
        self.with_tenant(tenant, |state| state.report.errors += 1);
    }

    /// Records one block replayed on a healthy engine after a fault.
    pub fn record_recovery(&self, tenant: &str) {
        self.with_tenant(tenant, |state| state.report.recovered += 1);
    }

    /// Snapshots all tenants and merges them with the engine fleet's
    /// report and the pool's health into one [`FleetReport`].
    pub fn fleet_report(&self, engines: beamform::Report, health: PoolHealth) -> FleetReport {
        let tenants: Vec<TenantReport> = self
            .tenants
            .lock()
            .values()
            .map(|state| state.report.clone())
            .collect();
        let mut latency = LatencyHistogram::new();
        for tenant in &tenants {
            latency.merge(&tenant.latency);
        }
        FleetReport {
            tenants,
            latency,
            engines,
            health,
        }
    }
}

impl std::fmt::Debug for FleetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMetrics")
            .field("tenants", &self.tenants.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fleet_report_merges_tenants() {
        let metrics = FleetMetrics::new();
        let t0 = Instant::now();
        metrics.record_session("alice");
        metrics.record_session("bob");
        for i in 0..10 {
            metrics.record_block("alice", 1e-5, t0 + Duration::from_millis(i * 10));
        }
        metrics.record_block("bob", 4e-5, t0);
        metrics.record_throttle("bob");
        metrics.record_error("bob");

        let healthy = PoolHealth {
            healthy: 2,
            total: 2,
        };
        let report = metrics.fleet_report(beamform::Report::default(), healthy);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.total_blocks(), 11);
        assert_eq!(report.total_throttled(), 1);
        assert_eq!(report.total_errors(), 1);
        assert_eq!(report.total_recovered(), 0);
        assert!(!report.is_degraded());
        assert_eq!(report.latency.count(), 11);

        // Tenants are sorted by name and expose their own percentiles.
        assert_eq!(report.tenants[0].tenant, "alice");
        assert_eq!(report.tenants[1].tenant, "bob");
        assert!(report.tenants[0].latency.p99_s() <= report.tenants[1].latency.p99_s());
        // Alice completed 10 blocks over 90 ms of activity.
        assert!(report.tenants[0].blocks_per_sec() > 100.0);

        let line = report.summary_line();
        assert!(line.starts_with("fleet-report tenants=2 blocks=11 throttled=1 errors=1"));
        assert!(line.contains("p99_us="));
        assert!(line.contains("recovered=0 quarantined=0 degraded=0"));
        assert_eq!(report.tenant_lines().len(), 2);
    }

    #[test]
    fn empty_report_is_finite() {
        let metrics = FleetMetrics::new();
        let health = PoolHealth {
            healthy: 1,
            total: 1,
        };
        let report = metrics.fleet_report(beamform::Report::default(), health);
        assert_eq!(report.total_blocks(), 0);
        assert_eq!(report.latency.p99_s(), 0.0);
        assert!(report.summary_line().contains("errors=0"));
    }

    #[test]
    fn recoveries_and_degradation_surface_in_the_summary() {
        let metrics = FleetMetrics::new();
        metrics.record_session("alice");
        metrics.record_block("alice", 1e-5, Instant::now());
        metrics.record_recovery("alice");
        metrics.record_recovery("alice");

        let degraded = PoolHealth {
            healthy: 1,
            total: 3,
        };
        let report = metrics.fleet_report(beamform::Report::default(), degraded);
        assert_eq!(report.total_recovered(), 2);
        assert_eq!(report.tenants[0].recovered, 2);
        assert!(report.is_degraded());
        assert!(report
            .summary_line()
            .ends_with("recovered=2 quarantined=2 degraded=1"));
    }
}
