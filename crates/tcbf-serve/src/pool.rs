//! The engine pool: a fixed fleet of [`Engine`]s multiplexed across many
//! client sessions.
//!
//! Engines are expensive to build (autotuned kernel plans, device
//! contexts), so the server builds a fixed number per served precision
//! **once** from the [`ServeConfig`] via
//! [`tcbf::BeamformerBuilder::build_engine`] and workers *check out* an
//! engine per block, returning it afterwards.  Checkout blocks on a
//! condition variable when every engine of the requested precision is
//! busy — that wait is the scheduling point where many sessions share a
//! small fleet.
//!
//! **Lazy weight swaps** keep multi-tenancy bit-identical: every engine
//! slot remembers which `(session, weights_version)` last ran on it, and a
//! worker swaps weights only when the checked-out engine last served a
//! different session or an older weights version.  Each session's blocks
//! therefore always execute under exactly the weights that session
//! configured, no matter how workers interleave tenants.
//!
//! Lock order: slots -> quarantined
//!
//! That single line is the pool's canonical lock-acquisition order,
//! machine-checked by `tcbf-lint` (rule `TCBF-L002`) against the static
//! acquisition graph of this file: wherever both of a fleet's locks are
//! held together, `slots` is taken first.  The dynamic checker in the
//! vendored `parking_lot` enforces the same property per lock instance at
//! test time.

use beamform::{Engine, WeightMatrix};
use ccglib::matrix::HostComplexMatrix;
use ccglib::Precision;
use gpu_sim::{FaultInjector, FaultPlan, Gpu};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;
use tcbf::{BeamformerBuilder, TcbfError};

/// Server-side configuration: which engines to build and what limits to
/// enforce.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The device pool every engine spans.  One device builds single
    /// engines; several build sharded engines.
    pub gpus: Vec<Gpu>,
    /// The precision menu: one engine fleet is built per entry.  Sessions
    /// requesting a precision not on the menu are refused with a typed
    /// error.
    pub precisions: Vec<Precision>,
    /// Engines built per precision (the degree of same-precision
    /// parallelism).
    pub engines_per_precision: usize,
    /// The initial beam weights (`beams × receivers`) every engine starts
    /// with; sessions may hot-swap their own.
    pub weights: HostComplexMatrix,
    /// Time samples per block (`N`): every session must stream blocks of
    /// this shape.
    pub samples_per_block: usize,
    /// Sessions admitted concurrently; the next `Hello` is refused
    /// `ServerFull`.
    pub max_sessions: usize,
    /// In-flight blocks allowed per session before `Throttled(QueueFull)`.
    pub queue_depth: usize,
    /// Concurrent streams allowed per tenant; the next same-tenant `Hello`
    /// is refused `TenantQuota`.
    pub tenant_max_streams: usize,
    /// Blocks per second allowed per tenant (token bucket with burst equal
    /// to the ceiling of the rate); `None` disables rate limiting.
    pub tenant_blocks_per_sec: Option<f64>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Optional deterministic fault plan armed over the engine fleet, for
    /// failover testing: faults are keyed by *slot id* (fleets are laid
    /// out precision-major, `engines_per_precision` slots each).  A slot
    /// hit by a permanent fault is quarantined and its job replayed on a
    /// healthy engine; `None` (the production default) disables injection.
    pub fault_plan: Option<FaultPlan>,
}

impl ServeConfig {
    /// A small deterministic configuration: one A100, both tensor-core
    /// precisions, pseudo-random unit-magnitude weights.
    pub fn example(beams: usize, receivers: usize, samples_per_block: usize) -> Self {
        ServeConfig {
            gpus: vec![Gpu::A100],
            precisions: vec![Precision::Float16, Precision::Int1],
            engines_per_precision: 2,
            weights: example_weights(beams, receivers),
            samples_per_block,
            max_sessions: 8,
            queue_depth: 4,
            tenant_max_streams: 4,
            tenant_blocks_per_sec: None,
            workers: 2,
            fault_plan: None,
        }
    }

    /// Number of beams (`M`) implied by the weight matrix.
    pub fn beams(&self) -> usize {
        self.weights.rows()
    }

    /// Number of receivers (`K`) implied by the weight matrix.
    pub fn receivers(&self) -> usize {
        self.weights.cols()
    }

    /// Validates the limits and builds one engine fleet per precision.
    pub fn build_pool(&self) -> tcbf::Result<EnginePool> {
        if self.precisions.is_empty()
            || self.engines_per_precision == 0
            || self.max_sessions == 0
            || self.queue_depth == 0
            || self.tenant_max_streams == 0
            || self.workers == 0
            || self.gpus.is_empty()
        {
            return Err(TcbfError::InvalidParameters {
                reason: "every ServeConfig limit (precisions, engines, sessions, queue depth, \
                         tenant streams, workers, gpus) must be non-zero"
                    .into(),
            });
        }
        let primary_gpu = *self
            .gpus
            .first()
            .ok_or_else(|| TcbfError::InvalidParameters {
                reason: "ServeConfig.gpus must name at least one device".into(),
            })?;
        let mut fleets = Vec::with_capacity(self.precisions.len());
        let mut next_slot_id = 0usize;
        for &precision in &self.precisions {
            let mut slots = Vec::with_capacity(self.engines_per_precision);
            for _ in 0..self.engines_per_precision {
                let mut builder = BeamformerBuilder::new(primary_gpu)
                    .weights(self.weights.clone())
                    .samples_per_block(self.samples_per_block)
                    .precision(precision);
                if self.gpus.len() > 1 {
                    builder = builder.devices(&self.gpus);
                }
                slots.push(EngineSlot {
                    engine: builder.build_engine()?,
                    owner: None,
                    slot_id: next_slot_id,
                });
                next_slot_id += 1;
            }
            fleets.push(PrecisionFleet {
                precision,
                slots: Mutex::new(slots),
                available: Condvar::new(),
                quarantined: Mutex::new(Vec::new()),
            });
        }
        let injector = self
            .fault_plan
            .clone()
            .map(|plan| Arc::new(FaultInjector::new(plan, next_slot_id)));
        Ok(EnginePool {
            fleets,
            fleet_size: self.engines_per_precision,
            injector,
        })
    }
}

/// Deterministic unit-magnitude weights: the same `(beams, receivers)`
/// always produces the same matrix, so server and conformance baseline
/// agree without sharing state.
pub fn example_weights(beams: usize, receivers: usize) -> HostComplexMatrix {
    HostComplexMatrix::from_fn(beams, receivers, |b, r| {
        tcbf_types::Complex::from_polar(1.0 / receivers as f32, (b * 7 + r * 3) as f32 * 0.21)
    })
}

/// One pooled engine plus the identity of its last user, for lazy weight
/// swaps.
pub struct EngineSlot {
    /// The engine itself.
    pub engine: Box<dyn Engine>,
    /// `(session_id, weights_version)` of the last block this engine ran,
    /// or `None` for a freshly built engine.
    pub owner: Option<(u64, u64)>,
    /// Stable fleet-wide identity of this slot (precision-major layout),
    /// the key fault plans address engines by.
    pub slot_id: usize,
}

impl EngineSlot {
    /// Ensures the engine carries `weights` for `(session_id, version)`,
    /// swapping only when the last user differs — the lazy-swap fast path
    /// for consecutive blocks of one session.
    pub fn ensure_weights(
        &mut self,
        session_id: u64,
        version: u64,
        weights: &WeightMatrix,
    ) -> ccglib::Result<()> {
        if self.owner != Some((session_id, version)) {
            self.engine.swap_weights(weights.clone())?;
            self.owner = Some((session_id, version));
        }
        Ok(())
    }
}

struct PrecisionFleet {
    precision: Precision,
    slots: Mutex<Vec<EngineSlot>>,
    available: Condvar,
    /// Slots pulled from rotation after a permanent fault.  Their engines
    /// keep their accounting (so fleet reports stay complete) but are
    /// never checked out again.
    quarantined: Mutex<Vec<EngineSlot>>,
}

/// The health of a fleet: how many engines remain in rotation out of the
/// built total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolHealth {
    /// Engines still in rotation.
    pub healthy: usize,
    /// Engines built (rotation + quarantine).
    pub total: usize,
}

impl PoolHealth {
    /// True when at least one engine has been quarantined.
    pub fn is_degraded(&self) -> bool {
        self.healthy < self.total
    }

    /// Healthy fraction in `[0, 1]` (1.0 for an empty pool).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.healthy as f64 / self.total as f64
        }
    }
}

/// A fixed fleet of engines per precision with blocking checkout,
/// quarantine of faulted engines, and degradation-aware health reporting.
pub struct EnginePool {
    fleets: Vec<PrecisionFleet>,
    fleet_size: usize,
    injector: Option<Arc<FaultInjector>>,
}

impl EnginePool {
    /// The served precision menu, in configuration order.
    pub fn precisions(&self) -> Vec<Precision> {
        self.fleets.iter().map(|f| f.precision).collect()
    }

    /// Whether `precision` is on the menu.
    pub fn serves(&self, precision: Precision) -> bool {
        self.fleets.iter().any(|f| f.precision == precision)
    }

    /// The fleet serving `precision`, or the typed off-menu error.  The
    /// server validates the menu at `Hello` time, so in practice this
    /// never fails for admitted sessions — but the pool answers a typed
    /// error rather than panicking if that contract is ever broken.
    fn fleet(&self, precision: Precision) -> tcbf::Result<&PrecisionFleet> {
        self.fleets
            .iter()
            .find(|f| f.precision == precision)
            .ok_or_else(|| TcbfError::UnsupportedPrecision {
                device: "engine pool".into(),
                precision: precision.to_string(),
            })
    }

    /// The fault injector armed over the fleet, if the configuration
    /// carried a fault plan.  Workers consult it per job, keyed by
    /// [`EngineSlot::slot_id`].
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Checks out an engine of `precision`, blocking until one is free.
    ///
    /// Returns [`TcbfError::Degraded`] when every engine of the fleet has
    /// been quarantined — there is nothing left to wait for — and
    /// [`TcbfError::UnsupportedPrecision`] when `precision` is not on the
    /// menu.
    pub fn checkout(&self, precision: Precision) -> tcbf::Result<EngineSlot> {
        let fleet = self.fleet(precision)?;
        let mut slots = fleet.slots.lock();
        loop {
            // FIFO rotation (oldest check-in first) so every slot takes
            // its share of the stream: work spreads across the fleet and
            // a fault armed on any slot deterministically gets blocks to
            // fire on, instead of one hot slot shadowing the rest.
            if !slots.is_empty() {
                return Ok(slots.remove(0));
            }
            // Everything quarantined: no check-in will ever come.
            let lost = fleet.quarantined.lock().len();
            if lost >= self.fleet_size {
                return Err(TcbfError::Degraded {
                    healthy: 0,
                    total: self.fleet_size,
                });
            }
            slots = fleet.available.wait(slots);
        }
    }

    /// Pulls a checked-out engine from rotation for good: it is parked in
    /// quarantine (keeping its accounting for fleet reports) and never
    /// checked out again.  Waiters are woken so they can observe the
    /// shrunken fleet instead of sleeping forever.
    pub fn quarantine(&self, precision: Precision, slot: EngineSlot) -> tcbf::Result<()> {
        let fleet = self.fleet(precision)?;
        fleet.quarantined.lock().push(slot);
        fleet.available.notify_all();
        Ok(())
    }

    /// The health of one precision's fleet.
    pub fn fleet_health(&self, precision: Precision) -> tcbf::Result<PoolHealth> {
        let fleet = self.fleet(precision)?;
        let lost = fleet.quarantined.lock().len();
        Ok(PoolHealth {
            healthy: self.fleet_size.saturating_sub(lost),
            total: self.fleet_size,
        })
    }

    /// The health of the whole pool, across every precision fleet.
    pub fn health(&self) -> PoolHealth {
        let total = self.fleet_size * self.fleets.len();
        let lost: usize = self.fleets.iter().map(|f| f.quarantined.lock().len()).sum();
        PoolHealth {
            healthy: total.saturating_sub(lost),
            total,
        }
    }

    /// Returns a checked-out engine to its fleet and wakes one waiter.
    pub fn check_in(&self, precision: Precision, slot: EngineSlot) -> tcbf::Result<()> {
        let fleet = self.fleet(precision)?;
        fleet.slots.lock().push(slot);
        fleet.available.notify_one();
        Ok(())
    }

    /// The merged engine report of the whole fleet — every engine of every
    /// precision folded into one [`beamform::Report`].
    ///
    /// Waits (up to `drain_timeout`) for checked-out engines to come back
    /// so the merge covers the full fleet; engines still out after the
    /// timeout are simply not included.
    pub fn merged_report(&self, drain_timeout: Duration) -> beamform::Report {
        let mut shards = Vec::new();
        let mut weight_swaps = 0;
        for fleet in &self.fleets {
            let mut slots = fleet.slots.lock();
            let deadline = std::time::Instant::now() + drain_timeout;
            // Quarantined slots never come back: the fleet is drained when
            // rotation + quarantine account for every built engine.
            loop {
                let lost = fleet.quarantined.lock().len();
                if slots.len() + lost >= self.fleet_size {
                    break;
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = fleet.available.wait_timeout(slots, deadline - now);
                slots = guard;
            }
            let quarantined = fleet.quarantined.lock();
            for slot in slots.iter().chain(quarantined.iter()) {
                let report = slot.engine.report();
                weight_swaps += report.weight_swaps();
                shards.extend(report.per_device().iter().cloned());
            }
        }
        beamform::Report::new(shards, weight_swaps)
    }
}

impl std::fmt::Debug for EnginePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnginePool")
            .field("precisions", &self.precisions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pool() -> EnginePool {
        let mut config = ServeConfig::example(4, 16, 32);
        config.engines_per_precision = 1;
        config.build_pool().unwrap()
    }

    #[test]
    fn checkout_blocks_until_check_in() {
        let pool = Arc::new(pool());
        let slot = pool.checkout(Precision::Float16).unwrap();
        // Another precision is unaffected by float16 being exhausted.
        let int1 = pool.checkout(Precision::Int1).unwrap();
        pool.check_in(Precision::Int1, int1).unwrap();

        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let slot = pool.checkout(Precision::Float16).unwrap();
                pool.check_in(Precision::Float16, slot).unwrap();
            })
        };
        // The waiter cannot finish while the only float16 engine is out.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished());
        pool.check_in(Precision::Float16, slot).unwrap();
        waiter.join().unwrap();
    }

    #[test]
    fn lazy_swap_only_fires_on_owner_change() {
        let pool = pool();
        let weights = WeightMatrix::from_matrix(example_weights(4, 16));
        let mut slot = pool.checkout(Precision::Float16).unwrap();

        slot.ensure_weights(1, 0, &weights).unwrap();
        let swaps_after_first = slot.engine.report().weight_swaps();
        // Same session, same version: no further swap.
        slot.ensure_weights(1, 0, &weights).unwrap();
        assert_eq!(slot.engine.report().weight_swaps(), swaps_after_first);
        // New weights version: swaps again.
        slot.ensure_weights(1, 1, &weights).unwrap();
        assert_eq!(slot.engine.report().weight_swaps(), swaps_after_first + 1);
        // Different session: swaps again.
        slot.ensure_weights(2, 0, &weights).unwrap();
        assert_eq!(slot.engine.report().weight_swaps(), swaps_after_first + 2);
        pool.check_in(Precision::Float16, slot).unwrap();
    }

    #[test]
    fn invalid_limits_are_rejected() {
        let mut config = ServeConfig::example(4, 16, 32);
        config.queue_depth = 0;
        assert!(matches!(
            config.build_pool(),
            Err(TcbfError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn off_menu_precision_is_reported() {
        let mut config = ServeConfig::example(4, 16, 32);
        config.precisions = vec![Precision::Float16];
        let pool = config.build_pool().unwrap();
        assert!(pool.serves(Precision::Float16));
        assert!(!pool.serves(Precision::Int1));
    }

    #[test]
    fn slot_ids_are_stable_and_precision_major() {
        let config = ServeConfig::example(4, 16, 32); // 2 precisions x 2 engines
        let pool = config.build_pool().unwrap();
        let mut f16_ids = Vec::new();
        for _ in 0..2 {
            f16_ids.push(pool.checkout(Precision::Float16).unwrap().slot_id);
        }
        f16_ids.sort_unstable();
        assert_eq!(f16_ids, vec![0, 1]);
        let int1 = pool.checkout(Precision::Int1).unwrap();
        assert!(int1.slot_id == 2 || int1.slot_id == 3);
    }

    #[test]
    fn quarantine_degrades_health_and_exhausted_fleets_fail_fast() {
        let config = ServeConfig::example(4, 16, 32); // 2 engines per precision
        let pool = config.build_pool().unwrap();
        assert_eq!(
            pool.health(),
            PoolHealth {
                healthy: 4,
                total: 4
            }
        );
        assert!(!pool.health().is_degraded());

        let first = pool.checkout(Precision::Float16).unwrap();
        pool.quarantine(Precision::Float16, first).unwrap();
        assert_eq!(
            pool.fleet_health(Precision::Float16).unwrap(),
            PoolHealth {
                healthy: 1,
                total: 2
            }
        );
        assert_eq!(
            pool.health(),
            PoolHealth {
                healthy: 3,
                total: 4
            }
        );
        assert!(pool.health().is_degraded());
        assert!((pool.health().fraction() - 0.75).abs() < 1e-12);
        // The other precision fleet is untouched.
        assert_eq!(
            pool.fleet_health(Precision::Int1).unwrap(),
            PoolHealth {
                healthy: 2,
                total: 2
            }
        );

        // The survivor still checks out; once it is quarantined too, the
        // fleet is exhausted and checkout errors instead of blocking.
        let second = pool.checkout(Precision::Float16).unwrap();
        pool.quarantine(Precision::Float16, second).unwrap();
        assert_eq!(
            pool.checkout(Precision::Float16).map(|_| ()).unwrap_err(),
            TcbfError::Degraded {
                healthy: 0,
                total: 2
            }
        );
        // Int1 is still served.
        let int1 = pool.checkout(Precision::Int1).unwrap();
        pool.check_in(Precision::Int1, int1).unwrap();
    }

    #[test]
    fn quarantining_wakes_blocked_waiters() {
        let mut config = ServeConfig::example(4, 16, 32);
        config.engines_per_precision = 1;
        let pool = Arc::new(config.build_pool().unwrap());
        let slot = pool.checkout(Precision::Float16).unwrap();
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.checkout(Precision::Float16))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished());
        // Quarantining the only engine must wake the waiter with the
        // typed degradation error, not leave it blocked forever.
        pool.quarantine(Precision::Float16, slot).unwrap();
        assert_eq!(
            waiter.join().unwrap().map(|_| ()).unwrap_err(),
            TcbfError::Degraded {
                healthy: 0,
                total: 1
            }
        );
    }

    #[test]
    fn merged_report_includes_quarantined_engines() {
        let mut config = ServeConfig::example(4, 16, 32);
        config.precisions = vec![Precision::Float16];
        let pool = config.build_pool().unwrap();
        let weights = WeightMatrix::from_matrix(example_weights(4, 16));
        let block = HostComplexMatrix::from_fn(16, 32, |r, s| {
            tcbf_types::Complex::new((r + s) as f32 * 0.01, r as f32 * 0.02)
        });
        let mut slot = pool.checkout(Precision::Float16).unwrap();
        slot.ensure_weights(1, 0, &weights).unwrap();
        slot.engine.process_batch(&[&block]).unwrap();
        pool.quarantine(Precision::Float16, slot).unwrap();
        // The quarantined engine's block stays in the fleet report, and
        // the drain does not wait for it to "come back".
        let report = pool.merged_report(Duration::from_millis(50));
        assert_eq!(report.total_blocks(), 1);
    }

    #[test]
    fn fault_plans_arm_an_injector_over_every_slot() {
        let mut config = ServeConfig::example(4, 16, 32);
        assert!(config.build_pool().unwrap().injector().is_none());
        config.fault_plan = Some(FaultPlan::new().kill_device(0, 3));
        let pool = config.build_pool().unwrap();
        let injector = pool.injector().expect("plan arms an injector");
        // 2 precisions x 2 engines per precision.
        assert_eq!(injector.num_devices(), 4);
    }
}
