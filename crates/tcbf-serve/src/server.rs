//! The serving loop: TCP accept, admission control, scheduling and
//! backpressure.
//!
//! One accept thread admits connections (typed `Rejected` past the
//! session cap or a tenant's stream quota), one reader thread per admitted
//! session parses frames and enforces per-tenant rate quotas, and a fixed
//! pool of worker threads drains a **bounded** global job queue, checking
//! engines out of the [`EnginePool`] per block.  Every queue in the path
//! is bounded and every refusal is a typed, retryable message
//! (`Throttled`), so a flood of clients degrades into backpressure, never
//! into unbounded memory growth.
//!
//! Latency is measured wall-clock from job admission (reader side) to
//! reply (worker side) and recorded per tenant in [`FleetMetrics`] — the
//! served analogue of the paper's per-run metric surface, with tail
//! percentiles instead of single-run means.

use crate::discover::{announce_once, BeaconConfig, WorkerInfo};
use crate::metrics::{FleetMetrics, FleetReport};
use crate::pool::{EnginePool, ServeConfig};
use crate::wire::{
    read_frame_polling, write_frame, ClientMsg, RejectReason, ServerMsg, SessionSummary,
    ThrottleReason, ThrottleReason::QueueFull, ThrottleReason::RateLimited, CODE_PROTOCOL,
    PROTO_VERSION,
};
use beamform::{LatencyHistogram, SessionReport, WeightMatrix};
use ccglib::Precision;
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tcbf::TcbfError;

/// How often blocked reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
/// How long [`ServerHandle::fleet_report`] waits for checked-out engines.
const REPORT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// One unit of work: a block travelling from a session's reader to a
/// worker, carrying everything needed to execute and reply without
/// touching session state.
struct Job {
    session_id: u64,
    tenant: String,
    precision: Precision,
    seq: u64,
    samples: ccglib::matrix::HostComplexMatrix,
    /// The session's weights as of enqueue time: the worker's lazy swap
    /// keys on `(session_id, weights_version)`, so blocks enqueued before
    /// a swap still execute under the old weights.
    weights: Arc<WeightMatrix>,
    weights_version: u64,
    enqueued: Instant,
    writer: Arc<parking_lot::Mutex<TcpStream>>,
    inflight: Arc<AtomicUsize>,
    stats: Arc<SessionStats>,
}

/// Per-session accounting shared between the reader and the workers.
#[derive(Default)]
struct SessionStats {
    blocks: AtomicU64,
    throttled: AtomicU64,
    errors: AtomicU64,
    latency: parking_lot::Mutex<LatencyHistogram>,
    engine: parking_lot::Mutex<SessionReport>,
}

impl SessionStats {
    fn summary(&self) -> SessionSummary {
        let latency = *self.latency.lock();
        let engine = *self.engine.lock();
        SessionSummary {
            blocks: self.blocks.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            p50_latency_s: latency.p50_s(),
            p95_latency_s: latency.p95_s(),
            p99_latency_s: latency.p99_s(),
            aggregate_tops: engine.aggregate_tops(),
            total_joules: engine.total_joules,
        }
    }
}

/// A deterministic token bucket: `rate` tokens per second, burst capacity
/// `ceil(rate)`, at least 1.
struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, now: Instant) -> Self {
        let burst = rate.ceil().max(1.0);
        TokenBucket {
            tokens: burst,
            burst,
            rate,
            last: now,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// State shared by the accept loop, readers, workers and the handle.
struct Shared {
    config: ServeConfig,
    pool: EnginePool,
    metrics: FleetMetrics,
    initial_weights: Arc<WeightMatrix>,
    active_sessions: AtomicUsize,
    tenant_streams: parking_lot::Mutex<HashMap<String, usize>>,
    tenant_buckets: parking_lot::Mutex<HashMap<String, TokenBucket>>,
    next_session_id: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The running server: a bound listener plus its accept, reader and worker
/// threads.  Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    announcer: Option<JoinHandle<()>>,
    job_tx: Option<mpsc::SyncSender<Job>>,
}

/// Binds `addr`, builds the engine fleet from `config` and starts serving.
///
/// Engine construction happens here, once — admission never builds
/// engines, so a flood of connections cannot amplify into device work.
pub fn serve(addr: impl ToSocketAddrs, config: ServeConfig) -> tcbf::Result<ServerHandle> {
    let pool = config.build_pool()?;
    let listener = TcpListener::bind(addr).map_err(|e| TcbfError::InvalidParameters {
        reason: format!("cannot bind listener: {e}"),
    })?;
    let addr = listener
        .local_addr()
        .map_err(|e| TcbfError::InvalidParameters {
            reason: format!("cannot read bound address: {e}"),
        })?;

    let shared = Arc::new(Shared {
        initial_weights: Arc::new(WeightMatrix::from_matrix(config.weights.clone())),
        pool,
        metrics: FleetMetrics::new(),
        active_sessions: AtomicUsize::new(0),
        tenant_streams: parking_lot::Mutex::new(HashMap::new()),
        tenant_buckets: parking_lot::Mutex::new(HashMap::new()),
        next_session_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        config,
    });

    // The global job queue is bounded by what the sessions may have in
    // flight at once; `try_send` failure surfaces as `Throttled`.
    let capacity = shared.config.max_sessions * shared.config.queue_depth;
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(capacity);
    let job_rx = Arc::new(parking_lot::Mutex::new(job_rx));

    let workers = (0..shared.config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            std::thread::spawn(move || worker_loop(&shared, &job_rx))
        })
        .collect();

    let accept_thread = {
        let shared = Arc::clone(&shared);
        let job_tx = job_tx.clone();
        std::thread::spawn(move || accept_loop(&shared, &listener, &job_tx))
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        workers,
        announcer: None,
        job_tx: Some(job_tx),
    })
}

impl ServerHandle {
    /// The bound listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This worker's current discovery beacon payload.
    pub fn worker_info(&self) -> WorkerInfo {
        let config = &self.shared.config;
        WorkerInfo {
            addr: self.addr.to_string(),
            gpus: config.gpus.iter().map(|g| g.name().to_owned()).collect(),
            precisions: config.precisions.clone(),
            engines_per_precision: config.engines_per_precision as u32,
            max_sessions: config.max_sessions as u32,
            active_sessions: self.shared.active_sessions.load(Ordering::SeqCst) as u32,
        }
    }

    /// Starts announcing this worker over UDP per `beacon`; the first
    /// beacon is sent immediately.  Call at most once.
    pub fn announce(&mut self, beacon: BeaconConfig) {
        let shared = Arc::clone(&self.shared);
        let addr = self.addr;
        self.announcer = Some(std::thread::spawn(move || {
            while !shared.shutting_down() {
                let info = WorkerInfo {
                    addr: addr.to_string(),
                    gpus: shared
                        .config
                        .gpus
                        .iter()
                        .map(|g| g.name().to_owned())
                        .collect(),
                    precisions: shared.config.precisions.clone(),
                    engines_per_precision: shared.config.engines_per_precision as u32,
                    max_sessions: shared.config.max_sessions as u32,
                    active_sessions: shared.active_sessions.load(Ordering::SeqCst) as u32,
                };
                // Beacons are best-effort: a transient send failure just
                // means one missed announcement.
                let _ = announce_once(&info, beacon.target);
                let deadline = Instant::now() + beacon.interval;
                while Instant::now() < deadline && !shared.shutting_down() {
                    std::thread::sleep(POLL_INTERVAL.min(beacon.interval));
                }
            }
        }));
    }

    /// The merged fleet report: every tenant's service-side statistics
    /// plus the engine fleet's performance report.
    pub fn fleet_report(&self) -> FleetReport {
        self.shared.metrics.fleet_report(
            self.shared.pool.merged_report(REPORT_DRAIN_TIMEOUT),
            self.shared.pool.health(),
        )
    }

    /// Sessions currently admitted.
    pub fn active_sessions(&self) -> usize {
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains the threads and returns the final fleet
    /// report.
    pub fn shutdown(mut self) -> FleetReport {
        self.stop();
        self.fleet_report()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.announcer.take() {
            let _ = handle.join();
        }
        // Readers exit on the shutdown flag (their reads poll it) and drop
        // their queue senders; dropping ours lets the workers' `recv` fail
        // once the queue is drained.
        self.job_tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("active_sessions", &self.active_sessions())
            .finish()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, job_tx: &mpsc::SyncSender<Job>) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let job_tx = job_tx.clone();
        // One reader thread per connection; the count is bounded by the
        // admission check running *first* inside the handler (rejected
        // connections are answered and closed immediately).
        std::thread::spawn(move || {
            let _ = handle_connection(&shared, stream, &job_tx);
        });
    }
}

/// Writes one server message through the shared session writer.
fn send(writer: &parking_lot::Mutex<TcpStream>, msg: &ServerMsg) -> std::io::Result<()> {
    let payload = msg.encode();
    let mut stream = writer.lock();
    write_frame(&mut *stream, &payload)
}

/// The per-connection reader: admission, then the frame loop.
fn handle_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    job_tx: &mpsc::SyncSender<Job>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(parking_lot::Mutex::new(stream));

    // --- Hello ---
    let Some(payload) = read_frame_polling(&mut reader, || shared.shutting_down())? else {
        return Ok(());
    };
    let hello = match ClientMsg::decode(&payload) {
        Ok(msg) => msg,
        Err(e) => {
            let _ = send(
                &writer,
                &ServerMsg::Error {
                    seq: u64::MAX,
                    code: CODE_PROTOCOL,
                    message: e.to_string(),
                },
            );
            return Ok(());
        }
    };
    let ClientMsg::Hello {
        version,
        tenant,
        precision,
        receivers,
        samples_per_block,
    } = hello
    else {
        let _ = send(
            &writer,
            &ServerMsg::Error {
                seq: u64::MAX,
                code: CODE_PROTOCOL,
                message: "the first message must be Hello".into(),
            },
        );
        return Ok(());
    };

    if version != PROTO_VERSION {
        let _ = send(
            &writer,
            &ServerMsg::Rejected {
                reason: RejectReason::VersionMismatch {
                    server: PROTO_VERSION,
                    client: version,
                },
            },
        );
        return Ok(());
    }
    let config = &shared.config;
    if !shared.pool.serves(precision) {
        let err = TcbfError::UnsupportedPrecision {
            device: "this server".into(),
            precision: precision.to_string(),
        };
        let _ = send(
            &writer,
            &ServerMsg::Error {
                seq: u64::MAX,
                code: err.code(),
                message: format!(
                    "{err}: the menu is [{}]",
                    config
                        .precisions
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            },
        );
        return Ok(());
    }
    if receivers as usize != config.receivers()
        || samples_per_block as usize != config.samples_per_block
    {
        let err = TcbfError::ShapeMismatch {
            expected: format!(
                "{} receivers x {} samples per block",
                config.receivers(),
                config.samples_per_block
            ),
            actual: format!("{receivers} receivers x {samples_per_block} samples per block"),
        };
        let _ = send(
            &writer,
            &ServerMsg::Error {
                seq: u64::MAX,
                code: err.code(),
                message: err.to_string(),
            },
        );
        return Ok(());
    }

    // --- Admission ---
    // Degraded admission: losing engines to quarantine shrinks the
    // session ceiling proportionally (ceiling division, so a pool that
    // is merely dented still admits someone; a fully-dead pool admits
    // nobody).  Already-admitted sessions are never evicted — the
    // tighter ceiling only gates new arrivals.
    let health = shared.pool.health();
    let effective_max = if health.healthy == 0 {
        0
    } else {
        (config.max_sessions * health.healthy).div_ceil(health.total)
    };
    let admitted = shared
        .active_sessions
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
            (active < effective_max).then_some(active + 1)
        })
        .is_ok();
    if !admitted {
        let _ = send(
            &writer,
            &ServerMsg::Rejected {
                reason: RejectReason::ServerFull {
                    active: shared.active_sessions.load(Ordering::SeqCst) as u32,
                    max: effective_max as u32,
                },
            },
        );
        return Ok(());
    }
    {
        let mut streams = shared.tenant_streams.lock();
        let count = streams.entry(tenant.clone()).or_insert(0);
        if *count >= config.tenant_max_streams {
            drop(streams);
            shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
            let _ = send(
                &writer,
                &ServerMsg::Rejected {
                    reason: RejectReason::TenantQuota {
                        max: config.tenant_max_streams as u32,
                    },
                },
            );
            return Ok(());
        }
        *count += 1;
    }

    let session_id = shared.next_session_id.fetch_add(1, Ordering::SeqCst);
    shared.metrics.record_session(&tenant);
    let result = serve_session(
        shared,
        &mut reader,
        &writer,
        job_tx,
        session_id,
        &tenant,
        precision,
    );

    // --- Teardown (also on error paths) ---
    shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
    let mut streams = shared.tenant_streams.lock();
    if let Some(count) = streams.get_mut(&tenant) {
        *count -= 1;
        if *count == 0 {
            streams.remove(&tenant);
        }
    }
    result
}

/// The admitted frame loop: blocks, swaps, finish.
#[allow(clippy::too_many_arguments)]
fn serve_session(
    shared: &Arc<Shared>,
    reader: &mut TcpStream,
    writer: &Arc<parking_lot::Mutex<TcpStream>>,
    job_tx: &mpsc::SyncSender<Job>,
    session_id: u64,
    tenant: &str,
    precision: Precision,
) -> std::io::Result<()> {
    let config = &shared.config;
    let stats = Arc::new(SessionStats::default());
    let inflight = Arc::new(AtomicUsize::new(0));
    let mut weights = Arc::clone(&shared.initial_weights);
    let mut weights_version = 0u64;

    send(
        writer,
        &ServerMsg::Welcome {
            session_id,
            beams: config.beams() as u32,
            queue_depth: config.queue_depth as u32,
        },
    )?;

    loop {
        let Some(payload) = read_frame_polling(reader, || shared.shutting_down())? else {
            // Client hung up without Finish: drain what is in flight so no
            // worker writes into a torn-down session.
            wait_for_drain(&inflight, shared);
            return Ok(());
        };
        let msg = match ClientMsg::decode(&payload) {
            Ok(msg) => msg,
            Err(e) => {
                send(
                    writer,
                    &ServerMsg::Error {
                        seq: u64::MAX,
                        code: CODE_PROTOCOL,
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        match msg {
            ClientMsg::Hello { .. } => {
                send(
                    writer,
                    &ServerMsg::Error {
                        seq: u64::MAX,
                        code: CODE_PROTOCOL,
                        message: "Hello is only valid once, at session start".into(),
                    },
                )?;
            }
            ClientMsg::Block { seq, samples } => {
                if samples.rows() != config.receivers()
                    || samples.cols() != config.samples_per_block
                {
                    let err = TcbfError::ShapeMismatch {
                        expected: format!(
                            "{} x {} sample block",
                            config.receivers(),
                            config.samples_per_block
                        ),
                        actual: format!("{} x {}", samples.rows(), samples.cols()),
                    };
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_error(tenant);
                    send(
                        writer,
                        &ServerMsg::Error {
                            seq,
                            code: err.code(),
                            message: err.to_string(),
                        },
                    )?;
                    continue;
                }
                if let Some(reason) = admit_block(shared, tenant, &inflight) {
                    stats.throttled.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_throttle(tenant);
                    send(writer, &ServerMsg::Throttled { seq, reason })?;
                    continue;
                }
                let job = Job {
                    session_id,
                    tenant: tenant.to_owned(),
                    precision,
                    seq,
                    samples,
                    weights: Arc::clone(&weights),
                    weights_version,
                    enqueued: Instant::now(),
                    writer: Arc::clone(writer),
                    inflight: Arc::clone(&inflight),
                    stats: Arc::clone(&stats),
                };
                if let Err(mpsc::TrySendError::Full(job))
                | Err(mpsc::TrySendError::Disconnected(job)) = job_tx.try_send(job)
                {
                    // The global queue is saturated (or shutting down):
                    // undo the admission and push back.
                    job.inflight.fetch_sub(1, Ordering::SeqCst);
                    stats.throttled.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_throttle(tenant);
                    send(
                        writer,
                        &ServerMsg::Throttled {
                            seq,
                            reason: ThrottleReason::QueueFull,
                        },
                    )?;
                }
            }
            ClientMsg::SwapWeights {
                seq,
                weights: matrix,
            } => {
                if matrix.rows() != config.beams() || matrix.cols() != config.receivers() {
                    let err = TcbfError::ShapeMismatch {
                        expected: format!(
                            "{} beams x {} receivers weight matrix",
                            config.beams(),
                            config.receivers()
                        ),
                        actual: format!("{} x {}", matrix.rows(), matrix.cols()),
                    };
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.record_error(tenant);
                    send(
                        writer,
                        &ServerMsg::Error {
                            seq,
                            code: err.code(),
                            message: err.to_string(),
                        },
                    )?;
                    continue;
                }
                // Blocks already enqueued carry the old `(version, Arc)`
                // snapshot, so the swap is effective exactly from the next
                // block — no drain required.
                weights = Arc::new(WeightMatrix::from_matrix(matrix));
                weights_version += 1;
                send(writer, &ServerMsg::SwapOk { seq })?;
            }
            ClientMsg::Finish => {
                wait_for_drain(&inflight, shared);
                send(
                    writer,
                    &ServerMsg::Goodbye {
                        summary: stats.summary(),
                    },
                )?;
                let _ = writer.lock().shutdown(Shutdown::Both);
                return Ok(());
            }
        }
    }
}

/// Admission of one block: per-tenant rate quota, then the session's
/// queue-depth bound.  `None` admits (and counts the block in flight);
/// `Some(reason)` refuses.
fn admit_block(
    shared: &Shared,
    tenant: &str,
    inflight: &Arc<AtomicUsize>,
) -> Option<ThrottleReason> {
    if let Some(rate) = shared.config.tenant_blocks_per_sec {
        let now = Instant::now();
        let mut buckets = shared.tenant_buckets.lock();
        let bucket = buckets
            .entry(tenant.to_owned())
            .or_insert_with(|| TokenBucket::new(rate, now));
        if !bucket.try_take(now) {
            return Some(RateLimited);
        }
    }
    let admitted = inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.config.queue_depth).then_some(n + 1)
        })
        .is_ok();
    if admitted {
        None
    } else {
        Some(QueueFull)
    }
}

/// Spins (politely) until the session has no blocks in flight.
fn wait_for_drain(inflight: &AtomicUsize, shared: &Shared) {
    while inflight.load(Ordering::SeqCst) > 0 && !shared.shutting_down() {
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Runs one job on a healthy engine, failing over on engine faults.
///
/// A job is the serve-side replay unit: it carries everything needed to
/// re-execute its block — the samples, the session's weights and weights
/// version (the wire analogue of a [`beamform::SessionCheckpoint`]) — so
/// when the checked-out engine faults, the slot is quarantined (permanent)
/// or returned (transient) and the job simply replays on the next healthy
/// engine.  The client never sees these faults; it only ever sees the
/// block's final result.  Returns [`TcbfError::Degraded`] once no healthy
/// engine remains.
fn run_job(shared: &Shared, job: &Job) -> tcbf::Result<beamform::BeamformOutput> {
    // Every replay consumes either a permanent fault (quarantining one of
    // the fleet's engines) or a one-shot transient fault, so attempts are
    // bounded; the cap is a backstop against misconfigured injectors.
    let fleet = shared.pool.fleet_health(job.precision)?.total;
    let max_attempts = 2 * fleet + 2;
    for _ in 0..max_attempts {
        let mut slot = shared.pool.checkout(job.precision)?;
        // Injected faults surface at checkout time: the engine refuses
        // the job before touching the samples.
        if let Some(injector) = shared.pool.injector() {
            if let gpu_sim::BlockVerdict::Fail(fault) = injector.on_block(slot.slot_id) {
                if fault.permanent {
                    shared.pool.quarantine(job.precision, slot)?;
                } else {
                    shared.pool.check_in(job.precision, slot)?;
                }
                shared.metrics.record_recovery(&job.tenant);
                continue;
            }
        }
        let result = slot
            .ensure_weights(job.session_id, job.weights_version, &job.weights)
            .and_then(|()| slot.engine.process_batch(&[&job.samples]));
        match result {
            // The engine lost its last device mid-block (a real fault
            // from the beamform layer, not the serve-level injector):
            // same treatment, quarantine and replay elsewhere.
            Err(ccglib::CcglibError::DeviceLost {
                permanent: true, ..
            }) => {
                shared.pool.quarantine(job.precision, slot)?;
                shared.metrics.record_recovery(&job.tenant);
                continue;
            }
            other => {
                shared.pool.check_in(job.precision, slot)?;
                let mut outputs = other?;
                return outputs.pop().ok_or_else(|| TcbfError::Internal {
                    reason: "engine returned no output for a one-block batch".into(),
                });
            }
        }
    }
    Err(TcbfError::Degraded {
        healthy: shared.pool.fleet_health(job.precision)?.healthy,
        total: fleet,
    })
}

/// The worker loop: pull a job, check an engine out, lazily swap weights,
/// beamform (failing over on engine faults), reply, account.
fn worker_loop(shared: &Arc<Shared>, job_rx: &Arc<parking_lot::Mutex<mpsc::Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only while pulling one job.
        let job = match job_rx.lock().recv() {
            Ok(job) => job,
            Err(_) => return, // all senders gone: shutdown
        };
        let result = run_job(shared, &job);

        match result {
            Ok(output) => {
                let latency_s = job.enqueued.elapsed().as_secs_f64();
                let completed_at = Instant::now();
                job.stats.blocks.fetch_add(1, Ordering::Relaxed);
                job.stats.latency.lock().record_s(latency_s);
                {
                    let shape = tcbf_types::GemmShape::new(
                        shared.config.beams(),
                        shared.config.samples_per_block,
                        shared.config.receivers(),
                    );
                    job.stats
                        .engine
                        .lock()
                        .record(&output.report, shape.complex_ops() as f64, 1);
                }
                shared
                    .metrics
                    .record_block(&job.tenant, latency_s, completed_at);
                let _ = send(
                    &job.writer,
                    &ServerMsg::Beams {
                        seq: job.seq,
                        beams: output.beams,
                        latency_s,
                    },
                );
            }
            Err(e) => {
                let err = e;
                job.stats.errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record_error(&job.tenant);
                let _ = send(
                    &job.writer,
                    &ServerMsg::Error {
                        seq: job.seq,
                        code: err.code(),
                        message: err.to_string(),
                    },
                );
            }
        }
        job.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ServeConfig;

    #[test]
    fn token_bucket_enforces_rate_with_burst() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(2.0, t0);
        // Burst of ceil(2) = 2 passes immediately, the third is refused.
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0));
        // Half a second refills one token at 2/s.
        assert!(bucket.try_take(t0 + Duration::from_millis(500)));
        assert!(!bucket.try_take(t0 + Duration::from_millis(500)));
    }

    #[test]
    fn server_binds_and_reports_topology() {
        let mut config = ServeConfig::example(4, 16, 32);
        config.engines_per_precision = 1;
        config.workers = 1;
        let handle = serve("127.0.0.1:0", config).unwrap();
        let info = handle.worker_info();
        assert_eq!(info.addr, handle.addr().to_string());
        assert_eq!(info.gpus, vec!["A100".to_owned()]);
        assert_eq!(info.active_sessions, 0);
        assert_eq!(info.precisions.len(), 2);
        let report = handle.shutdown();
        assert_eq!(report.total_blocks(), 0);
    }
}
