//! The length-prefixed binary wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by the payload, whose first byte is the message tag.
//! All integers are little-endian, strings are a `u32` length plus UTF-8
//! bytes, and matrices are `rows`/`cols` (`u32` each) plus row-major
//! interleaved `f32` re/im pairs — `f32` bits survive the trip unchanged,
//! which is what makes server-mediated output *bit-identical* to local
//! execution.
//!
//! The full frame layout is documented in `docs/PROTOCOL.md`; the
//! round-trip tests at the bottom of this module are the executable
//! version of that document.

use ccglib::matrix::HostComplexMatrix;
use ccglib::Precision;
use std::io::{Read, Write};
use tcbf_types::Complex;

/// Protocol version sent in [`ClientMsg::Hello`] and checked by the
/// server.
pub const PROTO_VERSION: u16 = 1;

/// Upper bound on a frame payload (64 MiB): a decoder must reject larger
/// length prefixes instead of allocating unbounded memory on garbage
/// input.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Reserved error code meaning "no error" (never sent).
pub const CODE_OK: u16 = 0;
/// Error code for malformed frames or protocol misuse, distinct from every
/// [`tcbf::TcbfError::code`] (those start at 1 and stay below 1000).
pub const CODE_PROTOCOL: u16 = 1000;

/// Why the server refused to accept a new session at `Hello` time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The server is at its session capacity.
    ServerFull {
        /// Sessions currently admitted.
        active: u32,
        /// The configured cap.
        max: u32,
    },
    /// The tenant is at its concurrent-stream quota.
    TenantQuota {
        /// The tenant's configured cap.
        max: u32,
    },
    /// The client speaks a different protocol version.
    VersionMismatch {
        /// The server's version.
        server: u16,
        /// The client's version.
        client: u16,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::ServerFull { active, max } => {
                write!(f, "server full: {active}/{max} sessions active")
            }
            RejectReason::TenantQuota { max } => {
                write!(f, "tenant stream quota reached: {max} concurrent streams")
            }
            RejectReason::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch: server v{server}, client v{client}"
                )
            }
        }
    }
}

/// Why a block was refused instead of queued (backpressure, not failure:
/// the client may retry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThrottleReason {
    /// The session's bounded queue is full.
    QueueFull,
    /// The tenant exceeded its blocks-per-second rate quota.
    RateLimited,
}

impl std::fmt::Display for ThrottleReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThrottleReason::QueueFull => write!(f, "session queue full"),
            ThrottleReason::RateLimited => write!(f, "tenant rate quota exceeded"),
        }
    }
}

/// End-of-session summary carried by [`ServerMsg::Goodbye`]: what the
/// server observed for this session, latency measured wall-clock from
/// block admission to reply.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionSummary {
    /// Blocks beamformed for this session.
    pub blocks: u64,
    /// Blocks refused with [`ServerMsg::Throttled`].
    pub throttled: u64,
    /// Blocks that failed with [`ServerMsg::Error`].
    pub errors: u64,
    /// Median block latency in seconds (admission to reply).
    pub p50_latency_s: f64,
    /// 95th-percentile block latency in seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile block latency in seconds.
    pub p99_latency_s: f64,
    /// Aggregate engine throughput over the session in TeraOps/s.
    pub aggregate_tops: f64,
    /// Total simulated device energy in joules.
    pub total_joules: f64,
}

/// Messages flowing client → server.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientMsg {
    /// Opens a session: who is calling and what stream shape it will send.
    Hello {
        /// Protocol version ([`PROTO_VERSION`]).
        version: u16,
        /// Tenant identifier used for quotas and per-tenant metrics.
        tenant: String,
        /// Requested precision (must be on the server's menu).
        precision: Precision,
        /// Receivers per block (`K` of the GEMM).
        receivers: u32,
        /// Time samples per block (`N` of the GEMM).
        samples_per_block: u32,
    },
    /// One `K × N` block of receiver samples to beamform.
    Block {
        /// Client-chosen sequence number echoed in the reply.
        seq: u64,
        /// The sample block.
        samples: HostComplexMatrix,
    },
    /// Hot-swaps this session's beam weights (same `beams × receivers`
    /// shape); blocks sent after the swap use the new weights.
    SwapWeights {
        /// Client-chosen sequence number echoed in the reply.
        seq: u64,
        /// The new weight matrix.
        weights: HostComplexMatrix,
    },
    /// Ends the session cleanly; the server replies with
    /// [`ServerMsg::Goodbye`].
    Finish,
}

/// Messages flowing server → client.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMsg {
    /// The session was admitted.
    Welcome {
        /// Server-assigned session id.
        session_id: u64,
        /// Beams per output block (`M` of the GEMM).
        beams: u32,
        /// The session's queue depth: more than this many in-flight blocks
        /// get [`ServerMsg::Throttled`].
        queue_depth: u32,
    },
    /// The session was refused at `Hello` time.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// One beamformed output block (`M × N`).
    Beams {
        /// The sequence number of the [`ClientMsg::Block`] this answers.
        seq: u64,
        /// The beamformed block.
        beams: HostComplexMatrix,
        /// Server-side wall latency of this block in seconds (admission to
        /// reply).
        latency_s: f64,
    },
    /// The weight swap took effect.
    SwapOk {
        /// The sequence number of the swap request.
        seq: u64,
    },
    /// Backpressure: the block was refused, the client may retry.
    Throttled {
        /// The sequence number of the refused block.
        seq: u64,
        /// Why.
        reason: ThrottleReason,
    },
    /// A typed failure: `code` round-trips [`tcbf::TcbfError::code`]
    /// (or [`CODE_PROTOCOL`] for protocol misuse) without string matching.
    Error {
        /// Sequence number of the offending request, or `u64::MAX` for
        /// session-level failures.
        seq: u64,
        /// Stable numeric error code.
        code: u16,
        /// Human-readable description (informational only).
        message: String,
    },
    /// Clean end of session, answering [`ClientMsg::Finish`].
    Goodbye {
        /// The session's summary.
        summary: SessionSummary,
    },
}

// --- message tags ---
const TAG_HELLO: u8 = 0x01;
const TAG_BLOCK: u8 = 0x02;
const TAG_SWAP: u8 = 0x03;
const TAG_FINISH: u8 = 0x04;
const TAG_WELCOME: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;
const TAG_BEAMS: u8 = 0x83;
const TAG_SWAP_OK: u8 = 0x84;
const TAG_THROTTLED: u8 = 0x85;
const TAG_ERROR: u8 = 0x86;
const TAG_GOODBYE: u8 = 0x87;

const REJECT_SERVER_FULL: u8 = 0;
const REJECT_TENANT_QUOTA: u8 = 1;
const REJECT_VERSION: u8 = 2;

const THROTTLE_QUEUE: u8 = 0;
const THROTTLE_RATE: u8 = 1;

/// Wire code of a precision.
pub fn precision_code(precision: Precision) -> u8 {
    match precision {
        Precision::Float16 => 0,
        Precision::Int1 => 1,
        Precision::Float32Reference => 2,
    }
}

/// Precision from its wire code.
pub fn precision_from_code(code: u8) -> Option<Precision> {
    match code {
        0 => Some(Precision::Float16),
        1 => Some(Precision::Int1),
        2 => Some(Precision::Float32Reference),
        _ => None,
    }
}

/// Errors produced while decoding a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over a received payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let slice = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| {
                DecodeError(format!(
                    "need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len().saturating_sub(self.pos)
                ))
            })?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.take(1)?.first().copied().ok_or_else(|| {
            DecodeError("internal decoder error: take(1) returned an empty slice".into())
        })
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let bytes = self.take(2)?.try_into().map_err(|_| {
            DecodeError("internal decoder error: take(2) returned a wrong-width slice".into())
        })?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self.take(4)?.try_into().map_err(|_| {
            DecodeError("internal decoder error: take(4) returned a wrong-width slice".into())
        })?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self.take(8)?.try_into().map_err(|_| {
            DecodeError("internal decoder error: take(8) returned a wrong-width slice".into())
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("invalid UTF-8".into()))
    }

    fn matrix(&mut self) -> Result<HostComplexMatrix, DecodeError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let elems = rows
            .checked_mul(cols)
            .ok_or_else(|| DecodeError("matrix dimension overflow".into()))?;
        // 8 bytes per element: the remaining payload bounds the size.
        if elems > (self.buf.len() - self.pos) / 8 {
            return Err(DecodeError(format!(
                "matrix claims {elems} elements but only {} bytes remain",
                self.buf.len() - self.pos
            )));
        }
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            let re = self.f32()?;
            let im = self.f32()?;
            data.push(Complex::new(re, im));
        }
        HostComplexMatrix::from_data(rows, cols, data)
            .map_err(|e| DecodeError(format!("matrix shape: {e}")))
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// A growable payload encoder.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn matrix(&mut self, m: &HostComplexMatrix) {
        self.u32(m.rows() as u32);
        self.u32(m.cols() as u32);
        for value in m.data() {
            self.f32(value.re);
            self.f32(value.im);
        }
    }
}

impl ClientMsg {
    /// Encodes the message into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            ClientMsg::Hello {
                version,
                tenant,
                precision,
                receivers,
                samples_per_block,
            } => {
                w.u8(TAG_HELLO);
                w.u16(*version);
                w.string(tenant);
                w.u8(precision_code(*precision));
                w.u32(*receivers);
                w.u32(*samples_per_block);
            }
            ClientMsg::Block { seq, samples } => {
                w.u8(TAG_BLOCK);
                w.u64(*seq);
                w.matrix(samples);
            }
            ClientMsg::SwapWeights { seq, weights } => {
                w.u8(TAG_SWAP);
                w.u64(*seq);
                w.matrix(weights);
            }
            ClientMsg::Finish => w.u8(TAG_FINISH),
        }
        w.buf
    }

    /// Decodes a frame payload into a client message.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => {
                let version = r.u16()?;
                let tenant = r.string()?;
                let code = r.u8()?;
                let precision = precision_from_code(code)
                    .ok_or_else(|| DecodeError(format!("unknown precision code {code}")))?;
                ClientMsg::Hello {
                    version,
                    tenant,
                    precision,
                    receivers: r.u32()?,
                    samples_per_block: r.u32()?,
                }
            }
            TAG_BLOCK => ClientMsg::Block {
                seq: r.u64()?,
                samples: r.matrix()?,
            },
            TAG_SWAP => ClientMsg::SwapWeights {
                seq: r.u64()?,
                weights: r.matrix()?,
            },
            TAG_FINISH => ClientMsg::Finish,
            tag => return Err(DecodeError(format!("unknown client tag 0x{tag:02x}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Encodes the message into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            ServerMsg::Welcome {
                session_id,
                beams,
                queue_depth,
            } => {
                w.u8(TAG_WELCOME);
                w.u64(*session_id);
                w.u32(*beams);
                w.u32(*queue_depth);
            }
            ServerMsg::Rejected { reason } => {
                w.u8(TAG_REJECTED);
                match reason {
                    RejectReason::ServerFull { active, max } => {
                        w.u8(REJECT_SERVER_FULL);
                        w.u32(*active);
                        w.u32(*max);
                    }
                    RejectReason::TenantQuota { max } => {
                        w.u8(REJECT_TENANT_QUOTA);
                        w.u32(*max);
                    }
                    RejectReason::VersionMismatch { server, client } => {
                        w.u8(REJECT_VERSION);
                        w.u16(*server);
                        w.u16(*client);
                    }
                }
            }
            ServerMsg::Beams {
                seq,
                beams,
                latency_s,
            } => {
                w.u8(TAG_BEAMS);
                w.u64(*seq);
                w.f64(*latency_s);
                w.matrix(beams);
            }
            ServerMsg::SwapOk { seq } => {
                w.u8(TAG_SWAP_OK);
                w.u64(*seq);
            }
            ServerMsg::Throttled { seq, reason } => {
                w.u8(TAG_THROTTLED);
                w.u64(*seq);
                w.u8(match reason {
                    ThrottleReason::QueueFull => THROTTLE_QUEUE,
                    ThrottleReason::RateLimited => THROTTLE_RATE,
                });
            }
            ServerMsg::Error { seq, code, message } => {
                w.u8(TAG_ERROR);
                w.u64(*seq);
                w.u16(*code);
                w.string(message);
            }
            ServerMsg::Goodbye { summary } => {
                w.u8(TAG_GOODBYE);
                w.u64(summary.blocks);
                w.u64(summary.throttled);
                w.u64(summary.errors);
                w.f64(summary.p50_latency_s);
                w.f64(summary.p95_latency_s);
                w.f64(summary.p99_latency_s);
                w.f64(summary.aggregate_tops);
                w.f64(summary.total_joules);
            }
        }
        w.buf
    }

    /// Decodes a frame payload into a server message.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_WELCOME => ServerMsg::Welcome {
                session_id: r.u64()?,
                beams: r.u32()?,
                queue_depth: r.u32()?,
            },
            TAG_REJECTED => {
                let reason = match r.u8()? {
                    REJECT_SERVER_FULL => RejectReason::ServerFull {
                        active: r.u32()?,
                        max: r.u32()?,
                    },
                    REJECT_TENANT_QUOTA => RejectReason::TenantQuota { max: r.u32()? },
                    REJECT_VERSION => RejectReason::VersionMismatch {
                        server: r.u16()?,
                        client: r.u16()?,
                    },
                    code => return Err(DecodeError(format!("unknown reject reason {code}"))),
                };
                ServerMsg::Rejected { reason }
            }
            TAG_BEAMS => {
                let seq = r.u64()?;
                let latency_s = r.f64()?;
                ServerMsg::Beams {
                    seq,
                    beams: r.matrix()?,
                    latency_s,
                }
            }
            TAG_SWAP_OK => ServerMsg::SwapOk { seq: r.u64()? },
            TAG_THROTTLED => {
                let seq = r.u64()?;
                let reason = match r.u8()? {
                    THROTTLE_QUEUE => ThrottleReason::QueueFull,
                    THROTTLE_RATE => ThrottleReason::RateLimited,
                    code => return Err(DecodeError(format!("unknown throttle reason {code}"))),
                };
                ServerMsg::Throttled { seq, reason }
            }
            TAG_ERROR => ServerMsg::Error {
                seq: r.u64()?,
                code: r.u16()?,
                message: r.string()?,
            },
            TAG_GOODBYE => ServerMsg::Goodbye {
                summary: SessionSummary {
                    blocks: r.u64()?,
                    throttled: r.u64()?,
                    errors: r.u64()?,
                    p50_latency_s: r.f64()?,
                    p95_latency_s: r.f64()?,
                    p99_latency_s: r.f64()?,
                    aggregate_tops: r.f64()?,
                    total_joules: r.f64()?,
                },
            },
            tag => return Err(DecodeError(format!("unknown server tag 0x{tag:02x}"))),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Writes one frame (length prefix + payload) to a stream.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES as usize);
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame from a stream; rejects length prefixes beyond
/// [`MAX_FRAME_BYTES`] so garbage input cannot trigger huge allocations.
pub fn read_frame(reader: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Reads one frame from a stream whose read timeout is used as a poll
/// interval: timeouts re-check `should_abort` and *resume* the partial
/// read (so a timeout mid-frame never desynchronises the framing).
///
/// Returns `Ok(None)` on clean end-of-stream at a frame boundary; EOF
/// mid-frame is an [`std::io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame_polling(
    reader: &mut impl Read,
    should_abort: impl Fn() -> bool,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    if !fill_polling(reader, &mut len_bytes, &should_abort, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    fill_polling(reader, &mut payload, &should_abort, false)?;
    Ok(Some(payload))
}

/// Fills `buf`, retrying on timeout until `should_abort`.  Returns `false`
/// on EOF before the first byte when `eof_ok` (a frame boundary).
fn fill_polling(
    reader: &mut impl Read,
    buf: &mut [u8],
    should_abort: &impl Fn() -> bool,
    eof_ok: bool,
) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(dst) = buf.get_mut(filled..) else {
            break; // unreachable: `filled < buf.len()` guards the range
        };
        match reader.read(dst) {
            Ok(0) => {
                if eof_ok && filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if should_abort() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "aborted while waiting for a frame",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(rows, cols, |r, c| {
            Complex::new((r * 31 + c) as f32 * 0.37, (c * 17 + r) as f32 * -0.11)
        })
    }

    #[test]
    fn client_messages_round_trip() {
        let messages = vec![
            ClientMsg::Hello {
                version: PROTO_VERSION,
                tenant: "tenant-α".into(),
                precision: Precision::Int1,
                receivers: 32,
                samples_per_block: 64,
            },
            ClientMsg::Block {
                seq: 7,
                samples: matrix(32, 64),
            },
            ClientMsg::SwapWeights {
                seq: u64::MAX - 1,
                weights: matrix(8, 32),
            },
            ClientMsg::Finish,
        ];
        for msg in messages {
            let decoded = ClientMsg::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let messages = vec![
            ServerMsg::Welcome {
                session_id: 42,
                beams: 8,
                queue_depth: 4,
            },
            ServerMsg::Rejected {
                reason: RejectReason::ServerFull { active: 9, max: 9 },
            },
            ServerMsg::Rejected {
                reason: RejectReason::TenantQuota { max: 2 },
            },
            ServerMsg::Rejected {
                reason: RejectReason::VersionMismatch {
                    server: 1,
                    client: 2,
                },
            },
            ServerMsg::Beams {
                seq: 3,
                beams: matrix(8, 64),
                latency_s: 1.25e-4,
            },
            ServerMsg::SwapOk { seq: 4 },
            ServerMsg::Throttled {
                seq: 5,
                reason: ThrottleReason::RateLimited,
            },
            ServerMsg::Error {
                seq: u64::MAX,
                code: 10,
                message: "shape mismatch".into(),
            },
            ServerMsg::Goodbye {
                summary: SessionSummary {
                    blocks: 100,
                    throttled: 3,
                    errors: 0,
                    p50_latency_s: 1e-5,
                    p95_latency_s: 2e-5,
                    p99_latency_s: 4e-5,
                    aggregate_tops: 123.5,
                    total_joules: 0.75,
                },
            },
        ];
        for msg in messages {
            let decoded = ServerMsg::decode(&msg.encode()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn matrices_survive_bit_exactly() {
        // f32 -> LE bytes -> f32 must be the identity, including values
        // that are not representable in shorter formats.
        let tricky = HostComplexMatrix::from_fn(3, 5, |r, c| {
            Complex::new(
                f32::from_bits(0x3f80_0001 + (r * 5 + c) as u32),
                f32::from_bits(0x8000_0001 + (c * 3 + r) as u32),
            )
        });
        let msg = ClientMsg::Block {
            seq: 0,
            samples: tricky.clone(),
        };
        match ClientMsg::decode(&msg.encode()).unwrap() {
            ClientMsg::Block { samples, .. } => {
                for (a, b) in samples.data().iter().zip(tricky.data()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn framing_round_trips_and_bounds_the_length() {
        let payload = ClientMsg::Finish.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), 4 + payload.len());
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);

        // A hostile length prefix is rejected without allocating.
        let hostile = (MAX_FRAME_BYTES + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(hostile.to_vec());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        for bad in [
            vec![],
            vec![0xff],
            vec![TAG_BLOCK, 1, 2],
            // A block whose matrix claims more elements than the payload
            // holds.
            {
                let mut w = Writer::default();
                w.u8(TAG_BLOCK);
                w.u64(1);
                w.u32(u32::MAX);
                w.u32(u32::MAX);
                w.buf
            },
            // Trailing garbage after a valid message.
            {
                let mut buf = ClientMsg::Finish.encode();
                buf.push(0);
                buf
            },
        ] {
            assert!(ClientMsg::decode(&bad).is_err());
        }
        assert!(ServerMsg::decode(&[0x7f]).is_err());
    }

    #[test]
    fn precision_codes_round_trip() {
        for precision in [
            Precision::Float16,
            Precision::Int1,
            Precision::Float32Reference,
        ] {
            assert_eq!(
                precision_from_code(precision_code(precision)),
                Some(precision)
            );
        }
        assert_eq!(precision_from_code(200), None);
    }
}
