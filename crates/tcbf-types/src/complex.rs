//! Minimal complex-number type.
//!
//! Beamforming weights and samples are complex valued: the weight phases
//! encode the per-receiver delays that steer a beam (Section II of the
//! paper).  The kernels in `ccglib` decompose complex multiplication into
//! real multiplications exactly as the paper's Section III-B describes, so
//! this type exists mostly for the host-side reference paths, for weight
//! generation, and for the application layers.

use crate::half::f16;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` generic over the component type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex<T> {
    /// Real component.
    pub re: T,
    /// Imaginary component.
    pub im: T,
}

impl<T> Complex<T> {
    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl Complex<f32> {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex<f32> = Complex::new(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex<f32> = Complex::new(1.0, 0.0);
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex<f32> = Complex::new(0.0, 1.0);

    /// Creates a complex number from polar coordinates: `r·e^{iθ}`.
    ///
    /// This is how steering weights are generated: `r = 1`, `θ = 2π f τ_k`
    /// with `τ_k` the geometric delay of receiver `k` (Eq. 2).
    #[inline]
    pub fn from_polar(r: f32, theta: f32) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Quantises to half precision component-wise.
    #[inline]
    pub fn to_half(self) -> Complex<f16> {
        Complex::new(f16::from_f32(self.re), f16::from_f32(self.im))
    }

    /// Quantises to the 1-bit encoding: each component becomes its sign
    /// (±1).  Zero maps to +1 since zero is not representable (Fig. 1).
    #[inline]
    pub fn to_onebit(self) -> crate::onebit::OneBitComplex {
        crate::onebit::OneBitComplex::from_signs(self.re >= 0.0, self.im >= 0.0)
    }
}

impl Complex<f16> {
    /// Widens both components to single precision.
    #[inline]
    pub fn to_f32(self) -> Complex<f32> {
        Complex::new(self.re.to_f32(), self.im.to_f32())
    }
}

impl<T: Add<Output = T>> Add for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Sub<Output = T>> Sub for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Neg<Output = T>> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

impl<T> Mul for Complex<T>
where
    T: Mul<Output = T> + Add<Output = T> + Sub<Output = T> + Copy,
{
    type Output = Complex<T>;
    /// Complex multiplication, decomposed exactly as the tensor-core
    /// implementation does (Section III-B):
    /// `Re = Re(a)Re(b) − Im(a)Im(b)`, `Im = Re(a)Im(b) + Im(a)Re(b)`.
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex<f32> {
    type Output = Complex<f32>;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        let num = self * rhs.conj();
        Complex::new(num.re / d, num.im / d)
    }
}

impl<T: AddAssign> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: SubAssign> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex<f32> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Add<Output = T> + Default> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Complex<T>>>(iter: I) -> Self {
        iter.fold(Complex::new(T::default(), T::default()), |acc, x| acc + x)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex<f32>, b: Complex<f32>, tol: f32) -> bool {
        (a.re - b.re).abs() <= tol && (a.im - b.im).abs() <= tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0f32, 2.0);
        let b = Complex::new(3.0f32, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.5f32, -1.5);
        let b = Complex::new(-0.5f32, 3.0);
        let q = (a * b) / b;
        assert!(close(q, a, 1e-5));
    }

    #[test]
    fn multiplication_by_i_rotates_quarter_turn() {
        let a = Complex::new(1.0f32, 0.0);
        assert_eq!(a * Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(a * Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, std::f32::consts::FRAC_PI_3);
        assert!((c.abs() - 2.0).abs() < 1e-6);
        assert!((c.arg() - std::f32::consts::FRAC_PI_3).abs() < 1e-6);
    }

    #[test]
    fn half_quantisation() {
        let c = Complex::new(1.0f32 / 3.0, -2.0 / 3.0);
        let h = c.to_half().to_f32();
        assert!((h.re - c.re).abs() < 1e-3);
        assert!((h.im - c.im).abs() < 1e-3);
    }

    #[test]
    fn onebit_quantisation_keeps_signs() {
        let c = Complex::new(0.3f32, -0.7);
        let q = c.to_onebit();
        assert_eq!(q.to_complex32(), Complex::new(1.0, -1.0));
    }

    #[test]
    fn sum_of_unit_phasors_cancels() {
        // Eight equally spaced phasors sum to zero.
        let sum: Complex<f32> = (0..8)
            .map(|k| Complex::from_polar(1.0, 2.0 * std::f32::consts::PI * k as f32 / 8.0))
            .sum();
        assert!(sum.abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn multiplication_is_commutative(
            ar in -100.0f32..100.0, ai in -100.0f32..100.0,
            br in -100.0f32..100.0, bi in -100.0f32..100.0,
        ) {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            prop_assert!(close(a * b, b * a, 1e-3));
        }

        #[test]
        fn norm_is_multiplicative(
            ar in -50.0f32..50.0, ai in -50.0f32..50.0,
            br in -50.0f32..50.0, bi in -50.0f32..50.0,
        ) {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            let lhs = (a * b).abs();
            let rhs = a.abs() * b.abs();
            prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs));
        }

        #[test]
        fn conjugate_distributes_over_product(
            ar in -50.0f32..50.0, ai in -50.0f32..50.0,
            br in -50.0f32..50.0, bi in -50.0f32..50.0,
        ) {
            let a = Complex::new(ar, ai);
            let b = Complex::new(br, bi);
            prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-2));
        }
    }
}
