//! Software IEEE 754 binary16 ("half precision") floating point.
//!
//! The 16-bit tensor-core kernels of the paper take half-precision inputs
//! and accumulate in single precision.  No half-precision type exists in
//! the Rust standard library, and the external `half` crate is not part of
//! the approved dependency set, so this module implements binary16 from
//! scratch: bit-level conversion to and from `f32` with round-to-nearest-
//! even, arithmetic performed by widening to `f32` (exactly what the
//! hardware does when feeding the FMA pipeline of a tensor core), and the
//! usual constants and classification predicates.
//!
//! The conversion algorithms follow the standard bit manipulation approach:
//! sign, exponent and mantissa fields are re-biased between the 8-bit/23-bit
//! layout of binary32 and the 5-bit/10-bit layout of binary16, handling
//! subnormals, infinities and NaN explicitly.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// IEEE 754 binary16 value stored as its raw bit pattern.
///
/// The name deliberately mirrors the primitive float types (`f32`, `f64`);
/// the non-camel-case name is the conventional one used by the `half`
/// ecosystem crate as well.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
pub struct f16(u16);

const F16_SIGN_MASK: u16 = 0x8000;
const F16_EXP_MASK: u16 = 0x7C00;
const F16_MAN_MASK: u16 = 0x03FF;

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: f16 = f16(0x8000);
    /// The value `1.0`.
    pub const ONE: f16 = f16(0x3C00);
    /// The value `-1.0`.
    pub const NEG_ONE: f16 = f16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// A quiet NaN.
    pub const NAN: f16 = f16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: f16 = f16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);
    /// Machine epsilon: the difference between `1.0` and the next larger
    /// representable value, `2^-10`.
    pub const EPSILON: f16 = f16(0x1400);

    /// Creates a half-precision value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts a single-precision value to half precision with
    /// round-to-nearest-even, the rounding mode used by GPU conversion
    /// instructions (`cvt.rn.f16.f32`).
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if man == 0 {
                f16(sign | F16_EXP_MASK)
            } else {
                // Preserve a quiet NaN, keep some payload bits.
                f16(sign | F16_EXP_MASK | 0x0200 | ((man >> 13) as u16 & F16_MAN_MASK))
            };
        }

        // Re-bias the exponent: binary32 bias 127, binary16 bias 15.
        let unbiased = exp - 127;
        let new_exp = unbiased + 15;

        if new_exp >= 0x1F {
            // Overflow to infinity.
            return f16(sign | F16_EXP_MASK);
        }

        if new_exp <= 0 {
            // Subnormal or underflow to zero.
            if new_exp < -10 {
                return f16(sign);
            }
            // Add the implicit leading one and shift into the subnormal range.
            // value = M · 2^(unbiased − 23); the half subnormal mantissa is
            // value · 2^24 = M >> (−unbiased − 1).
            let man = man | 0x0080_0000;
            let shift = (-unbiased - 1) as u32;
            let half_val = man >> shift;
            // Round to nearest even on the bits shifted out.
            let round_bit = 1u32 << (shift - 1);
            let rem = man & (round_bit * 2 - 1);
            let mut result = half_val as u16;
            if rem > round_bit || (rem == round_bit && (half_val & 1) == 1) {
                result += 1;
            }
            return f16(sign | result);
        }

        // Normal case.
        let mut out_exp = new_exp as u16;
        let mut out_man = (man >> 13) as u16;
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (out_man & 1) == 1) {
            out_man += 1;
            if out_man == 0x0400 {
                out_man = 0;
                out_exp += 1;
                if out_exp >= 0x1F {
                    return f16(sign | F16_EXP_MASK);
                }
            }
        }
        f16(sign | (out_exp << 10) | out_man)
    }

    /// Converts a half-precision value to single precision (exact — every
    /// binary16 value is representable in binary32).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & F16_SIGN_MASK) << 16;
        let exp = (self.0 & F16_EXP_MASK) >> 10;
        let man = u32::from(self.0 & F16_MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign
                } else {
                    // Subnormal: normalise the mantissa.
                    let mut exp32 = 127 - 15 + 1;
                    let mut man = man;
                    while man & 0x0400 == 0 {
                        man <<= 1;
                        exp32 -= 1;
                    }
                    man &= 0x03FF;
                    sign | ((exp32 as u32) << 23) | (man << 13)
                }
            }
            0x1F => {
                if man == 0 {
                    sign | 0x7F80_0000
                } else {
                    sign | 0x7FC0_0000 | (man << 13)
                }
            }
            _ => {
                let exp32 = (i32::from(exp) - 15 + 127) as u32;
                sign | (exp32 << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Converts from `f64` by way of `f32`.
    pub fn from_f64(value: f64) -> Self {
        Self::from_f32(value as f32)
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & F16_EXP_MASK) == F16_EXP_MASK && (self.0 & F16_MAN_MASK) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & F16_EXP_MASK) == F16_EXP_MASK && (self.0 & F16_MAN_MASK) == 0
    }

    /// Returns `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & F16_EXP_MASK) != F16_EXP_MASK
    }

    /// Returns `true` if the value is subnormal (non-zero with a zero
    /// exponent field).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & F16_EXP_MASK) == 0 && (self.0 & F16_MAN_MASK) != 0
    }

    /// Returns `true` for positive or negative zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !F16_SIGN_MASK) == 0
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaNs
    /// with a negative sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & F16_SIGN_MASK) != 0
    }

    /// Returns the absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        f16(self.0 & !F16_SIGN_MASK)
    }

    /// Returns the signum in half precision: `1.0` for positive values,
    /// `-1.0` for negative values, NaN for NaN.
    pub fn signum(self) -> Self {
        if self.is_nan() {
            Self::NAN
        } else if self.is_sign_negative() {
            Self::NEG_ONE
        } else {
            Self::ONE
        }
    }

    /// The sign bit interpreted as the 1-bit encoding of the paper:
    /// non-negative values map to binary 1 (decimal +1), negative values to
    /// binary 0 (decimal −1).  Zero maps to +1 because zero is not
    /// representable in the 1-bit format (Fig. 1).
    #[inline]
    pub fn sign_bit_onebit(self) -> bool {
        !self.is_sign_negative()
    }
}

/// Lazily built lookup table mapping every binary16 bit pattern to its
/// binary32 widening — 256 KiB, shared process-wide.
static DECODE_TABLE: OnceLock<Vec<f32>> = OnceLock::new();

fn decode_table() -> &'static [f32] {
    DECODE_TABLE.get_or_init(|| {
        (0..=u16::MAX)
            .map(|bits| f16::from_bits(bits).to_f32())
            .collect()
    })
}

/// Decodes a whole plane of binary16 values to binary32 in one bulk pass.
///
/// The per-value [`f16::to_f32`](crate::half::f16::to_f32) conversion branches on the exponent field
/// (normal / subnormal / non-finite); done inside a GEMM inner loop that
/// cost is paid `O(M·N·K)` times.  This decoder instead pays it once per
/// distinct bit pattern — a 65 536-entry table built on first use — and
/// turns every subsequent conversion into a single indexed load, so
/// half→float conversion of an operand costs `O(rows·cols)` table lookups
/// done once per plane.  The result is bit-identical to calling
/// [`f16::to_f32`](crate::half::f16::to_f32) on every element (the table is built from it).
pub fn decode_to_f32(plane: &[f16]) -> Vec<f32> {
    let table = decode_table();
    plane.iter().map(|h| table[h.to_bits() as usize]).collect()
}

impl From<f32> for f16 {
    fn from(v: f32) -> Self {
        f16::from_f32(v)
    }
}

impl From<f16> for f32 {
    fn from(v: f16) -> Self {
        v.to_f32()
    }
}

impl From<f16> for f64 {
    fn from(v: f16) -> Self {
        v.to_f64()
    }
}

impl PartialEq for f16 {
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for f16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl Neg for f16 {
    type Output = f16;
    #[inline]
    fn neg(self) -> f16 {
        f16(self.0 ^ F16_SIGN_MASK)
    }
}

macro_rules! impl_f16_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for f16 {
            type Output = f16;
            #[inline]
            fn $method(self, rhs: f16) -> f16 {
                f16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for f16 {
            #[inline]
            fn $assign_method(&mut self, rhs: f16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_f16_binop!(Add, add, AddAssign, add_assign, +);
impl_f16_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_f16_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_f16_binop!(Div, div, DivAssign, div_assign, /);

impl Sum for f16 {
    fn sum<I: Iterator<Item = f16>>(iter: I) -> Self {
        // Accumulate in f32, as the hardware does, then round once.
        f16::from_f32(iter.map(|x| x.to_f32()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(f16::ZERO.to_f32(), 0.0);
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN.to_f32(), -65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(f16::EPSILON.to_f32(), 9.765_625e-4);
        assert!(f16::NAN.is_nan());
        assert!(f16::INFINITY.is_infinite());
        assert!(f16::NEG_INFINITY.is_infinite());
        assert!(f16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn simple_conversions() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 3.140625, 1000.0, -0.25] {
            assert_eq!(f16::from_f32(v).to_f32(), v, "value {v} should be exact");
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(f16::from_f32(1e6).is_infinite());
        assert!(f16::from_f32(-1e6).is_infinite());
        assert!(f16::from_f32(-1e6).is_sign_negative());
        assert!(f16::from_f32(65504.0).is_finite());
        // 65520 rounds up to infinity (midpoint rounds to even => 65536 unrepresentable).
        assert!(f16::from_f32(65520.0).is_infinite());
        // Just below the midpoint stays at MAX.
        assert_eq!(f16::from_f32(65519.0), f16::MAX);
    }

    #[test]
    fn subnormal_conversions() {
        let tiny = f16::MIN_POSITIVE_SUBNORMAL;
        assert!(tiny.is_subnormal());
        assert_eq!(tiny.to_f32(), 2.0f32.powi(-24));
        assert_eq!(f16::from_f32(2.0f32.powi(-24)).to_bits(), 0x0001);
        // Underflow to zero below half of the smallest subnormal.
        assert!(f16::from_f32(2.0f32.powi(-26)).is_zero());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + eps/2 is exactly halfway between 1.0 and 1.0+eps; it must
        // round to the even mantissa, i.e. 1.0.
        let half_eps = f16::EPSILON.to_f32() / 2.0;
        assert_eq!(f16::from_f32(1.0 + half_eps), f16::ONE);
        // 1.0 + 1.5*eps is halfway between 1.0+eps and 1.0+2eps; rounds to
        // the even one, 1.0 + 2eps.
        let expect = f16::from_bits(f16::ONE.to_bits() + 2);
        assert_eq!(f16::from_f32(1.0 + 3.0 * half_eps), expect);
    }

    #[test]
    fn nan_propagates() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!((f16::NAN + f16::ONE).is_nan());
        assert!((f16::NAN).to_f32().is_nan());
        assert_ne!(f16::NAN, f16::NAN);
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = f16::from_f32(1.5);
        let b = f16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a - b).to_f32(), -0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn signum_and_sign_bit() {
        assert_eq!(f16::from_f32(3.0).signum(), f16::ONE);
        assert_eq!(f16::from_f32(-3.0).signum(), f16::NEG_ONE);
        assert!(f16::from_f32(0.5).sign_bit_onebit());
        assert!(!f16::from_f32(-0.5).sign_bit_onebit());
        // Zero is mapped onto +1 in the 1-bit encoding.
        assert!(f16::ZERO.sign_bit_onebit());
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 1024 copies of 1.0 sum exactly even though intermediate values
        // would saturate half-precision increments near 2048.
        let v = vec![f16::ONE; 1024];
        let s: f16 = v.into_iter().sum();
        assert_eq!(s.to_f32(), 1024.0);
    }

    #[test]
    fn bulk_decoder_is_bit_identical_to_scalar_conversion_everywhere() {
        // Every one of the 65 536 bit patterns, including NaNs, subnormals
        // and infinities, must decode to exactly the same f32 bits as the
        // scalar path.
        let all: Vec<f16> = (0..=u16::MAX).map(f16::from_bits).collect();
        let decoded = decode_to_f32(&all);
        assert_eq!(decoded.len(), 65536);
        for (h, d) in all.iter().zip(&decoded) {
            assert_eq!(
                d.to_bits(),
                h.to_f32().to_bits(),
                "bits {:#06x}",
                h.to_bits()
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_through_f32_is_identity(bits in any::<u16>()) {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                prop_assert!(f16::from_f32(h.to_f32()).is_nan());
            } else {
                let back = f16::from_f32(h.to_f32());
                prop_assert_eq!(back.to_bits(), h.to_bits());
            }
        }

        #[test]
        fn conversion_is_monotonic(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let hlo = f16::from_f32(lo);
            let hhi = f16::from_f32(hi);
            prop_assert!(hlo <= hhi, "lo={lo} hi={hi} hlo={hlo:?} hhi={hhi:?}");
        }

        #[test]
        fn conversion_error_within_half_ulp(v in -60000.0f32..60000.0) {
            let h = f16::from_f32(v);
            let back = h.to_f32();
            // Relative error bounded by 2^-11 for normal values, absolute
            // error bounded by half the smallest subnormal otherwise.
            let tol = (v.abs() * 2.0f32.powi(-11)).max(2.0f32.powi(-25));
            prop_assert!((back - v).abs() <= tol, "v={v} back={back}");
        }

        #[test]
        fn negation_flips_sign_bit(bits in any::<u16>()) {
            let h = f16::from_bits(bits);
            prop_assert_eq!((-h).to_bits(), bits ^ 0x8000);
        }
    }
}
