//! Numeric substrate for the Tensor-Core Beamformer reproduction.
//!
//! This crate provides the low-level value types that the rest of the
//! workspace builds on:
//!
//! * [`struct@f16`] — a software implementation of IEEE 754 binary16, the input
//!   precision of the 16-bit tensor-core path.  Tensor cores consume
//!   half-precision inputs and accumulate in single precision; this type
//!   reproduces the rounding behaviour of that conversion so that the
//!   functional results of the simulated kernels match what real hardware
//!   would produce to within the usual half-precision quantisation.
//! * [`Complex`] — a minimal complex-number type generic over the scalar.
//!   The beamforming algorithm is a complex-valued matrix–matrix
//!   multiplication (Section II of the paper), so complex arithmetic is the
//!   fundamental operation everywhere.
//! * [`onebit`] — the 1-bit complex encoding of Section III-D / Fig. 1 of
//!   the paper: one sign bit per component, the value zero not
//!   representable, 32 consecutive samples packed into a `u32` word.
//! * [`matrix`] — matrix descriptors: problem shapes (`M`, `N`, `K`,
//!   batch), memory layouts (row/column major, planar vs interleaved
//!   complex), tiling and padding arithmetic used by the kernels and the
//!   performance model.
//!
//! The crate is deliberately dependency-light; everything heavier (the GPU
//! model, the GEMM kernels, the applications) lives in the crates layered
//! on top.

#![deny(missing_docs)]

pub mod complex;
pub mod half;
pub mod matrix;
pub mod onebit;

pub use complex::Complex;
pub use half::{decode_to_f32, f16};
pub use matrix::{ComplexLayout, GemmShape, MatrixDescriptor, MatrixOrder, TileShape};
pub use onebit::{OneBitComplex, PackedBits};

/// Complex number with `f32` components — the accumulator type of every
/// tensor-core kernel in the paper (16-bit and 1-bit inputs both accumulate
/// into 32-bit outputs).
pub type Complex32 = Complex<f32>;

/// Complex number with software [`struct@f16`] components — the input type of the
/// 16-bit tensor-core GEMM.
pub type ComplexHalf = Complex<f16>;
