//! Matrix shapes, layouts, tiling and padding arithmetic.
//!
//! The beamforming GEMM is described throughout the paper as the product of
//! an `M×K` matrix (beam weights) with a `K×N` matrix (receiver samples),
//! optionally repeated `batch` times (e.g. once per frequency channel ×
//! polarisation in the LOFAR application).  The tensor-core kernels operate
//! on fixed-size *fragments* and on per-thread-block *tiles*, so problem
//! dimensions that are not multiples of the tile sizes must be padded; the
//! amount of padding drives both the K<sub>pad</sub> correction of the 1-bit
//! kernel (Eq. 5) and the sawtooth performance pattern visible in Figs. 4
//! and 7.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage order of a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixOrder {
    /// Row-major: element `(r, c)` is stored at `r * cols + c`.
    RowMajor,
    /// Column-major: element `(r, c)` is stored at `c * rows + r`.
    ColMajor,
}

/// How the real and imaginary planes of a complex matrix are stored.
///
/// The current ccglib kernels require the *planar* layout (all real values
/// followed by all imaginary values), which is why a transpose/interleave
/// kernel is part of the library; interleaved support is listed as future
/// work in the paper and implemented here as well.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComplexLayout {
    /// Separate real and imaginary planes (`[re…][im…]`), the layout the
    /// tensor-core kernels consume.
    Planar,
    /// Interleaved `re, im, re, im, …` pairs, the usual host-side layout.
    Interleaved,
}

/// Dimensions of one complex GEMM: `C[M×N] = A[M×K] · B[K×N]`, repeated
/// `batch` times.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Number of batched multiplications sharing the same shape.
    pub batch: usize,
    /// Rows of `A` and `C`.  In beamforming: the number of beams.
    pub m: usize,
    /// Columns of `B` and `C`.  In beamforming: the number of time samples.
    pub n: usize,
    /// Columns of `A` / rows of `B`.  In beamforming: the number of
    /// receivers summed over.
    pub k: usize,
}

impl GemmShape {
    /// Creates a non-batched shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { batch: 1, m, n, k }
    }

    /// Creates a batched shape.
    pub const fn batched(batch: usize, m: usize, n: usize, k: usize) -> Self {
        GemmShape { batch, m, n, k }
    }

    /// Number of *useful* operations as defined in Section IV-A of the
    /// paper: `8 · M · N · K` per batch element — four real FMAs per
    /// complex multiply-accumulate, each FMA counting as two operations.
    pub fn complex_ops(&self) -> u128 {
        8u128 * self.batch as u128 * self.m as u128 * self.n as u128 * self.k as u128
    }

    /// Number of complex multiply-accumulate operations (`M·N·K` per batch).
    pub fn complex_macs(&self) -> u128 {
        self.batch as u128 * self.m as u128 * self.n as u128 * self.k as u128
    }

    /// Total number of complex elements in the `A` operand.
    pub fn a_elements(&self) -> usize {
        self.batch * self.m * self.k
    }

    /// Total number of complex elements in the `B` operand.
    pub fn b_elements(&self) -> usize {
        self.batch * self.k * self.n
    }

    /// Total number of complex elements in the `C` result.
    pub fn c_elements(&self) -> usize {
        self.batch * self.m * self.n
    }

    /// Bytes moved to/from device memory for a given input precision
    /// (bits per real component) assuming each operand is read once and the
    /// output (always complex float32, 8 bytes) written once.  This is the
    /// "theoretical amount of bytes transferred" used for the arithmetic-
    /// intensity axis of the roofline plots (Fig. 3).
    pub fn io_bytes(&self, input_bits_per_component: usize) -> u128 {
        let in_bits = 2 * input_bits_per_component as u128; // complex: two components
        let a_bits = self.a_elements() as u128 * in_bits;
        let b_bits = self.b_elements() as u128 * in_bits;
        let c_bits = self.c_elements() as u128 * 64; // complex f32 output
        (a_bits + b_bits + c_bits) / 8
    }

    /// Arithmetic intensity in operations per byte for the given input
    /// precision.
    pub fn arithmetic_intensity(&self, input_bits_per_component: usize) -> f64 {
        self.complex_ops() as f64 / self.io_bytes(input_bits_per_component) as f64
    }

    /// Returns this shape padded so every dimension is a multiple of the
    /// corresponding tile dimension.
    pub fn padded_to(&self, tile: TileShape) -> GemmShape {
        GemmShape {
            batch: self.batch,
            m: round_up(self.m, tile.m),
            n: round_up(self.n, tile.n),
            k: round_up(self.k, tile.k),
        }
    }

    /// Amount of padding added to `K` when rounding up to `k_granularity`,
    /// i.e. the `K_pad` term of Eq. 5.
    pub fn k_padding(&self, k_granularity: usize) -> usize {
        round_up(self.k, k_granularity) - self.k
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.batch, self.m, self.n, self.k)
    }
}

/// A tile of work: the granularity at which a kernel decomposes the GEMM
/// (per thread block, per warp, or per tensor-core fragment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Tile extent along M.
    pub m: usize,
    /// Tile extent along N.
    pub n: usize,
    /// Tile extent along K.
    pub k: usize,
}

impl TileShape {
    /// Creates a tile shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        TileShape { m, n, k }
    }

    /// Number of multiply-accumulate lattice points covered by the tile.
    pub const fn volume(&self) -> usize {
        self.m * self.n * self.k
    }

    /// Number of tiles (rounding up) needed to cover `shape`.
    pub fn tiles_to_cover(&self, shape: &GemmShape) -> usize {
        shape.batch * self.m_tiles(shape) * self.n_tiles(shape) * self.k_tiles(shape)
    }

    /// Number of tiles along M.
    pub fn m_tiles(&self, shape: &GemmShape) -> usize {
        shape.m.div_ceil(self.m)
    }

    /// Number of tiles along N.
    pub fn n_tiles(&self, shape: &GemmShape) -> usize {
        shape.n.div_ceil(self.n)
    }

    /// Number of tiles along K.
    pub fn k_tiles(&self, shape: &GemmShape) -> usize {
        shape.k.div_ceil(self.k)
    }

    /// Fraction of the padded iteration space that is useful work
    /// (1.0 when every dimension divides evenly; < 1.0 otherwise).  The
    /// complement of this factor is what produces the sawtooth pattern in
    /// Figs. 4 and 7.
    pub fn efficiency(&self, shape: &GemmShape) -> f64 {
        let padded = shape.padded_to(*self);
        shape.complex_macs() as f64 / padded.complex_macs() as f64
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// Rounds `value` up to the next multiple of `granularity`.
pub fn round_up(value: usize, granularity: usize) -> usize {
    assert!(granularity > 0, "granularity must be positive");
    value.div_ceil(granularity) * granularity
}

/// Descriptor of a complex matrix buffer: logical dimensions plus the
/// storage conventions the kernels need to interpret the raw data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixDescriptor {
    /// Number of logical rows.
    pub rows: usize,
    /// Number of logical columns.
    pub cols: usize,
    /// Row- or column-major storage.
    pub order: MatrixOrder,
    /// Planar or interleaved complex storage.
    pub layout: ComplexLayout,
}

impl MatrixDescriptor {
    /// Creates a row-major planar descriptor, the layout the tensor-core
    /// kernels consume.
    pub const fn planar_row_major(rows: usize, cols: usize) -> Self {
        MatrixDescriptor {
            rows,
            cols,
            order: MatrixOrder::RowMajor,
            layout: ComplexLayout::Planar,
        }
    }

    /// Creates a row-major interleaved descriptor, the usual host layout.
    pub const fn interleaved_row_major(rows: usize, cols: usize) -> Self {
        MatrixDescriptor {
            rows,
            cols,
            order: MatrixOrder::RowMajor,
            layout: ComplexLayout::Interleaved,
        }
    }

    /// Number of complex elements.
    pub const fn elements(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of scalar (real) values backing the matrix (two per element).
    pub const fn scalars(&self) -> usize {
        2 * self.elements()
    }

    /// Linear index of the scalar holding the *real* part of element
    /// `(row, col)` given this descriptor's conventions.
    pub fn real_index(&self, row: usize, col: usize) -> usize {
        let e = self.element_index(row, col);
        match self.layout {
            ComplexLayout::Planar => e,
            ComplexLayout::Interleaved => 2 * e,
        }
    }

    /// Linear index of the scalar holding the *imaginary* part of element
    /// `(row, col)`.
    pub fn imag_index(&self, row: usize, col: usize) -> usize {
        let e = self.element_index(row, col);
        match self.layout {
            ComplexLayout::Planar => self.elements() + e,
            ComplexLayout::Interleaved => 2 * e + 1,
        }
    }

    /// Linear element index of `(row, col)` ignoring the complex layout.
    pub fn element_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        match self.order {
            MatrixOrder::RowMajor => row * self.cols + col,
            MatrixOrder::ColMajor => col * self.rows + row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn useful_ops_matches_paper_definition() {
        // The paper's generic float16 tuning case: M = N = K = 8192 gives
        // 8 * 8192^3 = 4.398e12 operations.
        let shape = GemmShape::new(8192, 8192, 8192);
        assert_eq!(shape.complex_ops(), 8 * 8192u128.pow(3));
        // Ultrasound offline case from Section V-A.
        let us = GemmShape::new(38_880, 8_041, 524_288);
        assert_eq!(us.complex_ops(), 8 * 38_880u128 * 8_041 * 524_288);
    }

    #[test]
    fn io_bytes_and_intensity() {
        let shape = GemmShape::new(1024, 1024, 64);
        // f16: 2 components * 2 bytes = 4 bytes per complex input element.
        let a = 1024 * 64 * 4u128;
        let b = 64 * 1024 * 4u128;
        let c = 1024 * 1024 * 8u128;
        assert_eq!(shape.io_bytes(16), a + b + c);
        let ai = shape.arithmetic_intensity(16);
        assert!((ai - shape.complex_ops() as f64 / (a + b + c) as f64).abs() < 1e-12);
        // 1-bit inputs move 16x fewer input bytes.
        assert!(shape.io_bytes(1) < shape.io_bytes(16));
    }

    #[test]
    fn padding_and_efficiency() {
        let tile = TileShape::new(256, 64, 16);
        let exact = GemmShape::new(512, 128, 64);
        assert_eq!(exact.padded_to(tile), exact);
        assert_eq!(tile.efficiency(&exact), 1.0);

        let ragged = GemmShape::new(257, 65, 17);
        let padded = ragged.padded_to(tile);
        assert_eq!(padded, GemmShape::new(512, 128, 32));
        assert!(tile.efficiency(&ragged) < 0.5);
        assert_eq!(ragged.k_padding(16), 15);
    }

    #[test]
    fn tile_counting() {
        let tile = TileShape::new(128, 64, 32);
        let shape = GemmShape::batched(4, 300, 100, 70);
        assert_eq!(tile.m_tiles(&shape), 3);
        assert_eq!(tile.n_tiles(&shape), 2);
        assert_eq!(tile.k_tiles(&shape), 3);
        assert_eq!(tile.tiles_to_cover(&shape), 4 * 3 * 2 * 3);
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
    }

    #[test]
    fn descriptor_indexing_planar_vs_interleaved() {
        let planar = MatrixDescriptor::planar_row_major(3, 4);
        assert_eq!(planar.real_index(1, 2), 6);
        assert_eq!(planar.imag_index(1, 2), 12 + 6);
        let inter = MatrixDescriptor::interleaved_row_major(3, 4);
        assert_eq!(inter.real_index(1, 2), 12);
        assert_eq!(inter.imag_index(1, 2), 13);
        assert_eq!(planar.scalars(), inter.scalars());
    }

    #[test]
    fn descriptor_col_major() {
        let d = MatrixDescriptor {
            rows: 3,
            cols: 4,
            order: MatrixOrder::ColMajor,
            layout: ComplexLayout::Planar,
        };
        assert_eq!(d.element_index(2, 1), 3 + 2);
    }

    proptest! {
        #[test]
        fn padded_shape_is_no_smaller(
            m in 1usize..2000, n in 1usize..2000, k in 1usize..2000,
            tm in 1usize..256, tn in 1usize..256, tk in 1usize..256,
        ) {
            let shape = GemmShape::new(m, n, k);
            let tile = TileShape::new(tm, tn, tk);
            let padded = shape.padded_to(tile);
            prop_assert!(padded.m >= m && padded.n >= n && padded.k >= k);
            prop_assert_eq!(padded.m % tm, 0);
            prop_assert_eq!(padded.n % tn, 0);
            prop_assert_eq!(padded.k % tk, 0);
            // Padding never more than a full tile minus one in each dim.
            prop_assert!(padded.m - m < tm);
            let eff = tile.efficiency(&shape);
            prop_assert!(eff > 0.0 && eff <= 1.0);
        }

        #[test]
        fn descriptor_indices_are_unique_and_in_range(
            rows in 1usize..20, cols in 1usize..20,
            planar in any::<bool>(), row_major in any::<bool>(),
        ) {
            let d = MatrixDescriptor {
                rows,
                cols,
                order: if row_major { MatrixOrder::RowMajor } else { MatrixOrder::ColMajor },
                layout: if planar { ComplexLayout::Planar } else { ComplexLayout::Interleaved },
            };
            let mut seen = std::collections::HashSet::new();
            for r in 0..rows {
                for c in 0..cols {
                    let re = d.real_index(r, c);
                    let im = d.imag_index(r, c);
                    prop_assert!(re < d.scalars());
                    prop_assert!(im < d.scalars());
                    prop_assert!(seen.insert(re));
                    prop_assert!(seen.insert(im));
                }
            }
        }
    }
}
