//! 1-bit complex sample encoding (Section III-D, Fig. 1 and Table II of
//! the paper).
//!
//! In a 1-bit representation only two values exist per real component; the
//! paper encodes them as −1 (binary 0) and +1 (binary 1) so that sign
//! information is preserved and zero is *not* representable.  A 1-bit
//! complex number therefore takes one of the four values ±1±i, equally
//! spaced on a circle of radius √2 in the complex plane.
//!
//! For tensor-core consumption, 32 consecutive 1-bit samples are packed
//! into one `u32` word ("the input data must be packed", Section III).
//! Real and imaginary planes are packed separately (planar layout), because
//! the binary tensor-core operations work on same-component planes.
//!
//! The key identity reproduced here (and proven by the property tests) is
//! the XOR dot product of Table II:
//!
//! ```text
//! Σ_k A_k·B_k  =  K − 2·popc(A ⊕ B)
//! ```
//!
//! and its AND-based equivalent used on Hopper where XOR is deprecated
//! (Eq. 6):
//!
//! ```text
//! Σ_k A_k·B_k  =  2·(popc(A ∧ B) + popc(Ā ∧ B̄)) − K
//! ```

use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// A single 1-bit complex sample: one sign bit per component.
///
/// `true` encodes +1, `false` encodes −1, matching the binary encoding of
/// Fig. 1 (binary 1 ↔ decimal +1, binary 0 ↔ decimal −1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OneBitComplex {
    /// Sign bit of the real component (`true` = +1).
    pub re: bool,
    /// Sign bit of the imaginary component (`true` = +1).
    pub im: bool,
}

impl OneBitComplex {
    /// The value `1 + i` (binary 11).
    pub const ONE_PLUS_I: OneBitComplex = OneBitComplex { re: true, im: true };
    /// The value `1 - i` (binary 10).
    pub const ONE_MINUS_I: OneBitComplex = OneBitComplex {
        re: true,
        im: false,
    };
    /// The value `-1 + i` (binary 01).
    pub const NEG_ONE_PLUS_I: OneBitComplex = OneBitComplex {
        re: false,
        im: true,
    };
    /// The value `-1 - i` (binary 00).
    pub const NEG_ONE_MINUS_I: OneBitComplex = OneBitComplex {
        re: false,
        im: false,
    };

    /// Builds a sample from the signs of the two components
    /// (`true` = non-negative = +1).
    #[inline]
    pub const fn from_signs(re_positive: bool, im_positive: bool) -> Self {
        OneBitComplex {
            re: re_positive,
            im: im_positive,
        }
    }

    /// Quantises an arbitrary complex value by keeping only the component
    /// signs.  Zero components quantise to +1 because zero is not
    /// representable in this format.
    #[inline]
    pub fn quantise(value: Complex<f32>) -> Self {
        OneBitComplex::from_signs(value.re >= 0.0, value.im >= 0.0)
    }

    /// Decodes to a full-precision complex value (each component ±1).
    #[inline]
    pub fn to_complex32(self) -> Complex<f32> {
        Complex::new(Self::decode_bit(self.re), Self::decode_bit(self.im))
    }

    /// Decodes a single bit to ±1.
    #[inline]
    pub fn decode_bit(bit: bool) -> f32 {
        if bit {
            1.0
        } else {
            -1.0
        }
    }

    /// The two-bit binary representation `(re << 1) | im` shown in Fig. 1:
    /// 00 ↔ −1−i, 01 ↔ −1+i, 10 ↔ 1−i, 11 ↔ 1+i.
    #[inline]
    pub fn binary_code(self) -> u8 {
        (u8::from(self.re) << 1) | u8::from(self.im)
    }

    /// All four representable values, in binary-code order 00, 01, 10, 11.
    pub fn constellation() -> [OneBitComplex; 4] {
        [
            OneBitComplex::NEG_ONE_MINUS_I,
            OneBitComplex::NEG_ONE_PLUS_I,
            OneBitComplex::ONE_MINUS_I,
            OneBitComplex::ONE_PLUS_I,
        ]
    }
}

/// A bit plane of packed 1-bit samples: 32 consecutive samples per `u32`
/// word, least-significant bit first.
///
/// This is the device-memory format the packing kernel of `ccglib`
/// produces.  The number of *valid* samples is tracked separately from the
/// number of words so that padding introduced by rounding up to a multiple
/// of 32 (and later to the tensor-core K granularity) can be accounted for
/// in the K<sub>pad</sub> correction of Eq. 5.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedBits {
    words: Vec<u32>,
    len: usize,
}

impl PackedBits {
    /// Creates a packed plane with `len` samples, all initialised to binary
    /// 0 (decimal −1), the padding value used by the paper.
    pub fn zeros(len: usize) -> Self {
        PackedBits {
            words: vec![0u32; len.div_ceil(32)],
            len,
        }
    }

    /// Packs a slice of sign bits (`true` = +1), assembling each output
    /// word in a register instead of issuing one read-modify-write per bit.
    pub fn pack(bits: &[bool]) -> Self {
        let mut words = Vec::with_capacity(bits.len().div_ceil(32));
        for chunk in bits.chunks(32) {
            let mut word = 0u32;
            for (i, &b) in chunk.iter().enumerate() {
                word |= u32::from(b) << i;
            }
            words.push(word);
        }
        PackedBits {
            words,
            len: bits.len(),
        }
    }

    /// Packs the signs of a slice of real values (non-negative = +1),
    /// word-at-a-time like [`PackedBits::pack`].
    pub fn pack_signs(values: &[f32]) -> Self {
        let mut words = Vec::with_capacity(values.len().div_ceil(32));
        for chunk in values.chunks(32) {
            let mut word = 0u32;
            for (i, &v) in chunk.iter().enumerate() {
                word |= u32::from(v >= 0.0) << i;
            }
            words.push(word);
        }
        PackedBits {
            words,
            len: values.len(),
        }
    }

    /// Builds a plane from already-assembled words (the fast packing path
    /// of `ccglib`).  Slack bits beyond `len` in the last word are cleared
    /// so the whole-word popcount fast path stays exact.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `len.div_ceil(32)` words long.
    pub fn from_words(mut words: Vec<u32>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(32),
            "a plane of {len} samples needs {} words",
            len.div_ceil(32)
        );
        if !len.is_multiple_of(32) {
            if let Some(last) = words.last_mut() {
                *last &= (1u32 << (len % 32)) - 1;
            }
        }
        PackedBits { words, len }
    }

    /// Number of valid samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the plane holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 32-bit words backing the plane.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// The raw packed words.
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable access to the raw packed words.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }

    /// Reads the sample at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 32] >> (index % 32)) & 1 == 1
    }

    /// Writes the sample at `index`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = &mut self.words[index / 32];
        let mask = 1u32 << (index % 32);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Unpacks to a vector of ±1 values.
    pub fn unpack(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| OneBitComplex::decode_bit(self.get(i)))
            .collect()
    }

    /// Extends the plane with padding (binary 0 = decimal −1) up to
    /// `new_len` samples, returning the number of padding samples added.
    pub fn pad_to(&mut self, new_len: usize) -> usize {
        assert!(new_len >= self.len, "cannot shrink a packed plane");
        let added = new_len - self.len;
        self.words.resize(new_len.div_ceil(32), 0);
        self.len = new_len;
        added
    }

    /// Number of bits set to one (population count over valid samples only).
    pub fn popcount(&self) -> u32 {
        let mut total = 0u32;
        for (w, &word) in self.words.iter().enumerate() {
            let valid_in_word = (self.len - w * 32).min(32);
            let mask = if valid_in_word == 32 {
                u32::MAX
            } else {
                (1u32 << valid_in_word) - 1
            };
            total += (word & mask).count_ones();
        }
        total
    }

    /// Real-valued dot product of two planes of equal length via the XOR +
    /// popcount identity of Table II: `K − 2·popc(A ⊕ B)`.
    pub fn dot_xor(&self, other: &PackedBits) -> i32 {
        assert_eq!(self.len, other.len, "dot product requires equal lengths");
        let k = self.len as i32;
        let mut popc = 0i32;
        for (i, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let valid_in_word = (self.len - i * 32).min(32);
            let mask = if valid_in_word == 32 {
                u32::MAX
            } else {
                (1u32 << valid_in_word) - 1
            };
            popc += ((a ^ b) & mask).count_ones() as i32;
        }
        k - 2 * popc
    }

    /// Real-valued dot product via the AND identity of Eq. 6, the variant
    /// the library switches to on NVIDIA Hopper and newer GPUs where the
    /// XOR tensor-core operation is deprecated:
    /// `2·(popc(A ∧ B) + popc(Ā ∧ B̄)) − K`.
    pub fn dot_and(&self, other: &PackedBits) -> i32 {
        assert_eq!(self.len, other.len, "dot product requires equal lengths");
        let k = self.len as i32;
        let mut popc = 0i32;
        for (i, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let valid_in_word = (self.len - i * 32).min(32);
            let mask = if valid_in_word == 32 {
                u32::MAX
            } else {
                (1u32 << valid_in_word) - 1
            };
            popc += ((a & b) & mask).count_ones() as i32;
            popc += ((!a & !b) & mask).count_ones() as i32;
        }
        2 * popc - k
    }

    /// The four real dot products of one complex 1-bit multiply —
    /// `rr = Re(a)·Re(b)`, `ii = Im(a)·Im(b)`, `ri = Re(a)·Im(b)`,
    /// `ir = Im(a)·Re(b)` — computed fused via the XOR identity of
    /// Table II.
    ///
    /// The naive formulation calls [`PackedBits::dot_xor`] four times,
    /// walking the packed words four times and re-deriving the tail mask
    /// with a branch on every word.  This fused version loads each word of
    /// the four planes exactly once per pass and accumulates all four
    /// popcounts together; the tail mask is hoisted out of the loop
    /// entirely — whole words take the mask-free fast path, and only a
    /// final partial word (rare: the packing granularity is a multiple of
    /// the word size) is masked.
    ///
    /// # Panics
    /// Panics if the four planes do not share one length.
    #[inline]
    pub fn dot4_xor(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
    ) -> [i32; 4] {
        Self::dot4_xor_unrolled::<1>(a_re, a_im, b_re, b_im)
    }

    /// [`PackedBits::dot4_xor`] with the whole-word fast path unrolled `U`
    /// fused 64-bit popcounts deep (`U ∈ {1, 2, 4}` in practice; `U = 1`
    /// is the exact loop of [`PackedBits::dot4_xor`]).  Every variant is
    /// integer-exact, so all unroll factors produce identical results on
    /// all inputs — the factor only changes instruction-level parallelism,
    /// which is why it is a searchable micro-kernel parameter.
    ///
    /// # Panics
    /// Panics if the four planes do not share one length.
    #[inline]
    pub fn dot4_xor_unrolled<const U: usize>(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
    ) -> [i32; 4] {
        let [rr, ii, ri, ir] = Self::popc4::<U>(
            a_re,
            a_im,
            b_re,
            b_im,
            |a, b| (a ^ b).count_ones(),
            |a, b, mask| ((a ^ b) & mask).count_ones(),
        );
        let k = a_re.len as i32;
        [
            k - 2 * rr as i32,
            k - 2 * ii as i32,
            k - 2 * ri as i32,
            k - 2 * ir as i32,
        ]
    }

    /// The fused complex quadruple of [`PackedBits::dot4_xor`] through the
    /// AND identity of Eq. 6 (the Hopper-and-newer formulation) — same
    /// single-pass structure, with the complemented-planes second term
    /// folded into the same loop.
    ///
    /// # Panics
    /// Panics if the four planes do not share one length.
    #[inline]
    pub fn dot4_and(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
    ) -> [i32; 4] {
        Self::dot4_and_unrolled::<1>(a_re, a_im, b_re, b_im)
    }

    /// [`PackedBits::dot4_and`] with the whole-word fast path unrolled `U`
    /// fused 64-bit popcounts deep — the AND-identity twin of
    /// [`PackedBits::dot4_xor_unrolled`], with the same exactness
    /// guarantee: every unroll factor produces identical results on all
    /// inputs.
    ///
    /// # Panics
    /// Panics if the four planes do not share one length.
    #[inline]
    pub fn dot4_and_unrolled<const U: usize>(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
    ) -> [i32; 4] {
        let [rr, ii, ri, ir] = Self::popc4::<U>(
            a_re,
            a_im,
            b_re,
            b_im,
            |a, b| (a & b).count_ones() + (!a & !b).count_ones(),
            |a, b, mask| ((a & b) & mask).count_ones() + ((!a & !b) & mask).count_ones(),
        );
        let k = a_re.len as i32;
        [
            2 * rr as i32 - k,
            2 * ii as i32 - k,
            2 * ri as i32 - k,
            2 * ir as i32 - k,
        ]
    }

    /// Shared single-pass core of the fused quadruple dot products: walks
    /// the four planes once and accumulates the rr/ii/ri/ir population
    /// counts through the supplied combine operations (monomorphised per
    /// formulation, so this costs nothing at run time).
    ///
    /// `combine64` handles the whole-word fast path (two words fused per
    /// popcount, `U` fused popcounts per loop iteration); `combine32(a, b,
    /// mask)` handles the leftover whole words below the unroll granularity
    /// (with `mask == u32::MAX`) and the rare partial tail word — the only
    /// masked steps, hoisted entirely out of the main loop.
    #[inline(always)]
    fn popc4<const U: usize>(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
        combine64: impl Fn(u64, u64) -> u32,
        combine32: impl Fn(u32, u32, u32) -> u32,
    ) -> [u32; 4] {
        let len = Self::common_len(a_re, a_im, b_re, b_im);
        let full = len / 32;
        let group = 2 * U;
        let (mut rr, mut ii, mut ri, mut ir) = (0u32, 0u32, 0u32, 0u32);
        // Whole-word fast path, two words per population count: the
        // bounds-check-free `chunks_exact` groups are fused into `u64`s so
        // each popcount covers 64 samples, and each iteration issues `U`
        // independent popcounts per plane pair (the compiler unrolls the
        // inner loop because `U` is a constant).
        for (((a, i), b), j) in a_re.words[..full]
            .chunks_exact(group)
            .zip(a_im.words[..full].chunks_exact(group))
            .zip(b_re.words[..full].chunks_exact(group))
            .zip(b_im.words[..full].chunks_exact(group))
        {
            for p in 0..U {
                let (ar, ai) = (Self::fuse(&a[2 * p..]), Self::fuse(&i[2 * p..]));
                let (br, bi) = (Self::fuse(&b[2 * p..]), Self::fuse(&j[2 * p..]));
                rr += combine64(ar, br);
                ii += combine64(ai, bi);
                ri += combine64(ar, bi);
                ir += combine64(ai, br);
            }
        }
        // Leftover whole words below the unroll granularity.
        for w in (full - full % group)..full {
            let (ar, ai) = (a_re.words[w], a_im.words[w]);
            let (br, bi) = (b_re.words[w], b_im.words[w]);
            rr += combine32(ar, br, u32::MAX);
            ii += combine32(ai, bi, u32::MAX);
            ri += combine32(ar, bi, u32::MAX);
            ir += combine32(ai, br, u32::MAX);
        }
        if !len.is_multiple_of(32) {
            // Partial tail word (rare: the packing granularity is a
            // multiple of the word size).
            let mask = (1u32 << (len % 32)) - 1;
            let (ar, ai) = (a_re.words[full], a_im.words[full]);
            let (br, bi) = (b_re.words[full], b_im.words[full]);
            rr += combine32(ar, br, mask);
            ii += combine32(ai, bi, mask);
            ri += combine32(ar, bi, mask);
            ir += combine32(ai, br, mask);
        }
        [rr, ii, ri, ir]
    }

    /// Fuses a pair of consecutive packed words into one `u64` so a single
    /// popcount covers 64 samples.
    #[inline(always)]
    fn fuse(pair: &[u32]) -> u64 {
        u64::from(pair[0]) | u64::from(pair[1]) << 32
    }

    fn common_len(
        a_re: &PackedBits,
        a_im: &PackedBits,
        b_re: &PackedBits,
        b_im: &PackedBits,
    ) -> usize {
        let len = a_re.len;
        assert!(
            a_im.len == len && b_re.len == len && b_im.len == len,
            "fused dot product requires four planes of equal length"
        );
        len
    }

    /// Reference dot product computed by decoding every sample — used to
    /// validate the popcount identities in tests.
    pub fn dot_reference(&self, other: &PackedBits) -> i32 {
        assert_eq!(self.len, other.len);
        (0..self.len)
            .map(|i| {
                let a = if self.get(i) { 1i32 } else { -1 };
                let b = if other.get(i) { 1i32 } else { -1 };
                a * b
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constellation_matches_figure_1() {
        // Fig. 1: binary 00 = −1−i, 01 = −1+i, 10 = 1−i, 11 = 1+i.
        let c = OneBitComplex::constellation();
        assert_eq!(c[0].to_complex32(), Complex::new(-1.0, -1.0));
        assert_eq!(c[0].binary_code(), 0b00);
        assert_eq!(c[1].to_complex32(), Complex::new(-1.0, 1.0));
        assert_eq!(c[1].binary_code(), 0b01);
        assert_eq!(c[2].to_complex32(), Complex::new(1.0, -1.0));
        assert_eq!(c[2].binary_code(), 0b10);
        assert_eq!(c[3].to_complex32(), Complex::new(1.0, 1.0));
        assert_eq!(c[3].binary_code(), 0b11);
        // All four points lie on the circle of radius sqrt(2).
        for p in c {
            assert!((p.to_complex32().abs() - std::f32::consts::SQRT_2).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_is_not_representable_and_quantises_to_plus_one() {
        let q = OneBitComplex::quantise(Complex::new(0.0, -0.0));
        // +0 and -0 both have sign >= 0 under `>= 0.0` comparison for +0,
        // -0.0 >= 0.0 is true in IEEE as well.
        assert_eq!(q.to_complex32(), Complex::new(1.0, 1.0));
        for p in OneBitComplex::constellation() {
            assert_ne!(p.to_complex32(), Complex::new(0.0, 0.0));
        }
    }

    #[test]
    fn table_ii_worked_example() {
        // Table II: A = (1, −1, 1, −1) = binary 1010 (LSB first: 1,0,1,0),
        // B = (1, 1, −1, −1); dot product is 0, popc(A⊕B) = 2.
        let a = PackedBits::pack(&[true, false, true, false]);
        let b = PackedBits::pack(&[true, true, false, false]);
        assert_eq!(a.dot_reference(&b), 0);
        // popc(A ⊕ B) == 2 as in the table.
        let xor_popc: u32 = {
            let mut p = 0;
            for i in 0..4 {
                p += u32::from(a.get(i) != b.get(i));
            }
            p
        };
        assert_eq!(xor_popc, 2);
        assert_eq!(a.dot_xor(&b), 0);
        assert_eq!(a.dot_and(&b), 0);
    }

    #[test]
    fn packing_roundtrip() {
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let packed = PackedBits::pack(&bits);
        assert_eq!(packed.len(), 100);
        assert_eq!(packed.num_words(), 4);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(packed.get(i), b);
        }
        let unpacked = packed.unpack();
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(unpacked[i], if b { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn padding_uses_binary_zero() {
        let mut packed = PackedBits::pack(&[true, true, true]);
        let added = packed.pad_to(64);
        assert_eq!(added, 61);
        assert_eq!(packed.len(), 64);
        // Padding decodes to −1 (decimal value of binary 0).
        for i in 3..64 {
            assert!(!packed.get(i));
        }
        assert_eq!(packed.popcount(), 3);
    }

    #[test]
    fn popcount_ignores_slack_bits() {
        let mut packed = PackedBits::zeros(40);
        // Dirty the slack bits of the second word directly.
        packed.words_mut()[1] |= 0xFFFF_FF00;
        assert_eq!(packed.popcount(), 0);
    }

    #[test]
    fn sign_packing() {
        let packed = PackedBits::pack_signs(&[0.5, -0.5, 0.0, -3.0, 7.0]);
        assert_eq!(packed.unpack(), vec![1.0, -1.0, 1.0, -1.0, 1.0]);
    }

    /// The pre-rewrite packing path: zero-fill then one `set` per bit.
    /// Kept as the layout ground truth for the word-assembling fast path.
    fn pack_per_bit(bits: &[bool]) -> PackedBits {
        let mut packed = PackedBits::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            packed.set(i, b);
        }
        packed
    }

    #[test]
    fn word_assembled_packing_matches_the_per_bit_layout() {
        for len in [1usize, 31, 32, 33, 64, 100, 255, 256, 300] {
            let bits: Vec<bool> = (0..len).map(|i| (i * 7 + len) % 3 != 0).collect();
            let fast = PackedBits::pack(&bits);
            let slow = pack_per_bit(&bits);
            assert_eq!(fast, slow, "len {len}");
            let values: Vec<f32> = bits.iter().map(|&b| if b { 0.5 } else { -0.5 }).collect();
            assert_eq!(PackedBits::pack_signs(&values), slow, "signs len {len}");
        }
    }

    #[test]
    fn from_words_clears_slack_bits() {
        let plane = PackedBits::from_words(vec![u32::MAX, u32::MAX], 40);
        assert_eq!(plane.len(), 40);
        // Only the 40 valid bits count; the 24 slack bits were cleared.
        assert_eq!(plane.popcount(), 40);
        assert_eq!(plane.words()[1], 0xFF);
        let exact = PackedBits::from_words(vec![7], 32);
        assert_eq!(exact.words()[0], 7);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn from_words_rejects_wrong_word_counts() {
        let _ = PackedBits::from_words(vec![0; 3], 40);
    }

    #[test]
    fn fused_dot4_handles_tails_and_whole_words() {
        for len in [1usize, 5, 32, 33, 64, 95, 256] {
            let a_re = PackedBits::pack(&(0..len).map(|i| i % 2 == 0).collect::<Vec<_>>());
            let a_im = PackedBits::pack(&(0..len).map(|i| i % 3 == 0).collect::<Vec<_>>());
            let b_re = PackedBits::pack(&(0..len).map(|i| i % 5 != 0).collect::<Vec<_>>());
            let b_im = PackedBits::pack(&(0..len).map(|i| i % 7 == 1).collect::<Vec<_>>());
            let expected = [
                a_re.dot_reference(&b_re),
                a_im.dot_reference(&b_im),
                a_re.dot_reference(&b_im),
                a_im.dot_reference(&b_re),
            ];
            assert_eq!(
                PackedBits::dot4_xor(&a_re, &a_im, &b_re, &b_im),
                expected,
                "len {len}"
            );
            assert_eq!(
                PackedBits::dot4_and(&a_re, &a_im, &b_re, &b_im),
                expected,
                "len {len}"
            );
        }
    }

    proptest! {
        #[test]
        fn fused_dot4_matches_the_four_single_dots(
            bits in proptest::collection::vec(any::<bool>(), 4..512),
            seed_ai in any::<u64>(),
            seed_br in any::<u64>(),
            seed_bi in any::<u64>(),
        ) {
            let derive = |seed: u64| -> Vec<bool> {
                bits.iter()
                    .enumerate()
                    .map(|(i, &b)| b ^ ((seed >> (i % 64)) & 1 == 1))
                    .collect()
            };
            let a_re = PackedBits::pack(&bits);
            let a_im = PackedBits::pack(&derive(seed_ai));
            let b_re = PackedBits::pack(&derive(seed_br));
            let b_im = PackedBits::pack(&derive(seed_bi));
            let expected = [
                a_re.dot_xor(&b_re),
                a_im.dot_xor(&b_im),
                a_re.dot_xor(&b_im),
                a_im.dot_xor(&b_re),
            ];
            prop_assert_eq!(PackedBits::dot4_xor(&a_re, &a_im, &b_re, &b_im), expected);
            prop_assert_eq!(PackedBits::dot4_and(&a_re, &a_im, &b_re, &b_im), expected);
        }

        #[test]
        fn unrolled_dot4_is_identical_for_every_unroll_factor(
            bits in proptest::collection::vec(any::<bool>(), 4..640),
            seed_ai in any::<u64>(),
            seed_br in any::<u64>(),
            seed_bi in any::<u64>(),
        ) {
            let derive = |seed: u64| -> Vec<bool> {
                bits.iter()
                    .enumerate()
                    .map(|(i, &b)| b ^ ((seed >> (i % 64)) & 1 == 1))
                    .collect()
            };
            let a_re = PackedBits::pack(&bits);
            let a_im = PackedBits::pack(&derive(seed_ai));
            let b_re = PackedBits::pack(&derive(seed_br));
            let b_im = PackedBits::pack(&derive(seed_bi));
            let xor = PackedBits::dot4_xor(&a_re, &a_im, &b_re, &b_im);
            let and = PackedBits::dot4_and(&a_re, &a_im, &b_re, &b_im);
            prop_assert_eq!(PackedBits::dot4_xor_unrolled::<2>(&a_re, &a_im, &b_re, &b_im), xor);
            prop_assert_eq!(PackedBits::dot4_xor_unrolled::<4>(&a_re, &a_im, &b_re, &b_im), xor);
            prop_assert_eq!(PackedBits::dot4_and_unrolled::<2>(&a_re, &a_im, &b_re, &b_im), and);
            prop_assert_eq!(PackedBits::dot4_and_unrolled::<4>(&a_re, &a_im, &b_re, &b_im), and);
        }

        #[test]
        fn fast_packing_roundtrips_for_random_lengths(
            bits in proptest::collection::vec(any::<bool>(), 1..400),
        ) {
            let fast = PackedBits::pack(&bits);
            prop_assert_eq!(&fast, &pack_per_bit(&bits));
            let rebuilt = PackedBits::from_words(fast.words().to_vec(), fast.len());
            prop_assert_eq!(&fast, &rebuilt);
        }

        #[test]
        fn xor_identity_matches_reference(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                                          seed in any::<u64>()) {
            // Derive B deterministically from A and a seed so lengths match.
            let bits_b: Vec<bool> = bits_a
                .iter()
                .enumerate()
                .map(|(i, &a)| a ^ ((seed >> (i % 64)) & 1 == 1))
                .collect();
            let a = PackedBits::pack(&bits_a);
            let b = PackedBits::pack(&bits_b);
            prop_assert_eq!(a.dot_xor(&b), a.dot_reference(&b));
        }

        #[test]
        fn and_identity_matches_reference(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                                          seed in any::<u64>()) {
            let bits_b: Vec<bool> = bits_a
                .iter()
                .enumerate()
                .map(|(i, &a)| a ^ ((seed >> (i % 64)) & 1 == 0))
                .collect();
            let a = PackedBits::pack(&bits_a);
            let b = PackedBits::pack(&bits_b);
            prop_assert_eq!(a.dot_and(&b), a.dot_reference(&b));
        }

        #[test]
        fn xor_and_agree(bits_a in proptest::collection::vec(any::<bool>(), 1..300),
                         bits_b_seed in any::<u64>()) {
            let bits_b: Vec<bool> = bits_a
                .iter()
                .enumerate()
                .map(|(i, _)| (bits_b_seed >> (i % 64)) & 1 == 1)
                .collect();
            let a = PackedBits::pack(&bits_a);
            let b = PackedBits::pack(&bits_b);
            prop_assert_eq!(a.dot_xor(&b), a.dot_and(&b));
        }

        #[test]
        fn dot_bounds(bits_a in proptest::collection::vec(any::<bool>(), 1..300)) {
            // |Σ ±1·±1| ≤ K and has the same parity as K.
            let b = PackedBits::pack(&bits_a.iter().map(|&x| !x).collect::<Vec<_>>());
            let a = PackedBits::pack(&bits_a);
            let d = a.dot_xor(&b);
            let k = bits_a.len() as i32;
            prop_assert!(d.abs() <= k);
            prop_assert_eq!((d - k).rem_euclid(2), 0);
        }

        #[test]
        fn quantise_decode_fixed_point(re in -10.0f32..10.0, im in -10.0f32..10.0) {
            // Quantising an already-quantised value is the identity.
            let q = OneBitComplex::quantise(Complex::new(re, im));
            let qq = OneBitComplex::quantise(q.to_complex32());
            prop_assert_eq!(q, qq);
        }
    }
}
