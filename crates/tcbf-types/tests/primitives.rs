//! Integration-level coverage of the numeric primitives: `Complex`
//! arithmetic, `f16` round-trip rounding, and the 1-bit encode/popcount
//! identities of `onebit` — the invariants every layer above relies on.

use tcbf_types::onebit::OneBitComplex;
use tcbf_types::{f16, Complex, Complex32, PackedBits};

fn approx(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol
}

// ---- Complex arithmetic ---------------------------------------------------

#[test]
fn complex_field_identities() {
    let z = Complex::new(3.0f32, -4.0);
    assert_eq!(z + Complex32::ZERO, z);
    assert_eq!(z * Complex32::ONE, z);
    assert_eq!(Complex32::I * Complex32::I, -Complex32::ONE);
    assert_eq!(z - z, Complex32::ZERO);
    assert_eq!(-z, Complex::new(-3.0, 4.0));
}

#[test]
fn complex_division_inverts_multiplication() {
    let a = Complex::new(2.5f32, -1.25);
    let b = Complex::new(-0.75f32, 3.0);
    let q = (a * b) / b;
    assert!(approx(q.re, a.re, 1e-5));
    assert!(approx(q.im, a.im, 1e-5));
}

#[test]
fn complex_conjugate_and_norm() {
    let z = Complex::new(3.0f32, 4.0);
    assert_eq!(z.norm_sqr(), 25.0);
    assert_eq!(z.abs(), 5.0);
    // z · conj(z) = |z|² on the real axis.
    let zz = z * z.conj();
    assert_eq!(zz, Complex::new(25.0, 0.0));
}

#[test]
fn complex_polar_roundtrip() {
    let z = Complex::from_polar(2.0, std::f32::consts::FRAC_PI_3);
    assert!(approx(z.abs(), 2.0, 1e-6));
    assert!(approx(z.arg(), std::f32::consts::FRAC_PI_3, 1e-6));
    // Weight-generation case: unit magnitude, phase only.
    let w = Complex::from_polar(1.0, -1.234);
    assert!(approx(w.norm_sqr(), 1.0, 1e-6));
}

#[test]
fn complex_sum_accumulates() {
    let total: Complex32 = (0..10).map(|i| Complex::new(i as f32, -(i as f32))).sum();
    assert_eq!(total, Complex::new(45.0, -45.0));
}

#[test]
fn complex_multiplication_matches_decomposition() {
    // The tensor-core kernels decompose complex multiply into the four
    // real products of Section III-B; the operator must match exactly.
    let a = Complex::new(1.5f32, -2.0);
    let b = Complex::new(0.5f32, 4.0);
    let c = a * b;
    assert_eq!(c.re, a.re * b.re - a.im * b.im);
    assert_eq!(c.im, a.re * b.im + a.im * b.re);
}

// ---- f16 round-trip rounding ---------------------------------------------

#[test]
fn f16_exact_values_roundtrip() {
    for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -65504.0, 65504.0] {
        let h = f16::from_f32(v);
        assert_eq!(h.to_f32(), v, "{v} should be exactly representable");
    }
}

#[test]
fn f16_roundtrip_is_idempotent() {
    // Quantising an already-quantised value must change nothing: the
    // 16-bit kernel quantises inputs once, and re-quantisation on the
    // host reference path must agree bit-for-bit.
    for bits in (0..=u16::MAX).step_by(7) {
        let h = f16::from_bits(bits);
        if h.is_nan() {
            assert!(f16::from_f32(h.to_f32()).is_nan());
        } else {
            assert_eq!(f16::from_f32(h.to_f32()).to_bits(), h.to_bits());
        }
    }
}

#[test]
fn f16_rounds_to_nearest_even() {
    // 2049 lies exactly between the representable 2048 and 2050 —
    // round-to-nearest-even must pick 2048 (even significand).
    assert_eq!(f16::from_f32(2049.0).to_f32(), 2048.0);
    // 2051 lies exactly between 2050 and 2052 — ties to 2052.
    assert_eq!(f16::from_f32(2051.0).to_f32(), 2052.0);
    // Not a tie: anything past the midpoint rounds up.
    assert_eq!(f16::from_f32(2049.5).to_f32(), 2050.0);
}

#[test]
fn f16_overflow_and_subnormals() {
    // Values beyond ±65504 overflow to infinity.
    assert!(f16::from_f32(65520.0).is_infinite());
    assert!(f16::from_f32(-1e9).is_infinite());
    assert!(f16::from_f32(-1e9).is_sign_negative());
    // The smallest positive subnormal survives the trip.
    let tiny = f16::MIN_POSITIVE_SUBNORMAL;
    assert!(tiny.is_subnormal());
    assert_eq!(f16::from_f32(tiny.to_f32()).to_bits(), tiny.to_bits());
    // Anything much smaller flushes to zero.
    assert!(f16::from_f32(1e-12).is_zero());
}

#[test]
fn f16_signed_zero_semantics() {
    assert!(f16::NEG_ZERO.is_zero());
    assert_eq!(f16::NEG_ZERO.to_f32(), 0.0);
    assert!(f16::from_f32(-0.0).is_sign_negative());
    // IEEE equality: -0 == +0.
    assert_eq!(f16::NEG_ZERO, f16::ZERO);
}

// ---- 1-bit encoding and popcount identities -------------------------------

#[test]
fn onebit_quantisation_maps_zero_to_positive() {
    // Zero is not representable in the 1-bit code (Fig. 1); it encodes
    // as +1 by convention.
    let q = OneBitComplex::quantise(Complex::new(0.0, 0.0));
    assert_eq!(q.to_complex32(), Complex::new(1.0, 1.0));
    let q = OneBitComplex::quantise(Complex::new(-0.5, 3.0));
    assert_eq!(q.to_complex32(), Complex::new(-1.0, 1.0));
}

#[test]
fn onebit_constellation_has_unit_components() {
    for point in OneBitComplex::constellation() {
        let z = point.to_complex32();
        assert_eq!(z.re.abs(), 1.0);
        assert_eq!(z.im.abs(), 1.0);
        assert_eq!(z.norm_sqr(), 2.0);
    }
}

#[test]
fn packed_bits_roundtrip_and_popcount() {
    let bits: Vec<bool> = (0..97).map(|i| i % 3 == 0).collect();
    let packed = PackedBits::pack(&bits);
    assert_eq!(packed.len(), 97);
    assert_eq!(packed.num_words(), 4);
    assert_eq!(
        packed.popcount() as usize,
        bits.iter().filter(|&&b| b).count()
    );
    let unpacked = packed.unpack();
    for (i, (&bit, &value)) in bits.iter().zip(unpacked.iter()).enumerate() {
        assert_eq!(value, if bit { 1.0 } else { -1.0 }, "sample {i}");
    }
}

#[test]
fn popcount_identities_match_reference_dot() {
    // The XOR and AND popcount identities (Section III-D) must agree
    // with the literal ±1 dot product, including at non-word-aligned
    // lengths where masking of the tail word matters.
    for len in [1usize, 31, 32, 33, 64, 95, 256, 300] {
        let a_bits: Vec<bool> = (0..len).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let b_bits: Vec<bool> = (0..len).map(|i| (i * 11 + 1) % 3 == 0).collect();
        let a = PackedBits::pack(&a_bits);
        let b = PackedBits::pack(&b_bits);
        let expected: i32 = a_bits
            .iter()
            .zip(&b_bits)
            .map(|(&x, &y)| if x == y { 1 } else { -1 })
            .sum();
        assert_eq!(a.dot_reference(&b), expected, "reference, len {len}");
        assert_eq!(a.dot_xor(&b), expected, "xor identity, len {len}");
        assert_eq!(a.dot_and(&b), expected, "and identity, len {len}");
    }
}

#[test]
fn pack_signs_matches_sign_bit_convention() {
    let values = [0.0f32, -0.0, 1.5, -2.5, 1e-20, -1e-20];
    let packed = PackedBits::pack_signs(&values);
    let unpacked = packed.unpack();
    for (i, (&v, &u)) in values.iter().zip(unpacked.iter()).enumerate() {
        let expected = if v >= 0.0 { 1.0 } else { -1.0 };
        assert_eq!(u, expected, "value {i} ({v})");
    }
}
