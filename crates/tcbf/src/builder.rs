//! The fluent configuration builder of the facade.
//!
//! A [`BeamformerBuilder`] collects the full beamformer configuration —
//! device, weights, block length, precision, batch size, optional explicit
//! tuning parameters — and validates everything in one place at
//! [`BeamformerBuilder::build`], returning either a ready
//! [`TensorCoreBeamformer`] or a single actionable [`TcbfError`].

use crate::error::{Result, TcbfError};
use crate::TensorCoreBeamformer;
use beamform::{
    Beamformer, BeamformerConfig, Engine, ShardPolicy, ShardedBeamformer, SingleEngine,
    WeightMatrix,
};
use ccglib::matrix::HostComplexMatrix;
use ccglib::{MicroKernelConfig, Precision, TuningParameters};
use gpu_sim::{DevicePool, FaultInjector, Gpu};
use std::path::PathBuf;
use std::sync::Arc;
use tcbf_types::GemmShape;

/// Fluent builder for [`TensorCoreBeamformer`]; obtained from
/// [`TensorCoreBeamformer::builder`].
///
/// ```
/// use tcbf::{Gpu, Precision, TensorCoreBeamformer};
/// use ccglib::matrix::HostComplexMatrix;
/// use tcbf_types::Complex;
///
/// let weights = HostComplexMatrix::from_fn(8, 32, |b, r| {
///     Complex::from_polar(1.0 / 32.0, (b * r) as f32 * 0.01)
/// });
/// let beamformer = TensorCoreBeamformer::builder(Gpu::A100)
///     .weights(weights)
///     .samples_per_block(64)
///     .precision(Precision::Float16)
///     .batch(1)
///     .build()
///     .unwrap();
/// assert_eq!(beamformer.shape().m, 8);
/// ```
#[derive(Clone, Debug)]
pub struct BeamformerBuilder {
    gpu: Gpu,
    devices: Vec<Gpu>,
    shard_policy: ShardPolicy,
    weights: Option<WeightMatrix>,
    samples_per_block: usize,
    precision: Precision,
    batch: usize,
    params: Option<TuningParameters>,
    micro: Option<MicroKernelConfig>,
    micro_cache: Option<PathBuf>,
    fault_injector: Option<Arc<FaultInjector>>,
}

impl BeamformerBuilder {
    /// Starts a configuration for `gpu` with the defaults: float16
    /// precision, batch 1, shipped tuning parameters, single device,
    /// capacity-weighted shard policy, no weights or block length yet.
    /// The host micro-kernel blocking is looked up in the autotuning
    /// cache at build time unless pinned with
    /// [`BeamformerBuilder::micro_config`].
    pub fn new(gpu: Gpu) -> Self {
        BeamformerBuilder {
            gpu,
            devices: Vec::new(),
            shard_policy: ShardPolicy::default(),
            weights: None,
            samples_per_block: 0,
            precision: Precision::Float16,
            batch: 1,
            params: None,
            micro: None,
            micro_cache: None,
            fault_injector: None,
        }
    }

    /// Configures a multi-device pool (heterogeneous mixes allowed;
    /// repeats model several identical cards).  A configuration with a
    /// pool builds through [`BeamformerBuilder::build_sharded`]; an empty
    /// slice reverts to the single-device path.
    pub fn devices(mut self, gpus: &[Gpu]) -> Self {
        self.devices = gpus.to_vec();
        self
    }

    /// Sets how block streams are partitioned across the pool (default:
    /// [`ShardPolicy::CapacityWeighted`]).  Only meaningful together with
    /// [`BeamformerBuilder::devices`].
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Sets the beam weights from a raw `beams × receivers` matrix.
    pub fn weights(mut self, weights: HostComplexMatrix) -> Self {
        self.weights = Some(WeightMatrix::from_matrix(weights));
        self
    }

    /// Sets the beam weights from a prepared [`WeightMatrix`] (steering
    /// fans, per-beam azimuths, …).
    pub fn weight_matrix(mut self, weights: WeightMatrix) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Sets the number of time samples beamformed per block (`N` of the
    /// GEMM).
    pub fn samples_per_block(mut self, samples: usize) -> Self {
        self.samples_per_block = samples;
        self
    }

    /// Sets the input precision (default: [`Precision::Float16`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the number of independent batch elements sharing the weights —
    /// e.g. frequency channels × polarisations (default: 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Supplies explicit kernel tuning parameters instead of the shipped
    /// per-GPU defaults.
    pub fn params(mut self, params: TuningParameters) -> Self {
        self.params = Some(params);
        self
    }

    /// Pins the host micro-kernel blocking explicitly, bypassing the
    /// autotuning-cache lookup (validated at build time).
    pub fn micro_config(mut self, micro: MicroKernelConfig) -> Self {
        self.micro = Some(micro);
        self
    }

    /// Reads the autotuning cache from an explicit path instead of the
    /// default location ([`tuner::default_cache_path`]).
    pub fn micro_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.micro_cache = Some(path.into());
        self
    }

    /// Arms a deterministic [`FaultInjector`] over the configured device
    /// pool, for testing fault recovery end to end.  The injector must
    /// span exactly one verdict stream per pool member, and only
    /// multi-device builds accept one — a single device has no survivors
    /// to re-apportion onto, so [`BeamformerBuilder::build`] and
    /// single-device [`BeamformerBuilder::build_engine`] reject the
    /// configuration with [`TcbfError::InvalidParameters`].
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.fault_injector = Some(injector);
        self
    }

    /// The micro-kernel blocking this build will run: the pinned one if
    /// [`BeamformerBuilder::micro_config`] was called, else the
    /// autotuning-cache winner for this host, precision and shape band,
    /// else `None` (the default blocking).  Missing, corrupt or
    /// foreign-host caches all fall back silently — autotuning may never
    /// break engine construction.
    fn resolved_micro(&self, weights: &WeightMatrix, batch: usize) -> Option<MicroKernelConfig> {
        self.micro.or_else(|| {
            let shape = GemmShape::batched(
                batch,
                weights.num_beams(),
                self.samples_per_block,
                weights.num_receivers(),
            );
            tuner::tuned_micro_config(self.micro_cache.as_deref(), self.precision, shape)
        })
    }

    /// Shared validation of the builder fields every build path performs:
    /// weights present and non-empty, block length and batch non-zero.
    fn validated_weights(&self) -> Result<()> {
        let weights = self.weights.as_ref().ok_or(TcbfError::MissingWeights)?;
        if weights.num_beams() == 0 || weights.num_receivers() == 0 {
            return Err(TcbfError::EmptyWeights {
                beams: weights.num_beams(),
                receivers: weights.num_receivers(),
            });
        }
        if self.samples_per_block == 0 {
            return Err(TcbfError::ZeroSamplesPerBlock);
        }
        if self.batch == 0 {
            return Err(TcbfError::ZeroBatch);
        }
        Ok(())
    }

    /// Validates the whole configuration and constructs a streaming
    /// [`Engine`] of the topology the builder describes: a single-device
    /// engine when [`BeamformerBuilder::devices`] was never called, a
    /// sharded multi-device engine otherwise.  This is the
    /// topology-agnostic entry point — downstream code drives the boxed
    /// engine (e.g. through a [`beamform::DynSession`]) without knowing
    /// which it got.
    ///
    /// Engines stream whole blocks, one per GEMM execution, so the batch
    /// size must be 1 ([`TcbfError::ShardedBatch`] otherwise); all other
    /// validations of [`BeamformerBuilder::build`] /
    /// [`BeamformerBuilder::build_sharded`] apply unchanged.
    ///
    /// ```
    /// use tcbf::prelude::*;
    ///
    /// let weights = HostComplexMatrix::from_fn(8, 32, |b, r| {
    ///     Complex::from_polar(1.0 / 32.0, (b * r) as f32 * 0.01)
    /// });
    /// // Same configuration code, two topologies.
    /// for devices in [Vec::new(), vec![Gpu::A100, Gpu::Gh200]] {
    ///     let engine = TensorCoreBeamformer::builder(Gpu::A100)
    ///         .weights(weights.clone())
    ///         .samples_per_block(64)
    ///         .devices(&devices)
    ///         .build_engine()
    ///         .unwrap();
    ///     assert_eq!(engine.topology().num_devices(), devices.len().max(1));
    /// }
    /// ```
    pub fn build_engine(self) -> Result<Box<dyn Engine>> {
        self.validated_weights()?;
        if self.batch != 1 {
            return Err(TcbfError::ShardedBatch { batch: self.batch });
        }
        let micro = self.resolved_micro(self.weights.as_ref().expect("validated above"), 1);
        let weights = self.weights.expect("validated above");
        let config = BeamformerConfig {
            precision: self.precision,
            batch: 1,
            params: self.params,
            micro,
        };
        if self.devices.is_empty() {
            if self.fault_injector.is_some() {
                return Err(TcbfError::InvalidParameters {
                    reason: "fault injection needs a multi-device pool: a single device has no \
                             survivors to recover onto"
                        .to_string(),
                });
            }
            let inner =
                Beamformer::new(&self.gpu.device(), weights, self.samples_per_block, config)?;
            Ok(Box::new(SingleEngine::new(inner)?))
        } else {
            let pool = DevicePool::from_gpus(&self.devices);
            let mut sharded = ShardedBeamformer::new(
                &pool,
                weights,
                self.samples_per_block,
                config,
                self.shard_policy,
            )?;
            if let Some(injector) = self.fault_injector {
                sharded.set_fault_injector(injector)?;
            }
            Ok(Box::new(sharded))
        }
    }

    /// Validates the whole configuration and constructs the beamformer.
    ///
    /// A thin single-device wrapper kept alongside
    /// [`BeamformerBuilder::build_engine`] for one release (it remains the
    /// only path to batched executions, `batch > 1`).
    ///
    /// Checks, in order: no device pool configured (pools build through
    /// [`BeamformerBuilder::build_engine`] or
    /// [`BeamformerBuilder::build_sharded`]), weights present and
    /// non-empty, block length and batch non-zero, precision supported on
    /// the device, tuning parameters launchable, operands within device
    /// memory.  The first violation is returned as the matching
    /// [`TcbfError`] variant.
    pub fn build(self) -> Result<TensorCoreBeamformer> {
        if !self.devices.is_empty() {
            return Err(TcbfError::ShardedConfiguration {
                devices: self.devices.len(),
            });
        }
        if self.fault_injector.is_some() {
            return Err(TcbfError::InvalidParameters {
                reason: "fault injection needs a multi-device pool: a single device has no \
                         survivors to recover onto"
                    .to_string(),
            });
        }
        self.validated_weights()?;
        let micro =
            self.resolved_micro(self.weights.as_ref().expect("validated above"), self.batch);
        let weights = self.weights.expect("validated above");
        let config = BeamformerConfig {
            precision: self.precision,
            batch: self.batch,
            params: self.params,
            micro,
        };
        let inner = Beamformer::new(&self.gpu.device(), weights, self.samples_per_block, config)?;
        Ok(TensorCoreBeamformer::from_parts(inner, self.gpu))
    }

    /// Validates the whole configuration and constructs a
    /// [`ShardedBeamformer`] spanning the configured device pool (or a
    /// single-member pool of the builder's device if
    /// [`BeamformerBuilder::devices`] was never called).
    ///
    /// A typed wrapper kept for one release; the topology-agnostic
    /// [`BeamformerBuilder::build_engine`] is the preferred entry point.
    ///
    /// The batch size must be 1: sharding distributes whole blocks across
    /// the pool members instead.
    ///
    /// ```
    /// use tcbf::{Gpu, ShardPolicy, TensorCoreBeamformer};
    /// use ccglib::matrix::HostComplexMatrix;
    /// use tcbf_types::Complex;
    ///
    /// let weights = HostComplexMatrix::from_fn(8, 32, |b, r| {
    ///     Complex::from_polar(1.0 / 32.0, (b * r) as f32 * 0.01)
    /// });
    /// let sharded = TensorCoreBeamformer::builder(Gpu::A100)
    ///     .weights(weights)
    ///     .samples_per_block(64)
    ///     .devices(&[Gpu::A100, Gpu::Gh200])
    ///     .shard_policy(ShardPolicy::CapacityWeighted)
    ///     .build_sharded()
    ///     .unwrap();
    /// assert_eq!(sharded.num_devices(), 2);
    /// ```
    pub fn build_sharded(self) -> Result<ShardedBeamformer> {
        self.validated_weights()?;
        if self.batch != 1 {
            return Err(TcbfError::ShardedBatch { batch: self.batch });
        }
        let micro = self.resolved_micro(self.weights.as_ref().expect("validated above"), 1);
        let weights = self.weights.expect("validated above");
        let gpus = if self.devices.is_empty() {
            vec![self.gpu]
        } else {
            self.devices
        };
        let pool = DevicePool::from_gpus(&gpus);
        let config = BeamformerConfig {
            precision: self.precision,
            batch: 1,
            params: self.params,
            micro,
        };
        let mut sharded = ShardedBeamformer::new(
            &pool,
            weights,
            self.samples_per_block,
            config,
            self.shard_policy,
        )?;
        if let Some(injector) = self.fault_injector {
            sharded.set_fault_injector(injector)?;
        }
        Ok(sharded)
    }
}
