//! The unified error type of the facade.
//!
//! Everything that can go wrong when configuring or running a
//! [`crate::TensorCoreBeamformer`] — builder misuse, unsupported
//! precision/device combinations, shapes that do not fit in device memory,
//! invalid tuning parameters, operand mismatches at run time — surfaces as
//! one [`TcbfError`] with an actionable message.  Lower-level
//! [`CcglibError`]s convert losslessly via `From`, so `?` works across the
//! layer boundary.

use ccglib::CcglibError;
use tcbf_types::GemmShape;

/// Error returned by the facade API (builder, beamformer and sessions).
#[derive(Clone, Debug, PartialEq)]
pub enum TcbfError {
    /// `build()` was called without supplying a weight matrix.
    MissingWeights,
    /// The weight matrix has a zero dimension.
    EmptyWeights {
        /// Number of beams (rows) supplied.
        beams: usize,
        /// Number of receivers (columns) supplied.
        receivers: usize,
    },
    /// The number of samples per block is zero (or was never set).
    ZeroSamplesPerBlock,
    /// The batch size is zero.
    ZeroBatch,
    /// `build()` was called on a configuration with a device pool; a
    /// multi-device configuration builds a sharded beamformer.
    ShardedConfiguration {
        /// Number of devices configured through `.devices(...)`.
        devices: usize,
    },
    /// `build_engine()` or `build_sharded()` was called with a batch size
    /// other than 1: streaming engines distribute whole blocks (one per
    /// execution), so per-device batching is not meaningful.
    ShardedBatch {
        /// The configured batch size.
        batch: usize,
    },
    /// The requested precision is not supported on the selected device
    /// (1-bit mode on AMD GPUs).
    UnsupportedPrecision {
        /// Device name.
        device: String,
        /// Requested precision.
        precision: String,
    },
    /// The configured shape's operands would not fit in device memory.
    OutOfDeviceMemory {
        /// Problem shape.
        shape: GemmShape,
        /// Required bytes.
        required_bytes: u128,
        /// Available bytes.
        available_bytes: u128,
    },
    /// The explicit tuning parameters are invalid for the device.
    InvalidParameters {
        /// Human-readable reason.
        reason: String,
    },
    /// An operand's dimensions do not match the configured shape.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// An operand was supplied in the wrong precision.
    PrecisionMismatch {
        /// Expected precision.
        expected: String,
        /// Supplied precision.
        actual: String,
    },
    /// A device refused work mid-stream (injected or real fault).  When
    /// `permanent` is false the failure is retryable on the same device.
    DeviceLost {
        /// Pool index of the lost device.
        device: usize,
        /// True when the device is gone for good.
        permanent: bool,
    },
    /// The serving fleet is degraded: too few healthy engines remain to
    /// take on this work right now.  Retryable once capacity recovers.
    Degraded {
        /// Healthy engines remaining.
        healthy: usize,
        /// Fleet size when at full strength.
        total: usize,
    },
    /// An internal invariant was violated.  The serve path never panics:
    /// when a "cannot happen" state is reached anyway (a bug, not a user
    /// error), it surfaces as this typed error instead of an `unwrap`.
    Internal {
        /// Which invariant broke.
        reason: String,
    },
}

impl TcbfError {
    /// A stable numeric code identifying the variant, for wire protocols
    /// that must round-trip errors without string matching.
    ///
    /// Codes are append-only: existing assignments never change, new
    /// variants take the next free code.  0 is reserved for "no error" and
    /// codes the receiving side does not know map onto a generic remote
    /// error, so old clients stay compatible with newer servers.
    pub fn code(&self) -> u16 {
        match self {
            TcbfError::MissingWeights => 1,
            TcbfError::EmptyWeights { .. } => 2,
            TcbfError::ZeroSamplesPerBlock => 3,
            TcbfError::ZeroBatch => 4,
            TcbfError::ShardedConfiguration { .. } => 5,
            TcbfError::ShardedBatch { .. } => 6,
            TcbfError::UnsupportedPrecision { .. } => 7,
            TcbfError::OutOfDeviceMemory { .. } => 8,
            TcbfError::InvalidParameters { .. } => 9,
            TcbfError::ShapeMismatch { .. } => 10,
            TcbfError::PrecisionMismatch { .. } => 11,
            TcbfError::DeviceLost { .. } => 12,
            TcbfError::Degraded { .. } => 13,
            TcbfError::Internal { .. } => 14,
        }
    }

    /// True for failures a client may retry without changing the request:
    /// transient device refusals and degraded-fleet rejections.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TcbfError::DeviceLost {
                permanent: false,
                ..
            } | TcbfError::Degraded { .. }
        )
    }
}

impl From<CcglibError> for TcbfError {
    fn from(err: CcglibError) -> Self {
        match err {
            CcglibError::ShapeMismatch { expected, actual } => {
                TcbfError::ShapeMismatch { expected, actual }
            }
            CcglibError::UnsupportedPrecision { device, precision } => {
                TcbfError::UnsupportedPrecision { device, precision }
            }
            CcglibError::InvalidParameters { reason } => TcbfError::InvalidParameters { reason },
            CcglibError::OutOfDeviceMemory {
                shape,
                required_bytes,
                available_bytes,
            } => TcbfError::OutOfDeviceMemory {
                shape,
                required_bytes,
                available_bytes,
            },
            CcglibError::PrecisionMismatch { expected, actual } => {
                TcbfError::PrecisionMismatch { expected, actual }
            }
            CcglibError::DeviceLost { device, permanent } => {
                TcbfError::DeviceLost { device, permanent }
            }
        }
    }
}

impl std::fmt::Display for TcbfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcbfError::MissingWeights => {
                write!(
                    f,
                    "no weight matrix configured: call .weights(...) before .build()"
                )
            }
            TcbfError::EmptyWeights { beams, receivers } => write!(
                f,
                "weight matrix is {beams} beams x {receivers} receivers: both dimensions must be non-zero"
            ),
            TcbfError::ZeroSamplesPerBlock => write!(
                f,
                "samples per block must be non-zero: call .samples_per_block(n) with n > 0"
            ),
            TcbfError::ZeroBatch => {
                write!(f, "batch size must be non-zero: call .batch(n) with n > 0")
            }
            TcbfError::ShardedConfiguration { devices } => write!(
                f,
                "a {devices}-device pool is configured: call .build_sharded() instead of .build()"
            ),
            TcbfError::ShardedBatch { batch } => write!(
                f,
                "streaming engines distribute whole blocks (one per execution): configure batch 1 instead of {batch}"
            ),
            TcbfError::UnsupportedPrecision { device, precision } => {
                write!(f, "{precision} precision is not supported on {device}")
            }
            TcbfError::OutOfDeviceMemory {
                shape,
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "problem {shape} needs {required_bytes} bytes but only {available_bytes} are available: shrink the batch, block length or beam count"
            ),
            TcbfError::InvalidParameters { reason } => {
                write!(f, "invalid tuning parameters: {reason}")
            }
            TcbfError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            TcbfError::PrecisionMismatch { expected, actual } => {
                write!(f, "operand precision mismatch: expected {expected}, got {actual}")
            }
            TcbfError::DeviceLost { device, permanent } => {
                if *permanent {
                    write!(f, "device {device} lost mid-stream (permanent fault)")
                } else {
                    write!(f, "device {device} refused work (transient fault, retryable)")
                }
            }
            TcbfError::Degraded { healthy, total } => write!(
                f,
                "fleet degraded: {healthy} of {total} engines healthy — retry once capacity recovers"
            ),
            TcbfError::Internal { reason } => {
                write!(f, "internal invariant violated (this is a bug): {reason}")
            }
        }
    }
}

impl std::error::Error for TcbfError {}

/// Convenience result alias of the facade.
pub type Result<T> = std::result::Result<T, TcbfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccglib_errors_convert_variant_for_variant() {
        let converted = TcbfError::from(CcglibError::UnsupportedPrecision {
            device: "MI300X".into(),
            precision: "int1".into(),
        });
        assert_eq!(
            converted,
            TcbfError::UnsupportedPrecision {
                device: "MI300X".into(),
                precision: "int1".into(),
            }
        );
        let converted = TcbfError::from(CcglibError::OutOfDeviceMemory {
            shape: GemmShape::new(1, 2, 3),
            required_bytes: 10,
            available_bytes: 5,
        });
        assert!(matches!(converted, TcbfError::OutOfDeviceMemory { .. }));
    }

    /// One exemplar per variant, used to sweep the whole enum.
    fn exemplars() -> Vec<TcbfError> {
        vec![
            TcbfError::MissingWeights,
            TcbfError::EmptyWeights {
                beams: 0,
                receivers: 4,
            },
            TcbfError::ZeroSamplesPerBlock,
            TcbfError::ZeroBatch,
            TcbfError::ShardedConfiguration { devices: 2 },
            TcbfError::ShardedBatch { batch: 3 },
            TcbfError::UnsupportedPrecision {
                device: "MI300X".into(),
                precision: "int1".into(),
            },
            TcbfError::OutOfDeviceMemory {
                shape: GemmShape::new(1, 2, 3),
                required_bytes: 10,
                available_bytes: 5,
            },
            TcbfError::InvalidParameters {
                reason: "bad".into(),
            },
            TcbfError::ShapeMismatch {
                expected: "a".into(),
                actual: "b".into(),
            },
            TcbfError::PrecisionMismatch {
                expected: "float16".into(),
                actual: "int1".into(),
            },
            TcbfError::DeviceLost {
                device: 1,
                permanent: true,
            },
            TcbfError::Degraded {
                healthy: 1,
                total: 4,
            },
            TcbfError::Internal {
                reason: "bug".into(),
            },
        ]
    }

    #[test]
    fn error_codes_are_unique_stable_and_nonzero() {
        let errors = exemplars();
        let mut codes: Vec<u16> = errors.iter().map(TcbfError::code).collect();
        // 0 is reserved for "no error" on the wire.
        assert!(codes.iter().all(|&c| c != 0));
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate TcbfError codes");
        // Stability pins: these assignments are append-only and must never
        // change, or deployed clients would misreport remote failures.
        assert_eq!(TcbfError::MissingWeights.code(), 1);
        assert_eq!(
            TcbfError::ShapeMismatch {
                expected: String::new(),
                actual: String::new(),
            }
            .code(),
            10
        );
        assert_eq!(
            TcbfError::DeviceLost {
                device: 0,
                permanent: false,
            }
            .code(),
            12
        );
        assert_eq!(
            TcbfError::Degraded {
                healthy: 0,
                total: 2,
            }
            .code(),
            13
        );
        assert_eq!(
            TcbfError::Internal {
                reason: String::new(),
            }
            .code(),
            14
        );
        // The code depends only on the variant, not its payload.
        assert_eq!(
            TcbfError::EmptyWeights {
                beams: 7,
                receivers: 9,
            }
            .code(),
            TcbfError::EmptyWeights {
                beams: 0,
                receivers: 0,
            }
            .code()
        );
    }

    #[test]
    fn messages_are_actionable() {
        assert!(TcbfError::MissingWeights.to_string().contains(".weights("));
        assert!(TcbfError::ZeroSamplesPerBlock
            .to_string()
            .contains(".samples_per_block("));
        assert!(TcbfError::ZeroBatch.to_string().contains(".batch("));
        let oom = TcbfError::OutOfDeviceMemory {
            shape: GemmShape::new(1, 2, 3),
            required_bytes: 100,
            available_bytes: 10,
        };
        assert!(oom.to_string().contains("shrink"));
    }

    #[test]
    fn device_loss_converts_and_classifies_retryability() {
        let converted = TcbfError::from(CcglibError::DeviceLost {
            device: 3,
            permanent: true,
        });
        assert_eq!(
            converted,
            TcbfError::DeviceLost {
                device: 3,
                permanent: true,
            }
        );
        assert!(!converted.is_retryable());
        assert!(TcbfError::DeviceLost {
            device: 3,
            permanent: false,
        }
        .is_retryable());
        assert!(TcbfError::Degraded {
            healthy: 0,
            total: 2,
        }
        .is_retryable());
        assert!(!TcbfError::MissingWeights.is_retryable());
    }
}
