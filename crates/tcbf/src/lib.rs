//! The Tensor-Core Beamformer (TCBF) — top-level facade.
//!
//! This crate ties the workspace together behind the API a downstream user
//! would reach for first:
//!
//! * [`TensorCoreBeamformer::builder`] — a fluent [`BeamformerBuilder`]
//!   that validates the whole configuration (device, weights, block
//!   length, precision, batch, tuning parameters) in one place and returns
//!   a single actionable [`TcbfError`] on misuse;
//! * one execution API for every topology —
//!   [`BeamformerBuilder::build_engine`] returns a `Box<dyn `[`Engine`]`>`
//!   (a single device unless `.devices(&[...])` configured a
//!   [`DevicePool`]); the generic [`Session`] (alias [`DynSession`] for
//!   boxed engines) streams blocks through it with mid-stream weight
//!   hot-swap, and the unified [`Report`] carries a per-device breakdown
//!   (exactly one entry in the single case) plus the pool-level metrics
//!   derived from it;
//! * the typed entry points ([`BeamformerBuilder::build`] →
//!   [`TensorCoreBeamformer`], [`BeamformerBuilder::build_sharded`] →
//!   [`ShardedBeamformer`]) remain as thin wrappers for one release;
//! * [`prelude`] — one `use tcbf::prelude::*;` for the whole surface;
//! * re-exports of the building blocks (`ccglib`, the device catalog, the
//!   tuner, the generic beamforming layer) for users who need lower-level
//!   control;
//! * [`version`] and [`supported_devices`] introspection helpers.
//!
//! The domain applications live in their own crates (`ultrasound`,
//! `radioastro`) and are thin generic wrappers over the same [`Engine`]
//! abstraction, exactly as the paper describes the layering.

#![deny(missing_docs)]

mod builder;
mod error;

pub use beamform::{
    ArrayGeometry, BatchBeamformOutput, BeamformOutput, BeamformSession, Beamformer,
    BeamformerConfig, DeviceShardReport, DynSession, Engine, LatencyHistogram, PlaneWaveSource,
    Report, Session, SessionReport, ShardPlan, ShardPolicy, ShardedBeamformer, ShardedSession,
    ShardedSessionReport, ShardedStreamOutput, SignalGenerator, SingleEngine, ThroughputMetrics,
    Topology, WeightMatrix,
};
pub use builder::BeamformerBuilder;
pub use ccglib::{
    benchmark, Gemm, GemmBatchInput, GemmInput, MicroKernelConfig, ParameterSpace, Precision,
    RunReport, TuningParameters,
};
pub use error::{Result, TcbfError};
pub use gpu_sim::{Device, DevicePool, DeviceSpec, Gpu};
pub use pmt::{EnergyMeasurement, PowerMeter};
pub use tuner::{
    MicroTuneCache, MicroTuneOutcome, MicroTuner, Objective, ShapeClass, Strategy, TuneOutcome,
    Tuner,
};

/// Everything a typical downstream user needs in one import:
/// `use tcbf::prelude::*;`.
///
/// Exports the fluent builder and facade, the unified execution surface
/// ([`Engine`], [`Session`]/[`DynSession`], [`Report`],
/// [`ThroughputMetrics`], [`Topology`]), the precision/policy enums, the
/// error type, the device catalog, weight/signal helpers, the tuner, and
/// the host matrix type.
pub mod prelude {
    pub use crate::{
        supported_devices, version, ArrayGeometry, BeamformOutput, Beamformer, BeamformerBuilder,
        BeamformerConfig, Device, DevicePool, DeviceShardReport, DeviceSpec, DynSession, Engine,
        Gpu, LatencyHistogram, MicroKernelConfig, Objective, PlaneWaveSource, Precision, Report,
        Result, Session, SessionReport, ShardPlan, ShardPolicy, ShardedBeamformer, SignalGenerator,
        SingleEngine, Strategy, TcbfError, TensorCoreBeamformer, ThroughputMetrics, Topology,
        TuneOutcome, Tuner, TuningParameters, WeightMatrix,
    };
    pub use ccglib::matrix::HostComplexMatrix;
    pub use tcbf_types::Complex;
}

use ccglib::matrix::HostComplexMatrix;
use tcbf_types::GemmShape;

/// Library version (mirrors the crate version).
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The devices the library ships calibrated models and tuned defaults for.
pub fn supported_devices() -> Vec<DeviceSpec> {
    DeviceSpec::catalog()
}

/// The highest-level entry point: a beamformer bound to a device, a set of
/// beam weights and a precision, configured through
/// [`TensorCoreBeamformer::builder`] and consumed either one block at a
/// time or as a streaming [`BeamformSession`].
///
/// ```
/// use tcbf::{Gpu, Precision, TensorCoreBeamformer};
/// use ccglib::matrix::HostComplexMatrix;
/// use tcbf_types::Complex;
///
/// // 8 beams from 32 receivers, 64 samples at a time, on a simulated A100.
/// let weights = HostComplexMatrix::from_fn(8, 32, |b, r| {
///     Complex::from_polar(1.0 / 32.0, (b * r) as f32 * 0.01)
/// });
/// let beamformer = TensorCoreBeamformer::builder(Gpu::A100)
///     .weights(weights)
///     .samples_per_block(64)
///     .precision(Precision::Float16)
///     .build()
///     .unwrap();
/// let samples = HostComplexMatrix::from_fn(32, 64, |r, s| Complex::new(r as f32 * 0.1, s as f32 * 0.05));
///
/// // Stream blocks through a session and read the aggregate report.
/// let mut session = beamformer.into_session();
/// for _ in 0..4 {
///     let output = session.process_block(&samples).unwrap();
///     assert_eq!(output.beams.rows(), 8);
///     assert_eq!(output.beams.cols(), 64);
/// }
/// let report = session.finish();
/// assert_eq!(report.blocks, 4);
/// assert!(report.aggregate_tops() > 0.0);
/// ```
pub struct TensorCoreBeamformer {
    inner: Beamformer,
    gpu: Gpu,
}

impl TensorCoreBeamformer {
    /// Starts a fluent configuration for `gpu`.
    pub fn builder(gpu: Gpu) -> BeamformerBuilder {
        BeamformerBuilder::new(gpu)
    }

    /// Creates a batch-1 beamformer from a raw `M × K` weight matrix — a
    /// thin wrapper around [`TensorCoreBeamformer::builder`] kept for the
    /// one-shot call sites.
    pub fn new(
        gpu: Gpu,
        weights: HostComplexMatrix,
        samples_per_block: usize,
        precision: Precision,
    ) -> Result<Self> {
        Self::builder(gpu)
            .weights(weights)
            .samples_per_block(samples_per_block)
            .precision(precision)
            .build()
    }

    /// Wraps an already-validated inner beamformer (used by the builder).
    pub(crate) fn from_parts(inner: Beamformer, gpu: Gpu) -> Self {
        TensorCoreBeamformer { inner, gpu }
    }

    /// The device the beamformer runs on.
    pub fn gpu(&self) -> Gpu {
        self.gpu
    }

    /// The precision in use.
    pub fn precision(&self) -> Precision {
        self.inner.config().precision
    }

    /// The configured batch size.
    pub fn batch(&self) -> usize {
        self.inner.config().batch
    }

    /// The GEMM shape one block (or batch of blocks) maps to.
    pub fn shape(&self) -> GemmShape {
        self.inner.shape()
    }

    /// Beamforms one block of `K × N` receiver samples (batch-1
    /// configurations; batched ones use
    /// [`TensorCoreBeamformer::beamform_batch`]).
    pub fn beamform(&self, samples: &HostComplexMatrix) -> Result<BeamformOutput> {
        Ok(self.inner.beamform(samples)?)
    }

    /// Beamforms one batch of `K × N` sample blocks — one per batch
    /// element — functionally, under a single report.
    pub fn beamform_batch(&self, blocks: &[HostComplexMatrix]) -> Result<BatchBeamformOutput> {
        Ok(self.inner.beamform_batch(blocks)?)
    }

    /// Turns the beamformer into a streaming [`BeamformSession`].
    pub fn into_session(self) -> BeamformSession {
        self.inner.into_session()
    }

    /// Wraps the beamformer as a single-device streaming [`Engine`] —
    /// the same interface a sharded pool implements.  Fails for batched
    /// configurations (engines stream whole blocks, one per execution).
    pub fn into_engine(self) -> Result<SingleEngine> {
        Ok(self.inner.into_engine()?)
    }

    /// The host micro-kernel blocking this beamformer executes with —
    /// the builder-pinned config, the autotuning-cache winner, or the
    /// default.
    pub fn micro(&self) -> MicroKernelConfig {
        self.inner.micro()
    }

    /// Predicted performance of one block without computing data.
    pub fn predict(&self) -> RunReport {
        self.inner.predict()
    }

    /// Auto-tunes the kernel for this beamformer's shape and returns the
    /// tuning outcome (the library otherwise uses shipped defaults).
    pub fn autotune(&self, strategy: Strategy, objective: Objective) -> Option<TuneOutcome> {
        Tuner::new(self.gpu.device(), self.shape(), self.precision()).tune(strategy, objective)
    }
}

impl std::fmt::Debug for TensorCoreBeamformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorCoreBeamformer")
            .field("gpu", &self.gpu)
            .field("precision", &self.precision())
            .field("shape", &self.shape())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use proptest::prelude::*;
    use tcbf_types::Complex;

    fn weights(beams: usize, receivers: usize) -> HostComplexMatrix {
        HostComplexMatrix::from_fn(beams, receivers, |b, r| {
            Complex::from_polar(1.0 / receivers.max(1) as f32, (b * r) as f32 * 0.02)
        })
    }

    #[test]
    fn version_and_catalog() {
        assert!(!version().is_empty());
        // The facade must surface exactly the device catalog, whatever its
        // size: non-empty and free of duplicate names.
        let devices = supported_devices();
        let catalog = DeviceSpec::catalog();
        assert!(!devices.is_empty());
        assert_eq!(devices.len(), catalog.len());
        let mut names: Vec<&str> = devices.iter().map(|spec| spec.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), devices.len(), "duplicate device names");
    }

    #[test]
    fn builder_configures_and_beamforms() {
        let bf = TensorCoreBeamformer::builder(Gpu::Gh200)
            .weights(weights(16, 64))
            .samples_per_block(32)
            .precision(Precision::Float16)
            .build()
            .unwrap();
        assert_eq!(bf.gpu(), Gpu::Gh200);
        assert_eq!(bf.precision(), Precision::Float16);
        assert_eq!(bf.batch(), 1);
        assert_eq!(bf.shape(), GemmShape::new(16, 32, 64));
        let samples = HostComplexMatrix::from_fn(64, 32, |r, s| {
            Complex::new((r + s) as f32 * 0.01, (r as f32 - s as f32) * 0.01)
        });
        let output = bf.beamform(&samples).unwrap();
        assert_eq!(output.beams.rows(), 16);
        assert!(output.report.achieved_tops > 0.0);
        let predicted = bf.predict();
        assert!(predicted.predicted.elapsed_s > 0.0);
    }

    #[test]
    fn one_shot_constructor_delegates_to_the_builder() {
        let bf =
            TensorCoreBeamformer::new(Gpu::A100, weights(8, 32), 16, Precision::Float16).unwrap();
        assert_eq!(bf.shape(), GemmShape::new(8, 16, 32));
    }

    #[test]
    fn builder_rejects_each_invalid_configuration_with_its_variant() {
        let ok = || {
            TensorCoreBeamformer::builder(Gpu::A100)
                .weights(weights(4, 32))
                .samples_per_block(16)
        };
        assert!(ok().build().is_ok());
        assert_eq!(
            TensorCoreBeamformer::builder(Gpu::A100)
                .samples_per_block(16)
                .build()
                .unwrap_err(),
            TcbfError::MissingWeights
        );
        assert_eq!(
            TensorCoreBeamformer::builder(Gpu::A100)
                .weights(HostComplexMatrix::zeros(0, 0))
                .samples_per_block(16)
                .build()
                .unwrap_err(),
            TcbfError::EmptyWeights {
                beams: 0,
                receivers: 0
            }
        );
        assert_eq!(
            TensorCoreBeamformer::builder(Gpu::A100)
                .weights(weights(4, 32))
                .build()
                .unwrap_err(),
            TcbfError::ZeroSamplesPerBlock
        );
        assert_eq!(ok().batch(0).build().unwrap_err(), TcbfError::ZeroBatch);
        assert!(matches!(
            TensorCoreBeamformer::builder(Gpu::Mi300x)
                .weights(weights(4, 32))
                .samples_per_block(16)
                .precision(Precision::Int1)
                .build()
                .unwrap_err(),
            TcbfError::UnsupportedPrecision { .. }
        ));
        assert!(matches!(
            ok().batch(1 << 30).build().unwrap_err(),
            TcbfError::OutOfDeviceMemory { .. }
        ));
        assert!(matches!(
            ok().params(TuningParameters::new(64, 16, 64, 16, 0))
                .build()
                .unwrap_err(),
            TcbfError::InvalidParameters { .. }
        ));
    }

    #[test]
    fn batched_facade_beamformer_runs_functionally() {
        let bf = TensorCoreBeamformer::builder(Gpu::A100)
            .weights(weights(8, 32))
            .samples_per_block(16)
            .batch(3)
            .build()
            .unwrap();
        assert_eq!(bf.batch(), 3);
        let blocks: Vec<HostComplexMatrix> = (0..3)
            .map(|e| {
                HostComplexMatrix::from_fn(32, 16, |r, s| {
                    Complex::new((e + r + s) as f32 * 0.02, (r as f32 - s as f32) * 0.01)
                })
            })
            .collect();
        let output = bf.beamform_batch(&blocks).unwrap();
        assert_eq!(output.beams.len(), 3);
        assert!(output.report.achieved_tops > 0.0);
    }

    #[test]
    fn session_streams_with_weight_swap() {
        let bf = TensorCoreBeamformer::builder(Gpu::A100)
            .weights(weights(4, 16))
            .samples_per_block(8)
            .build()
            .unwrap();
        let mut session = bf.into_session();
        let samples =
            HostComplexMatrix::from_fn(16, 8, |r, s| Complex::new(r as f32 * 0.1, s as f32 * 0.05));
        session.process_block(&samples).unwrap();
        session
            .set_weights(WeightMatrix::from_matrix(weights(4, 16)))
            .unwrap();
        session.process_block(&samples).unwrap();
        let report = session.finish();
        assert_eq!(report.blocks, 2);
        assert_eq!(report.weight_swaps, 1);
    }

    #[test]
    fn builder_configures_a_sharded_pool() {
        let sharded = TensorCoreBeamformer::builder(Gpu::A100)
            .weights(weights(4, 16))
            .samples_per_block(8)
            .devices(&[Gpu::A100, Gpu::Gh200, Gpu::Mi300x])
            .shard_policy(ShardPolicy::CapacityWeighted)
            .build_sharded()
            .unwrap();
        assert_eq!(sharded.num_devices(), 3);
        assert_eq!(sharded.policy(), ShardPolicy::CapacityWeighted);
        let blocks: Vec<HostComplexMatrix> = (0..5)
            .map(|i| {
                HostComplexMatrix::from_fn(16, 8, |r, s| {
                    Complex::new((r + s + i) as f32 * 0.05, r as f32 * 0.01)
                })
            })
            .collect();
        let run = sharded.beamform_stream(&blocks).unwrap();
        assert_eq!(run.outputs.len(), 5);
        assert_eq!(run.report.total_blocks(), 5);
        // Without .devices(...), build_sharded() is a single-member pool.
        let single = TensorCoreBeamformer::builder(Gpu::A100)
            .weights(weights(4, 16))
            .samples_per_block(8)
            .build_sharded()
            .unwrap();
        assert_eq!(single.num_devices(), 1);
    }

    #[test]
    fn build_engine_picks_the_topology_from_the_builder() {
        let configured = || {
            TensorCoreBeamformer::builder(Gpu::A100)
                .weights(weights(4, 16))
                .samples_per_block(8)
        };
        // No .devices(...): a single-device engine.
        let mut single = configured().build_engine().unwrap();
        assert_eq!(single.topology(), Topology::Single(Gpu::A100));
        assert_eq!(single.plan(3).num_devices(), 1);
        // With .devices(...): a sharded engine over the pool.
        let mut pooled = configured()
            .devices(&[Gpu::A100, Gpu::Gh200])
            .shard_policy(ShardPolicy::RoundRobin)
            .build_engine()
            .unwrap();
        assert_eq!(pooled.topology().num_devices(), 2);
        assert_eq!(pooled.topology().policy(), Some(ShardPolicy::RoundRobin));
        // Both run the same blocks to identical results through the trait.
        let blocks: Vec<HostComplexMatrix> = (0..4)
            .map(|i| {
                HostComplexMatrix::from_fn(16, 8, |r, s| {
                    Complex::new((r + s + i) as f32 * 0.05, r as f32 * 0.01)
                })
            })
            .collect();
        let refs: Vec<&HostComplexMatrix> = blocks.iter().collect();
        let a = single.process_batch(&refs).unwrap();
        let b = pooled.process_batch(&refs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.beams, y.beams);
        }
        assert_eq!(single.report().per_device().len(), 1);
        assert_eq!(pooled.report().per_device().len(), 2);
        // Engines stream whole blocks: batched configurations are rejected.
        assert_eq!(
            configured().batch(2).build_engine().unwrap_err(),
            TcbfError::ShardedBatch { batch: 2 }
        );
        // The common validations still run first.
        assert_eq!(
            TensorCoreBeamformer::builder(Gpu::A100)
                .samples_per_block(8)
                .build_engine()
                .unwrap_err(),
            TcbfError::MissingWeights
        );
    }

    #[test]
    fn facade_converts_into_a_single_engine() {
        let engine = TensorCoreBeamformer::builder(Gpu::Gh200)
            .weights(weights(4, 16))
            .samples_per_block(8)
            .build()
            .unwrap()
            .into_engine()
            .unwrap();
        assert_eq!(engine.topology(), Topology::Single(Gpu::Gh200));
    }

    #[test]
    fn sharded_configurations_reject_the_wrong_build_path() {
        let pooled = || {
            TensorCoreBeamformer::builder(Gpu::A100)
                .weights(weights(4, 16))
                .samples_per_block(8)
                .devices(&[Gpu::A100, Gpu::A100])
        };
        assert_eq!(
            pooled().build().unwrap_err(),
            TcbfError::ShardedConfiguration { devices: 2 }
        );
        assert_eq!(
            pooled().batch(3).build_sharded().unwrap_err(),
            TcbfError::ShardedBatch { batch: 3 }
        );
        // The sharded path still runs the common validations.
        assert_eq!(
            TensorCoreBeamformer::builder(Gpu::A100)
                .devices(&[Gpu::A100])
                .samples_per_block(8)
                .build_sharded()
                .unwrap_err(),
            TcbfError::MissingWeights
        );
        // And precision support is validated per pool member.
        assert!(matches!(
            pooled()
                .devices(&[Gpu::A100, Gpu::Mi300x])
                .precision(Precision::Int1)
                .build_sharded()
                .unwrap_err(),
            TcbfError::UnsupportedPrecision { .. }
        ));
    }

    #[test]
    fn facade_rejects_int1_on_amd() {
        let result = TensorCoreBeamformer::new(Gpu::Mi300x, weights(4, 32), 16, Precision::Int1);
        match result {
            Err(err) => assert!(err.to_string().contains("not supported")),
            Ok(_) => panic!("int1 must be rejected on AMD devices"),
        }
    }

    #[test]
    fn facade_autotune_returns_an_outcome() {
        let bf = TensorCoreBeamformer::builder(Gpu::A100)
            .weights(weights(256, 128))
            .samples_per_block(256)
            .build()
            .unwrap();
        let outcome = bf
            .autotune(
                Strategy::Random {
                    samples: 6,
                    seed: 1,
                },
                Objective::Performance,
            )
            .unwrap();
        assert_eq!(outcome.evaluated.len(), 6);
        assert!(outcome.best.tops > 0.0);
    }

    /// Mirrors the builder's validation order to predict the outcome of an
    /// arbitrary configuration.
    fn expected_outcome(
        gpu: Gpu,
        beams: usize,
        receivers: usize,
        samples: usize,
        batch: usize,
        precision: Precision,
    ) -> std::result::Result<(), &'static str> {
        if beams == 0 || receivers == 0 {
            return Err("EmptyWeights");
        }
        if samples == 0 {
            return Err("ZeroSamplesPerBlock");
        }
        if batch == 0 {
            return Err("ZeroBatch");
        }
        let spec = gpu.device().spec().clone();
        if precision == Precision::Int1 && !spec.supports_int1() {
            return Err("UnsupportedPrecision");
        }
        let shape = GemmShape::batched(batch, beams, samples, receivers);
        let required = ccglib::GemmPlan::operand_bytes(&shape, precision);
        let available = (spec.mem_size_gib * 1024.0 * 1024.0 * 1024.0) as u128;
        if precision.uses_tensor_cores() && required > available {
            return Err("OutOfDeviceMemory");
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn builder_never_panics_and_rejects_invalid_configs_with_the_right_variant(
            gpu_index in 0usize..Gpu::ALL.len(),
            beams in 0usize..64,
            receivers in 0usize..96,
            samples in 0usize..64,
            // Up to 2^30 batch elements: far beyond any device memory.
            batch_log2 in 0u32..31,
            int1 in any::<bool>(),
        ) {
            let gpu = Gpu::ALL[gpu_index];
            let batch = (1usize << batch_log2).saturating_sub(usize::from(batch_log2 == 0));
            let precision = if int1 { Precision::Int1 } else { Precision::Float16 };
            let result = TensorCoreBeamformer::builder(gpu)
                .weights(HostComplexMatrix::zeros(beams, receivers))
                .samples_per_block(samples)
                .precision(precision)
                .batch(batch)
                .build();
            match expected_outcome(gpu, beams, receivers, samples, batch, precision) {
                Ok(()) => prop_assert!(result.is_ok(), "unexpected error: {:?}", result.err()),
                Err(variant) => {
                    let err = result.err();
                    let matches = match variant {
                        "EmptyWeights" => matches!(err, Some(TcbfError::EmptyWeights { .. })),
                        "ZeroSamplesPerBlock" => matches!(err, Some(TcbfError::ZeroSamplesPerBlock)),
                        "ZeroBatch" => matches!(err, Some(TcbfError::ZeroBatch)),
                        "UnsupportedPrecision" => {
                            matches!(err, Some(TcbfError::UnsupportedPrecision { .. }))
                        }
                        "OutOfDeviceMemory" => {
                            matches!(err, Some(TcbfError::OutOfDeviceMemory { .. }))
                        }
                        _ => false,
                    };
                    prop_assert!(matches, "expected {variant}, got {err:?}");
                }
            }
        }
    }
}
